/**
 * @file
 * Microbenchmark: batched descriptor submission & coalesced completions
 * (DESIGN.md 7j) - the DSA-style batch-size x transfer-size crossover
 * surface.
 *
 * Three sections:
 *  1. Copy crossover: 16 p2p copies at every (transfer size, batch
 *     size) point. Legacy (batch=1) pays one doorbell and one
 *     completion notification per copy; a batch of B pays one doorbell
 *     per B descriptors and one coalesced notification per batch. The
 *     payload digest is checked in-harness: every batch size must
 *     deliver byte-identical output.
 *  2. Restructure streams: 16 small (1 KiB) and large (64 KiB) DRX
 *     restructure ops, legacy vs one 16-member batch - the
 *     notification-per-command tax sits on the legacy stream's critical
 *     path, so small-transfer streams are where batching pays most.
 *  3. Closed-loop crossover: sys::SystemConfig::batch across four
 *     placements and three motion sizes - one doorbell per batch of
 *     flow submissions, one interrupt per batch of pipeline steps.
 *
 * A zero-probability fault plan is installed in sections 1-2 so the
 * completion-notification path is modeled (the fault-free settle path
 * deliberately pays no notifications); no fault ever fires, so runs
 * stay deterministic.
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "runtime/batch.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

constexpr unsigned kStream = 16; ///< commands per measured stream

/** Trivial pass-through accelerator kernel (copies don't run it). */
runtime::Bytes
passKernel(const runtime::Bytes &in, kernels::OpCount &ops)
{
    ops.int_ops += in.size();
    ops.bytes_read += in.size();
    ops.bytes_written += in.size();
    return in;
}

std::uint64_t
fnv(std::uint64_t h, const runtime::Bytes &b)
{
    for (const std::uint8_t c : b) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct CopyPoint
{
    Tick makespan = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t notifications = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t digest = 0;
};

/** Run kStream copies of @p bytes each in batches of @p batch. */
CopyPoint
runCopies(std::uint64_t bytes, unsigned batch)
{
    runtime::Platform plat;
    fault::FaultPlan fp{fault::FaultSpec{}};
    plat.setFaultPlan(&fp);
    const auto a0 =
        plat.addAccelerator("a0", accel::Domain::Crypto, passKernel);
    const auto a1 =
        plat.addAccelerator("a1", accel::Domain::Crypto, passKernel);
    runtime::Context ctx = plat.createContext();

    std::vector<runtime::BufferId> ins(kStream), outs(kStream);
    for (unsigned i = 0; i < kStream; ++i) {
        runtime::Bytes payload(bytes);
        for (std::size_t j = 0; j < payload.size(); ++j)
            payload[j] =
                static_cast<std::uint8_t>((i * 131u + j * 7u) & 0xffu);
        ins[i] = ctx.createBuffer(std::move(payload));
        outs[i] = ctx.createBuffer();
    }

    std::vector<runtime::Event> evs;
    std::vector<runtime::BatchEvent> bevs;
    if (batch <= 1) {
        for (unsigned i = 0; i < kStream; ++i)
            evs.push_back(ctx.queue(a0).enqueueCopy(ins[i], outs[i], a1));
    } else {
        for (unsigned g = 0; g < kStream; g += batch) {
            std::vector<runtime::BatchOp> ops;
            for (unsigned i = g; i < std::min(kStream, g + batch); ++i) {
                runtime::BatchOp op;
                op.kind = runtime::BatchOp::Kind::Copy;
                op.device = a0;
                op.dst_device = a1;
                op.in = ins[i];
                op.out = outs[i];
                ops.push_back(op);
            }
            bevs.push_back(runtime::submitBatch(ctx, ops));
        }
    }
    ctx.finish();

    CopyPoint r;
    for (const runtime::Event &ev : evs) {
        if (!ev.ok())
            dmx_panic("micro_batch: legacy copy failed");
        r.makespan = std::max(r.makespan, ev.completeTime());
    }
    for (const runtime::BatchEvent &bev : bevs) {
        if (!bev.ok())
            dmx_panic("micro_batch: batched copy failed");
        r.makespan = std::max(r.makespan, bev.completeTime());
    }
    r.doorbells = plat.fabric().doorbells();
    // Total notification events: the NAPI controller may deliver any
    // of them in polled mode, so interrupts alone undercounts legacy.
    r.notifications =
        plat.irq().interruptsDelivered() + plat.irq().pollsDelivered();
    r.suppressed = plat.irq().suppressedNotifications();
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned i = 0; i < kStream; ++i)
        h = fnv(h, ctx.read(outs[i]));
    r.digest = h;
    return r;
}

/** A fusion-legal DRX kernel on a side x side f32 tile. */
restructure::Kernel
tileKernel(std::size_t side)
{
    restructure::Kernel k;
    k.name = "batch_scale" + std::to_string(side);
    k.input.dtype = DType::F32;
    k.input.shape = {side, side};
    k.stages.push_back(restructure::mapStage(
        {{restructure::MapFn::Scale, 1.0009765625f}}));
    return k;
}

struct RestrPoint
{
    Tick makespan = 0;
    std::uint64_t notifications = 0;
    std::uint64_t digest = 0;
};

/** Run kStream restructure ops of a side x side tile each. */
RestrPoint
runRestructures(std::size_t side, bool batched)
{
    runtime::Platform plat;
    fault::FaultPlan fp{fault::FaultSpec{}};
    plat.setFaultPlan(&fp);
    const auto d0 = plat.addDrx("drx0", {});
    const restructure::Kernel kernel = tileKernel(side);
    runtime::Context ctx = plat.createContext();

    runtime::Bytes input(kernel.input.bytes());
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = 1.0f + 0.001f * static_cast<float>(i % 97);
    std::memcpy(input.data(), vals.data(), input.size());

    std::vector<runtime::BufferId> ins(kStream), outs(kStream);
    for (unsigned i = 0; i < kStream; ++i) {
        ins[i] = ctx.createBuffer(input);
        outs[i] = ctx.createBuffer();
    }

    RestrPoint r;
    if (!batched) {
        std::vector<runtime::Event> evs;
        for (unsigned i = 0; i < kStream; ++i)
            evs.push_back(
                ctx.queue(d0).enqueueRestructure(kernel, ins[i], outs[i]));
        ctx.finish();
        for (const runtime::Event &ev : evs) {
            if (!ev.ok())
                dmx_panic("micro_batch: legacy restructure failed");
            r.makespan = std::max(r.makespan, ev.completeTime());
        }
    } else {
        std::vector<runtime::BatchOp> ops;
        for (unsigned i = 0; i < kStream; ++i) {
            runtime::BatchOp op;
            op.kind = runtime::BatchOp::Kind::Restructure;
            op.device = d0;
            op.in = ins[i];
            op.out = outs[i];
            op.kernels = {kernel};
            ops.push_back(op);
        }
        const runtime::BatchEvent bev = runtime::submitBatch(ctx, ops);
        ctx.finish();
        if (!bev.ok())
            dmx_panic("micro_batch: batched restructure failed");
        r.makespan = bev.completeTime();
    }
    r.notifications =
        plat.irq().interruptsDelivered() + plat.irq().pollsDelivered();
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned i = 0; i < kStream; ++i)
        h = fnv(h, ctx.read(outs[i]));
    r.digest = h;
    return r;
}

/** Two-kernel / one-motion app with @p bytes moved between stages. */
AppModel
motionApp(std::uint64_t bytes)
{
    AppModel app;
    app.name = "mb" + std::to_string(bytes);
    app.input_bytes = bytes;
    for (int k = 0; k < 2; ++k) {
        KernelTiming kt;
        kt.name = "k" + std::to_string(k);
        kt.cpu_core_seconds = 0.002;
        kt.accel_cycles = 50'000; // 200 us at 250 MHz
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = bytes;
        app.kernels.push_back(kt);
    }
    MotionTiming mt;
    mt.name = "m0";
    mt.cpu_core_seconds = 0.003;
    mt.drx_cycles = 50'000;
    mt.in_bytes = bytes;
    mt.out_bytes = bytes;
    app.motions.push_back(mt);
    return app;
}

const char *
placementTag(Placement p)
{
    switch (p) {
      case Placement::IntegratedDrx: return "integrated";
      case Placement::StandaloneDrx: return "standalone";
      case Placement::BumpInTheWire: return "bitw";
      case Placement::PcieIntegrated: return "pcie";
      default: return "other";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "micro_batch");
    bench::banner("Micro - batched submission & coalesced completions",
                  "DESIGN.md 7j (DSA-style batch descriptors)");

    // -- 1. Copy crossover surface -----------------------------------
    const std::vector<std::uint64_t> sizes{256, 1024, 4096, 16384,
                                           65536, 262144};
    const std::vector<unsigned> batches{1, 2, 4, 8, 16};

    std::vector<std::function<CopyPoint()>> cthunks;
    for (const std::uint64_t s : sizes)
        for (const unsigned b : batches)
            cthunks.push_back([s, b] { return runCopies(s, b); });
    const auto copies =
        bench::runSweep<CopyPoint>(report, std::move(cthunks));

    Table t("16 p2p copies: makespan (ticks) by batch size");
    t.header({"bytes", "b=1", "b=2", "b=4", "b=8", "b=16", "doorbells "
              "b=1 -> b=16", "notifies b=1 -> b=16"});
    bool payload_match = true;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
        const std::string sz = std::to_string(sizes[si]);
        std::vector<std::string> row{sz};
        const CopyPoint &first = copies[si * batches.size()];
        const CopyPoint &last =
            copies[si * batches.size() + batches.size() - 1];
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            const CopyPoint &p = copies[si * batches.size() + bi];
            const std::string b = std::to_string(batches[bi]);
            report.metric("copy_mk_s" + sz + "_b" + b,
                          static_cast<double>(p.makespan));
            report.metric("copy_db_s" + sz + "_b" + b,
                          static_cast<double>(p.doorbells));
            report.metric("copy_irq_s" + sz + "_b" + b,
                          static_cast<double>(p.notifications));
            report.metric("copy_sup_s" + sz + "_b" + b,
                          static_cast<double>(p.suppressed));
            payload_match = payload_match && p.digest == first.digest;
            row.push_back(std::to_string(p.makespan));
        }
        row.push_back(std::to_string(first.doorbells) + " -> " +
                      std::to_string(last.doorbells));
        row.push_back(std::to_string(first.notifications) + " -> " +
                      std::to_string(last.notifications));
        t.row(row);
    }
    t.print(std::cout);
    if (!payload_match)
        dmx_panic("micro_batch: batched copies diverged from legacy "
                  "payload bytes");
    report.metric("copy_payload_match", 1.0);

    // -- 2. Restructure streams: where coalescing pays most ----------
    Table r("16 DRX restructures: legacy vs one 16-member batch");
    r.header({"tile", "bytes", "legacy (ticks)", "batched (ticks)",
              "saved %", "legacy irqs", "batched irqs"});
    const std::vector<std::size_t> tiles{16, 128}; // 1 KiB / 64 KiB f32
    std::vector<std::function<RestrPoint()>> rthunks;
    for (const std::size_t side : tiles) {
        rthunks.push_back([side] { return runRestructures(side, false); });
        rthunks.push_back([side] { return runRestructures(side, true); });
    }
    const auto restr =
        bench::runSweep<RestrPoint>(report, std::move(rthunks));
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const RestrPoint &legacy = restr[2 * i];
        const RestrPoint &batched = restr[2 * i + 1];
        if (legacy.digest != batched.digest)
            dmx_panic("micro_batch: batched restructure diverged from "
                      "legacy payload bytes");
        const std::uint64_t bytes = tiles[i] * tiles[i] * 4;
        const char *tag = bytes < 4096 ? "small" : "large";
        report.metric(std::string("restr_mk_") + tag + "_legacy",
                      static_cast<double>(legacy.makespan));
        report.metric(std::string("restr_mk_") + tag + "_batched",
                      static_cast<double>(batched.makespan));
        report.metric(std::string("restr_irq_") + tag + "_legacy",
                      static_cast<double>(legacy.notifications));
        report.metric(std::string("restr_irq_") + tag + "_batched",
                      static_cast<double>(batched.notifications));
        const double saved =
            100.0 * (1.0 - static_cast<double>(batched.makespan) /
                               static_cast<double>(legacy.makespan));
        r.row({std::to_string(tiles[i]) + "x" + std::to_string(tiles[i]),
               std::to_string(bytes), std::to_string(legacy.makespan),
               std::to_string(batched.makespan), Table::num(saved, 1),
               std::to_string(legacy.notifications),
               std::to_string(batched.notifications)});
    }
    r.print(std::cout);
    report.metric("restr_payload_match", 1.0);

    // -- 3. Closed-loop crossover across placements ------------------
    const std::vector<std::uint64_t> sys_sizes{512, 4096, 65536};
    const std::vector<unsigned> sys_batches{1, 8};
    const std::vector<Placement> placements{
        Placement::IntegratedDrx, Placement::StandaloneDrx,
        Placement::BumpInTheWire, Placement::PcieIntegrated};

    std::vector<std::function<RunStats()>> sthunks;
    for (const Placement pl : placements)
        for (const std::uint64_t s : sys_sizes)
            for (const unsigned b : sys_batches)
                sthunks.push_back([pl, s, b] {
                    SystemConfig cfg;
                    cfg.placement = pl;
                    cfg.n_apps = 4;
                    cfg.batch = b;
                    return simulateSystem(cfg, {motionApp(s)});
                });
    const auto sys_runs =
        bench::runSweep<RunStats>(report, std::move(sthunks));

    Table s("Closed loop: legacy vs batch=8 (makespan ticks)");
    s.header({"placement", "bytes", "legacy", "batched", "legacy "
              "doorbells", "batched doorbells", "legacy trips",
              "batched trips"});
    std::size_t idx = 0;
    for (const Placement pl : placements) {
        unsigned wins = 0;
        for (const std::uint64_t sz : sys_sizes) {
            const RunStats &legacy = sys_runs[idx++];
            const RunStats &batched = sys_runs[idx++];
            const std::string key = std::string("sys_") +
                                    placementTag(pl) + "_s" +
                                    std::to_string(sz);
            report.metric(key + "_mk_legacy",
                          static_cast<double>(legacy.makespan_ticks));
            report.metric(key + "_mk_batched",
                          static_cast<double>(batched.makespan_ticks));
            report.metric(key + "_db_legacy",
                          static_cast<double>(legacy.doorbells));
            report.metric(key + "_db_batched",
                          static_cast<double>(batched.doorbells));
            report.metric(key + "_trips_legacy",
                          static_cast<double>(legacy.driver_round_trips));
            report.metric(key + "_trips_batched",
                          static_cast<double>(batched.driver_round_trips));
            report.metric(key + "_suppressed",
                          static_cast<double>(
                              batched.notifications_suppressed));
            if (batched.makespan_ticks < legacy.makespan_ticks)
                ++wins;
            s.row({placementTag(pl), std::to_string(sz),
                   std::to_string(legacy.makespan_ticks),
                   std::to_string(batched.makespan_ticks),
                   std::to_string(legacy.doorbells),
                   std::to_string(batched.doorbells),
                   std::to_string(legacy.driver_round_trips),
                   std::to_string(batched.driver_round_trips)});
        }
        report.metric(std::string("sys_batched_wins_") + placementTag(pl),
                      static_cast<double>(wins));
    }
    s.print(std::cout);

    std::printf("Batching amortizes the doorbell (dma_setup) across "
                "each batch's descriptors and coalesces completion\n"
                "notifications into one per batch; the savings are "
                "fixed per command, so small transfers - where setup\n"
                "and notify dominate the wire time - cross over "
                "first.\n");
    return report.write();
}
