/**
 * @file
 * Ablations of the DRX design choices called out in DESIGN.md:
 *  - the Instruction Repeater (hardware loops) vs software loops,
 *  - access/execute double buffering on/off,
 *  - banded vs dense MatVec lowering,
 *  - affine strided lowering vs index-table gathers.
 * Each row reports simulated DRX cycles on the mel-spectrogram and
 * columnarization restructuring kernels.
 */

#include <cstring>

#include "bench/bench_util.hh"
#include "common/random.hh"
#include "drx/compiler.hh"
#include "restructure/catalog.hh"

using namespace dmx;
using namespace dmx::drx;

namespace
{

restructure::Bytes
inputFor(const restructure::Kernel &k, std::uint64_t seed)
{
    Rng rng(seed);
    restructure::Bytes out(k.input.bytes());
    if (k.input.dtype == DType::F32) {
        for (std::size_t i = 0; i < k.input.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1, 1));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

Cycles
cyclesWith(const restructure::Kernel &k, DrxConfig cfg,
           std::uint64_t seed)
{
    DrxMachine m(cfg);
    return runKernelOnDrx(k, inputFor(k, seed), m).total_cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "abl_drx");
    bench::banner("DRX design ablations",
                  "DESIGN.md Sec. 7 (hardware loops, double buffering, "
                  "banded MatVec, affine gathers)");

    const auto mel = restructure::melSpectrogram(512, 513, 128);
    const auto db = restructure::dbColumnarize(1u << 17, true);
    // Fine-grained per-record iterations: where the Instruction
    // Repeater's zero-overhead loops matter most.
    const auto text =
        restructure::textRecordRestructure(1u << 20, 256, 320);

    Table t("DRX cycle counts under ablations (250 MHz prototype)");
    t.header({"configuration", "mel", "text_record", "db_partition",
              "mel x", "text x", "db x"});
    DrxConfig base_cfg;
    base_cfg.freq_hz = 250e6; // the FPGA prototype, where compute binds

    // One scenario per (configuration, kernel) cell, plus the two
    // lowering studies at the end; every cell is an independent DRX
    // simulation, so the whole table fans across workers.
    DrxConfig no_loops = base_cfg;
    no_loops.hardware_loops = false;
    DrxConfig no_dbl = base_cfg;
    no_dbl.double_buffer = false;
    restructure::Kernel dense = mel;
    {
        // Banded vs dense MatVec: destroy the band structure.
        auto w = std::make_shared<std::vector<float>>(
            *dense.stages[1].weights);
        for (auto &v : *w)
            v += 1e-12f;
        dense.stages[1].weights = w;
    }
    const auto affine = restructure::dbColumnarize(1u << 17, false);

    std::vector<std::function<Cycles()>> thunks;
    for (const DrxConfig &cfg : {base_cfg, no_loops, no_dbl}) {
        thunks.push_back([&mel, cfg] { return cyclesWith(mel, cfg, 1); });
        thunks.push_back([&text, cfg] { return cyclesWith(text, cfg, 3); });
        thunks.push_back([&db, cfg] { return cyclesWith(db, cfg, 2); });
    }
    thunks.push_back(
        [&dense, base_cfg] { return cyclesWith(dense, base_cfg, 1); });
    thunks.push_back(
        [&affine, base_cfg] { return cyclesWith(affine, base_cfg, 3); });
    const std::vector<Cycles> cyc =
        bench::runSweep<Cycles>(report, std::move(thunks));

    const Cycles mel_base = cyc[0];
    const Cycles text_base = cyc[1];
    const Cycles db_base = cyc[2];
    std::size_t cell = 0;
    auto add = [&](const std::string &name) {
        const Cycles mc = cyc[cell++];
        const Cycles tc = cyc[cell++];
        const Cycles dc = cyc[cell++];
        t.row({name, std::to_string(mc), std::to_string(tc),
               std::to_string(dc),
               Table::num(static_cast<double>(mc) / mel_base),
               Table::num(static_cast<double>(tc) / text_base),
               Table::num(static_cast<double>(dc) / db_base)});
    };
    report.metric("mel_base_cycles", static_cast<double>(mel_base));
    report.metric("text_base_cycles", static_cast<double>(text_base));
    report.metric("db_base_cycles", static_cast<double>(db_base));
    add("baseline (128 lanes, hw loops, dbl-buffer)");
    add("no Instruction Repeater (software loops)");
    add("no access/execute double buffering");
    t.print(std::cout);

    {
        const Cycles dense_cycles = cyc[cell++];
        Table b("Banded MatVec lowering (mel filter bank)");
        b.header({"lowering", "cycles", "vs banded"});
        b.row({"banded (compiler-detected)", std::to_string(mel_base),
               "1.00"});
        b.row({"dense fallback", std::to_string(dense_cycles),
               Table::num(static_cast<double>(dense_cycles) / mel_base)});
        b.print(std::cout);
    }

    // Affine strided lowering vs index-table gather.
    {
        const Cycles affine_cycles = cyc[cell++];
        Table g("Gather lowering (columnarization)");
        g.header({"lowering", "cycles", "note"});
        g.row({"affine strided streams (no index table)",
               std::to_string(affine_cycles), "identity row order"});
        g.row({"run-compressed index table", std::to_string(db_base),
               "hash-partitioned row order"});
        g.print(std::cout);
    }
    return report.write();
}
