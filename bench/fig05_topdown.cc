/**
 * @file
 * Figure 5: top-down characterization of the data-restructuring
 * operations on the host CPU - stall-category fractions plus the
 * L1I/L1D/L2 MPKI contrast the paper uses to motivate the DRX design
 * (small instruction working sets, streaming data that thrashes the
 * cache hierarchy).
 */

#include "apps/benchmarks.hh"
#include "bench/bench_util.hh"
#include "cpu/topdown.hh"

using namespace dmx;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig05_topdown");
    bench::banner("Figure 5 - top-down breakdown of restructuring ops",
                  "Sec. IV-A, Fig. 5");

    Table t("Fig 5: top-down cycle fractions (%)");
    t.header({"restructuring op", "retiring", "frontend", "bad-spec",
              "backend-core", "backend-mem", "backend total"});
    Table m("Cache behaviour (misses per kilo-instruction)");
    m.header({"restructuring op", "L1I MPKI", "L1D MPKI", "L2 MPKI"});

    const auto ops = apps::restructureSuite(32);
    std::vector<std::function<cpu::TopDownReport()>> thunks;
    for (const auto &nr : ops) {
        thunks.push_back([&nr] {
            cpu::TopDownParams params;
            params.branch_rate = nr.branch_rate;
            return cpu::characterize(nr.kernel, nr.input, params);
        });
    }
    const std::vector<cpu::TopDownReport> reports =
        bench::runSweep<cpu::TopDownReport>(report, std::move(thunks));

    std::vector<double> backend_pct, l1d_mpki;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto &nr = ops[i];
        const cpu::TopDownReport &rep = reports[i];
        t.row({nr.app, Table::num(100 * rep.retiring, 1),
               Table::num(100 * rep.frontend, 1),
               Table::num(100 * rep.bad_speculation, 1),
               Table::num(100 * rep.backend_core, 1),
               Table::num(100 * rep.backend_memory, 1),
               Table::num(100 * rep.backend(), 1)});
        m.row({nr.app, Table::num(rep.mpki.l1i, 1),
               Table::num(rep.mpki.l1d, 1), Table::num(rep.mpki.l2, 1)});
        backend_pct.push_back(100 * rep.backend());
        l1d_mpki.push_back(rep.mpki.l1d);
    }
    t.print(std::cout);
    m.print(std::cout);

    std::printf("Paper anchors: backend 53%%-77.6%%, bad speculation "
                "<=12.5%%, frontend <=14%%,\n"
                "L1I MPKI ~2.3 (vs CloudSuite 7.8), L1D MPKI 50-215, "
                "L2 MPKI 25-109.\n");
    report.metric("backend_pct_geomean", bench::geomean(backend_pct));
    report.metric("l1d_mpki_geomean", bench::geomean(l1d_mpki));
    return report.write();
}
