/**
 * @file
 * Figure 16: scaling beyond two kernels - the Personal Info Redaction
 * benchmark extended with a transformer NER kernel and its
 * reshape/typecast restructuring step. Paper: the baseline is still
 * dominated by data restructuring; DMX restores kernels to 93.7-97.2%
 * of the runtime and provides 1.9x-4.2x speedup for 1-15 apps.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig16_three_kernel");
    bench::banner("Figure 16 - three-kernel Personal Info Redaction+NER",
                  "Sec. VII-C, Fig. 16(a)/(b)");

    apps::SuiteParams params;
    const AppModel app = apps::buildPersonalInfoRedactionNer(params);

    Table t("Fig 16(a): runtime breakdown (%)");
    t.header({"apps", "config", "kernel %", "restructure %",
              "movement %", "latency (ms)"});
    Table s("Fig 16(b): DMX speedup");
    s.header({"apps", "speedup (x)", "paper"});
    const std::vector<std::string> paper{"1.9", "~2.5", "~3.3", "4.2"};

    std::vector<std::function<std::pair<RunStats, RunStats>()>> thunks;
    for (unsigned n : bench::concurrency_sweep) {
        thunks.push_back([&app, n] {
            return std::make_pair(
                bench::runHomogeneous(app, Placement::MultiAxl, n),
                bench::runHomogeneous(app, Placement::BumpInTheWire, n));
        });
    }
    const auto runs =
        bench::runSweep<std::pair<RunStats, RunStats>>(report,
                                                       std::move(thunks));

    for (std::size_t i = 0; i < bench::concurrency_sweep.size(); ++i) {
        const unsigned n = bench::concurrency_sweep[i];
        const RunStats &base = runs[i].first;
        const RunStats &dmx = runs[i].second;
        for (const auto &[name, st] :
             {std::pair<const char *, const RunStats &>{"multi-axl",
                                                        base},
              {"dmx", dmx}}) {
            const double tot = st.breakdown.total();
            t.row({std::to_string(n), name,
                   Table::num(100 * st.breakdown.kernel_ms / tot, 1),
                   Table::num(100 * st.breakdown.restructure_ms / tot, 1),
                   Table::num(100 * st.breakdown.movement_ms / tot, 1),
                   Table::num(st.avg_latency_ms)});
        }
        const double sp_x = base.avg_latency_ms / dmx.avg_latency_ms;
        report.metric("speedup_n" + std::to_string(n), sp_x);
        s.row({std::to_string(n), Table::num(sp_x), paper[i] + "x"});
    }
    t.print(std::cout);
    s.print(std::cout);

    std::printf("Paper: with DMX the kernels account for 97.2%% -> "
                "93.7%% of runtime for 1 -> 15 apps (data motion <5%%).\n");
    return report.write();
}
