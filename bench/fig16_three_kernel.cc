/**
 * @file
 * Figure 16: scaling beyond two kernels - the Personal Info Redaction
 * benchmark extended with a transformer NER kernel and its
 * reshape/typecast restructuring step. Paper: the baseline is still
 * dominated by data restructuring; DMX restores kernels to 93.7-97.2%
 * of the runtime and provides 1.9x-4.2x speedup for 1-15 apps.
 *
 * Two extra sections report descriptor-chained submission side by side
 * with the legacy per-hop driver loop on the same three-kernel app:
 * the closed loop under sys::ChainSubmission::Descriptor, and a
 * functional integrity::runChain over the NER restructure split into
 * DRX parts, where the fusion pass merges the affine typecast/
 * normalize parts but must leave the data-dependent gather unfused.
 */

#include <array>

#include "bench/bench_util.hh"
#include "fault/fault.hh"
#include "integrity/chain.hh"
#include "restructure/catalog.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

/** nerTokenRestructure split into DRX parts at stage boundaries. */
std::vector<restructure::Kernel>
splitNerParts(std::size_t len, std::size_t seq, std::size_t dim)
{
    const restructure::Kernel whole =
        restructure::nerTokenRestructure(len, seq, dim);
    std::vector<restructure::Kernel> parts;
    for (std::size_t s = 0; s < whole.stages.size(); ++s) {
        restructure::Kernel part;
        part.name = whole.name + "_p" + std::to_string(s);
        part.input = whole.descAfter(s);
        part.stages.push_back(whole.stages[s]);
        parts.push_back(std::move(part));
    }
    return parts;
}

/** Legacy / chained / chained+fused runs of the split-NER chain. */
std::array<integrity::ChainReport, 3>
nerChainTriple()
{
    std::array<integrity::ChainReport, 3> out;
    const struct
    {
        integrity::ChainMode mode;
        bool fuse;
    } variants[3] = {
        {integrity::ChainMode::PerHop, false},
        {integrity::ChainMode::Descriptor, false},
        {integrity::ChainMode::Descriptor, true},
    };
    const auto parts = splitNerParts(256, 16, 32);
    runtime::Bytes input(parts.front().input.bytes());
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<std::uint8_t>(i * 31 + 7);

    for (int v = 0; v < 3; ++v) {
        runtime::Platform plat;
        // Zero-probability fault plan: completion interrupts are
        // modeled, so eliminated round trips show in the makespan.
        fault::FaultPlan fp;
        plat.setFaultPlan(&fp);
        const auto d0 = plat.addDrx("drx0", {});
        const auto d1 = plat.addDrx("drx1", {});
        std::vector<integrity::ChainStage> chain;
        for (std::size_t s = 0; s < parts.size(); ++s) {
            integrity::ChainStage st;
            // The gather reshape runs alone; the affine typecast +
            // normalize parts share a device, so only they can fuse.
            st.device = s == 0 ? d0 : d1;
            st.kernel = parts[s];
            chain.push_back(st);
        }
        integrity::ChainConfig cfg;
        cfg.mode = variants[v].mode;
        cfg.fuse = variants[v].fuse;
        out[v] = integrity::runChain(plat, chain, input, cfg);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig16_three_kernel");
    bench::banner("Figure 16 - three-kernel Personal Info Redaction+NER",
                  "Sec. VII-C, Fig. 16(a)/(b)");

    apps::SuiteParams params;
    const AppModel app = apps::buildPersonalInfoRedactionNer(params);

    Table t("Fig 16(a): runtime breakdown (%)");
    t.header({"apps", "config", "kernel %", "restructure %",
              "movement %", "latency (ms)"});
    Table s("Fig 16(b): DMX speedup");
    s.header({"apps", "speedup (x)", "paper"});
    const std::vector<std::string> paper{"1.9", "~2.5", "~3.3", "4.2"};

    std::vector<std::function<std::pair<RunStats, RunStats>()>> thunks;
    for (unsigned n : bench::concurrency_sweep) {
        thunks.push_back([&app, n] {
            return std::make_pair(
                bench::runHomogeneous(app, Placement::MultiAxl, n),
                bench::runHomogeneous(app, Placement::BumpInTheWire, n));
        });
    }
    const auto runs =
        bench::runSweep<std::pair<RunStats, RunStats>>(report,
                                                       std::move(thunks));

    for (std::size_t i = 0; i < bench::concurrency_sweep.size(); ++i) {
        const unsigned n = bench::concurrency_sweep[i];
        const RunStats &base = runs[i].first;
        const RunStats &dmx = runs[i].second;
        for (const auto &[name, st] :
             {std::pair<const char *, const RunStats &>{"multi-axl",
                                                        base},
              {"dmx", dmx}}) {
            const double tot = st.breakdown.total();
            t.row({std::to_string(n), name,
                   Table::num(100 * st.breakdown.kernel_ms / tot, 1),
                   Table::num(100 * st.breakdown.restructure_ms / tot, 1),
                   Table::num(100 * st.breakdown.movement_ms / tot, 1),
                   Table::num(st.avg_latency_ms)});
        }
        const double sp_x = base.avg_latency_ms / dmx.avg_latency_ms;
        report.metric("speedup_n" + std::to_string(n), sp_x);
        s.row({std::to_string(n), Table::num(sp_x), paper[i] + "x"});
    }
    t.print(std::cout);
    s.print(std::cout);

    std::printf("Paper: with DMX the kernels account for 97.2%% -> "
                "93.7%% of runtime for 1 -> 15 apps (data motion <5%%).\n\n");

    // -- Descriptor-chained closed loop vs per-hop driver loop -------
    Table c("Descriptor chaining (dmx placement)");
    c.header({"apps", "per-hop (ms)", "chained (ms)", "per-hop trips",
              "chained trips", "desc fetches"});
    std::vector<std::function<RunStats()>> cthunks;
    for (unsigned n : bench::concurrency_sweep) {
        cthunks.push_back([&app, n] {
            SystemConfig cfg;
            cfg.placement = Placement::BumpInTheWire;
            cfg.n_apps = n;
            cfg.chain = ChainSubmission::Descriptor;
            return simulateSystem(cfg, {app});
        });
    }
    const auto chained =
        bench::runSweep<RunStats>(report, std::move(cthunks));
    for (std::size_t i = 0; i < bench::concurrency_sweep.size(); ++i) {
        const std::string n =
            std::to_string(bench::concurrency_sweep[i]);
        const RunStats &legacy = runs[i].second; // per-hop dmx run above
        const RunStats &ch = chained[i];
        report.metric("legacy_makespan_n" + n, legacy.makespan_ms);
        report.metric("chained_makespan_n" + n, ch.makespan_ms);
        report.metric("legacy_trips_n" + n,
                      static_cast<double>(legacy.driver_round_trips));
        report.metric("chained_trips_n" + n,
                      static_cast<double>(ch.driver_round_trips));
        c.row({n, Table::num(legacy.makespan_ms),
               Table::num(ch.makespan_ms),
               std::to_string(legacy.driver_round_trips),
               std::to_string(ch.driver_round_trips),
               std::to_string(ch.descriptor_fetches)});
    }
    c.print(std::cout);

    // -- Split NER restructure: legacy vs chained vs fused -----------
    const auto triple = nerChainTriple();
    const auto &[rt_legacy, rt_chained, rt_fused] = triple;
    Table r("integrity::runChain: split NER restructure (3 DRX parts)");
    r.header({"variant", "makespan ticks", "round trips",
              "fused stages saved"});
    const char *names[3] = {"legacy", "chained", "chained+fused"};
    const integrity::ChainReport *reps[3] = {&rt_legacy, &rt_chained,
                                             &rt_fused};
    for (int v = 0; v < 3; ++v) {
        r.row({names[v], std::to_string(reps[v]->makespan),
               std::to_string(reps[v]->round_trips),
               std::to_string(reps[v]->fused_stages)});
    }
    r.print(std::cout);
    report.metric("ner_legacy_ticks",
                  static_cast<double>(rt_legacy.makespan));
    report.metric("ner_chained_ticks",
                  static_cast<double>(rt_chained.makespan));
    report.metric("ner_fused_ticks",
                  static_cast<double>(rt_fused.makespan));
    report.metric("ner_legacy_trips",
                  static_cast<double>(rt_legacy.round_trips));
    report.metric("ner_chained_trips",
                  static_cast<double>(rt_chained.round_trips));
    report.metric("ner_fused_stages",
                  static_cast<double>(rt_fused.fused_stages));

    std::printf("The fusion pass merges the affine typecast+normalize "
                "parts into one compiled plan; the data-dependent\n"
                "gather reshape is legality-rejected and runs "
                "standalone (outputs stay byte-identical throughout).\n");
    return report.write();
}
