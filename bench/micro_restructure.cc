/**
 * @file
 * google-benchmark micro-benchmarks of the restructuring stack:
 * host-side throughput of the CPU reference executor and the DRX
 * functional simulator per catalog kernel. Simulated DRX cycles are
 * exported as counters so regressions in the *timing model* (not just
 * the host implementation) are visible.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "common/random.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"

using namespace dmx;

namespace
{

restructure::Bytes
inputFor(const restructure::Kernel &k, std::uint64_t seed)
{
    Rng rng(seed);
    restructure::Bytes out(k.input.bytes());
    if (k.input.dtype == DType::F32) {
        for (std::size_t i = 0; i < k.input.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1, 1));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

restructure::Kernel
kernelByIndex(int which)
{
    switch (which) {
      case 0: return restructure::melSpectrogram(128, 513, 128);
      case 1: return restructure::videoFrameRestructure(768, 1024, 256);
      case 2: return restructure::brainSignalRestructure(128, 513, 64);
      case 3:
        return restructure::textRecordRestructure(256 * 1024, 256, 320);
      default: return restructure::dbColumnarize(1u << 15, true);
    }
}

void
BM_CpuExecutor(benchmark::State &state)
{
    const auto kernel = kernelByIndex(static_cast<int>(state.range(0)));
    const auto input = inputFor(kernel, 7);
    for (auto _ : state) {
        auto out = restructure::executeOnCpu(kernel, input);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
    state.SetLabel(kernel.name);
}

void
BM_DrxSimulator(benchmark::State &state)
{
    const auto kernel = kernelByIndex(static_cast<int>(state.range(0)));
    const auto input = inputFor(kernel, 7);
    drx::RunResult last{};
    for (auto _ : state) {
        drx::DrxMachine machine;
        last = drx::runKernelOnDrx(kernel, input, machine);
        benchmark::DoNotOptimize(last.total_cycles);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
    state.counters["sim_cycles"] =
        static_cast<double>(last.total_cycles);
    state.counters["sim_us_at_1GHz"] =
        static_cast<double>(last.total_cycles) / 1e3;
    state.SetLabel(kernel.name);
}

/**
 * The same timing-only workload through the compiled-kernel cache: one
 * machine, the plan compiled once and the shape-deterministic kernels'
 * timing replayed from the memo. The sim_cycles counter must match
 * BM_DrxSimulator exactly.
 */
void
BM_DrxSimulatorCached(benchmark::State &state)
{
    const auto kernel = kernelByIndex(static_cast<int>(state.range(0)));
    const auto input = inputFor(kernel, 7);
    drx::ProgramCache cache;
    drx::DrxMachine machine;
    drx::RunResult last{};
    for (auto _ : state) {
        machine.resetAlloc();
        last = drx::runKernelOnDrxCached(kernel, input, machine,
                                         nullptr, 0, &cache);
        benchmark::DoNotOptimize(last.total_cycles);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
    state.counters["sim_cycles"] =
        static_cast<double>(last.total_cycles);
    state.counters["cache_hits"] =
        static_cast<double>(cache.counters().compile_hits);
    state.SetLabel(kernel.name);
}

/**
 * The DRX micro-op interpreter hot loop in isolation: one machine
 * reused across iterations (resetAlloc instead of re-constructing the
 * modelled DRAM every time, which dominates BM_DrxSimulator), no
 * compiled-kernel cache. This is the arm the CI perf-smoke gates: the
 * same binary runs with DMX_NO_SIMD_DRX=1 for the scalar reference
 * loops and unset for the vectorized ones - outputs and simulated
 * cycles are byte-identical across the two, wall-clock is not.
 */
void
BM_DrxInterpreterHot(benchmark::State &state)
{
    const auto kernel = kernelByIndex(static_cast<int>(state.range(0)));
    const auto input = inputFor(kernel, 7);
    drx::DrxMachine machine;
    drx::RunResult last{};
    for (auto _ : state) {
        machine.resetAlloc();
        last = drx::runKernelOnDrx(kernel, input, machine);
        benchmark::DoNotOptimize(last.total_cycles);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(input.size()));
    state.counters["sim_cycles"] =
        static_cast<double>(last.total_cycles);
    state.counters["simd"] = drx::simdEnabled() ? 1.0 : 0.0;
    state.SetLabel(kernel.name);
}

} // namespace

BENCHMARK(BM_CpuExecutor)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DrxSimulator)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DrxSimulatorCached)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DrxInterpreterHot)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
