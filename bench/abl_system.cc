/**
 * @file
 * System-level ablations:
 *  - driver notification policy: pure interrupts vs NAPI-style
 *    adaptive switching vs pure polling;
 *  - DRX data-queue pair sizing vs the number of supportable
 *    accelerators (Sec. V provisioning math).
 */

#include "bench/bench_util.hh"
#include "driver/queues.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "abl_system");
    bench::banner("System ablations - notification policy and queues",
                  "Sec. V (drivers, NAPI, queue provisioning)");

    Table t("Notification policy vs DMX latency (10 apps, BitW)");
    t.header({"policy", "geomean latency (ms)", "interrupts", "polls"});
    struct Policy
    {
        const char *name;
        double threshold_hz;
    };
    const std::vector<Policy> policies{
        Policy{"always interrupt", 1e18},
        Policy{"NAPI adaptive (default)", 50e3},
        Policy{"always poll", 0.0}};
    std::vector<std::function<RunStats()>> thunks;
    for (const Policy &pol : policies) {
        for (const auto &app : bench::suite()) {
            thunks.push_back([&app, threshold = pol.threshold_hz] {
                SystemConfig cfg;
                cfg.n_apps = 10;
                cfg.placement = Placement::BumpInTheWire;
                cfg.irq.polling_threshold_hz = threshold;
                return simulateSystem(cfg, {app});
            });
        }
    }
    const std::vector<RunStats> runs =
        bench::runSweep<RunStats>(report, std::move(thunks));

    std::size_t cell = 0;
    for (const Policy &pol : policies) {
        std::vector<double> lat;
        std::uint64_t irqs = 0, polls = 0;
        for (std::size_t a = 0; a < bench::suite().size(); ++a) {
            const RunStats &s = runs[cell++];
            lat.push_back(s.avg_latency_ms);
            irqs += s.interrupts;
            polls += s.polls;
        }
        const double g = bench::geomean(lat);
        if (pol.threshold_hz == 50e3)
            report.metric("napi_latency_ms_geomean", g);
        t.row({pol.name, Table::num(g), std::to_string(irqs),
               std::to_string(polls)});
    }
    t.print(std::cout);

    Table q("Queue-pair sizing vs supportable accelerators "
            "(8 GB DRX queue memory)");
    q.header({"pair size", "max accelerators", "paper"});
    for (std::uint64_t pair_mb : {25ull, 50ull, 100ull, 200ull, 400ull}) {
        q.row({std::to_string(pair_mb) + " MB",
               std::to_string(driver::DrxQueues::maxPeers(
                   8ull * gib, pair_mb * mib)),
               pair_mb == 100 ? "40 accelerators (Sec. V)" : ""});
    }
    q.print(std::cout);
    return report.write();
}
