/**
 * @file
 * google-benchmark micro-benchmarks of the simulation substrate:
 * event-queue scheduling throughput and PCIe-fabric flow simulation
 * (max-min rate re-solving) at varying contention levels.
 */

#include <benchmark/benchmark.h>

#include "pcie/fabric.hh"
#include "sim/eventq.hh"

using namespace dmx;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            eq.schedule(static_cast<Tick>((i * 2654435761u) % 1000000),
                        [&sum] { ++sum; });
        }
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}

void
BM_FabricConcurrentFlows(benchmark::State &state)
{
    const auto flows = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        pcie::Fabric fab(eq, "fab");
        const auto rc = fab.addNode(pcie::NodeKind::RootComplex, "rc");
        const auto sw = fab.addNode(pcie::NodeKind::Switch, "sw");
        fab.connect(rc, sw, pcie::Generation::Gen3, 8);
        std::vector<pcie::NodeId> eps;
        for (unsigned i = 0; i < flows; ++i) {
            eps.push_back(fab.addNode(pcie::NodeKind::EndPoint,
                                      "ep" + std::to_string(i)));
            fab.connect(sw, eps.back(), pcie::Generation::Gen3, 16);
        }
        unsigned done = 0;
        for (unsigned i = 0; i < flows; ++i)
            fab.startFlow(eps[i], rc, 1 * mib, [&done] { ++done; });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * flows);
}

/**
 * Many independent flows completing at staggered times: the workload
 * that exposed the quadratic completion re-scan (every completion used
 * to walk every remaining flow). The optimized engine visits only the
 * epsilon-crossing reap candidates; tests/test_core_equiv.cc pins the
 * linear scaling via Fabric::settleVisits(), this pins the wall-clock.
 */
void
BM_FabricStaggeredSettle(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        pcie::Fabric fab(eq, "settle");
        std::vector<std::pair<pcie::NodeId, pcie::NodeId>> pairs;
        for (unsigned i = 0; i < n; ++i) {
            const auto a = fab.addNode(pcie::NodeKind::EndPoint,
                                       "a" + std::to_string(i));
            const auto b = fab.addNode(pcie::NodeKind::EndPoint,
                                       "b" + std::to_string(i));
            fab.connectCustom(a, b, 1e9);
            pairs.emplace_back(a, b);
        }
        unsigned done = 0;
        for (unsigned i = 0; i < n; ++i) {
            fab.startFlow(pairs[i].first, pairs[i].second,
                          (i + 1) * 64 * kib, [&done] { ++done; });
        }
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n);
}

} // namespace

BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FabricConcurrentFlows)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_FabricStaggeredSettle)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
