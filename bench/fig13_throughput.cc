/**
 * @file
 * Figure 13: throughput improvement of DMX over Multi-Axl assuming
 * back-to-back requests through the three-stage pipeline (kernel-1,
 * data motion, kernel-2): throughput = 1 / slowest-stage latency, the
 * paper's own methodology. Paper: 3.0x (1 app) to 13.6x (15 apps);
 * Personal Info Redaction lowest (regex accelerator bound).
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig13_throughput");
    bench::banner("Figure 13 - throughput improvement",
                  "Sec. VII-A, Fig. 13");

    Table t("Fig 13: throughput improvement (x) vs concurrent instances");
    t.header({"benchmark", "1", "5", "10", "15"});
    std::vector<std::function<double()>> thunks;
    for (const auto &app : bench::suite()) {
        for (unsigned n : bench::concurrency_sweep) {
            thunks.push_back([&app, n] {
                const double base =
                    bench::runHomogeneous(app, Placement::MultiAxl, n)
                        .avg_throughput_rps;
                const double dmx =
                    bench::runHomogeneous(app, Placement::BumpInTheWire, n)
                        .avg_throughput_rps;
                return dmx / base;
            });
        }
    }
    const std::vector<double> gains =
        bench::runSweep<double>(report, std::move(thunks));

    std::vector<std::vector<double>> per_n(bench::concurrency_sweep.size());
    std::size_t cell = 0;
    for (const auto &app : bench::suite()) {
        std::vector<std::string> row{app.name};
        for (std::size_t i = 0; i < bench::concurrency_sweep.size(); ++i) {
            const double g = gains[cell++];
            per_n[i].push_back(g);
            row.push_back(Table::num(g));
        }
        t.row(std::move(row));
    }
    std::vector<std::string> gm{"GEOMEAN"};
    for (std::size_t i = 0; i < per_n.size(); ++i) {
        const double g = bench::geomean(per_n[i]);
        gm.push_back(Table::num(g));
        report.metric("throughput_gain_geomean_n" +
                          std::to_string(bench::concurrency_sweep[i]),
                      g);
    }
    t.row(std::move(gm));
    t.print(std::cout);

    std::printf("Paper: 3.0x (1 app) -> 13.6x (15 apps) average; "
                "throughput gains exceed the latency gains because the\n"
                "CPU restructuring stage bottlenecks the baseline "
                "pipeline.\n");
    return report.write();
}
