/**
 * @file
 * Figure 17: one-to-many (broadcast) and many-to-one (all-reduce) data
 * movement with 4-32 accelerators. Paper: DMX reaches 3.7x-5.2x on
 * broadcast and 5.1x-10.5x on all-reduce, growing with the number of
 * accelerators (all-reduce gains more: more DMA transfers and
 * restructuring to accelerate).
 */

#include "bench/bench_util.hh"
#include "sys/collectives.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig17_collectives");
    bench::banner("Figure 17 - broadcast and all-reduce collectives",
                  "Sec. VII-C, Fig. 17");

    Table t("Fig 17: collective latency, baseline vs DMX");
    t.header({"accels", "collective", "baseline (ms)", "dmx (ms)",
              "speedup (x)"});
    const std::vector<unsigned> accels{4u, 8u, 16u, 32u};
    std::vector<std::function<std::pair<CollectiveResult,
                                        CollectiveResult>()>> thunks;
    for (unsigned n : accels) {
        thunks.push_back([n] {
            CollectiveConfig cfg;
            cfg.n_accels = n;
            return std::make_pair(simulateBroadcast(cfg),
                                  simulateAllReduce(cfg));
        });
    }
    const auto runs =
        bench::runSweep<std::pair<CollectiveResult, CollectiveResult>>(
            report, std::move(thunks));

    for (std::size_t i = 0; i < accels.size(); ++i) {
        const unsigned n = accels[i];
        const CollectiveResult &bc = runs[i].first;
        t.row({std::to_string(n), "broadcast",
               Table::num(bc.baseline_ms), Table::num(bc.dmx_ms),
               Table::num(bc.speedup())});
        report.metric("broadcast_speedup_n" + std::to_string(n),
                      bc.speedup());
        const CollectiveResult &ar = runs[i].second;
        t.row({std::to_string(n), "all-reduce",
               Table::num(ar.baseline_ms), Table::num(ar.dmx_ms),
               Table::num(ar.speedup())});
        report.metric("allreduce_speedup_n" + std::to_string(n),
                      ar.speedup());
    }
    t.print(std::cout);

    std::printf("Paper: broadcast 3.7x-5.2x, all-reduce 5.1x-10.5x over "
                "4-32 accelerators; all-reduce gains more because it\n"
                "involves more DMA transfers and restructuring (the "
                "destination DRX performs the summation).\n");
    return report.write();
}
