/**
 * @file
 * Figure 19: impact of the PCIe generation on the Bump-in-the-Wire
 * speedup. Paper: Gen4/Gen5 slightly *decrease* the relative speedup -
 * the baseline benefits more from the extra bandwidth (it is more
 * contended, and newer-generation CPUs also provide wider uplinks),
 * while the DRX side is already pinned by its single DDR4 channel.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig19_pcie_gen");
    bench::banner("Figure 19 - PCIe generation sensitivity",
                  "Sec. VII-C, Fig. 19");

    Table t("Fig 19: DMX speedup and movement latency by PCIe generation"
            " (10 apps)");
    t.header({"generation", "geomean speedup (x)",
              "baseline movement (ms)", "dmx movement (ms)"});
    const std::vector<pcie::Generation> gens{pcie::Generation::Gen3,
                                             pcie::Generation::Gen4,
                                             pcie::Generation::Gen5};
    std::vector<std::function<std::pair<RunStats, RunStats>()>> thunks;
    for (pcie::Generation gen : gens) {
        for (const auto &app : bench::suite()) {
            thunks.push_back([&app, gen] {
                return std::make_pair(
                    bench::runHomogeneous(app, Placement::MultiAxl, 10,
                                          gen),
                    bench::runHomogeneous(app, Placement::BumpInTheWire,
                                          10, gen));
            });
        }
    }
    const auto runs = bench::runSweep<std::pair<RunStats, RunStats>>(
        report, std::move(thunks));

    std::size_t cell = 0;
    for (pcie::Generation gen : gens) {
        std::vector<double> sp, bm, dm;
        for (std::size_t a = 0; a < bench::suite().size(); ++a) {
            const RunStats &base = runs[cell].first;
            const RunStats &dmx = runs[cell].second;
            ++cell;
            sp.push_back(base.avg_latency_ms / dmx.avg_latency_ms);
            bm.push_back(base.breakdown.movement_ms);
            dm.push_back(dmx.breakdown.movement_ms);
        }
        const double g = bench::geomean(sp);
        report.metric("speedup_" + toString(gen), g);
        t.row({toString(gen), Table::num(g),
               Table::num(bench::geomean(bm)),
               Table::num(bench::geomean(dm))});
    }
    t.print(std::cout);

    std::printf("Paper: slight speedup decrease with Gen4/Gen5; only the "
                "data-movement component changes, and the baseline\n"
                "improves more (wider uplinks + relief of its bandwidth "
                "contention).\n");
    return report.write();
}
