/**
 * @file
 * Figure 19: impact of the PCIe generation on the Bump-in-the-Wire
 * speedup. Paper: Gen4/Gen5 slightly *decrease* the relative speedup -
 * the baseline benefits more from the extra bandwidth (it is more
 * contended, and newer-generation CPUs also provide wider uplinks),
 * while the DRX side is already pinned by its single DDR4 channel.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig19_pcie_gen");
    bench::banner("Figure 19 - PCIe generation sensitivity",
                  "Sec. VII-C, Fig. 19");

    Table t("Fig 19: DMX speedup and movement latency by PCIe generation"
            " (10 apps)");
    t.header({"generation", "geomean speedup (x)",
              "baseline movement (ms)", "dmx movement (ms)"});
    for (pcie::Generation gen :
         {pcie::Generation::Gen3, pcie::Generation::Gen4,
          pcie::Generation::Gen5}) {
        std::vector<double> sp, bm, dm;
        for (const auto &app : bench::suite()) {
            const RunStats base = bench::runHomogeneous(
                app, Placement::MultiAxl, 10, gen);
            const RunStats dmx = bench::runHomogeneous(
                app, Placement::BumpInTheWire, 10, gen);
            sp.push_back(base.avg_latency_ms / dmx.avg_latency_ms);
            bm.push_back(base.breakdown.movement_ms);
            dm.push_back(dmx.breakdown.movement_ms);
        }
        const double g = bench::geomean(sp);
        report.metric("speedup_" + toString(gen), g);
        t.row({toString(gen), Table::num(g),
               Table::num(bench::geomean(bm)),
               Table::num(bench::geomean(dm))});
    }
    t.print(std::cout);

    std::printf("Paper: slight speedup decrease with Gen4/Gen5; only the "
                "data-movement component changes, and the baseline\n"
                "improves more (wider uplinks + relief of its bandwidth "
                "contention).\n");
    return report.write();
}
