/**
 * @file
 * Figure 12: runtime breakdown of the Multi-Axl baseline (a) and DMX
 * (b) across kernels / data restructuring / data movement, for 1-15
 * concurrent applications. Paper: restructuring is 55.7%-71.7% of the
 * baseline and shrinks to 7.2%-17.0% under DMX.
 */

#include <array>

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig12_breakdown");
    bench::banner("Figure 12 - runtime breakdown Multi-Axl vs DMX",
                  "Sec. VII-A, Fig. 12(a)/(b)");

    const std::array<Placement, 2> placements{Placement::MultiAxl,
                                              Placement::BumpInTheWire};
    std::vector<std::function<RunStats()>> thunks;
    for (Placement p : placements) {
        for (unsigned n : bench::concurrency_sweep) {
            for (const auto &app : bench::suite()) {
                thunks.push_back(
                    [&app, p, n] { return bench::runHomogeneous(app, p, n); });
            }
        }
    }
    const std::vector<RunStats> runs =
        bench::runSweep<RunStats>(report, std::move(thunks));

    std::size_t cell = 0;
    for (Placement p : placements) {
        Table t(p == Placement::MultiAxl
                    ? "Fig 12(a): Multi-Axl baseline breakdown (%)"
                    : "Fig 12(b): DMX breakdown (%)");
        t.header({"apps", "kernel %", "restructure %", "movement %",
                  "avg latency (ms)"});
        for (unsigned n : bench::concurrency_sweep) {
            std::vector<double> ks, rs, ms, lat;
            for (std::size_t a = 0; a < bench::suite().size(); ++a) {
                const RunStats &s = runs[cell++];
                const double tot = s.breakdown.total();
                ks.push_back(100 * s.breakdown.kernel_ms / tot);
                rs.push_back(100 * s.breakdown.restructure_ms / tot);
                ms.push_back(100 * s.breakdown.movement_ms / tot);
                lat.push_back(s.avg_latency_ms);
            }
            // Arithmetic mean of shares across apps (they sum to 100).
            auto mean = [](const std::vector<double> &v) {
                double sum = 0;
                for (double x : v)
                    sum += x;
                return sum / static_cast<double>(v.size());
            };
            t.row({std::to_string(n), Table::num(mean(ks), 1),
                   Table::num(mean(rs), 1), Table::num(mean(ms), 1),
                   Table::num(mean(lat), 2)});
            const std::string tag =
                p == Placement::MultiAxl ? "multiaxl" : "dmx";
            report.metric(tag + "_restructure_pct_n" + std::to_string(n),
                          mean(rs));
            report.metric(tag + "_latency_ms_n" + std::to_string(n),
                          mean(lat));
        }
        t.print(std::cout);
    }

    std::printf("Paper: baseline restructuring share 66.8 / 55.7 / 64.7 "
                "/ 71.7 %% for 1/5/10/15 apps;\n"
                "DMX restructuring share 17.0 / 15.3 / 13.5 / 7.2 %%.\n");
    return report.write();
}
