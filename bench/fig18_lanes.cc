/**
 * @file
 * Figure 18: sensitivity of DMX speedup to the number of Restructuring
 * Engine lanes (32-256). Paper: speedup improves up to 128 lanes and
 * saturates beyond (data-level parallelism exhausted / memory bound),
 * which is why 128 lanes is the default DRX configuration.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig18_lanes");
    bench::banner("Figure 18 - RE lane-count sweep",
                  "Sec. VII-C, Fig. 18");

    // The sweep runs on the 250 MHz FPGA prototype (as the paper's
    // sensitivity study does): at that clock the DDR channel supplies
    // ~100 B/cycle, so the Restructuring Engines - not memory - bound
    // the kernels until the lane count saturates the parallelism.
    Table t("Fig 18: DMX speedup over Multi-Axl vs RE lanes "
            "(5 apps, 250 MHz FPGA DRX)");
    t.header({"lanes", "geomean speedup (x)", "drx restructure ms "
                                              "(geomean)"});
    const std::vector<unsigned> lane_sweep{32u, 64u, 128u, 256u};
    struct LanePoint
    {
        std::vector<double> sp, drx_ms;
    };
    std::vector<std::function<LanePoint()>> thunks;
    for (unsigned lanes : lane_sweep) {
        thunks.push_back([lanes] {
            apps::SuiteParams params;
            params.drx.lanes = lanes;
            params.drx.freq_hz = 250e6;
            const auto suite = apps::standardSuite(params);

            LanePoint pt;
            for (const auto &app : suite) {
                SystemConfig cfg;
                cfg.n_apps = 5;
                cfg.drx.lanes = lanes;
                cfg.drx.freq_hz = 250e6;
                cfg.placement = Placement::MultiAxl;
                const double base =
                    simulateSystem(cfg, {app}).avg_latency_ms;
                cfg.placement = Placement::BumpInTheWire;
                const RunStats d = simulateSystem(cfg, {app});
                pt.sp.push_back(base / d.avg_latency_ms);
                pt.drx_ms.push_back(
                    static_cast<double>(app.motions[0].drx_cycles) /
                    250e6 * 1e3);
            }
            return pt;
        });
    }
    const std::vector<LanePoint> points =
        bench::runSweep<LanePoint>(report, std::move(thunks));

    for (std::size_t i = 0; i < lane_sweep.size(); ++i) {
        const unsigned lanes = lane_sweep[i];
        const std::vector<double> &sp = points[i].sp;
        const std::vector<double> &drx_ms = points[i].drx_ms;
        const double g = bench::geomean(sp);
        report.metric("speedup_lanes" + std::to_string(lanes), g);
        t.row({std::to_string(lanes), Table::num(g),
               Table::num(bench::geomean(drx_ms))});
    }
    t.print(std::cout);

    std::printf("Paper: speedup grows to 128 lanes and flattens at 256 "
                "-> 128 lanes is the default configuration.\n");
    return report.write();
}
