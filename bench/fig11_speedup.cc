/**
 * @file
 * Figure 11: end-to-end latency speedup of DMX (Bump-in-the-Wire DRX)
 * over the Multi-Axl baseline, per benchmark, for 1-15 concurrent
 * application instances. Paper: 3.5x (1 app) to 8.2x (15 apps) on
 * average, lowest for Video Surveillance, highest for Database Hash
 * Join at scale.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig11_speedup");
    bench::banner("Figure 11 - DMX end-to-end speedup over Multi-Axl",
                  "Sec. VII-A, Fig. 11");

    Table t("Fig 11: latency speedup (x) vs concurrent instances");
    t.header({"benchmark", "1", "5", "10", "15"});
    std::vector<std::function<double()>> thunks;
    for (const auto &app : bench::suite()) {
        for (unsigned n : bench::concurrency_sweep) {
            thunks.push_back([&app, n] {
                const double base =
                    bench::runHomogeneous(app, Placement::MultiAxl, n)
                        .avg_latency_ms;
                const double dmx =
                    bench::runHomogeneous(app, Placement::BumpInTheWire, n)
                        .avg_latency_ms;
                return base / dmx;
            });
        }
    }
    const std::vector<double> speedups =
        bench::runSweep<double>(report, std::move(thunks));

    std::vector<std::vector<double>> per_n(bench::concurrency_sweep.size());
    std::size_t cell = 0;
    for (const auto &app : bench::suite()) {
        std::vector<std::string> row{app.name};
        for (std::size_t i = 0; i < bench::concurrency_sweep.size(); ++i) {
            const double s = speedups[cell++];
            per_n[i].push_back(s);
            row.push_back(Table::num(s));
        }
        t.row(std::move(row));
    }
    std::vector<std::string> gm{"GEOMEAN"};
    for (std::size_t i = 0; i < per_n.size(); ++i) {
        const double g = bench::geomean(per_n[i]);
        gm.push_back(Table::num(g));
        report.metric("speedup_geomean_n" +
                          std::to_string(bench::concurrency_sweep[i]),
                      g);
    }
    t.row(std::move(gm));
    t.print(std::cout);

    std::printf("Paper: average speedup 3.5x (1 app) -> 8.2x (15 apps); "
                "Video Surveillance lowest, Database Hash Join highest.\n");
    return report.write();
}
