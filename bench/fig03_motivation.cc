/**
 * @file
 * Figure 3: the case for data motion acceleration.
 *  (a) runtime breakdown of All-CPU and Multi-Axl for 1-15 concurrent
 *      applications (geomean over the five benchmarks);
 *  (b) end-to-end Multi-Axl speedup over All-CPU versus the per-kernel
 *      accelerator speedup (paper: 1.4x / 1.1x end-to-end despite a
 *      6.5x per-kernel geomean).
 */

#include <array>

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig03_motivation");
    bench::banner("Figure 3 - data motion overhead motivation",
                  "Sec. II-B, Fig. 3(a) and 3(b)");

    Table a("Fig 3(a): runtime breakdown (geomean shares across apps)");
    a.header({"apps", "config", "kernel %", "restructure %",
              "movement %"});
    const std::array<Placement, 2> configs{Placement::AllCpu,
                                           Placement::MultiAxl};
    std::vector<std::function<RunStats()>> thunks;
    for (unsigned n : bench::concurrency_sweep) {
        for (Placement p : configs) {
            for (const auto &app : bench::suite()) {
                thunks.push_back(
                    [&app, p, n] { return bench::runHomogeneous(app, p, n); });
            }
        }
    }
    const std::vector<RunStats> runs =
        bench::runSweep<RunStats>(report, std::move(thunks));

    std::size_t cell = 0;
    for (unsigned n : bench::concurrency_sweep) {
        for (Placement p : configs) {
            std::vector<double> ks, rs, ms;
            for (std::size_t i = 0; i < bench::suite().size(); ++i) {
                const RunStats &s = runs[cell++];
                const double tot = s.breakdown.total();
                ks.push_back(100.0 * s.breakdown.kernel_ms / tot);
                rs.push_back(100.0 * s.breakdown.restructure_ms / tot);
                ms.push_back(
                    std::max(1e-3, 100.0 * s.breakdown.movement_ms / tot));
            }
            a.row({std::to_string(n), toString(p),
                   Table::num(bench::geomean(ks), 1),
                   Table::num(bench::geomean(rs), 1),
                   Table::num(bench::geomean(ms), 1)});
        }
    }
    a.print(std::cout);

    Table b("Fig 3(b): end-to-end vs per-kernel acceleration");
    b.header({"metric", "measured", "paper"});
    cpu::HostParams host;
    std::vector<double> per_kernel;
    for (const auto &app : bench::suite()) {
        for (const auto &k : app.kernels) {
            const double cores = k.max_host_cores > 0 ? k.max_host_cores
                                                      : host.max_job_cores;
            per_kernel.push_back(
                (k.cpu_core_seconds / cores) /
                (static_cast<double>(k.accel_cycles) / k.accel_freq_hz));
        }
    }
    const std::array<unsigned, 2> e2e_sweep{1u, 10u};
    std::vector<std::function<double()>> e2e_thunks;
    for (unsigned n : e2e_sweep) {
        for (const auto &app : bench::suite()) {
            e2e_thunks.push_back([&app, n] {
                const double all_cpu =
                    bench::runHomogeneous(app, Placement::AllCpu, n)
                        .avg_latency_ms;
                const double multi =
                    bench::runHomogeneous(app, Placement::MultiAxl, n)
                        .avg_latency_ms;
                return all_cpu / multi;
            });
        }
    }
    const std::vector<double> e2e_sp =
        bench::runSweep<double>(report, std::move(e2e_thunks));
    auto e2e = [&](std::size_t which) {
        const std::size_t apps_n = bench::suite().size();
        const std::vector<double> sp(
            e2e_sp.begin() + static_cast<std::ptrdiff_t>(which * apps_n),
            e2e_sp.begin() +
                static_cast<std::ptrdiff_t>((which + 1) * apps_n));
        return bench::geomean(sp);
    };
    const double pk = bench::geomean(per_kernel);
    const double e1 = e2e(0);
    const double e10 = e2e(1);
    b.row({"per-kernel accel speedup (geomean)", Table::num(pk),
           "6.5x"});
    b.row({"end-to-end speedup, 1 app", Table::num(e1), "1.4x"});
    b.row({"end-to-end speedup, 10 apps", Table::num(e10), "1.1x"});
    b.print(std::cout);
    report.metric("per_kernel_speedup_geomean", pk);
    report.metric("e2e_speedup_n1", e1);
    report.metric("e2e_speedup_n10", e10);
    return report.write();
}
