/**
 * @file
 * Repeat-workload microbenchmark of the DRX hot path: every catalog
 * kernel is executed --repeat times on one machine through the
 * compiled-kernel cache, and once more through the uncached path as an
 * in-process differential check (outputs must be byte-identical and
 * simulated cycles tick-identical, or the harness aborts).
 *
 * Simulated metrics (per-kernel drx cycles, output checksums) are
 * cache-invariant by construction: CI runs this harness with the cache
 * on and with DMX_NO_DRX_CACHE=1 and gates their equality with
 * bench_diff --tolerance 0 in both directions. Host wall-clock lands
 * in the JSON under the informational "wall_" prefix; the perf-smoke
 * job computes the cache-off/cache-on ratio from those fields.
 */

#include <chrono>
#include <cstring>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "restructure/catalog.hh"

using namespace dmx;

namespace
{

restructure::Bytes
inputFor(const restructure::Kernel &k, std::uint64_t seed)
{
    Rng rng(seed);
    restructure::Bytes out(k.input.bytes());
    if (k.input.dtype == DType::F32) {
        for (std::size_t i = 0; i < k.input.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1, 1));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

std::vector<restructure::Kernel>
catalogKernels()
{
    std::vector<restructure::Kernel> ks;
    ks.push_back(restructure::melSpectrogram(128, 513, 128));
    ks.push_back(restructure::videoFrameRestructure(768, 1024, 256));
    ks.push_back(restructure::brainSignalRestructure(128, 513, 64));
    ks.push_back(restructure::textRecordRestructure(256 * 1024, 256, 320));
    ks.push_back(restructure::dbColumnarize(1u << 15, true));
    return ks;
}

/** Exact-in-double byte checksum (position-weighted, mod 2^32). */
double
checksum(const restructure::Bytes &b)
{
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < b.size(); ++i)
        acc = acc * 31u + b[i];
    return static_cast<double>(acc);
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "micro_drx_repeat");
    bench::banner("DRX repeat-workload microbenchmark",
                  "hot-path acceleration (compiled-kernel cache)");

    // At least one warm run per kernel even without --repeat, so the
    // cached path is always exercised.
    const unsigned repeats = std::max(2u, report.repeat());
    const bool cache_on = drx::defaultCacheConfig().enabled;
    std::printf("runs per kernel: %u   cache: %s\n\n", repeats,
                cache_on ? "on" : "off (DMX_NO_DRX_CACHE)");
    std::printf("%-18s %10s %14s %12s %9s\n", "kernel", "programs",
                "drx_cycles", "checksum", "shapedet");

    double total_cycles = 0;
    double wall_first_ms = 0, wall_repeat_ms = 0;
    for (const restructure::Kernel &kernel : catalogKernels()) {
        const restructure::Bytes input = inputFor(kernel, 7);

        // Uncached reference: ground truth for the differential check.
        restructure::Bytes ref_out;
        drx::DrxMachine ref_machine;
        const drx::RunResult ref =
            drx::runKernelOnDrx(kernel, input, ref_machine, &ref_out);

        // Cached arm: one machine, run 1 cold, runs 2..N warm.
        drx::DrxMachine machine;
        restructure::Bytes out;
        auto t0 = std::chrono::steady_clock::now();
        const drx::RunResult first =
            drx::runKernelOnDrxCached(kernel, input, machine, &out);
        wall_first_ms += wallMsSince(t0);

        if (out != ref_out)
            dmx_fatal("micro_drx_repeat('%s'): cached output differs "
                      "from the uncached path", kernel.name.c_str());
        if (first.total_cycles != ref.total_cycles)
            dmx_fatal("micro_drx_repeat('%s'): cached cycles %llu != "
                      "uncached %llu", kernel.name.c_str(),
                      static_cast<unsigned long long>(first.total_cycles),
                      static_cast<unsigned long long>(ref.total_cycles));

        t0 = std::chrono::steady_clock::now();
        for (unsigned r = 1; r < repeats; ++r) {
            machine.resetAlloc();
            const drx::RunResult warm =
                drx::runKernelOnDrxCached(kernel, input, machine);
            if (warm.total_cycles != ref.total_cycles)
                dmx_fatal("micro_drx_repeat('%s'): warm run %u drifted "
                          "to %llu cycles", kernel.name.c_str(), r,
                          static_cast<unsigned long long>(
                              warm.total_cycles));
        }
        wall_repeat_ms += wallMsSince(t0);

        const drx::CompiledKernel plan =
            drx::planKernel(kernel, machine.config());
        std::printf("%-18s %10zu %14llu %12.0f %9s\n",
                    kernel.name.c_str(), plan.programs.size(),
                    static_cast<unsigned long long>(ref.total_cycles),
                    checksum(ref_out),
                    plan.shape_deterministic ? "yes" : "no");

        report.metric(kernel.name + "_drx_cycles",
                      static_cast<double>(ref.total_cycles));
        report.metric(kernel.name + "_checksum", checksum(ref_out));
        total_cycles += static_cast<double>(ref.total_cycles);
    }
    report.metric("total_drx_cycles", total_cycles);
    report.metric("wall_ms_first_runs", wall_first_ms);
    report.metric("wall_ms_repeat_runs", wall_repeat_ms);
    report.metric("wall_ms_per_repeat",
                  wall_repeat_ms / (5.0 * (repeats - 1)));

    std::printf("\nall kernels: cached outputs byte-identical and "
                "cycles tick-identical to the uncached path\n");
    return report.write();
}
