/**
 * @file
 * Extension study (paper Sec. VII-C + conclusion): how does the DMX
 * advantage scale as applications chain MORE than three kernels? The
 * conclusion argues that emerging multimodal pipelines chain many
 * cross-domain models; every extra kernel adds a data-motion step, so
 * the baseline's CPU restructuring load grows with chain length while
 * DMX's per-hop cost stays constant.
 *
 * Synthetic chains of K equal stages (kernel ~2 ms accelerated, 8 MB
 * motion between stages) at 10 concurrent applications.
 *
 * Two extra sections quantify descriptor-chained DMA submission on the
 * same sweep, side by side with the legacy per-hop driver loop:
 *  - the closed loop under sys::ChainSubmission::Descriptor (mid-chain
 *    interrupt/doorbell round trips become engine descriptor fetches);
 *  - functional integrity::runChain chains of DRX restructure stages
 *    under ChainMode::Descriptor, with and without the DRX fusion pass
 *    (adjacent same-device stages merged into one compiled plan).
 */

#include <array>

#include "bench/bench_util.hh"
#include "fault/fault.hh"
#include "integrity/chain.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

AppModel
chainApp(std::size_t k_count)
{
    AppModel app;
    app.name = "chain" + std::to_string(k_count);
    app.input_bytes = 8 * mib;
    for (std::size_t k = 0; k < k_count; ++k) {
        KernelTiming kt;
        kt.name = "k" + std::to_string(k);
        kt.cpu_core_seconds = 0.024;
        kt.accel_cycles = 500'000; // 2 ms at 250 MHz
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = 8 * mib;
        app.kernels.push_back(kt);
        if (k + 1 < k_count) {
            MotionTiming mt;
            mt.name = "m" + std::to_string(k);
            mt.cpu_core_seconds = 0.030; // streaming restructure
            mt.drx_cycles = 800'000;     // 0.8 ms at 1 GHz
            mt.in_bytes = 8 * mib;
            mt.out_bytes = 8 * mib;
            app.motions.push_back(mt);
        }
    }
    return app;
}

/** A small, fusion-legal DRX restructure kernel (affine map). */
restructure::Kernel
scaleKernel()
{
    restructure::Kernel k;
    k.name = "chain_scale";
    k.input.dtype = DType::F32;
    k.input.shape = {64, 64};
    k.stages.push_back(restructure::mapStage(
        {{restructure::MapFn::Scale, 1.0009765625f}}));
    return k;
}

/** Legacy / descriptor-chained / descriptor+fused runs of one chain. */
std::array<integrity::ChainReport, 3>
runtimeChainTriple(unsigned n_stages)
{
    std::array<integrity::ChainReport, 3> out;
    const struct
    {
        integrity::ChainMode mode;
        bool fuse;
    } variants[3] = {
        {integrity::ChainMode::PerHop, false},
        {integrity::ChainMode::Descriptor, false},
        {integrity::ChainMode::Descriptor, true},
    };
    const restructure::Kernel kernel = scaleKernel();
    runtime::Bytes input(kernel.input.bytes());
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = 1.0f + 0.001f * static_cast<float>(i % 97);
    std::memcpy(input.data(), vals.data(), input.size());

    for (int v = 0; v < 3; ++v) {
        runtime::Platform plat;
        // Zero-probability fault plan: no faults fire, but completion
        // interrupts are modeled, so the per-command driver round trip
        // the descriptor chain eliminates shows up in the makespan.
        fault::FaultPlan fp;
        plat.setFaultPlan(&fp);
        const auto d0 = plat.addDrx("drx0", {});
        const auto d1 = plat.addDrx("drx1", {});
        std::vector<integrity::ChainStage> chain;
        for (unsigned s = 0; s < n_stages; ++s) {
            integrity::ChainStage st;
            // Pairs of same-device stages (fusable) with a p2p hop
            // between pairs: d0, d0, d1, d1, d0, ...
            st.device = (s / 2) % 2 ? d1 : d0;
            st.kernel = kernel;
            chain.push_back(st);
        }
        integrity::ChainConfig cfg;
        cfg.mode = variants[v].mode;
        cfg.fuse = variants[v].fuse;
        out[v] = integrity::runChain(plat, chain, input, cfg);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "ext_chain_length");
    bench::banner("Extension - speedup vs kernel-chain length",
                  "generalizes Sec. VII-C (Fig. 16) / conclusion");

    Table t("DMX speedup vs chain length (10 concurrent apps)");
    t.header({"kernels per app", "multi-axl (ms)", "dmx (ms)",
              "speedup (x)", "baseline restructure share %"});
    const std::vector<std::size_t> chain_sweep{2u, 3u, 4u, 5u, 6u};
    std::vector<std::function<std::pair<RunStats, RunStats>()>> thunks;
    for (std::size_t k : chain_sweep) {
        thunks.push_back([k] {
            const AppModel app = chainApp(k);
            SystemConfig cfg;
            cfg.n_apps = 10;
            cfg.placement = Placement::MultiAxl;
            const RunStats base = simulateSystem(cfg, {app});
            cfg.placement = Placement::BumpInTheWire;
            return std::make_pair(base, simulateSystem(cfg, {app}));
        });
    }
    const auto runs = bench::runSweep<std::pair<RunStats, RunStats>>(
        report, std::move(thunks));

    for (std::size_t i = 0; i < chain_sweep.size(); ++i) {
        const std::size_t k = chain_sweep[i];
        const RunStats &base = runs[i].first;
        const RunStats &dmx = runs[i].second;
        const double sp_x = base.avg_latency_ms / dmx.avg_latency_ms;
        report.metric("speedup_k" + std::to_string(k), sp_x);
        t.row({std::to_string(k), Table::num(base.avg_latency_ms),
               Table::num(dmx.avg_latency_ms), Table::num(sp_x),
               Table::num(100 * base.breakdown.restructure_ms /
                          base.breakdown.total(), 1)});
    }
    t.print(std::cout);

    std::printf("Expected shape: the DMX advantage grows with chain "
                "length - each extra kernel adds one CPU restructuring\n"
                "step to the baseline but only a fixed-cost p2p hop to "
                "DMX (the composable monolithic-accelerator illusion).\n\n");

    // -- Descriptor-chained closed loop vs per-hop driver loop -------
    // Same DMX sweep under ChainSubmission::Descriptor: the host
    // programs each request's chain once; mid-chain completion
    // interrupts and doorbells become engine descriptor fetches.
    Table c("Descriptor chaining (dmx placement, 10 apps)");
    c.header({"kernels per app", "per-hop (ms)", "chained (ms)",
              "per-hop trips", "chained trips", "desc fetches"});
    std::vector<std::function<RunStats()>> cthunks;
    for (std::size_t k : chain_sweep) {
        cthunks.push_back([k] {
            const AppModel app = chainApp(k);
            SystemConfig cfg;
            cfg.n_apps = 10;
            cfg.placement = Placement::BumpInTheWire;
            cfg.chain = ChainSubmission::Descriptor;
            return simulateSystem(cfg, {app});
        });
    }
    const auto chained =
        bench::runSweep<RunStats>(report, std::move(cthunks));
    for (std::size_t i = 0; i < chain_sweep.size(); ++i) {
        const std::string k = std::to_string(chain_sweep[i]);
        const RunStats &legacy = runs[i].second; // per-hop dmx run above
        const RunStats &ch = chained[i];
        report.metric("legacy_makespan_k" + k, legacy.makespan_ms);
        report.metric("chained_makespan_k" + k, ch.makespan_ms);
        report.metric("legacy_trips_k" + k,
                      static_cast<double>(legacy.driver_round_trips));
        report.metric("chained_trips_k" + k,
                      static_cast<double>(ch.driver_round_trips));
        report.metric("desc_fetches_k" + k,
                      static_cast<double>(ch.descriptor_fetches));
        c.row({k, Table::num(legacy.makespan_ms),
               Table::num(ch.makespan_ms),
               std::to_string(legacy.driver_round_trips),
               std::to_string(ch.driver_round_trips),
               std::to_string(ch.descriptor_fetches)});
    }
    c.print(std::cout);

    // -- Batched submission on the same sweep ------------------------
    // SystemConfig::batch = 8: each app rings one doorbell per 8 flow
    // submissions and takes one completion interrupt per 8 pipeline
    // steps (the rest are completion-record polls).
    Table b("Batched submission (dmx placement, 10 apps, batch=8)");
    b.header({"kernels per app", "legacy (ms)", "batched (ms)",
              "legacy doorbells", "batched doorbells", "legacy trips",
              "batched trips", "suppressed"});
    std::vector<std::function<RunStats()>> bthunks;
    for (std::size_t k : chain_sweep) {
        bthunks.push_back([k] {
            const AppModel app = chainApp(k);
            SystemConfig cfg;
            cfg.n_apps = 10;
            cfg.placement = Placement::BumpInTheWire;
            cfg.batch = 8;
            return simulateSystem(cfg, {app});
        });
    }
    const auto batched =
        bench::runSweep<RunStats>(report, std::move(bthunks));
    for (std::size_t i = 0; i < chain_sweep.size(); ++i) {
        const std::string k = std::to_string(chain_sweep[i]);
        const RunStats &legacy = runs[i].second; // per-hop dmx run above
        const RunStats &bt = batched[i];
        report.metric("legacy_doorbells_k" + k,
                      static_cast<double>(legacy.doorbells));
        report.metric("batched_doorbells_k" + k,
                      static_cast<double>(bt.doorbells));
        report.metric("batched_makespan_k" + k, bt.makespan_ms);
        report.metric("batched_trips_k" + k,
                      static_cast<double>(bt.driver_round_trips));
        report.metric("batched_suppressed_k" + k,
                      static_cast<double>(bt.notifications_suppressed));
        b.row({k, Table::num(legacy.makespan_ms),
               Table::num(bt.makespan_ms),
               std::to_string(legacy.doorbells),
               std::to_string(bt.doorbells),
               std::to_string(legacy.driver_round_trips),
               std::to_string(bt.driver_round_trips),
               std::to_string(bt.notifications_suppressed)});
    }
    b.print(std::cout);

    // -- Functional runtime chains: legacy vs chained vs fused -------
    Table r("integrity::runChain: DRX stage chains (ticks)");
    r.header({"stages", "legacy", "chained", "fused", "legacy trips",
              "chained trips", "fused stages saved"});
    const std::vector<unsigned> stage_sweep{3u, 4u, 5u, 6u};
    std::vector<std::function<std::array<integrity::ChainReport, 3>()>>
        rthunks;
    for (unsigned n : stage_sweep) {
        rthunks.push_back([n] { return runtimeChainTriple(n); });
    }
    const auto triples =
        bench::runSweep<std::array<integrity::ChainReport, 3>>(
            report, std::move(rthunks));
    for (std::size_t i = 0; i < stage_sweep.size(); ++i) {
        const std::string k = std::to_string(stage_sweep[i]);
        const auto &[legacy, ch, fused] = triples[i];
        report.metric("rt_legacy_ticks_k" + k,
                      static_cast<double>(legacy.makespan));
        report.metric("rt_chained_ticks_k" + k,
                      static_cast<double>(ch.makespan));
        report.metric("rt_fused_ticks_k" + k,
                      static_cast<double>(fused.makespan));
        report.metric("rt_legacy_trips_k" + k,
                      static_cast<double>(legacy.round_trips));
        report.metric("rt_chained_trips_k" + k,
                      static_cast<double>(ch.round_trips));
        report.metric("rt_fused_stages_k" + k,
                      static_cast<double>(fused.fused_stages));
        r.row({k, std::to_string(legacy.makespan),
               std::to_string(ch.makespan),
               std::to_string(fused.makespan),
               std::to_string(legacy.round_trips),
               std::to_string(ch.round_trips),
               std::to_string(fused.fused_stages)});
    }
    r.print(std::cout);

    std::printf("Descriptor chaining pays one driver round trip per "
                "chain instead of one per command; fusion additionally\n"
                "merges adjacent same-device DRX stages into one "
                "compiled plan (identical bytes, fewer installs).\n");
    return report.write();
}
