/**
 * @file
 * Extension study (paper Sec. VII-C + conclusion): how does the DMX
 * advantage scale as applications chain MORE than three kernels? The
 * conclusion argues that emerging multimodal pipelines chain many
 * cross-domain models; every extra kernel adds a data-motion step, so
 * the baseline's CPU restructuring load grows with chain length while
 * DMX's per-hop cost stays constant.
 *
 * Synthetic chains of K equal stages (kernel ~2 ms accelerated, 8 MB
 * motion between stages) at 10 concurrent applications.
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

AppModel
chainApp(std::size_t k_count)
{
    AppModel app;
    app.name = "chain" + std::to_string(k_count);
    app.input_bytes = 8 * mib;
    for (std::size_t k = 0; k < k_count; ++k) {
        KernelTiming kt;
        kt.name = "k" + std::to_string(k);
        kt.cpu_core_seconds = 0.024;
        kt.accel_cycles = 500'000; // 2 ms at 250 MHz
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = 8 * mib;
        app.kernels.push_back(kt);
        if (k + 1 < k_count) {
            MotionTiming mt;
            mt.name = "m" + std::to_string(k);
            mt.cpu_core_seconds = 0.030; // streaming restructure
            mt.drx_cycles = 800'000;     // 0.8 ms at 1 GHz
            mt.in_bytes = 8 * mib;
            mt.out_bytes = 8 * mib;
            app.motions.push_back(mt);
        }
    }
    return app;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "ext_chain_length");
    bench::banner("Extension - speedup vs kernel-chain length",
                  "generalizes Sec. VII-C (Fig. 16) / conclusion");

    Table t("DMX speedup vs chain length (10 concurrent apps)");
    t.header({"kernels per app", "multi-axl (ms)", "dmx (ms)",
              "speedup (x)", "baseline restructure share %"});
    const std::vector<std::size_t> chain_sweep{2u, 3u, 4u, 5u, 6u};
    std::vector<std::function<std::pair<RunStats, RunStats>()>> thunks;
    for (std::size_t k : chain_sweep) {
        thunks.push_back([k] {
            const AppModel app = chainApp(k);
            SystemConfig cfg;
            cfg.n_apps = 10;
            cfg.placement = Placement::MultiAxl;
            const RunStats base = simulateSystem(cfg, {app});
            cfg.placement = Placement::BumpInTheWire;
            return std::make_pair(base, simulateSystem(cfg, {app}));
        });
    }
    const auto runs = bench::runSweep<std::pair<RunStats, RunStats>>(
        report, std::move(thunks));

    for (std::size_t i = 0; i < chain_sweep.size(); ++i) {
        const std::size_t k = chain_sweep[i];
        const RunStats &base = runs[i].first;
        const RunStats &dmx = runs[i].second;
        const double sp_x = base.avg_latency_ms / dmx.avg_latency_ms;
        report.metric("speedup_k" + std::to_string(k), sp_x);
        t.row({std::to_string(k), Table::num(base.avg_latency_ms),
               Table::num(dmx.avg_latency_ms), Table::num(sp_x),
               Table::num(100 * base.breakdown.restructure_ms /
                          base.breakdown.total(), 1)});
    }
    t.print(std::cout);

    std::printf("Expected shape: the DMX advantage grows with chain "
                "length - each extra kernel adds one CPU restructuring\n"
                "step to the baseline but only a fixed-cost p2p hop to "
                "DMX (the composable monolithic-accelerator illusion).\n");
    return report.write();
}
