/**
 * @file
 * Shared helpers for the figure/table harnesses: suite caching,
 * geometric means, uniform headers, and the --json metric reporter
 * consumed by tools/bench_diff and CI.
 */

#ifndef DMX_BENCH_BENCH_UTIL_HH
#define DMX_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/benchmarks.hh"
#include "common/table.hh"
#include "exec/scenario.hh"
#include "sys/system.hh"

namespace dmx::bench
{

/**
 * Machine-readable metric sink behind every harness's `--json <path>`
 * flag. Construction parses argv; metric() records named scalars while
 * the harness computes its tables; write() emits
 * {"figure": ..., "metrics": {...}} when a path was requested (and is
 * a no-op otherwise, keeping default stdout output byte-identical).
 *
 * Construction also parses `--jobs N` (default: DMX_JOBS, then the
 * hardware concurrency); jobs() feeds the harness's ScenarioRunner so
 * every sweep can fan across threads. Results are committed in
 * submission order, so output is byte-identical at every jobs level.
 */
class BenchReport
{
  public:
    BenchReport(int argc, char **argv, std::string figure)
        : _figure(std::move(figure)),
          _jobs(exec::resolveJobs(exec::parseJobsFlag(argc, argv)))
    {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s: --json needs a path\n",
                                 argv[0]);
                    std::exit(2);
                }
                _path = argv[++i];
            }
        }
    }

    /** Record one named scalar (names must be unique per report). */
    void
    metric(const std::string &name, double value)
    {
        _names.push_back(name);
        _values.push_back(value);
    }

    /**
     * Write the JSON file when --json was passed.
     * @return 0 on success (main-friendly), 1 on I/O failure
     */
    int
    write() const
    {
        if (_path.empty())
            return 0;
        std::FILE *f = std::fopen(_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n", _path.c_str());
            return 1;
        }
        std::fprintf(f, "{\"figure\":\"%s\",\"metrics\":{",
                     _figure.c_str());
        for (std::size_t i = 0; i < _names.size(); ++i) {
            std::fprintf(f, "%s\"%s\":%.17g", i ? "," : "",
                         _names[i].c_str(), _values[i]);
        }
        std::fprintf(f, "}}\n");
        std::fclose(f);
        return 0;
    }

    /** Worker count resolved from --jobs / DMX_JOBS / the hardware. */
    unsigned jobs() const { return _jobs; }

  private:
    std::string _figure;
    std::string _path;
    unsigned _jobs = 1;
    std::vector<std::string> _names;
    std::vector<double> _values;
};

/**
 * Evaluate independent sweep points in parallel, results in submission
 * order. Build one self-contained thunk per sweep point, call this, and
 * consume the returned vector in the existing print loops: stdout and
 * --json output stay byte-identical to the serial nested-loop version
 * at every jobs level (`--jobs 1` runs the thunks inline, in order).
 */
template <typename T>
inline std::vector<T>
runSweep(const BenchReport &report, std::vector<std::function<T()>> thunks)
{
    exec::ScenarioRunner runner(report.jobs());
    return runner.run<T>(std::move(thunks));
}

/** The five Table I applications (built once per process). */
inline const std::vector<sys::AppModel> &
suite()
{
    static const std::vector<sys::AppModel> s = [] {
        apps::SuiteParams p;
        return apps::standardSuite(p);
    }();
    return s;
}

/** Paper concurrency sweep. */
inline const std::vector<unsigned> concurrency_sweep{1, 5, 10, 15};

/** @return geometric mean of @p v (empty -> 0). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/**
 * Run @p n_apps homogeneous copies of @p app under @p placement.
 */
inline sys::RunStats
runHomogeneous(const sys::AppModel &app, sys::Placement placement,
               unsigned n_apps,
               pcie::Generation gen = pcie::Generation::Gen3)
{
    sys::SystemConfig cfg;
    cfg.placement = placement;
    cfg.n_apps = n_apps;
    cfg.gen = gen;
    return sys::simulateSystem(cfg, {app});
}

/** Print the standard harness banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("=============================================================\n");
    std::printf("DMX reproduction harness: %s\n", what.c_str());
    std::printf("Paper reference: %s\n", paper_ref.c_str());
    std::printf("=============================================================\n\n");
}

} // namespace dmx::bench

#endif // DMX_BENCH_BENCH_UTIL_HH
