/**
 * @file
 * Shared helpers for the figure/table harnesses: suite caching,
 * geometric means, and uniform headers.
 */

#ifndef DMX_BENCH_BENCH_UTIL_HH
#define DMX_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/benchmarks.hh"
#include "common/table.hh"
#include "sys/system.hh"

namespace dmx::bench
{

/** The five Table I applications (built once per process). */
inline const std::vector<sys::AppModel> &
suite()
{
    static const std::vector<sys::AppModel> s = [] {
        apps::SuiteParams p;
        return apps::standardSuite(p);
    }();
    return s;
}

/** Paper concurrency sweep. */
inline const std::vector<unsigned> concurrency_sweep{1, 5, 10, 15};

/** @return geometric mean of @p v (empty -> 0). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/**
 * Run @p n_apps homogeneous copies of @p app under @p placement.
 */
inline sys::RunStats
runHomogeneous(const sys::AppModel &app, sys::Placement placement,
               unsigned n_apps,
               pcie::Generation gen = pcie::Generation::Gen3)
{
    sys::SystemConfig cfg;
    cfg.placement = placement;
    cfg.n_apps = n_apps;
    cfg.gen = gen;
    return sys::simulateSystem(cfg, {app});
}

/** Print the standard harness banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("=============================================================\n");
    std::printf("DMX reproduction harness: %s\n", what.c_str());
    std::printf("Paper reference: %s\n", paper_ref.c_str());
    std::printf("=============================================================\n\n");
}

} // namespace dmx::bench

#endif // DMX_BENCH_BENCH_UTIL_HH
