/**
 * @file
 * Shared helpers for the figure/table harnesses: suite caching,
 * geometric means, uniform headers, and the --json metric reporter
 * consumed by tools/bench_diff and CI.
 */

#ifndef DMX_BENCH_BENCH_UTIL_HH
#define DMX_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/benchmarks.hh"
#include "common/table.hh"
#include "drx/cache.hh"
#include "exec/scenario.hh"
#include "sys/system.hh"

namespace dmx::bench
{

/**
 * Machine-readable metric sink behind every harness's `--json <path>`
 * flag. Construction parses argv; metric() records named scalars while
 * the harness computes its tables; write() emits
 * {"figure": ..., "metrics": {...}} when a path was requested (and is
 * a no-op otherwise, keeping default stdout output byte-identical).
 *
 * Construction also parses `--jobs N` (default: DMX_JOBS, then the
 * hardware concurrency); jobs() feeds the harness's ScenarioRunner so
 * every sweep can fan across threads. Results are committed in
 * submission order, so output is byte-identical at every jobs level.
 *
 * `--repeat N` re-runs every runSweep() pass N times (results of the
 * extra passes are discarded): simulated metrics and stdout stay
 * byte-identical while repeat workloads exercise the DRX compiled-
 * kernel cache. write() appends host wall-clock ("wall_" prefix) and
 * cache hit-rate ("cache_" prefix) metrics to the JSON; both prefixes
 * are informational to tools/bench_diff (reported, never gated -- wall
 * time is nondeterministic and cache totals legitimately change with
 * configuration).
 */
class BenchReport
{
  public:
    BenchReport(int argc, char **argv, std::string figure)
        : _figure(std::move(figure)),
          _jobs(exec::resolveJobs(exec::parseJobsFlag(argc, argv))),
          _start(std::chrono::steady_clock::now())
    {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s: --json needs a path\n",
                                 argv[0]);
                    std::exit(2);
                }
                _path = argv[++i];
            } else if (std::strcmp(argv[i], "--repeat") == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s: --repeat needs a count\n",
                                 argv[0]);
                    std::exit(2);
                }
                const long n = std::strtol(argv[++i], nullptr, 10);
                _repeat = n > 1 ? static_cast<unsigned>(n) : 1u;
            }
        }
    }

    /** Record one named scalar (names must be unique per report). */
    void
    metric(const std::string &name, double value)
    {
        _names.push_back(name);
        _values.push_back(value);
    }

    /**
     * Write the JSON file when --json was passed.
     * @return 0 on success (main-friendly), 1 on I/O failure
     */
    int
    write() const
    {
        if (_path.empty())
            return 0;
        std::FILE *f = std::fopen(_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n", _path.c_str());
            return 1;
        }
        std::fprintf(f, "{\"figure\":\"%s\",\"metrics\":{",
                     _figure.c_str());
        for (std::size_t i = 0; i < _names.size(); ++i) {
            std::fprintf(f, "%s\"%s\":%.17g", i ? "," : "",
                         _names[i].c_str(), _values[i]);
        }
        // Informational host-side metrics (JSON only; stdout must stay
        // byte-identical across jobs levels and cache on/off).
        const char *sep = _names.empty() ? "" : ",";
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - _start)
                .count();
        const drx::CacheCounters cc =
            drx::ProgramCache::globalCounters();
        std::fprintf(f, "%s\"wall_ms_total\":%.17g", sep, wall_ms);
        std::fprintf(f, ",\"wall_repeat\":%u", _repeat);
        std::fprintf(f, ",\"cache_drx_hits\":%llu",
                     static_cast<unsigned long long>(cc.compile_hits));
        std::fprintf(f, ",\"cache_drx_misses\":%llu",
                     static_cast<unsigned long long>(cc.compile_misses));
        std::fprintf(f, ",\"cache_drx_timing_hits\":%llu",
                     static_cast<unsigned long long>(cc.timing_hits));
        std::fprintf(f, ",\"cache_drx_evictions\":%llu",
                     static_cast<unsigned long long>(cc.evictions));
        std::fprintf(f, ",\"cache_drx_hit_rate\":%.17g", cc.hitRate());
        std::fprintf(f, "}}\n");
        std::fclose(f);
        return 0;
    }

    /** Worker count resolved from --jobs / DMX_JOBS / the hardware. */
    unsigned jobs() const { return _jobs; }

    /** Sweep repetition count from --repeat (default 1). */
    unsigned repeat() const { return _repeat; }

  private:
    std::string _figure;
    std::string _path;
    unsigned _jobs = 1;
    unsigned _repeat = 1;
    std::chrono::steady_clock::time_point _start;
    std::vector<std::string> _names;
    std::vector<double> _values;
};

/**
 * Evaluate independent sweep points in parallel, results in submission
 * order. Build one self-contained thunk per sweep point, call this, and
 * consume the returned vector in the existing print loops: stdout and
 * --json output stay byte-identical to the serial nested-loop version
 * at every jobs level (`--jobs 1` runs the thunks inline, in order).
 */
template <typename T>
inline std::vector<T>
runSweep(const BenchReport &report, std::vector<std::function<T()>> thunks)
{
    // --repeat N: passes 1..N-1 run copies of the thunks and discard
    // their results. Thunks are self-contained and deterministic (the
    // parallel-sweep contract), so the extra passes cannot change the
    // reported pass; they exist to measure repeat-workload wall-clock
    // (compiled-kernel cache warm vs cold).
    for (unsigned r = 1; r < report.repeat(); ++r) {
        exec::ScenarioRunner warm(report.jobs());
        std::vector<std::function<T()>> copy = thunks;
        warm.run<T>(std::move(copy));
    }
    exec::ScenarioRunner runner(report.jobs());
    return runner.run<T>(std::move(thunks));
}

/** The five Table I applications (built once per process). */
inline const std::vector<sys::AppModel> &
suite()
{
    static const std::vector<sys::AppModel> s = [] {
        apps::SuiteParams p;
        return apps::standardSuite(p);
    }();
    return s;
}

/** Paper concurrency sweep. */
inline const std::vector<unsigned> concurrency_sweep{1, 5, 10, 15};

/** @return geometric mean of @p v (empty -> 0). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/**
 * Run @p n_apps homogeneous copies of @p app under @p placement.
 */
inline sys::RunStats
runHomogeneous(const sys::AppModel &app, sys::Placement placement,
               unsigned n_apps,
               pcie::Generation gen = pcie::Generation::Gen3,
               unsigned batch = 1)
{
    sys::SystemConfig cfg;
    cfg.placement = placement;
    cfg.n_apps = n_apps;
    cfg.gen = gen;
    cfg.batch = batch;
    return sys::simulateSystem(cfg, {app});
}

/** Print the standard harness banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("=============================================================\n");
    std::printf("DMX reproduction harness: %s\n", what.c_str());
    std::printf("Paper reference: %s\n", paper_ref.c_str());
    std::printf("=============================================================\n\n");
}

} // namespace dmx::bench

#endif // DMX_BENCH_BENCH_UTIL_HH
