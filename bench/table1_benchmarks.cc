/**
 * @file
 * Table I: the five end-to-end benchmarks - kernels, accelerators,
 * restructuring operations and data dimensions, regenerated from the
 * live application models.
 */

#include "bench/bench_util.hh"
#include "common/strutil.hh"

using namespace dmx;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "table1_benchmarks");
    bench::banner("Table I - end-to-end benchmarks",
                  "Sec. VI, Table I");

    Table t("Table I: end-to-end benchmarks");
    t.header({"Benchmark", "Kernel 1", "Data Restructuring", "Kernel 2",
              "Intermediate"});
    for (const auto &app : bench::suite()) {
        t.row({app.name, app.kernels[0].name, app.motions[0].name,
               app.kernels[1].name, formatBytes(app.motions[0].in_bytes)});
    }
    t.print(std::cout);

    Table d("Derived per-stage timings (1 instance, uncontended)");
    d.header({"Benchmark", "Stage", "Host (ms)", "Device (ms)",
              "Device"});
    using Rows = std::vector<std::vector<std::string>>;
    std::vector<std::function<Rows()>> thunks;
    for (const auto &app : bench::suite()) {
        thunks.push_back([&app] {
            cpu::HostParams host;
            Rows rows;
            for (const auto &k : app.kernels) {
                const double cores =
                    k.max_host_cores > 0 ? k.max_host_cores
                                         : host.max_job_cores;
                rows.push_back(
                    {app.name, k.name,
                     Table::num(k.cpu_core_seconds / cores * 1e3),
                     Table::num(static_cast<double>(k.accel_cycles) /
                                k.accel_freq_hz * 1e3),
                     "accelerator"});
            }
            for (const auto &m : app.motions) {
                rows.push_back(
                    {app.name, m.name,
                     Table::num(m.cpu_core_seconds / host.max_job_cores *
                                1e3),
                     Table::num(static_cast<double>(m.drx_cycles) / 1e9 *
                                1e3),
                     "DRX (1 GHz)"});
            }
            return rows;
        });
    }
    for (Rows &rows : bench::runSweep<Rows>(report, std::move(thunks)))
        for (std::vector<std::string> &row : rows)
            d.row(std::move(row));
    d.print(std::cout);
    report.metric("benchmarks", static_cast<double>(bench::suite().size()));
    return report.write();
}
