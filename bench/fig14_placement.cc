/**
 * @file
 * Figure 14: latency speedup over Multi-Axl for the four DRX
 * placements, averaged across the five benchmarks, for 1-15 concurrent
 * applications. Paper ordering: Integrated <= Standalone <=
 * Bump-in-the-Wire <= PCIe-Integrated.
 *
 * --batch B reruns the whole sweep with SystemConfig::batch = B
 * (batched doorbells + coalesced completions, DESIGN.md 7j) on the
 * DMX placements; the Multi-Axl baseline always runs unbatched. The
 * default (1) is byte-identical to the pre-batching figure.
 */

#include <cstring>

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig14_placement");
    unsigned batch = 1;
    for (int i = 1; i < argc - 1; ++i)
        if (std::strcmp(argv[i], "--batch") == 0)
            batch = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    bench::banner("Figure 14 - DRX placement comparison",
                  "Sec. VII-B, Fig. 14");
    if (batch != 1)
        report.metric("config_batch", static_cast<double>(batch));

    const std::vector<Placement> placements{
        Placement::IntegratedDrx, Placement::StandaloneDrx,
        Placement::BumpInTheWire, Placement::PcieIntegrated};

    Table t("Fig 14: average latency speedup (x) over Multi-Axl");
    t.header({"apps", "integrated", "standalone", "bump-in-the-wire",
              "pcie-integrated"});
    std::vector<std::function<double()>> thunks;
    for (unsigned n : bench::concurrency_sweep) {
        for (const auto &app : bench::suite())
            thunks.push_back([&app, n] {
                return bench::runHomogeneous(app, Placement::MultiAxl, n)
                    .avg_latency_ms;
            });
        for (Placement p : placements) {
            for (const auto &app : bench::suite())
                thunks.push_back([&app, p, n, batch] {
                    return bench::runHomogeneous(
                               app, p, n, pcie::Generation::Gen3, batch)
                        .avg_latency_ms;
                });
        }
    }
    const std::vector<double> lats =
        bench::runSweep<double>(report, std::move(thunks));

    std::size_t cell = 0;
    for (unsigned n : bench::concurrency_sweep) {
        std::vector<std::string> row{std::to_string(n)};
        std::vector<double> base_lat;
        for (std::size_t i = 0; i < bench::suite().size(); ++i)
            base_lat.push_back(lats[cell++]);
        for (Placement p : placements) {
            std::vector<double> sp;
            for (std::size_t i = 0; i < bench::suite().size(); ++i)
                sp.push_back(base_lat[i] / lats[cell++]);
            const double g = bench::geomean(sp);
            row.push_back(Table::num(g));
            report.metric(toString(p) + "_speedup_n" +
                              std::to_string(n),
                          g);
        }
        t.row(std::move(row));
    }
    t.print(std::cout);

    std::printf("Paper: speedups ordered Integrated <= Standalone <= "
                "Bump-in-the-Wire <= PCIe-Integrated at every\n"
                "concurrency; Integrated reaches 4.4x at 15 apps; "
                "Standalone +3%%/+48%% over Integrated at 1/15 apps;\n"
                "BitW +33/17/26%% over Standalone at 5/10/15 apps.\n");
    return report.write();
}
