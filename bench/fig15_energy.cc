/**
 * @file
 * Figure 15: system-wide energy reduction of each DRX placement over
 * the Multi-Axl baseline. Paper: Integrated ~3.4-4.0x flat;
 * Bump-in-the-Wire best at 1-5 apps (3.8x / 4.3x); Standalone best at
 * 10-15 apps (6.1x / 6.5x) because BitW replicates glue logic and the
 * dual-port PCIe mux per accelerator. PCIe-Integrated is not evaluated
 * (as in the paper).
 */

#include "bench/bench_util.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "fig15_energy");
    bench::banner("Figure 15 - energy reduction per DRX placement",
                  "Sec. VII-B, Fig. 15");

    const std::vector<Placement> placements{
        Placement::IntegratedDrx, Placement::StandaloneDrx,
        Placement::BumpInTheWire};

    Table t("Fig 15: energy reduction (x) over Multi-Axl");
    t.header({"apps", "integrated", "standalone", "bump-in-the-wire",
              "best"});
    std::vector<std::function<double()>> thunks;
    for (unsigned n : bench::concurrency_sweep) {
        for (const auto &app : bench::suite())
            thunks.push_back([&app, n] {
                return bench::runHomogeneous(app, Placement::MultiAxl, n)
                    .energy.total();
            });
        for (Placement p : placements) {
            for (const auto &app : bench::suite())
                thunks.push_back([&app, p, n] {
                    return bench::runHomogeneous(app, p, n).energy.total();
                });
        }
    }
    const std::vector<double> joules =
        bench::runSweep<double>(report, std::move(thunks));

    std::size_t cell = 0;
    for (unsigned n : bench::concurrency_sweep) {
        std::vector<double> base_j;
        for (std::size_t i = 0; i < bench::suite().size(); ++i)
            base_j.push_back(joules[cell++]);
        std::vector<double> red;
        for (std::size_t p = 0; p < placements.size(); ++p) {
            std::vector<double> r;
            for (std::size_t i = 0; i < bench::suite().size(); ++i)
                r.push_back(base_j[i] / joules[cell++]);
            red.push_back(bench::geomean(r));
        }
        const std::size_t best = static_cast<std::size_t>(
            std::max_element(red.begin(), red.end()) - red.begin());
        for (std::size_t j = 0; j < placements.size(); ++j) {
            report.metric(toString(placements[j]) +
                              "_energy_reduction_n" + std::to_string(n),
                          red[j]);
        }
        t.row({std::to_string(n), Table::num(red[0]),
               Table::num(red[1]), Table::num(red[2]),
               toString(placements[best])});
    }
    t.print(std::cout);

    std::printf("Paper: BitW best at 1/5 apps (3.8x/4.3x), Standalone "
                "best at 10/15 apps (6.1x/6.5x), Integrated ~4x flat.\n");
    return report.write();
}
