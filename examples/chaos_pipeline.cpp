/**
 * @file
 * Chaos pipeline: the quickstart's FFT -> DRX -> SVM chain run under a
 * seeded fault plan, demonstrating the runtime's recovery machinery:
 *
 *  - corrupted/stalled DMA flows caught by watchdogs and retried with
 *    exponential backoff;
 *  - accelerator kernel failures and hangs retried within a budget;
 *  - a DRX driven unhealthy, after which restructuring transparently
 *    degrades to the host CPU (byte-identical, honestly slower);
 *  - p2p copies re-routed through the root complex while the switch's
 *    forwarding path is down.
 *
 * The run prints per-command status and retry counts, then compares
 * clean vs. degraded throughput.
 *
 * Build & run:  ./build/examples/chaos_pipeline
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "kernels/fft.hh"
#include "restructure/catalog.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using runtime::Bytes;

namespace
{

constexpr std::size_t fft_size = 256;
constexpr std::size_t hop = 128;
constexpr std::size_t frames = 62;
constexpr std::size_t bins = fft_size / 2 + 1;
constexpr std::size_t mels = 32;
constexpr unsigned rounds = 4;

Bytes
toBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

/** One platform: FFT accel, DRX, SVM-ish accel. */
struct Pipeline
{
    runtime::Platform plat;
    runtime::DeviceId fft_dev, drx_dev, svm_dev;

    Pipeline()
    {
        fft_dev = plat.addAccelerator(
            "fft0", accel::Domain::FFT,
            [](const Bytes &in, kernels::OpCount &ops) {
                const auto samples = toFloats(in);
                const auto stft =
                    kernels::stft(samples, fft_size, hop, &ops);
                std::vector<float> out;
                out.reserve(stft.frames * stft.bins * 2);
                for (const auto &c : stft.values) {
                    out.push_back(c.real());
                    out.push_back(c.imag());
                }
                return toBytes(out);
            });
        drx_dev = plat.addDrx("drx0", drx::DrxConfig{});
        svm_dev = plat.addAccelerator(
            "svm0", accel::Domain::SVM,
            [](const Bytes &in, kernels::OpCount &ops) {
                // Stand-in classifier: reduce each mel row to a byte.
                const auto feats = toFloats(in);
                const std::size_t rows = feats.size() / mels;
                Bytes out(rows);
                for (std::size_t r = 0; r < rows; ++r) {
                    float acc = 0;
                    for (std::size_t m = 0; m < mels; ++m)
                        acc += feats[r * mels + m];
                    out[r] = static_cast<std::uint8_t>(
                        std::fabs(acc) * 255.0f) & 0x3;
                }
                ops.flops += feats.size();
                ops.bytes_read += in.size();
                ops.bytes_written += out.size();
                return out;
            });
    }
};

void
report(const char *label, const runtime::Event &ev)
{
    std::printf("  %-22s %-9s retries=%u%s  t=%9.1f us\n", label,
                toString(ev.status()).c_str(), ev.retries(),
                ev.degraded() ? "  [degraded->CPU]" : "",
                ev.complete() ? ticksToUs(ev.completeTime()) : -1.0);
}

/** Run @p rounds of the chain; @return end-to-end simulated seconds. */
double
runChain(Pipeline &p, bool verbose)
{
    runtime::Context ctx = p.plat.createContext();
    std::vector<float> audio((frames - 1) * hop + fft_size);
    for (std::size_t i = 0; i < audio.size(); ++i) {
        const float t = static_cast<float>(i);
        audio[i] = std::sin(0.02f * t + 1e-6f * t * t);
    }
    const auto mel = restructure::melSpectrogram(frames, bins, mels);
    const Tick start = p.plat.now();

    for (unsigned r = 0; r < rounds; ++r) {
        const auto b_audio = ctx.createBuffer(toBytes(audio));
        const auto b_spec = ctx.createBuffer();
        const auto b_spec_drx = ctx.createBuffer();
        const auto b_mel = ctx.createBuffer();
        const auto b_mel_svm = ctx.createBuffer();
        const auto b_label = ctx.createBuffer();

        auto e_fft = ctx.queue(p.fft_dev).enqueueKernel(b_audio, b_spec);
        auto e_in = ctx.queue(p.fft_dev)
                        .enqueueCopy(b_spec, b_spec_drx, p.drx_dev);
        ctx.finish();
        auto e_mel = ctx.queue(p.drx_dev)
                         .enqueueRestructure(mel, b_spec_drx, b_mel);
        auto e_out = ctx.queue(p.drx_dev)
                         .enqueueCopy(b_mel, b_mel_svm, p.svm_dev);
        ctx.finish();
        auto e_svm =
            ctx.queue(p.svm_dev).enqueueKernel(b_mel_svm, b_label);
        ctx.finish();

        if (verbose) {
            std::printf("round %u:\n", r);
            report("fft kernel", e_fft);
            report("dma fft->drx", e_in);
            report("drx restructure", e_mel);
            report("dma drx->svm", e_out);
            report("svm kernel", e_svm);
        }
    }
    return ticksToSeconds(p.plat.now() - start);
}

} // namespace

int
main()
{
    std::printf("DMX chaos pipeline: %u rounds of FFT -> DRX -> SVM "
                "under injected faults\n\n", rounds);

    // ---- Baseline: no faults.
    Pipeline clean;
    const double clean_s = runChain(clean, false);

    // ---- Chaos: probabilistic faults at every layer, plus a scripted
    //      burst of DRX machine faults that drives the DRX unhealthy,
    //      and a downed switch p2p path.
    fault::FaultSpec spec;
    spec.seed = 7;
    spec.flow_corrupt_prob = 0.10;
    spec.flow_stall_prob = 0.05;
    spec.kernel_fail_prob = 0.10;
    spec.irq_drop_prob = 0.10;
    spec.p2p_switch_faulted = true;
    fault::FaultPlan plan(spec);
    // Kill the DRX outright: three consecutive machine faults trip the
    // unhealthy threshold and later rounds restructure on the host.
    for (std::uint64_t n = 0; n < 3; ++n)
        plan.scriptMachine(n, fault::MachineAction::Fault);

    Pipeline chaos;
    chaos.plat.setFaultPlan(&plan);
    const double chaos_s = runChain(chaos, true);

    // ---- Report.
    const auto &st = plan.stats();
    std::printf("\ninjected faults     : %llu  (flows: %llu stalled, "
                "%llu corrupted; kernels: %llu failed; drx: %llu "
                "faults; irqs: %llu dropped)\n",
                static_cast<unsigned long long>(st.injected()),
                static_cast<unsigned long long>(st.flows_stalled),
                static_cast<unsigned long long>(st.flows_corrupted),
                static_cast<unsigned long long>(st.kernels_failed),
                static_cast<unsigned long long>(st.machine_faults),
                static_cast<unsigned long long>(st.irqs_dropped));
    std::printf("drx0 healthy        : %s  (restructures degraded to "
                "CPU: %llu)\n",
                chaos.plat.deviceHealthy(chaos.drx_dev) ? "yes" : "NO",
                static_cast<unsigned long long>(
                    chaos.plat.faultStats(chaos.drx_dev).fallbacks));
    std::printf("p2p copies rerouted : %llu (switch path down, staged "
                "via root complex)\n",
                static_cast<unsigned long long>(
                    chaos.plat.faultStats(chaos.fft_dev).rerouted_copies +
                    chaos.plat.faultStats(chaos.drx_dev).rerouted_copies));
    std::printf("dropped irqs        : %llu (recovered by driver "
                "poll)\n",
                static_cast<unsigned long long>(
                    chaos.plat.droppedInterrupts()));
    std::printf("\nthroughput (pipeline rounds / simulated second):\n");
    std::printf("  fault-free : %8.1f\n", rounds / clean_s);
    std::printf("  under chaos: %8.1f  (%.1fx slower, but every round "
                "completed)\n", rounds / chaos_s, chaos_s / clean_s);
    return 0;
}
