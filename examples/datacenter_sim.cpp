/**
 * @file
 * Datacenter what-if explorer: build the five Table I applications and
 * compare data-motion strategies for a concurrency level given on the
 * command line.
 *
 * Usage:  ./build/examples/datacenter_sim [n_apps]
 */

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "apps/benchmarks.hh"
#include "common/table.hh"
#include "sys/system.hh"

using namespace dmx;
using namespace dmx::sys;

int
main(int argc, char **argv)
{
    const unsigned n_apps =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    std::printf("DMX datacenter simulation: %u concurrent applications "
                "(mixed Table I suite)\n\n", n_apps);

    apps::SuiteParams params;
    const auto suite = apps::standardSuite(params);

    Table t("Data-motion strategy comparison");
    t.header({"placement", "avg latency (ms)", "kernel ms",
              "restructure ms", "movement ms", "throughput (req/s)",
              "energy (J)", "irqs", "polls"});
    for (Placement p :
         {Placement::AllCpu, Placement::MultiAxl, Placement::IntegratedDrx,
          Placement::StandaloneDrx, Placement::BumpInTheWire,
          Placement::PcieIntegrated}) {
        SystemConfig cfg;
        cfg.placement = p;
        cfg.n_apps = n_apps;
        const RunStats s = simulateSystem(cfg, suite);
        t.row({toString(p), Table::num(s.avg_latency_ms),
               Table::num(s.breakdown.kernel_ms),
               Table::num(s.breakdown.restructure_ms),
               Table::num(s.breakdown.movement_ms),
               Table::num(s.avg_throughput_rps, 1),
               Table::num(s.energy.total()),
               std::to_string(s.interrupts), std::to_string(s.polls)});
    }
    t.print(std::cout);

    std::printf("Try: %s 15   (the paper's largest configuration: 30 "
                "accelerators)\n", argv[0]);
    return 0;
}
