/**
 * @file
 * DRX explorer: compile restructuring kernels with the DRX compiler,
 * print their disassembly (the paper's Figure 8 view), execute them on
 * the cycle simulator, and sweep the RE lane count to show where each
 * kernel stops scaling.
 *
 * Build & run:  ./build/examples/drx_explorer
 */

#include <cstdio>
#include <iostream>
#include <cstring>

#include "common/random.hh"
#include "common/table.hh"
#include "drx/compiler.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"

using namespace dmx;

namespace
{

restructure::Bytes
randomInput(const restructure::Kernel &k, std::uint64_t seed)
{
    Rng rng(seed);
    restructure::Bytes out(k.input.bytes());
    if (k.input.dtype == DType::F32) {
        for (std::size_t i = 0; i < k.input.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1, 1));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("DRX explorer: compiler output and lane scaling\n\n");

    // ---- 1. Show what the compiler emits for the mel-spectrogram
    //         restructuring kernel (cf. paper Fig. 8).
    const auto mel = restructure::melSpectrogram(64, 257, 32);
    {
        drx::DrxMachine machine;
        const auto compiled = drx::compileKernel(mel, machine);
        std::printf("Compiled '%s' into %zu DRX program(s):\n\n",
                    mel.name.c_str(), compiled.programs.size());
        for (const auto &p : compiled.programs)
            std::printf("%s\n", p.disassemble().c_str());
    }

    // ---- 2. Verify against the CPU reference and report timing.
    Table t("Functional + timing check (64x257-bin mel, 32 filters)");
    t.header({"engine", "output bytes", "matches", "time"});
    const auto input = randomInput(mel, 5);
    const auto cpu_out = restructure::executeOnCpu(mel, input);
    drx::DrxMachine machine;
    restructure::Bytes drx_out;
    const drx::RunResult res =
        drx::runKernelOnDrx(mel, input, machine, &drx_out);
    t.row({"CPU reference executor", std::to_string(cpu_out.size()),
           "-", "(oracle)"});
    t.row({"DRX cycle simulator", std::to_string(drx_out.size()),
           drx_out == cpu_out ? "bit-exact" : "MISMATCH",
           Table::num(static_cast<double>(res.total_cycles) / 1e3) +
               " us @1GHz"});
    t.print(std::cout);

    // ---- 3. Lane sweep (paper Fig. 18's microarchitectural basis).
    Table s("RE lane sweep");
    s.header({"lanes", "total cycles", "compute cycles", "mem cycles",
              "bound by"});
    for (unsigned lanes : {16u, 32u, 64u, 128u, 256u}) {
        drx::DrxConfig cfg;
        cfg.lanes = lanes;
        drx::DrxMachine m(cfg);
        const drx::RunResult r = drx::runKernelOnDrx(mel, input, m);
        s.row({std::to_string(lanes), std::to_string(r.total_cycles),
               std::to_string(r.compute_cycles),
               std::to_string(r.mem_cycles),
               r.compute_cycles > r.mem_cycles ? "compute" : "memory"});
    }
    s.print(std::cout);

    std::printf("Once the kernel turns memory-bound, extra lanes stop "
                "helping - the paper's rationale for 128 lanes.\n");
    return 0;
}
