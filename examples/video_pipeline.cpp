/**
 * @file
 * Video Surveillance end-to-end: a camera stream is *actually encoded*,
 * decoded by the video-codec accelerator, restructured by a DRX
 * (normalize + resize + f16), and classified by the CNN detector -
 * every stage runs its real implementation under simulated timing.
 *
 * Build & run:  ./build/examples/video_pipeline
 */

#include <cstdio>
#include <cstring>

#include "common/random.hh"
#include "kernels/nn.hh"
#include "kernels/video.hh"
#include "restructure/catalog.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using runtime::Bytes;

namespace
{

constexpr std::size_t width = 128, height = 96, dst = 64;
constexpr std::size_t n_frames = 4;
constexpr std::size_t classes = 8;

/** Synthesize a scene: moving bright square over a noisy background. */
std::vector<kernels::Frame>
makeScene()
{
    Rng rng(99);
    std::vector<kernels::Frame> frames;
    for (std::size_t f = 0; f < n_frames; ++f) {
        kernels::Frame frame(width, height);
        for (auto &p : frame.pixels)
            p = static_cast<std::uint8_t>(40 + rng.below(30));
        const std::size_t ox = 10 + f * 12, oy = 20 + f * 8;
        for (std::size_t y = oy; y < oy + 24 && y < height; ++y)
            for (std::size_t x = ox; x < ox + 24 && x < width; ++x)
                frame.set(x, y, 230);
        frames.push_back(std::move(frame));
    }
    return frames;
}

} // namespace

int
main()
{
    std::printf("DMX video surveillance pipeline "
                "(decode -> DRX -> detect)\n\n");

    // Encode the camera feed with the block codec (this is what the
    // "camera" ships over the network).
    const auto scene = makeScene();
    const kernels::VideoStream stream = kernels::videoEncode(scene, 80);
    std::printf("camera stream    : %zu frames, %zu bytes encoded "
                "(%.2f bits/pixel)\n",
                stream.frames, stream.bits.size(),
                8.0 * static_cast<double>(stream.bits.size()) /
                    static_cast<double>(n_frames * width * height));

    runtime::Platform platform;
    const auto decode_dev = platform.addAccelerator(
        "vdec0", accel::Domain::VideoCodec,
        [&stream](const Bytes &, kernels::OpCount &ops) {
            const auto frames = kernels::videoDecode(stream, &ops);
            Bytes out;
            for (const auto &f : frames)
                out.insert(out.end(), f.pixels.begin(), f.pixels.end());
            return out;
        });
    const auto drx_dev = platform.addDrx("drx0", drx::DrxConfig{});

    kernels::TinyCnn detector(1, classes, 7);
    const auto cnn_dev = platform.addAccelerator(
        "detect0", accel::Domain::ObjectDetection,
        [&detector](const Bytes &in, kernels::OpCount &ops) {
            // Per-frame inference on the f16 tensor from the DRX.
            const std::size_t per_frame = dst * dst * 2;
            const std::size_t frames = in.size() / per_frame;
            Bytes out;
            for (std::size_t f = 0; f < frames; ++f) {
                kernels::Tensor img({1, 1, dst, dst});
                for (std::size_t i = 0; i < dst * dst; ++i) {
                    std::uint16_t h;
                    std::memcpy(&h, &in[f * per_frame + i * 2], 2);
                    img.data[i] = halfToFloat(h);
                }
                const kernels::Tensor scores = detector.detect(img, &ops);
                // Emit the argmax class of the hottest cell.
                std::size_t best = 0;
                for (std::size_t i = 1; i < scores.data.size(); ++i)
                    if (scores.data[i] > scores.data[best])
                        best = i;
                out.push_back(
                    static_cast<std::uint8_t>(best % classes));
            }
            return out;
        });

    runtime::Context ctx = platform.createContext();
    const auto b_stream = ctx.createBuffer(Bytes(stream.bits));
    const auto b_frames = ctx.createBuffer();
    const auto b_frames_drx = ctx.createBuffer();
    const auto b_tensor = ctx.createBuffer();
    const auto b_tensor_cnn = ctx.createBuffer();
    const auto b_dets = ctx.createBuffer();

    ctx.queue(decode_dev).enqueueKernel(b_stream, b_frames);
    ctx.queue(decode_dev).enqueueCopy(b_frames, b_frames_drx, drx_dev);
    ctx.finish();

    // The DRX restructures one frame per enqueue (the driver walks the
    // RX data queue); build a batched kernel over all frames instead by
    // treating the batch as stacked rows.
    restructure::Kernel per_frame =
        restructure::videoFrameRestructure(height, width, dst);
    Bytes tensor_batch;
    Bytes frames_bytes = ctx.read(b_frames_drx);
    for (std::size_t f = 0; f < n_frames; ++f) {
        const auto b_in = ctx.createBuffer(
            Bytes(frames_bytes.begin() +
                      static_cast<long>(f * width * height),
                  frames_bytes.begin() +
                      static_cast<long>((f + 1) * width * height)));
        const auto b_out = ctx.createBuffer();
        ctx.queue(drx_dev).enqueueRestructure(per_frame, b_in, b_out);
        ctx.finish();
        const Bytes &t = ctx.read(b_out);
        tensor_batch.insert(tensor_batch.end(), t.begin(), t.end());
    }
    ctx.write(b_tensor, tensor_batch);
    ctx.queue(drx_dev).enqueueCopy(b_tensor, b_tensor_cnn, cnn_dev);
    ctx.finish();

    runtime::Event done =
        ctx.queue(cnn_dev).enqueueKernel(b_tensor_cnn, b_dets);
    ctx.finish();

    const Bytes &dets = ctx.read(b_dets);
    std::printf("decoded PSNR     : %.1f dB (frame 0)\n",
                kernels::psnr(scene[0],
                              kernels::videoDecode(stream)[0]));
    std::printf("detections       : ");
    for (std::uint8_t d : dets)
        std::printf("cell-class %u  ", d);
    std::printf("\nsimulated e2e    : %.1f us across %zu devices\n",
                ticksToUs(done.completeTime()), platform.deviceCount());
    return 0;
}
