/**
 * @file
 * Quickstart: chain two accelerators through a DRX with the DMX
 * runtime (the paper's Sound Detection pipeline, end-to-end, on real
 * data, with simulated device timing).
 *
 *   audio -> [FFT accelerator] -> complex spectra
 *         -> p2p DMA -> [DRX] mel-scale restructuring
 *         -> p2p DMA -> [SVM accelerator] -> genre label
 *
 * Build & run:  ./build/examples/quickstart
 *
 * Pass `--trace out.json` to also record the simulated-time trace and
 * write it in Chrome trace_event format - open it at
 * https://ui.perfetto.dev or chrome://tracing to see the pipeline.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "kernels/fft.hh"
#include "kernels/svm.hh"
#include "restructure/catalog.hh"
#include "runtime/runtime.hh"
#include "trace/trace.hh"

using namespace dmx;
using runtime::Bytes;

namespace
{

constexpr std::size_t fft_size = 256;
constexpr std::size_t hop = 128;
constexpr std::size_t frames = 62;
constexpr std::size_t bins = fft_size / 2 + 1; // 129
constexpr std::size_t mels = 32;
constexpr std::size_t classes = 4;

Bytes
toBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
    }
    trace::TraceBuffer tbuf;
    std::unique_ptr<trace::TraceSession> session;
    if (!trace_path.empty())
        session = std::make_unique<trace::TraceSession>(tbuf);

    std::printf("DMX quickstart: FFT -> DRX mel restructure -> SVM\n\n");

    // ---- 1. Describe the platform: two accelerators plus one
    //         Bump-in-the-Wire DRX.
    runtime::Platform platform;
    const auto fft_dev = platform.addAccelerator(
        "fft0", accel::Domain::FFT,
        [](const Bytes &in, kernels::OpCount &ops) {
            const auto samples = toFloats(in);
            const auto stft = kernels::stft(samples, fft_size, hop, &ops);
            std::vector<float> out;
            out.reserve(stft.frames * stft.bins * 2);
            for (const auto &c : stft.values) {
                out.push_back(c.real());
                out.push_back(c.imag());
            }
            return toBytes(out);
        });
    const auto drx_dev = platform.addDrx("drx0", drx::DrxConfig{});

    kernels::LinearSvm svm(mels, classes);
    Rng wrng(2024);
    for (auto &w : svm.weights())
        w = static_cast<float>(wrng.uniform(-1, 1));
    const auto svm_dev = platform.addAccelerator(
        "svm0", accel::Domain::SVM,
        [&svm](const Bytes &in, kernels::OpCount &ops) {
            const auto feats = toFloats(in);
            const std::size_t rows = feats.size() / mels;
            const auto labels = svm.predictBatch(feats, rows, &ops);
            Bytes out(labels.size());
            for (std::size_t i = 0; i < labels.size(); ++i)
                out[i] = static_cast<std::uint8_t>(labels[i]);
            return out;
        });

    // ---- 2. Generate an "audio snippet": a chirp.
    std::vector<float> audio((frames - 1) * hop + fft_size);
    for (std::size_t i = 0; i < audio.size(); ++i) {
        const float t = static_cast<float>(i);
        audio[i] = std::sin(0.02f * t + 1e-6f * t * t);
    }

    // ---- 3. Build the execution context and command queues
    //         (Sec. V programming model).
    runtime::Context ctx = platform.createContext();
    const auto b_audio = ctx.createBuffer(toBytes(audio));
    const auto b_spec = ctx.createBuffer();
    const auto b_spec_drx = ctx.createBuffer();
    const auto b_mel = ctx.createBuffer();
    const auto b_mel_svm = ctx.createBuffer();
    const auto b_label = ctx.createBuffer();

    // Kernel 1 + p2p DMA into the DRX.
    ctx.queue(fft_dev).enqueueKernel(b_audio, b_spec);
    ctx.queue(fft_dev).enqueueCopy(b_spec, b_spec_drx, drx_dev);
    ctx.finish();
    const Tick after_fft = platform.now();

    // Data restructuring on the DRX + p2p DMA to the SVM.
    const auto mel = restructure::melSpectrogram(frames, bins, mels);
    ctx.queue(drx_dev).enqueueRestructure(mel, b_spec_drx, b_mel);
    ctx.queue(drx_dev).enqueueCopy(b_mel, b_mel_svm, svm_dev);
    ctx.finish();
    const Tick after_drx = platform.now();

    // Kernel 2.
    runtime::Event done = ctx.queue(svm_dev).enqueueKernel(b_mel_svm,
                                                           b_label);
    ctx.finish();

    // ---- 4. Report.
    const Bytes &labels = ctx.read(b_label);
    std::size_t votes[classes] = {};
    for (std::uint8_t l : labels)
        ++votes[l % classes];
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c)
        if (votes[c] > votes[best])
            best = c;

    std::printf("frames classified : %zu\n", labels.size());
    std::printf("majority genre    : class %zu (%zu/%zu frames)\n", best,
                votes[best], labels.size());
    std::printf("\nsimulated timeline (device clocks + PCIe fabric):\n");
    std::printf("  FFT kernel + DMA into DRX : %8.1f us\n",
                ticksToUs(after_fft));
    std::printf("  + DRX restructure + DMA   : %8.1f us\n",
                ticksToUs(after_drx));
    std::printf("  + SVM kernel (end-to-end) : %8.1f us\n",
                ticksToUs(done.completeTime()));
    std::printf("\nNo host CPU touched the data after the FFT started:\n"
                "the DRX restructured and forwarded it peer-to-peer.\n");

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         trace_path.c_str());
            return 1;
        }
        tbuf.exportChromeJson(out);
        std::printf("\n");
        tbuf.writeSummary(std::cout);
        std::printf("trace written to %s (open in "
                    "https://ui.perfetto.dev)\n",
                    trace_path.c_str());
    }
    return 0;
}
