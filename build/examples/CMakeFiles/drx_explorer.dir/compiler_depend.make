# Empty compiler generated dependencies file for drx_explorer.
# This may be replaced when dependencies are built.
