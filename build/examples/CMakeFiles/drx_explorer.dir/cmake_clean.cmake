file(REMOVE_RECURSE
  "CMakeFiles/drx_explorer.dir/drx_explorer.cpp.o"
  "CMakeFiles/drx_explorer.dir/drx_explorer.cpp.o.d"
  "drx_explorer"
  "drx_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drx_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
