file(REMOVE_RECURSE
  "CMakeFiles/test_drx_isa.dir/test_drx_isa.cc.o"
  "CMakeFiles/test_drx_isa.dir/test_drx_isa.cc.o.d"
  "test_drx_isa"
  "test_drx_isa.pdb"
  "test_drx_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drx_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
