# Empty compiler generated dependencies file for test_drx_isa.
# This may be replaced when dependencies are built.
