# Empty compiler generated dependencies file for test_drx.
# This may be replaced when dependencies are built.
