file(REMOVE_RECURSE
  "CMakeFiles/test_drx.dir/test_drx.cc.o"
  "CMakeFiles/test_drx.dir/test_drx.cc.o.d"
  "test_drx"
  "test_drx.pdb"
  "test_drx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
