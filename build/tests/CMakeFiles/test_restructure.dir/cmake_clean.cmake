file(REMOVE_RECURSE
  "CMakeFiles/test_restructure.dir/test_restructure.cc.o"
  "CMakeFiles/test_restructure.dir/test_restructure.cc.o.d"
  "test_restructure"
  "test_restructure.pdb"
  "test_restructure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
