# Empty dependencies file for test_restructure.
# This may be replaced when dependencies are built.
