# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pcie[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_restructure[1]_include.cmake")
include("/root/repo/build/tests/test_drx[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_drx_isa[1]_include.cmake")
