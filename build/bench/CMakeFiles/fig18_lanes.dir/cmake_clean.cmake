file(REMOVE_RECURSE
  "CMakeFiles/fig18_lanes.dir/fig18_lanes.cc.o"
  "CMakeFiles/fig18_lanes.dir/fig18_lanes.cc.o.d"
  "fig18_lanes"
  "fig18_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
