# Empty dependencies file for fig18_lanes.
# This may be replaced when dependencies are built.
