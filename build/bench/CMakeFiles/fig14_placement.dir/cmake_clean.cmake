file(REMOVE_RECURSE
  "CMakeFiles/fig14_placement.dir/fig14_placement.cc.o"
  "CMakeFiles/fig14_placement.dir/fig14_placement.cc.o.d"
  "fig14_placement"
  "fig14_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
