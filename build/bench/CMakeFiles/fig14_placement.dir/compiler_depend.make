# Empty compiler generated dependencies file for fig14_placement.
# This may be replaced when dependencies are built.
