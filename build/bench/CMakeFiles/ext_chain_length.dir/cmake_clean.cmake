file(REMOVE_RECURSE
  "CMakeFiles/ext_chain_length.dir/ext_chain_length.cc.o"
  "CMakeFiles/ext_chain_length.dir/ext_chain_length.cc.o.d"
  "ext_chain_length"
  "ext_chain_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chain_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
