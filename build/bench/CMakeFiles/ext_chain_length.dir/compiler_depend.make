# Empty compiler generated dependencies file for ext_chain_length.
# This may be replaced when dependencies are built.
