# Empty dependencies file for abl_drx.
# This may be replaced when dependencies are built.
