file(REMOVE_RECURSE
  "CMakeFiles/abl_drx.dir/abl_drx.cc.o"
  "CMakeFiles/abl_drx.dir/abl_drx.cc.o.d"
  "abl_drx"
  "abl_drx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_drx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
