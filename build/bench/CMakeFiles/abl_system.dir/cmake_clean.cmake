file(REMOVE_RECURSE
  "CMakeFiles/abl_system.dir/abl_system.cc.o"
  "CMakeFiles/abl_system.dir/abl_system.cc.o.d"
  "abl_system"
  "abl_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
