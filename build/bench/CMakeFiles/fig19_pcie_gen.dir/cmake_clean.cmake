file(REMOVE_RECURSE
  "CMakeFiles/fig19_pcie_gen.dir/fig19_pcie_gen.cc.o"
  "CMakeFiles/fig19_pcie_gen.dir/fig19_pcie_gen.cc.o.d"
  "fig19_pcie_gen"
  "fig19_pcie_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pcie_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
