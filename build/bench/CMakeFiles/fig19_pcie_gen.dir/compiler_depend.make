# Empty compiler generated dependencies file for fig19_pcie_gen.
# This may be replaced when dependencies are built.
