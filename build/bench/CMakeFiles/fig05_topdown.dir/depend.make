# Empty dependencies file for fig05_topdown.
# This may be replaced when dependencies are built.
