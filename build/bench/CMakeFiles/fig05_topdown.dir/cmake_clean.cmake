file(REMOVE_RECURSE
  "CMakeFiles/fig05_topdown.dir/fig05_topdown.cc.o"
  "CMakeFiles/fig05_topdown.dir/fig05_topdown.cc.o.d"
  "fig05_topdown"
  "fig05_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
