file(REMOVE_RECURSE
  "CMakeFiles/fig16_three_kernel.dir/fig16_three_kernel.cc.o"
  "CMakeFiles/fig16_three_kernel.dir/fig16_three_kernel.cc.o.d"
  "fig16_three_kernel"
  "fig16_three_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_three_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
