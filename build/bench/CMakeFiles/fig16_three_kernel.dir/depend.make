# Empty dependencies file for fig16_three_kernel.
# This may be replaced when dependencies are built.
