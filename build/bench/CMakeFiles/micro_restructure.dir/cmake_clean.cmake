file(REMOVE_RECURSE
  "CMakeFiles/micro_restructure.dir/micro_restructure.cc.o"
  "CMakeFiles/micro_restructure.dir/micro_restructure.cc.o.d"
  "micro_restructure"
  "micro_restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
