# Empty compiler generated dependencies file for micro_restructure.
# This may be replaced when dependencies are built.
