# Empty dependencies file for fig17_collectives.
# This may be replaced when dependencies are built.
