file(REMOVE_RECURSE
  "CMakeFiles/fig17_collectives.dir/fig17_collectives.cc.o"
  "CMakeFiles/fig17_collectives.dir/fig17_collectives.cc.o.d"
  "fig17_collectives"
  "fig17_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
