file(REMOVE_RECURSE
  "CMakeFiles/dmx_apps.dir/benchmarks.cc.o"
  "CMakeFiles/dmx_apps.dir/benchmarks.cc.o.d"
  "libdmx_apps.a"
  "libdmx_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
