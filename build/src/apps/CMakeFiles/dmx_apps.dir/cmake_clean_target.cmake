file(REMOVE_RECURSE
  "libdmx_apps.a"
)
