# Empty dependencies file for dmx_apps.
# This may be replaced when dependencies are built.
