file(REMOVE_RECURSE
  "CMakeFiles/dmx_common.dir/dtype.cc.o"
  "CMakeFiles/dmx_common.dir/dtype.cc.o.d"
  "CMakeFiles/dmx_common.dir/logging.cc.o"
  "CMakeFiles/dmx_common.dir/logging.cc.o.d"
  "CMakeFiles/dmx_common.dir/stats.cc.o"
  "CMakeFiles/dmx_common.dir/stats.cc.o.d"
  "CMakeFiles/dmx_common.dir/strutil.cc.o"
  "CMakeFiles/dmx_common.dir/strutil.cc.o.d"
  "CMakeFiles/dmx_common.dir/table.cc.o"
  "CMakeFiles/dmx_common.dir/table.cc.o.d"
  "libdmx_common.a"
  "libdmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
