# Empty compiler generated dependencies file for dmx_common.
# This may be replaced when dependencies are built.
