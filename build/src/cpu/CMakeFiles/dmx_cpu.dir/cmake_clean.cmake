file(REMOVE_RECURSE
  "CMakeFiles/dmx_cpu.dir/core_pool.cc.o"
  "CMakeFiles/dmx_cpu.dir/core_pool.cc.o.d"
  "CMakeFiles/dmx_cpu.dir/host_model.cc.o"
  "CMakeFiles/dmx_cpu.dir/host_model.cc.o.d"
  "CMakeFiles/dmx_cpu.dir/topdown.cc.o"
  "CMakeFiles/dmx_cpu.dir/topdown.cc.o.d"
  "libdmx_cpu.a"
  "libdmx_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
