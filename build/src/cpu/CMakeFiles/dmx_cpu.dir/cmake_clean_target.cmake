file(REMOVE_RECURSE
  "libdmx_cpu.a"
)
