# Empty compiler generated dependencies file for dmx_cpu.
# This may be replaced when dependencies are built.
