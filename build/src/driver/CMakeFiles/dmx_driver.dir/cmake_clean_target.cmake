file(REMOVE_RECURSE
  "libdmx_driver.a"
)
