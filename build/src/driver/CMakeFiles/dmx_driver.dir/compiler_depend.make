# Empty compiler generated dependencies file for dmx_driver.
# This may be replaced when dependencies are built.
