file(REMOVE_RECURSE
  "CMakeFiles/dmx_driver.dir/interrupts.cc.o"
  "CMakeFiles/dmx_driver.dir/interrupts.cc.o.d"
  "CMakeFiles/dmx_driver.dir/queues.cc.o"
  "CMakeFiles/dmx_driver.dir/queues.cc.o.d"
  "libdmx_driver.a"
  "libdmx_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
