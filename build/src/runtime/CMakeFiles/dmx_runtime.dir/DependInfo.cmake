
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/dmx_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/dmx_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dmx_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dmx_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/drx/CMakeFiles/dmx_drx.dir/DependInfo.cmake"
  "/root/repo/build/src/restructure/CMakeFiles/dmx_restructure.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dmx_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
