file(REMOVE_RECURSE
  "CMakeFiles/dmx_runtime.dir/runtime.cc.o"
  "CMakeFiles/dmx_runtime.dir/runtime.cc.o.d"
  "libdmx_runtime.a"
  "libdmx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
