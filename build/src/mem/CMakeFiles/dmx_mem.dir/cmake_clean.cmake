file(REMOVE_RECURSE
  "CMakeFiles/dmx_mem.dir/cache.cc.o"
  "CMakeFiles/dmx_mem.dir/cache.cc.o.d"
  "CMakeFiles/dmx_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dmx_mem.dir/hierarchy.cc.o.d"
  "libdmx_mem.a"
  "libdmx_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
