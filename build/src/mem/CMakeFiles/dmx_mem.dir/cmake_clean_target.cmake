file(REMOVE_RECURSE
  "libdmx_mem.a"
)
