# Empty compiler generated dependencies file for dmx_mem.
# This may be replaced when dependencies are built.
