# Empty compiler generated dependencies file for dmx_restructure.
# This may be replaced when dependencies are built.
