file(REMOVE_RECURSE
  "libdmx_restructure.a"
)
