file(REMOVE_RECURSE
  "CMakeFiles/dmx_restructure.dir/catalog.cc.o"
  "CMakeFiles/dmx_restructure.dir/catalog.cc.o.d"
  "CMakeFiles/dmx_restructure.dir/cpu_exec.cc.o"
  "CMakeFiles/dmx_restructure.dir/cpu_exec.cc.o.d"
  "CMakeFiles/dmx_restructure.dir/ir.cc.o"
  "CMakeFiles/dmx_restructure.dir/ir.cc.o.d"
  "libdmx_restructure.a"
  "libdmx_restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
