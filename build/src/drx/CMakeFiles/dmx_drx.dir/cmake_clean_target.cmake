file(REMOVE_RECURSE
  "libdmx_drx.a"
)
