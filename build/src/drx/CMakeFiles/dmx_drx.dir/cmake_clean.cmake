file(REMOVE_RECURSE
  "CMakeFiles/dmx_drx.dir/compiler.cc.o"
  "CMakeFiles/dmx_drx.dir/compiler.cc.o.d"
  "CMakeFiles/dmx_drx.dir/isa.cc.o"
  "CMakeFiles/dmx_drx.dir/isa.cc.o.d"
  "CMakeFiles/dmx_drx.dir/machine.cc.o"
  "CMakeFiles/dmx_drx.dir/machine.cc.o.d"
  "CMakeFiles/dmx_drx.dir/program.cc.o"
  "CMakeFiles/dmx_drx.dir/program.cc.o.d"
  "libdmx_drx.a"
  "libdmx_drx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_drx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
