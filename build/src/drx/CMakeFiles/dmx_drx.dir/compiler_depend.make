# Empty compiler generated dependencies file for dmx_drx.
# This may be replaced when dependencies are built.
