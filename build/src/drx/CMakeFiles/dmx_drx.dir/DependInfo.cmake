
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drx/compiler.cc" "src/drx/CMakeFiles/dmx_drx.dir/compiler.cc.o" "gcc" "src/drx/CMakeFiles/dmx_drx.dir/compiler.cc.o.d"
  "/root/repo/src/drx/isa.cc" "src/drx/CMakeFiles/dmx_drx.dir/isa.cc.o" "gcc" "src/drx/CMakeFiles/dmx_drx.dir/isa.cc.o.d"
  "/root/repo/src/drx/machine.cc" "src/drx/CMakeFiles/dmx_drx.dir/machine.cc.o" "gcc" "src/drx/CMakeFiles/dmx_drx.dir/machine.cc.o.d"
  "/root/repo/src/drx/program.cc" "src/drx/CMakeFiles/dmx_drx.dir/program.cc.o" "gcc" "src/drx/CMakeFiles/dmx_drx.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/restructure/CMakeFiles/dmx_restructure.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dmx_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
