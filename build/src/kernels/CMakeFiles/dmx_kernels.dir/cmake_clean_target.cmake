file(REMOVE_RECURSE
  "libdmx_kernels.a"
)
