# Empty compiler generated dependencies file for dmx_kernels.
# This may be replaced when dependencies are built.
