
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aes.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/aes.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/aes.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/hashjoin.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/hashjoin.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/hashjoin.cc.o.d"
  "/root/repo/src/kernels/lz.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/lz.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/lz.cc.o.d"
  "/root/repo/src/kernels/nn.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/nn.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/nn.cc.o.d"
  "/root/repo/src/kernels/regex.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/regex.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/regex.cc.o.d"
  "/root/repo/src/kernels/svm.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/svm.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/svm.cc.o.d"
  "/root/repo/src/kernels/video.cc" "src/kernels/CMakeFiles/dmx_kernels.dir/video.cc.o" "gcc" "src/kernels/CMakeFiles/dmx_kernels.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
