file(REMOVE_RECURSE
  "CMakeFiles/dmx_kernels.dir/aes.cc.o"
  "CMakeFiles/dmx_kernels.dir/aes.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/fft.cc.o"
  "CMakeFiles/dmx_kernels.dir/fft.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/hashjoin.cc.o"
  "CMakeFiles/dmx_kernels.dir/hashjoin.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/lz.cc.o"
  "CMakeFiles/dmx_kernels.dir/lz.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/nn.cc.o"
  "CMakeFiles/dmx_kernels.dir/nn.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/regex.cc.o"
  "CMakeFiles/dmx_kernels.dir/regex.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/svm.cc.o"
  "CMakeFiles/dmx_kernels.dir/svm.cc.o.d"
  "CMakeFiles/dmx_kernels.dir/video.cc.o"
  "CMakeFiles/dmx_kernels.dir/video.cc.o.d"
  "libdmx_kernels.a"
  "libdmx_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
