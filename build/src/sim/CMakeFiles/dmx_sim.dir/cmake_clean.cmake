file(REMOVE_RECURSE
  "CMakeFiles/dmx_sim.dir/eventq.cc.o"
  "CMakeFiles/dmx_sim.dir/eventq.cc.o.d"
  "CMakeFiles/dmx_sim.dir/sim_object.cc.o"
  "CMakeFiles/dmx_sim.dir/sim_object.cc.o.d"
  "libdmx_sim.a"
  "libdmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
