file(REMOVE_RECURSE
  "libdmx_sim.a"
)
