# Empty dependencies file for dmx_sim.
# This may be replaced when dependencies are built.
