# Empty compiler generated dependencies file for dmx_pcie.
# This may be replaced when dependencies are built.
