file(REMOVE_RECURSE
  "libdmx_pcie.a"
)
