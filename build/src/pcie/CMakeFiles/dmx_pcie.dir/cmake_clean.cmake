file(REMOVE_RECURSE
  "CMakeFiles/dmx_pcie.dir/fabric.cc.o"
  "CMakeFiles/dmx_pcie.dir/fabric.cc.o.d"
  "CMakeFiles/dmx_pcie.dir/generation.cc.o"
  "CMakeFiles/dmx_pcie.dir/generation.cc.o.d"
  "libdmx_pcie.a"
  "libdmx_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
