file(REMOVE_RECURSE
  "libdmx_accel.a"
)
