file(REMOVE_RECURSE
  "CMakeFiles/dmx_accel.dir/accelerator.cc.o"
  "CMakeFiles/dmx_accel.dir/accelerator.cc.o.d"
  "libdmx_accel.a"
  "libdmx_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
