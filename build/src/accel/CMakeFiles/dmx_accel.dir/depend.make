# Empty dependencies file for dmx_accel.
# This may be replaced when dependencies are built.
