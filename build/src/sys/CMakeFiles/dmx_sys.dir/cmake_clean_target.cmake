file(REMOVE_RECURSE
  "libdmx_sys.a"
)
