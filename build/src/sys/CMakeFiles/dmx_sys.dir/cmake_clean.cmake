file(REMOVE_RECURSE
  "CMakeFiles/dmx_sys.dir/collectives.cc.o"
  "CMakeFiles/dmx_sys.dir/collectives.cc.o.d"
  "CMakeFiles/dmx_sys.dir/energy.cc.o"
  "CMakeFiles/dmx_sys.dir/energy.cc.o.d"
  "CMakeFiles/dmx_sys.dir/system.cc.o"
  "CMakeFiles/dmx_sys.dir/system.cc.o.d"
  "libdmx_sys.a"
  "libdmx_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
