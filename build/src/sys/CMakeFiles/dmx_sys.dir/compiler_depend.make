# Empty compiler generated dependencies file for dmx_sys.
# This may be replaced when dependencies are built.
