/**
 * @file
 * Deterministic parallel scenario execution.
 *
 * A *scenario* is one self-contained simulation: a bench sweep point,
 * a chain configuration, a property-test case, a multi-tenant stress
 * point. Scenarios are independent by construction - each owns its
 * event queue, fabric, devices and (optionally) fault plan - so a
 * sweep of N scenarios can fan across host threads with bit-identical
 * results to serial execution. ScenarioRunner guarantees that with
 * three rules:
 *
 *  1. *Isolated randomness*: each scenario draws from its own
 *     splittable `common::random` stream `Rng(seed, index)` - the
 *     stream id is the submission index, so scenario i sees the same
 *     draws no matter which worker runs it or how many workers exist.
 *  2. *Isolated sinks*: each scenario gets a private TraceBuffer
 *     (installed as the executing thread's active trace sink for the
 *     duration of the scenario - trace::active() is thread-local) and
 *     a private StatGroup, so recording order inside a sink depends
 *     only on that scenario's own simulated execution.
 *  3. *Ordered reduction*: results are committed on the calling
 *     thread in submission order, whatever order workers finish in.
 *     Exceptions propagate at commit time, also in submission order.
 *
 * `--jobs 1` (or a 0-worker runner) runs every scenario inline on the
 * caller with no pool and no handoff - the exact legacy serial path.
 * The differential harness in tests/test_exec.cc asserts that
 * `--jobs 1` and `--jobs 8` produce byte-identical RunStats ticks,
 * JSON metric dumps and trace-category totals.
 */

#ifndef DMX_EXEC_SCENARIO_HH
#define DMX_EXEC_SCENARIO_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "exec/thread_pool.hh"
#include "trace/trace.hh"

namespace dmx::exec
{

/**
 * Resolve a worker count: @p requested if nonzero, else the DMX_JOBS
 * environment variable, else the hardware concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Parse a `--jobs N` flag out of @p argv (the flag is left in place).
 * @return N when present (fatal on a malformed value), 0 otherwise
 */
unsigned parseJobsFlag(int argc, char **argv);

/**
 * The per-scenario execution context: a seeded random stream split by
 * submission index, plus private trace and stat sinks. Everything a
 * scenario records lands here and nowhere else.
 */
class ScenarioContext
{
  public:
    ScenarioContext(std::uint64_t seed, std::size_t index)
        : _seed(seed), _index(index), _rng(seed, index),
          _stats("scenario" + std::to_string(index))
    {
    }

    std::uint64_t seed() const { return _seed; }
    std::size_t index() const { return _index; }

    /** This scenario's private random stream (split by index). */
    Rng &rng() { return _rng; }

    /** This scenario's private trace sink (active while it runs). */
    trace::TraceBuffer &trace() { return _trace; }

    /** This scenario's private stat group ("scenario<i>"). */
    stats::StatGroup &stats() { return _stats; }

  private:
    std::uint64_t _seed;
    std::size_t _index;
    Rng _rng;
    trace::TraceBuffer _trace;
    stats::StatGroup _stats;
};

/** Fans scenarios across a pool; commits results in submission order. */
class ScenarioRunner
{
  public:
    /**
     * @param jobs  1 = strict serial legacy path; N>1 = N workers;
     *              0 = resolve via DMX_JOBS / hardware concurrency
     * @param seed  base seed every scenario's random stream splits from
     */
    explicit ScenarioRunner(unsigned jobs = 0,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the resolved worker count (>= 1; 1 = serial). */
    unsigned jobs() const { return _jobs; }

    /** @return the base seed scenarios split their streams from. */
    std::uint64_t seed() const { return _seed; }

    /**
     * Run @p n scenarios through @p fn and hand each result to
     * @p reduce ON THE CALLING THREAD, strictly in submission order
     * (reduce(0, ...), reduce(1, ...), ...) regardless of completion
     * order. A scenario's exception is rethrown at its commit slot.
     *
     * Each invocation of @p fn sees a fresh ScenarioContext whose
     * TraceBuffer is installed as the executing thread's active trace
     * sink for the duration of the call (in serial mode too, so the
     * recorded trace is jobs-invariant). Read any trace/stat totals
     * you need into the result before returning - the context dies
     * with the scenario.
     */
    template <typename T>
    void
    mapReduce(std::size_t n,
              const std::function<T(ScenarioContext &, std::size_t)> &fn,
              const std::function<void(std::size_t, T)> &reduce)
    {
        commitOrdered<T>(
            n,
            [this, &fn](std::size_t i) {
                ScenarioContext ctx(_seed, i);
                trace::TraceSession session(ctx.trace());
                return fn(ctx, i);
            },
            reduce);
    }

    /** mapReduce into a vector: out[i] is scenario i's result. */
    template <typename T>
    std::vector<T>
    map(std::size_t n,
        const std::function<T(ScenarioContext &, std::size_t)> &fn)
    {
        std::vector<T> out;
        out.reserve(n);
        mapReduce<T>(n, fn,
                     [&out](std::size_t, T v) { out.push_back(std::move(v)); });
        return out;
    }

    /**
     * Evaluate plain thunks in parallel, results in submission order.
     * No per-scenario context or trace session is created: use this
     * for closures that are already self-contained (the bench
     * harnesses' sweep points). With jobs() == 1 the thunks run
     * inline, in order, on the caller - byte-for-byte the legacy
     * serial path.
     */
    template <typename T>
    std::vector<T>
    run(std::vector<std::function<T()>> thunks)
    {
        std::vector<T> out;
        out.reserve(thunks.size());
        commitOrdered<T>(
            thunks.size(),
            [&thunks](std::size_t i) { return thunks[i](); },
            [&out](std::size_t, T v) { out.push_back(std::move(v)); });
        return out;
    }

  private:
    /**
     * The ordered-reduction engine: evaluate task(0..n-1), serial or
     * pooled, and commit results on the caller in submission order.
     */
    template <typename T>
    void
    commitOrdered(std::size_t n,
                  const std::function<T(std::size_t)> &task,
                  const std::function<void(std::size_t, T)> &reduce)
    {
        if (n == 0)
            return;
        if (!_pool || _pool->workers() == 0) {
            for (std::size_t i = 0; i < n; ++i)
                reduce(i, task(i));
            return;
        }
        struct Slot
        {
            std::optional<T> value;
            std::exception_ptr error;
            bool done = false;
        };
        std::vector<Slot> slots(n);
        std::mutex mu;
        std::condition_variable cv;
        for (std::size_t i = 0; i < n; ++i) {
            _pool->submit([&task, &slots, &mu, &cv, i] {
                Slot local;
                try {
                    local.value = task(i);
                } catch (...) {
                    local.error = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lk(mu);
                    slots[i] = std::move(local);
                    slots[i].done = true;
                }
                cv.notify_all();
            });
        }
        // Ordered commit: the caller drains slot i before slot i+1.
        // On error, keep draining (workers still reference the locals)
        // but stop reducing; the first error in submission order is
        // rethrown once every task has finished.
        std::exception_ptr first_error;
        for (std::size_t next = 0; next < n; ++next) {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return slots[next].done; });
            Slot committed = std::move(slots[next]);
            lk.unlock();
            if (first_error)
                continue;
            if (committed.error) {
                first_error = committed.error;
                continue;
            }
            reduce(next, std::move(*committed.value));
        }
        if (first_error) {
            _pool->wait();
            std::rethrow_exception(first_error);
        }
    }

    unsigned _jobs = 1;
    std::uint64_t _seed;
    std::unique_ptr<ThreadPool> _pool; ///< null in serial mode
};

} // namespace dmx::exec

#endif // DMX_EXEC_SCENARIO_HH
