#include "exec/thread_pool.hh"

namespace dmx::exec
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        return; // inline mode: no queues, no threads
    _queues.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        _queues.push_back(std::make_unique<WorkerQueue>());
    _workers.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        _workers.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    if (_workers.empty())
        return;
    wait();
    {
        std::lock_guard<std::mutex> lk(_sleep_mu);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    if (_workers.empty()) {
        // 0-worker pool: the caller is the worker.
        task();
        _executed.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const auto target = static_cast<unsigned>(
        _next_queue.fetch_add(1, std::memory_order_relaxed) %
        _queues.size());
    {
        std::lock_guard<std::mutex> lk(_queues[target]->mu);
        _queues[target]->jobs.push_back(std::move(task));
    }
    _inflight.fetch_add(1, std::memory_order_relaxed);
    _queued.fetch_add(1, std::memory_order_release);
    _wake.notify_one();
}

void
ThreadPool::wait()
{
    if (_workers.empty())
        return;
    std::unique_lock<std::mutex> lk(_sleep_mu);
    _idle.wait(lk, [this] {
        return _inflight.load(std::memory_order_acquire) == 0;
    });
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    // Own deque first: FIFO keeps a sweep's scenarios in submission
    // order when uncontended.
    {
        WorkerQueue &q = *_queues[self];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.jobs.empty()) {
            out = std::move(q.jobs.front());
            q.jobs.pop_front();
            return true;
        }
    }
    // Steal from siblings' backs, scanning from the next neighbour so
    // thieves spread out instead of mobbing worker 0.
    const auto n = static_cast<unsigned>(_queues.size());
    for (unsigned hop = 1; hop < n; ++hop) {
        WorkerQueue &victim = *_queues[(self + hop) % n];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.jobs.empty()) {
            out = std::move(victim.jobs.back());
            victim.jobs.pop_back();
            _stolen.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        if (takeTask(self, task)) {
            _queued.fetch_sub(1, std::memory_order_relaxed);
            task();
            _executed.fetch_add(1, std::memory_order_relaxed);
            if (_inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                // Last task out: wake wait()ers. Taking the lock
                // orders the notify against the predicate check.
                std::lock_guard<std::mutex> lk(_sleep_mu);
                _idle.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(_sleep_mu);
        _wake.wait(lk, [this] {
            return _stop || _queued.load(std::memory_order_acquire) > 0;
        });
        if (_stop && _queued.load(std::memory_order_acquire) == 0)
            return;
    }
}

} // namespace dmx::exec
