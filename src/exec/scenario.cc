#include "exec/scenario.hh"

#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace dmx::exec
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("DMX_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 1)
            dmx_fatal("DMX_JOBS='%s': expected a positive integer", env);
        return static_cast<unsigned>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? hc : 1;
}

unsigned
parseJobsFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        if (i + 1 >= argc)
            dmx_fatal("%s: --jobs needs a worker count", argv[0]);
        char *end = nullptr;
        const long v = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || v < 1)
            dmx_fatal("%s: --jobs '%s': expected a positive integer",
                      argv[0], argv[i + 1]);
        return static_cast<unsigned>(v);
    }
    return 0;
}

ScenarioRunner::ScenarioRunner(unsigned jobs, std::uint64_t seed)
    : _jobs(resolveJobs(jobs)), _seed(seed)
{
    if (_jobs > 1)
        _pool = std::make_unique<ThreadPool>(_jobs);
}

} // namespace dmx::exec
