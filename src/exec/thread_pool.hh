/**
 * @file
 * A work-stealing thread pool for fanning independent *simulation
 * scenarios* across host hardware threads.
 *
 * The simulator itself stays strictly single-threaded per scenario
 * (reproducibility beats parallel host speed inside one event queue);
 * what parallelizes embarrassingly well is the space *around* one
 * simulation: figure sweeps, ablation grids, property-test matrices and
 * multi-tenant stress points are all independent closed-loop runs. The
 * pool executes those as opaque tasks:
 *
 *  - every worker owns a deque; submissions are distributed round-robin
 *    so unrelated scenarios start spread out;
 *  - a worker pops from the *front* of its own deque (FIFO for cache
 *    friendliness across a sweep) and, when empty, steals from the
 *    *back* of a sibling's deque, so long-running scenarios at the
 *    front of one deque cannot strand queued work behind them;
 *  - a pool constructed with zero workers spawns no threads at all and
 *    runs every submitted task inline on the caller - the degenerate
 *    mode ScenarioRunner uses for `--jobs 1` so the legacy serial path
 *    stays exactly the legacy serial path.
 *
 * The pool makes no determinism promises by itself - tasks complete in
 * whatever order the host schedules them. Determinism is the job of
 * ScenarioRunner's ordered reducer (see scenario.hh).
 */

#ifndef DMX_EXEC_THREAD_POOL_HH
#define DMX_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dmx::exec
{

/** Work-stealing pool of host threads executing opaque tasks. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param workers thread count; 0 spawns no threads and makes
     *                submit() run tasks inline on the caller
     */
    explicit ThreadPool(unsigned workers);

    /** Drains nothing: joins after the queues empty (wait() first if
     *  completion order matters to you). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task (or run it inline for a 0-worker pool).
     * Tasks must not throw: a scenario that can fail should capture
     * its failure in its result object.
     */
    void submit(Task task);

    /** Block until every task submitted so far has finished. */
    void wait();

    /** @return the number of worker threads (0 = inline mode). */
    unsigned workers() const { return static_cast<unsigned>(_workers.size()); }

    /** @return tasks executed so far via stealing (observability). */
    std::uint64_t stolenCount() const
    {
        return _stolen.load(std::memory_order_relaxed);
    }

    /** @return tasks executed so far, stolen or not. */
    std::uint64_t executedCount() const
    {
        return _executed.load(std::memory_order_relaxed);
    }

  private:
    /** One worker's private deque; siblings steal from the back. */
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> jobs;
    };

    void workerLoop(unsigned self);

    /** Pop from own front, else steal from a sibling's back. */
    bool takeTask(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> _queues;
    std::vector<std::thread> _workers;

    std::mutex _sleep_mu;              ///< guards the two CVs' predicates
    std::condition_variable _wake;     ///< signalled on submit/shutdown
    std::condition_variable _idle;     ///< signalled when _inflight hits 0
    std::atomic<std::uint64_t> _queued{0};   ///< tasks sitting in deques
    std::atomic<std::uint64_t> _inflight{0}; ///< submitted, not finished
    std::atomic<std::uint64_t> _stolen{0};
    std::atomic<std::uint64_t> _executed{0};
    std::atomic<std::uint64_t> _next_queue{0}; ///< round-robin cursor
    bool _stop = false;                ///< guarded by _sleep_mu
};

} // namespace dmx::exec

#endif // DMX_EXEC_THREAD_POOL_HH
