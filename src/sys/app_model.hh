/**
 * @file
 * Timed application models consumed by the system simulator.
 *
 * An AppModel is a pipeline of K kernels with K-1 data-motion steps.
 * Timings are pre-derived (by src/apps) from the functional kernels'
 * operation counts, the host CPU model, the accelerator latency models
 * and the DRX cycle simulator, so the system simulation composes real
 * per-component numbers.
 */

#ifndef DMX_SYS_APP_MODEL_HH
#define DMX_SYS_APP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace dmx::sys
{

/** One accelerated kernel stage. */
struct KernelTiming
{
    std::string name;
    double cpu_core_seconds = 0;  ///< host work in the All-CPU config
    Cycles accel_cycles = 0;      ///< on its accelerator
    double accel_freq_hz = 250e6; ///< accelerator clock
    std::uint64_t out_bytes = 0;  ///< kernel output size
    double accel_active_watts = 25.0;
    double accel_idle_watts = 8.0;
    /// Cores this kernel can use when run on the host (All-CPU config);
    /// 0 means the pool default. Serial kernels (e.g. decompression)
    /// set 1.
    double max_host_cores = 0;
};

/** One data-motion (restructuring) step between two kernels. */
struct MotionTiming
{
    std::string name;
    double cpu_core_seconds = 0;  ///< restructuring work on the host
    Cycles drx_cycles = 0;        ///< restructuring on a DRX
    std::uint64_t in_bytes = 0;   ///< bytes entering the restructure
    std::uint64_t out_bytes = 0;  ///< bytes leaving it
};

/** A complete end-to-end application. */
struct AppModel
{
    std::string name;
    std::vector<KernelTiming> kernels;  ///< size K >= 2
    std::vector<MotionTiming> motions;  ///< size K-1
    std::uint64_t input_bytes = 0;
};

} // namespace dmx::sys

#endif // DMX_SYS_APP_MODEL_HH
