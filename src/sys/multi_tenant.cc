#include "sys/multi_tenant.hh"

#include <map>

#include "common/logging.hh"

namespace dmx::sys
{

MultiTenantStats
simulateMultiTenant(const MultiTenantConfig &cfg,
                    const std::vector<AppModel> &apps)
{
    if (apps.empty())
        dmx_fatal("simulateMultiTenant: no application models");
    if (cfg.tenants == 0)
        dmx_fatal("simulateMultiTenant: need at least one tenant");

    // The shared run: K closed-loop streams over one fabric. The
    // system simulator already gives every instance its own chain and
    // contends them on the shared switches/uplinks/host pool; the
    // heterogeneous app mix is what makes it multi-tenant.
    SystemConfig sys_cfg;
    sys_cfg.placement = cfg.placement;
    sys_cfg.gen = cfg.gen;
    sys_cfg.n_apps = cfg.tenants;
    sys_cfg.requests_per_app = cfg.requests_per_tenant;
    sys_cfg.fault_plan = cfg.fault_plan;
    sys_cfg.robust = cfg.robust;
    sys_cfg.priorities = cfg.priorities;

    MultiTenantStats out;
    out.aggregate = simulateSystem(sys_cfg, apps);

    // Solo baselines: one uncontended, fault-free run per *distinct*
    // model in the mix (run after the shared simulation so a stateful
    // FaultPlan's stream is not perturbed).
    std::map<std::size_t, double> solo_ms;
    if (!cfg.skip_solo_baseline) {
        SystemConfig solo_cfg = sys_cfg;
        solo_cfg.n_apps = 1;
        solo_cfg.fault_plan = nullptr;
        solo_cfg.robust = {};
        solo_cfg.priorities.clear();
        for (std::size_t m = 0;
             m < apps.size() && m < cfg.tenants; ++m) {
            solo_ms[m] =
                simulateSystem(solo_cfg, {apps[m]}).avg_latency_ms;
        }
    }

    double tput_sum = 0, tput_sq_sum = 0;
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        TenantStats ts;
        const std::size_t m = t % apps.size();
        ts.app_name = apps[m].name;
        ts.latency_ms = out.aggregate.per_app_latency_ms[t];
        ts.p99_latency_ms = out.aggregate.per_app_p99_latency_ms[t];
        ts.shed = out.aggregate.per_app_shed[t];
        ts.deadline_misses = out.aggregate.per_app_deadline_misses[t];
        const auto it = solo_ms.find(m);
        ts.solo_latency_ms = it != solo_ms.end() ? it->second : 0;
        // Closed loop: each stream issues its next request as soon as
        // the previous one completes.
        ts.throughput_rps =
            ts.latency_ms > 0 ? 1000.0 / ts.latency_ms : 0;
        tput_sum += ts.throughput_rps;
        tput_sq_sum += ts.throughput_rps * ts.throughput_rps;
        out.tenants.push_back(std::move(ts));
    }
    const double k = static_cast<double>(cfg.tenants);
    out.fairness =
        tput_sq_sum > 0 ? (tput_sum * tput_sum) / (k * tput_sq_sum) : 0;
    return out;
}

} // namespace dmx::sys
