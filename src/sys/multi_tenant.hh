/**
 * @file
 * Multi-tenant stress mode: K concurrent closed-loop request streams
 * over one shared pcie::Fabric.
 *
 * The figure harnesses run *homogeneous* scale-out (n_apps copies of
 * one application). Production data-motion service looks different:
 * many tenants with *different* kernel chains contend for the same
 * switches, uplinks, host cores and DRX units at the same time. This
 * mode builds that mix - tenant i runs its own closed request loop
 * with its own accelerator chain, every stream sharing the fabric and
 * host resources of the configured placement - and reports per-tenant
 * service quality next to the aggregate:
 *
 *  - per-tenant mean request latency and closed-loop throughput,
 *  - the slowdown of the worst-treated tenant vs. running alone
 *    (isolation factor), and
 *  - Jain's fairness index over per-tenant throughput, 1.0 = all
 *    tenants get equal service, 1/K = one tenant monopolizes.
 *
 * A stress *sweep* (tools/stress_multitenant) fans independent tenant
 * counts across exec::ScenarioRunner workers; each stress point is one
 * deterministic simulation, so the sweep is reproducible at any
 * --jobs level.
 */

#ifndef DMX_SYS_MULTI_TENANT_HH
#define DMX_SYS_MULTI_TENANT_HH

#include <vector>

#include "sys/system.hh"

namespace dmx::sys
{

/** One tenant's service quality inside the shared system. */
struct TenantStats
{
    std::string app_name;        ///< which chain this tenant runs
    double latency_ms = 0;       ///< mean request latency, contended
    double solo_latency_ms = 0;  ///< same chain running alone
    double throughput_rps = 0;   ///< closed-loop rate: requests/latency
    double p99_latency_ms = 0;   ///< nearest-rank p99, contended
    std::uint64_t shed = 0;      ///< requests shed by admission control
    std::uint64_t deadline_misses = 0; ///< completions past the deadline

    /** @return contended latency over solo latency (>= ~1). */
    double
    slowdown() const
    {
        return solo_latency_ms > 0 ? latency_ms / solo_latency_ms : 0;
    }
};

/** Results of one multi-tenant stress point. */
struct MultiTenantStats
{
    RunStats aggregate;               ///< whole-system view
    std::vector<TenantStats> tenants; ///< per-stream view, tenant order

    /** Jain's fairness index over per-tenant throughput. */
    double fairness = 0;

    /** @return the worst per-tenant slowdown vs. running alone. */
    double
    worstSlowdown() const
    {
        double worst = 0;
        for (const TenantStats &t : tenants)
            worst = std::max(worst, t.slowdown());
        return worst;
    }
};

/** Configuration of one stress point. */
struct MultiTenantConfig
{
    Placement placement = Placement::BumpInTheWire;
    pcie::Generation gen = pcie::Generation::Gen3;
    unsigned tenants = 4;            ///< K concurrent request streams
    unsigned requests_per_tenant = 3;
    /// Optional fault plan shared by the whole stress point (not
    /// owned; must outlive the run).
    fault::FaultPlan *fault_plan = nullptr;
    /// When true, skip the K solo baseline runs (solo_latency_ms and
    /// slowdowns read 0); cheaper for large sweeps.
    bool skip_solo_baseline = false;
    /// Overload protection for the shared run (solo baselines always
    /// run unprotected); all default-off = legacy behaviour.
    robust::RobustConfig robust;
    /// Optional per-tenant admission priorities (0 = highest).
    std::vector<unsigned> priorities;
};

/**
 * Run one multi-tenant stress point: @p cfg.tenants concurrent
 * closed-loop streams, tenant i running apps[i % apps.size()], all
 * sharing one fabric/host/DRX complex under cfg.placement.
 *
 * @param cfg  stress-point configuration
 * @param apps the tenant application mix (must be non-empty)
 * @return aggregate plus per-tenant statistics, tenant order
 */
MultiTenantStats simulateMultiTenant(const MultiTenantConfig &cfg,
                                     const std::vector<AppModel> &apps);

} // namespace dmx::sys

#endif // DMX_SYS_MULTI_TENANT_HH
