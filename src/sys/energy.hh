/**
 * @file
 * System energy accounting (paper Sec. VI, "Energy evaluation").
 *
 * Energy integrates component busy/static power over the simulated
 * makespan plus per-byte PCIe transfer energy:
 *   - host: busy core-seconds x core power + uncore x makespan,
 *   - accelerators: busy x active + (makespan - busy) x idle,
 *   - DRX units: busy x active + per-unit static x makespan (the static
 *     term is what separates Bump-in-the-Wire from Standalone at scale),
 *   - fabric: bytes moved x energy/byte.
 */

#ifndef DMX_SYS_ENERGY_HH
#define DMX_SYS_ENERGY_HH

#include <cstdint>

namespace dmx::sys
{

/** Inputs to the energy computation, gathered after a simulation. */
struct EnergyInputs
{
    double makespan_seconds = 0;
    double host_busy_core_seconds = 0;
    double accel_busy_seconds = 0;   ///< summed over accelerators
    unsigned accel_count = 0;
    double accel_active_watts = 25;  ///< average across the suite
    double accel_idle_watts = 8;
    double drx_busy_seconds = 0;     ///< summed over DRX units
    unsigned drx_count = 0;
    double drx_static_watts_per_unit = 0;
    std::uint64_t pcie_bytes = 0;
};

/** Per-component energy in joules. */
struct EnergyReport
{
    double host_joules = 0;
    double accel_joules = 0;
    double drx_joules = 0;
    double pcie_joules = 0;

    double
    total() const
    {
        return host_joules + accel_joules + drx_joules + pcie_joules;
    }
};

/** @return the energy report for @p in (see file header for the model). */
EnergyReport computeEnergy(const EnergyInputs &in);

} // namespace dmx::sys

#endif // DMX_SYS_ENERGY_HH
