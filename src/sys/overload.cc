#include "sys/overload.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "driver/queues.hh"
#include "robust/credit.hh"
#include "runtime/batch.hh"
#include "runtime/runtime.hh"
#include "sys/system.hh"

namespace dmx::sys
{

/*
 * The stress kernel is a byte-bound streaming pass (checksum-rotate) so
 * service time scales with request_bytes through the device's op-rate
 * model while the functional work stays trivial. Kernel, bank and
 * calibration are exported: the serving layer (src/serve) builds its
 * engine on the same primitives, so "serving disabled" can be proven
 * byte-identical to this engine.
 */
runtime::Bytes
overloadStreamKernel(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out(in.size());
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        acc = static_cast<std::uint8_t>(acc + in[i]);
        out[i] = acc;
    }
    ops.int_ops += in.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

std::vector<runtime::DeviceId>
overloadAddBank(runtime::Platform &plat, unsigned devices)
{
    std::vector<runtime::DeviceId> ids;
    ids.reserve(devices);
    for (unsigned d = 0; d < devices; ++d)
        ids.push_back(plat.addAccelerator(
            "axl" + std::to_string(d), accel::Domain::Crypto,
            overloadStreamKernel));
    return ids;
}

Tick
overloadSoloServiceTicks(const OverloadConfig &cfg)
{
    runtime::Platform plat;
    const auto ids = overloadAddBank(plat, 1);
    runtime::Context ctx = plat.createContext();
    const auto in = ctx.createBuffer(
        runtime::Bytes(cfg.request_bytes, std::uint8_t{1}));
    const auto out = ctx.createBuffer();
    const runtime::Event ev = ctx.queue(ids[0]).enqueueKernel(in, out);
    ctx.finish();
    if (!ev.ok())
        dmx_panic("overload: calibration request did not complete");
    return ev.completeTime();
}

namespace
{

/** The live open-loop stress run. */
class OverloadSim
{
  public:
    explicit OverloadSim(const OverloadConfig &cfg) : _cfg(cfg)
    {
        if (cfg.devices == 0)
            dmx_fatal("overload: need at least one device");
        if (cfg.requests == 0)
            dmx_fatal("overload: need at least one request");
        if (cfg.load <= 0)
            dmx_fatal("overload: load must be positive");
        if (cfg.request_bytes == 0)
            dmx_fatal("overload: request_bytes must be nonzero");
        if (cfg.ring_bytes < cfg.request_bytes)
            dmx_fatal("overload: ring_bytes smaller than one request");
        if (cfg.batch == 0)
            dmx_fatal("overload: batch must be at least 1");
    }

    OverloadStats
    run()
    {
        const Tick service = overloadSoloServiceTicks(_cfg);

        _ids = overloadAddBank(_plat, _cfg.devices);
        if (_cfg.fault_rate > 0) {
            fault::FaultSpec spec;
            spec.seed = _cfg.seed;
            spec.kernel_fail_prob = 0.8 * _cfg.fault_rate;
            spec.kernel_hang_prob = 0.2 * _cfg.fault_rate;
            _plan = std::make_unique<fault::FaultPlan>(spec);
            _plat.setFaultPlan(_plan.get());
        }
        robust::RobustConfig rc = _cfg.robust;
        if (_cfg.deadline_factor > 0)
            rc.deadline = static_cast<Tick>(
                _cfg.deadline_factor * static_cast<double>(service));
        _plat.setRobustConfig(rc);

        for (unsigned d = 0; d < _cfg.devices; ++d) {
            _rings.emplace_back(
                std::make_unique<driver::DataQueue>(_cfg.ring_bytes));
            _rings.back()->setLabel("axl" + std::to_string(d) +
                                    ".submit");
            if (_cfg.robust.backpressure.enabled) {
                driver::DataQueue &ring = *_rings.back();
                if (_cfg.robust.backpressure.credit_window)
                    ring.setCreditWindow(
                        _cfg.robust.backpressure.credit_window);
                _gates.push_back(std::make_unique<robust::CreditGate>(
                    ring.label(), ring.creditWindow()));
            }
        }

        // Offered load: one request per `interval` system-wide equals
        // `load` times the bank's aggregate saturation rate.
        const Tick interval = std::max<Tick>(
            1, static_cast<Tick>(
                   static_cast<double>(service) /
                   (_cfg.load * static_cast<double>(_cfg.devices))));
        // A partial batch flushes once a full batch's worth of arrival
        // intervals has passed with no flush, bounding the queueing
        // delay batching can add to at most the accumulation window.
        _pending.resize(_cfg.devices);
        _pending_gen.assign(_cfg.devices, 0);
        _flush_ticks = std::max<Tick>(
            1, interval * static_cast<Tick>(_cfg.batch));

        _reqs.resize(_cfg.requests);
        for (unsigned i = 0; i < _cfg.requests; ++i) {
            _plat.eventQueue().schedule(
                static_cast<Tick>(i) * interval,
                [this, i] { arrive(i); });
        }
        _plat.drain();
        return collect(service);
    }

  private:
    struct Request
    {
        std::unique_ptr<runtime::Context> ctx;
        Tick start = 0;
        std::size_t dev = 0;
        bool push_ok = false;
    };

    /** One accumulated (not yet submitted) batch member. */
    struct PendingMember
    {
        unsigned i = 0;
        runtime::BufferId in = 0;
        runtime::BufferId out = 0;
    };

    void
    arrive(unsigned i)
    {
        Request &r = _reqs[i];
        r.dev = i % _cfg.devices;
        r.start = _plat.now();
        ++_offered;
        if (!_gates.empty()) {
            // Credit-gated submission: blocked producers wait in
            // simulated time (latency keeps accruing from arrival), so
            // an admitted push can never overrun the ring.
            _gates[r.dev]->acquire(_cfg.request_bytes, _plat.now(),
                                   [this, i](Tick) { submit(i); });
            return;
        }
        submit(i);
    }

    void
    submit(unsigned i)
    {
        Request &r = _reqs[i];
        driver::DataQueue &ring = *_rings[r.dev];
        r.push_ok = ring.push(_cfg.request_bytes);
        if (!r.push_ok && _plan)
            _plan->onQueueOverflow(ring.label());
        r.ctx = _plat.createContextPtr();
        const auto in = r.ctx->createBuffer(runtime::Bytes(
            _cfg.request_bytes, static_cast<std::uint8_t>(i)));
        const auto out = r.ctx->createBuffer();
        if (_cfg.batch > 1) {
            joinBatch(i, in, out);
            return;
        }
        const runtime::Event ev =
            r.ctx->queue(_ids[r.dev]).enqueueKernel(in, out);
        runtime::onSettled(ev,
                           [this, i, ev] { settle(i, ev.status()); });
    }

    /**
     * Batched path: the request joins its device's accumulator (ring
     * bytes and gate credit already held, so nothing downstream can
     * tell accumulated and direct submissions apart at settle). A full
     * accumulator flushes immediately; a partial one when its flush
     * window expires.
     */
    void
    joinBatch(unsigned i, runtime::BufferId in, runtime::BufferId out)
    {
        const std::size_t dev = _reqs[i].dev;
        auto &pend = _pending[dev];
        pend.push_back({i, in, out});
        if (pend.size() >= _cfg.batch) {
            flushBatch(dev);
            return;
        }
        if (pend.size() == 1) {
            const std::uint64_t gen = _pending_gen[dev];
            _plat.eventQueue().scheduleIn(
                _flush_ticks, [this, dev, gen] {
                    if (_pending_gen[dev] == gen &&
                        !_pending[dev].empty())
                        flushBatch(dev);
                });
        }
    }

    void
    flushBatch(std::size_t dev)
    {
        auto pend = std::move(_pending[dev]);
        _pending[dev].clear();
        ++_pending_gen[dev];
        std::vector<runtime::BatchOp> ops;
        ops.reserve(pend.size());
        for (const PendingMember &m : pend) {
            runtime::BatchOp op;
            op.kind = runtime::BatchOp::Kind::Kernel;
            op.device = _ids[dev];
            op.in = m.in;
            op.out = m.out;
            // Each member keeps its own context: admission priority,
            // retry-policy tag and buffers stay per request.
            op.ctx = _reqs[m.i].ctx.get();
            ops.push_back(op);
        }
        const runtime::BatchEvent bev =
            runtime::submitBatch(*_reqs[pend.front().i].ctx, ops);
        for (std::size_t j = 0; j < pend.size(); ++j) {
            const unsigned i = pend[j].i;
            const runtime::Event ev = bev.member(j);
            runtime::onSettled(
                ev, [this, i, ev] { settle(i, ev.status()); });
        }
    }

    void
    settle(unsigned i, runtime::Status status)
    {
        Request &r = _reqs[i];
        if (r.push_ok)
            _rings[r.dev]->pop(_cfg.request_bytes);
        if (!_gates.empty())
            _gates[r.dev]->release(_cfg.request_bytes, _plat.now());
        switch (status) {
          case runtime::Status::Ok:
            ++_completed;
            _latencies_ms.push_back(ticksToMs(_plat.now() - r.start));
            break;
          case runtime::Status::Shed:
            ++_shed;
            _shed_ms.push_back(ticksToMs(_plat.now() - r.start));
            break;
          case runtime::Status::TimedOut:
            ++_timed_out;
            _timeout_ms.push_back(ticksToMs(_plat.now() - r.start));
            break;
          default:
            ++_failed;
            break;
        }
        _last_settle = std::max(_last_settle, _plat.now());
        // The context (buffers, queues) stays alive until collect():
        // the engine owns it, nothing else references it after settle.
    }

    OverloadStats
    collect(Tick service)
    {
        (void)service;
        OverloadStats st;
        st.offered = _offered;
        st.completed = _completed;
        st.shed = _shed;
        st.failed = _failed;
        st.timed_out = _timed_out;
        st.makespan_ms = ticksToMs(_last_settle);
        const double makespan_s = ticksToSeconds(_last_settle);
        st.goodput_rps =
            makespan_s > 0 ? static_cast<double>(_completed) / makespan_s
                           : 0;
        // summarizeLatencies sums the mean in sample (completion) order
        // and takes nearest-rank percentiles, so mean/p99 here are
        // bit-identical to the historical inline computation.
        st.completed_latency = common::summarizeLatencies(_latencies_ms);
        st.shed_latency = common::summarizeLatencies(_shed_ms);
        st.timeout_latency = common::summarizeLatencies(_timeout_ms);
        st.mean_latency_ms = st.completed_latency.mean_ms;
        st.p99_latency_ms = st.completed_latency.p99_ms;

        for (const auto &ring : _rings) {
            st.queue_overflows += ring->overflows();
            st.max_ring_high_water =
                std::max(st.max_ring_high_water, ring->highWater());
        }
        st.ring_credit_window =
            _rings.empty() ? 0 : _rings.front()->creditWindow();
        for (const auto &gate : _gates) {
            st.backpressure_stalls += gate->stalls();
            st.backpressure_stall_ms += ticksToMs(gate->stallTicks());
        }
        for (const runtime::DeviceId id : _ids) {
            const runtime::DeviceFaultStats &fs = _plat.faultStats(id);
            st.retries += fs.retries;
            st.watchdog_timeouts += fs.timeouts;
            st.breaker_fast_fails += fs.breaker_fast_fails;
            if (const robust::CircuitBreaker *b =
                    _plat.deviceBreaker(id)) {
                st.breaker_opens += b->opens();
                st.breaker_open_ms +=
                    ticksToMs(b->quarantineTicks(_plat.now()));
            }
        }
        // Interrupts plus polls: NAPI may deliver any notification in
        // polled mode, so interrupts alone undercounts the legacy arm.
        st.irq_notifications = _plat.irq().interruptsDelivered() +
                               _plat.irq().pollsDelivered();
        st.irq_suppressed = _plat.irq().suppressedNotifications();
        return st;
    }

    OverloadConfig _cfg;
    runtime::Platform _plat;
    std::unique_ptr<fault::FaultPlan> _plan;
    std::vector<runtime::DeviceId> _ids;
    std::vector<std::unique_ptr<driver::DataQueue>> _rings;
    std::vector<std::unique_ptr<robust::CreditGate>> _gates;
    std::vector<Request> _reqs;
    std::vector<std::vector<PendingMember>> _pending; ///< per device
    std::vector<std::uint64_t> _pending_gen;
    Tick _flush_ticks = 1;
    std::vector<double> _latencies_ms;
    std::vector<double> _shed_ms;
    std::vector<double> _timeout_ms;
    std::uint64_t _offered = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _shed = 0;
    std::uint64_t _failed = 0;
    std::uint64_t _timed_out = 0;
    Tick _last_settle = 0;
};

} // namespace

OverloadStats
simulateOverload(const OverloadConfig &cfg)
{
    OverloadSim sim(cfg);
    return sim.run();
}

} // namespace dmx::sys
