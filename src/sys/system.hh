/**
 * @file
 * The multi-accelerator system simulator.
 *
 * Composes the PCIe fabric, host core pool, accelerator units, DRX
 * units and the driver notification model into one closed-loop
 * simulation: n_apps applications each execute requests through their
 * kernel pipeline with the data-motion strategy of the configured
 * placement:
 *
 *  - AllCpu:         kernels and restructuring on the host cores;
 *  - MultiAxl:       kernels on accelerators, data staged through the
 *                    host, restructuring on the host cores (the
 *                    paper's baseline);
 *  - IntegratedDrx:  like MultiAxl but restructuring on one DRX at the
 *                    CPU (Figure 4(a));
 *  - StandaloneDrx:  DRX PCIe cards shared by pairs of applications,
 *                    peer-to-peer DMA under the switch (Figure 4(b));
 *  - BumpInTheWire:  one DRX in front of every accelerator; local DMA
 *                    into the DRX, p2p DMA out through the switch
 *                    (Figure 4(d));
 *  - PcieIntegrated: restructuring at line rate inside the switch
 *                    (Figure 4(c)).
 */

#ifndef DMX_SYS_SYSTEM_HH
#define DMX_SYS_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "cpu/core_pool.hh"
#include "driver/interrupts.hh"
#include "driver/queues.hh"
#include "drx/machine.hh"
#include "fault/fault.hh"
#include "integrity/integrity.hh"
#include "pcie/fabric.hh"
#include "robust/robust.hh"
#include "sys/app_model.hh"
#include "sys/energy.hh"

namespace dmx::sys
{

/** DRX placement alternatives (paper Sec. III) plus the two baselines. */
enum class Placement
{
    AllCpu,
    MultiAxl,
    IntegratedDrx,
    StandaloneDrx,
    BumpInTheWire,
    PcieIntegrated,
};

/** @return human name, e.g. "bump-in-the-wire". */
std::string toString(Placement p);

/** How the closed loop drives a request's multi-hop chain. */
enum class ChainSubmission : std::uint8_t
{
    /// Legacy: a driver notify/doorbell round trip between every
    /// pipeline step (kernel -> motion, restructure -> next hop).
    PerHop,
    /// Linked-descriptor chaining: the host programs the whole chain
    /// up front; between steps the engine fetches the next descriptor
    /// (pcie::FabricParams::desc_fetch_latency) instead of
    /// interrupting the host. Only the final completion still
    /// notifies.
    Descriptor,
};

/** @return human name, e.g. "descriptor". */
std::string toString(ChainSubmission c);

/** Full system configuration. */
struct SystemConfig
{
    Placement placement = Placement::BumpInTheWire;
    unsigned n_apps = 1;
    pcie::Generation gen = pcie::Generation::Gen3;
    /// Upstream (switch-to-CPU) lane count; 0 derives it from the
    /// generation: Gen3 CPUs expose x8 uplinks, Gen4/Gen5 CPUs provide
    /// enough lanes for x16 uplinks (the paper's Fig. 19 discussion).
    unsigned upstream_lanes = 0;
    drx::DrxConfig drx;              ///< DRX hardware configuration
    cpu::HostParams host;
    driver::InterruptParams irq;
    unsigned requests_per_app = 3;   ///< closed-loop requests simulated
    /// Optional fault plan (not owned; must outlive the run). Flow
    /// faults are recovered by link-level retransmission - the closed
    /// loop has no per-command watchdog, so a stalled TLP is detected
    /// and replayed like a corrupted one - and dropped completion
    /// interrupts cost the driver's recovery-poll latency.
    fault::FaultPlan *fault_plan = nullptr;
    /// Optional corruption plan (not owned; must outlive the run). The
    /// closed loop is statistical - it moves no real payload bytes and
    /// replays pre-timed DRX cycles - so only the *link CRC* site is
    /// exercised here (each hit delays the flow by a deterministic
    /// replay). Payload flips and scratchpad ECC live in the functional
    /// runtime (runtime::Platform::setIntegrityPlan) and the chain
    /// runner (integrity::runChain).
    integrity::IntegrityPlan *integrity_plan = nullptr;
    /// Overload protection (backpressure / admission / deadline); all
    /// default-off, preserving byte-identical legacy behaviour.
    robust::RobustConfig robust;
    /// Optional per-app admission priorities (0 = highest); apps past
    /// the end of the vector default to priority 0.
    std::vector<unsigned> priorities;
    /// Chain submission mode. Default PerHop is byte- and tick-
    /// identical to the pre-chaining closed loop.
    ChainSubmission chain = ChainSubmission::PerHop;
    /// Batched submission window (DESIGN.md 7j), per app: each app
    /// rings one full doorbell per `batch` flow submissions (the rest
    /// are engine descriptor fetches) and takes one completion
    /// interrupt per `batch` pipeline steps (the suppressed steps are
    /// discovered by completion-record polls at polling_latency).
    /// Default 1 is byte- and tick-identical to the unbatched loop.
    /// Batching is per app instance, so shard domains stay independent.
    unsigned batch = 1;
};

/** Per-request time split (averaged), in milliseconds. */
struct PhaseBreakdown
{
    double kernel_ms = 0;
    double restructure_ms = 0;
    double movement_ms = 0;

    double
    total() const
    {
        return kernel_ms + restructure_ms + movement_ms;
    }
};

/** Results of one system simulation. */
struct RunStats
{
    double avg_latency_ms = 0;        ///< mean end-to-end request latency
    PhaseBreakdown breakdown;         ///< mean per-request split
    double avg_throughput_rps = 0;    ///< per-app pipeline throughput
    double bottleneck_stage_ms = 0;   ///< slowest pipeline stage
    double makespan_ms = 0;
    EnergyReport energy;
    std::uint64_t interrupts = 0;
    std::uint64_t polls = 0;
    std::uint64_t pcie_bytes = 0;
    std::uint64_t flow_retries = 0;   ///< link-level retransmissions
    std::uint64_t dropped_irqs = 0;   ///< notifications recovered by poll

    /// Exact integer-tick phase totals summed over every request of
    /// every application (the ms breakdown above is these, averaged).
    /// With tracing enabled they equal the trace's per-category span
    /// totals tick for tick.
    Tick kernel_ticks = 0;
    Tick restructure_ticks = 0;
    Tick movement_ticks = 0;
    Tick makespan_ticks = 0;

    /// Mean request latency of each application instance (size n_apps);
    /// avg_latency_ms is the mean of these. The multi-tenant stress
    /// mode reads per-tenant service quality out of this.
    std::vector<double> per_app_latency_ms;

    /// p99 (nearest-rank) request latency per application instance,
    /// over that app's *completed* requests.
    std::vector<double> per_app_p99_latency_ms;

    /// Requests shed by admission control, per app and in total. A
    /// shed request terminates immediately (observed like a timeout)
    /// and the closed loop re-issues after the configured shed_retry.
    std::vector<std::uint64_t> per_app_shed;
    std::uint64_t shed_requests = 0;

    /// Completed requests whose latency exceeded robust.deadline.
    std::vector<std::uint64_t> per_app_deadline_misses;
    std::uint64_t deadline_misses = 0;

    /// DataQueue pushes rejected for lack of space (per-queue detail
    /// lands in the fault plan's stats / trace).
    std::uint64_t queue_overflows = 0;

    /// Credit-gate producer stalls and total stalled simulated ticks
    /// (zero unless robust.backpressure is enabled).
    std::uint64_t backpressure_stalls = 0;
    Tick backpressure_stall_ticks = 0;

    /// Peak concurrently in-flight fabric flows (overload depth).
    std::uint64_t peak_active_flows = 0;

    /// DRX compiled-kernel cache activity attributed to this run:
    /// deltas of the calling thread's drx::ProgramCache::process()
    /// counters across the simulation. The closed loops replay
    /// pre-timed drx_cycles, so these are 0 for them by construction
    /// (the cache works at AppModel build time; those totals live in
    /// drx::ProgramCache::globalCounters()); any future engine that
    /// interprets DRX programs inside the loop reports here.
    std::uint64_t drx_cache_hits = 0;
    std::uint64_t drx_cache_misses = 0;

    /// Data-integrity taxonomy (deltas of the installed integrity
    /// plan's counters across this run; all 0 without a plan):
    /// injected = every corruption event the plan fired; detected =
    /// events a hardware checker saw (scratch ECC, link CRC); corrected
    /// = detected events transparently fixed in place (SEC scrubs, link
    /// replays); uncorrected = detected but fatal to their operation;
    /// sdc_escapes = silent payload flips no layer in this run could
    /// see (only an end-to-end checksum catches those).
    std::uint64_t integrity_injected = 0;
    std::uint64_t integrity_detected = 0;
    std::uint64_t integrity_corrected = 0;
    std::uint64_t integrity_uncorrected = 0;
    std::uint64_t integrity_sdc_escapes = 0;
    std::uint64_t link_crc_replays = 0; ///< fabric CRC replay events

    /// Driver round trips paid between pipeline steps (notify +
    /// doorbell pairs). Under ChainSubmission::Descriptor the
    /// mid-chain trips become engine descriptor fetches instead.
    std::uint64_t driver_round_trips = 0;
    std::uint64_t descriptor_fetches = 0;

    /// Batched submission observability (SystemConfig::batch). With
    /// batch == 1: doorbells counts every full-setup fabric submission
    /// and the other two are 0. With batch > 1: suppressed completion
    /// notifications are replaced by completion-record polls (counted
    /// in `polls`), and coalesced_bursts reports the driver's own
    /// burst coalescing on the interrupts that remain.
    std::uint64_t doorbells = 0;
    std::uint64_t notifications_suppressed = 0;
    std::uint64_t coalesced_bursts = 0;

    /// @return hits / (hits + misses), 0 when idle.
    double
    drxCacheHitRate() const
    {
        const std::uint64_t total = drx_cache_hits + drx_cache_misses;
        return total
                   ? static_cast<double>(drx_cache_hits) / total
                   : 0.0;
    }
};

/**
 * Nearest-rank percentile of @p values (p in (0, 1]); 0 when empty.
 * Deterministic helper shared by the sys engines and stress tools.
 */
double percentileNearestRank(std::vector<double> values, double p);

/**
 * Build and run one system.
 *
 * @param cfg  configuration (placement, scale, PCIe generation, ...)
 * @param apps application models; instance i runs apps[i % apps.size()]
 * @return aggregated latency/throughput/energy statistics
 */
RunStats simulateSystem(const SystemConfig &cfg,
                        const std::vector<AppModel> &apps);

/**
 * Build and run one system partitioned into independent fabric
 * domains, SimBricks-style: the PCIe topology decomposes into
 * connected components that share no link (each component is a run of
 * consecutive applications, their switches and any standalone DRX
 * cards serving them), each component simulates as its own closed
 * loop, and the per-domain results commit in domain order across the
 * exec::ScenarioRunner worker pool.
 *
 * Decomposability gate - sharding engages only when every domain is
 * provably independent:
 *  - placement is StandaloneDrx, BumpInTheWire or PcieIntegrated
 *    (AllCpu / MultiAxl / IntegratedDrx contend on the shared host
 *    pool, host-DRAM staging link or on-CPU DRX contexts);
 *  - no fault plan and no integrity plan (plans are stateful and
 *    consumption order is global);
 *  - admission control is Unbounded (admission depth is system-wide).
 * Any other configuration falls back to the monolithic engine and is
 * bit-identical to simulateSystem by construction.
 *
 * Determinism contract (asserted by tests/test_core_equiv.cc):
 *  - jobs-invariance: for a fixed cfg, every jobs value (1, N, auto)
 *    produces byte-identical RunStats and traces;
 *  - a single-domain partition is bit-identical to simulateSystem;
 *  - a multi-domain partition is deterministic, and its request
 *    counts, pcie_bytes, kernel_ticks, interrupts + polls and
 *    flow_retries match the monolithic run exactly; float aggregates
 *    may differ in rounding only, because each domain hosts its own
 *    InterruptController and rate-solver (their cross-app state no
 *    longer interleaves), and peak_active_flows becomes the max over
 *    domains rather than a global peak.
 *
 * @param jobs worker threads: 1 = serial, N = pool of N, 0 = resolve
 *             via DMX_JOBS / hardware concurrency
 */
RunStats simulateSystemSharded(const SystemConfig &cfg,
                               const std::vector<AppModel> &apps,
                               unsigned jobs = 1);

} // namespace dmx::sys

#endif // DMX_SYS_SYSTEM_HH
