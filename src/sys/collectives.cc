#include "sys/collectives.hh"

#include <memory>

#include "accel/accelerator.hh"
#include "common/logging.hh"
#include "cpu/core_pool.hh"
#include "pcie/fabric.hh"
#include "sys/calibration.hh"

namespace dmx::sys
{

namespace
{

/**
 * A fabric of N accelerators (optionally with BitW DRXs), grouped
 * under switches; per-switch membership drives the hierarchical DMX
 * collectives.
 */
struct CollectiveTopo
{
    sim::EventQueue eq;
    std::unique_ptr<pcie::Fabric> fabric;
    pcie::NodeId rc = 0;
    std::vector<pcie::NodeId> accel;
    std::vector<pcie::NodeId> drx;
    std::vector<unsigned> switch_of;          ///< accel -> switch index
    std::vector<std::vector<unsigned>> groups;///< switch -> accel ids

    CollectiveTopo(unsigned n, pcie::Generation gen, bool bitw)
    {
        fabric = std::make_unique<pcie::Fabric>(eq, "pcie",
                                                pcie::FabricParams{});
        rc = fabric->addNode(pcie::NodeKind::RootComplex, "rc");
        pcie::NodeId sw = 0;
        unsigned used = ports_per_switch;
        unsigned sw_count = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (used >= ports_per_switch) {
                sw = fabric->addNode(pcie::NodeKind::Switch,
                                     "sw" + std::to_string(sw_count++));
                fabric->connect(rc, sw, gen, upstream_lanes);
                groups.emplace_back();
                used = 0;
            }
            ++used;
            groups.back().push_back(i);
            switch_of.push_back(sw_count - 1);
            if (bitw) {
                const pcie::NodeId d = fabric->addNode(
                    pcie::NodeKind::EndPoint, "drx" + std::to_string(i));
                fabric->connect(sw, d, gen, downstream_lanes);
                const pcie::NodeId a = fabric->addNode(
                    pcie::NodeKind::EndPoint, "a" + std::to_string(i));
                fabric->connect(d, a, gen, downstream_lanes);
                drx.push_back(d);
                accel.push_back(a);
            } else {
                const pcie::NodeId a = fabric->addNode(
                    pcie::NodeKind::EndPoint, "a" + std::to_string(i));
                fabric->connect(sw, a, gen, downstream_lanes);
                accel.push_back(a);
            }
        }
    }

    /** @return first member of each switch group (the "captains"). */
    std::vector<unsigned>
    captains() const
    {
        std::vector<unsigned> out;
        for (const auto &g : groups)
            out.push_back(g.front());
        return out;
    }
};

/** Launch flows one after another; call @p done after the last. */
void
sequentialFlows(CollectiveTopo &topo, pcie::NodeId src,
                const std::vector<pcie::NodeId> &dsts, std::uint64_t bytes,
                std::function<void()> done)
{
    if (dsts.empty()) {
        done();
        return;
    }
    auto next = std::make_shared<std::function<void(std::size_t)>>();
    auto dsts_copy =
        std::make_shared<std::vector<pcie::NodeId>>(dsts);
    *next = [&topo, src, dsts_copy, bytes, done = std::move(done),
             next](std::size_t i) {
        if (i == dsts_copy->size()) {
            done();
            return;
        }
        topo.fabric->startFlow(src, (*dsts_copy)[i], bytes,
                               [next, i] { (*next)(i + 1); });
    };
    (*next)(0);
}

/** Launch flows concurrently; call @p done when all complete. */
void
concurrentFlows(CollectiveTopo &topo,
                const std::vector<std::pair<pcie::NodeId, pcie::NodeId>>
                    &pairs,
                std::uint64_t bytes, std::function<void()> done)
{
    if (pairs.empty()) {
        done();
        return;
    }
    auto remaining = std::make_shared<std::size_t>(pairs.size());
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    for (const auto &[src, dst] : pairs) {
        topo.fabric->startFlow(src, dst, bytes,
                               [remaining, done_ptr] {
            if (--*remaining == 0)
                (*done_ptr)();
        });
    }
}

/** DRX processing delay for @p cycles at the configured clock. */
Tick
drxTicks(const CollectiveConfig &cfg, Cycles cycles)
{
    return ClockDomain{cfg.drx.freq_hz}.cyclesToTicks(cycles);
}

} // namespace

CollectiveResult
simulateBroadcast(const CollectiveConfig &cfg)
{
    if (cfg.n_accels < 2)
        dmx_fatal("simulateBroadcast: need at least two accelerators");
    CollectiveResult res;

    // -------- baseline: stage to the host, restructure on the CPU,
    // then the driver initiates N DMA transfers *sequentially*
    // (paper Sec. VII-C).
    {
        CollectiveTopo topo(cfg.n_accels, cfg.gen, false);
        cpu::CorePool pool(topo.eq, "pool", cfg.host.cores,
                           cfg.host.max_job_cores);
        std::vector<pcie::NodeId> dsts(topo.accel.begin() + 1,
                                       topo.accel.end());
        Tick done_at = 0;
        topo.fabric->startFlow(topo.accel[0], topo.rc, cfg.bytes, [&] {
            pool.submit(cfg.cpu_restructure_core_seconds, [&] {
                sequentialFlows(topo, topo.rc, dsts, cfg.bytes,
                                [&] { done_at = topo.eq.now(); });
            });
        });
        topo.eq.run();
        res.baseline_ms = ticksToMs(done_at);
    }

    // -------- DMX: restructure on the source DRX (overlapped with the
    // transfers), hierarchical p2p fan-out: source -> per-switch
    // captain DRXs -> switch-local accelerators.
    {
        CollectiveTopo topo(cfg.n_accels, cfg.gen, true);
        const Tick restr = drxTicks(cfg, cfg.drx_restructure_cycles);
        Tick done_at = 0;

        topo.fabric->startFlow(topo.accel[0], topo.drx[0], cfg.bytes,
                               [&] {
            topo.eq.scheduleIn(restr, [&] {
                // Cross-switch fan-out to the captains.
                std::vector<std::pair<pcie::NodeId, pcie::NodeId>> xw;
                for (unsigned c : topo.captains()) {
                    if (topo.switch_of[c] != topo.switch_of[0])
                        xw.emplace_back(topo.drx[0], topo.drx[c]);
                }
                concurrentFlows(topo, xw, cfg.bytes, [&] {
                    // Switch-local fan-out from each captain.
                    std::vector<std::pair<pcie::NodeId, pcie::NodeId>>
                        local;
                    for (const auto &group : topo.groups) {
                        const unsigned cap = group.front();
                        const pcie::NodeId cap_drx =
                            topo.switch_of[cap] == topo.switch_of[0]
                                ? topo.drx[0]
                                : topo.drx[cap];
                        for (unsigned m : group) {
                            if (m != 0)
                                local.emplace_back(cap_drx,
                                                   topo.accel[m]);
                        }
                    }
                    concurrentFlows(topo, local, cfg.bytes, [&] {
                        done_at = topo.eq.now();
                    });
                });
            });
        });
        topo.eq.run();
        res.dmx_ms = ticksToMs(done_at);
    }
    return res;
}

CollectiveResult
simulateAllReduce(const CollectiveConfig &cfg)
{
    if (cfg.n_accels < 2)
        dmx_fatal("simulateAllReduce: need at least two accelerators");
    CollectiveResult res;
    const unsigned n = cfg.n_accels;

    // -------- baseline: scatter-reduce then all-gather through the
    // host; summation of the n inputs on the CPU; driver-initiated
    // DMAs run sequentially.
    {
        CollectiveTopo topo(n, cfg.gen, false);
        cpu::CorePool pool(topo.eq, "pool", cfg.host.cores,
                           cfg.host.max_job_cores);
        Tick done_at = 0;

        auto seq_gather = [&](std::function<void()> after) {
            // Device -> host transfers, driver-serialized.
            auto next =
                std::make_shared<std::function<void(unsigned)>>();
            auto after_ptr = std::make_shared<std::function<void()>>(
                std::move(after));
            *next = [&, next, after_ptr](unsigned i) {
                if (i == n) {
                    (*after_ptr)();
                    return;
                }
                topo.fabric->startFlow(topo.accel[i], topo.rc,
                                       cfg.bytes,
                                       [next, i] { (*next)(i + 1); });
            };
            (*next)(0);
        };

        seq_gather([&] {
            // CPU sums n payloads: work scales with n.
            pool.submit(cfg.cpu_restructure_core_seconds *
                            static_cast<double>(n),
                        [&] {
                sequentialFlows(topo, topo.rc, topo.accel, cfg.bytes,
                                [&] {
                    seq_gather([&] {
                        sequentialFlows(topo, topo.rc, topo.accel,
                                        cfg.bytes, [&] {
                            done_at = topo.eq.now();
                        });
                    });
                });
            });
        });
        topo.eq.run();
        res.baseline_ms = ticksToMs(done_at);
    }

    // -------- DMX: hierarchical reduction across DRXs (a "variation
    // of many-to-one data movement", Sec. V): switch-local DRXs push
    // concurrently to their captain DRX which sums, captains push to
    // the global captain which sums, and the reduced vector fans back
    // out through the same tree.
    {
        CollectiveTopo topo(n, cfg.gen, true);
        const Cycles per_input =
            cfg.drx_reduce_cycles / std::max(1u, n);
        Tick done_at = 0;

        // Stage A: local reduction at each captain.
        std::vector<std::pair<pcie::NodeId, pcie::NodeId>> local_in;
        for (const auto &group : topo.groups) {
            const unsigned cap = group.front();
            for (unsigned m : group) {
                if (m != cap)
                    local_in.emplace_back(topo.drx[m], topo.drx[cap]);
            }
        }
        concurrentFlows(topo, local_in, cfg.bytes, [&] {
            const Tick local_reduce = drxTicks(
                cfg, per_input * static_cast<Cycles>(
                                     topo.groups[0].size()));
            topo.eq.scheduleIn(local_reduce, [&] {
                // Stage B: captains push to the global captain (drx 0).
                std::vector<std::pair<pcie::NodeId, pcie::NodeId>> xw;
                for (unsigned c : topo.captains()) {
                    if (c != 0)
                        xw.emplace_back(topo.drx[c], topo.drx[0]);
                }
                concurrentFlows(topo, xw, cfg.bytes, [&] {
                    const Tick global_reduce = drxTicks(
                        cfg, per_input * static_cast<Cycles>(
                                             topo.groups.size()));
                    topo.eq.scheduleIn(global_reduce, [&] {
                        // Stage C: fan the result back out.
                        std::vector<std::pair<pcie::NodeId,
                                              pcie::NodeId>> back;
                        for (unsigned c : topo.captains()) {
                            if (c != 0)
                                back.emplace_back(topo.drx[0],
                                                  topo.drx[c]);
                        }
                        concurrentFlows(topo, back, cfg.bytes, [&] {
                            std::vector<std::pair<pcie::NodeId,
                                                  pcie::NodeId>> out;
                            for (const auto &group : topo.groups) {
                                const unsigned cap = group.front();
                                for (unsigned m : group)
                                    out.emplace_back(topo.drx[cap],
                                                     topo.accel[m]);
                            }
                            concurrentFlows(topo, out, cfg.bytes, [&] {
                                done_at = topo.eq.now();
                            });
                        });
                    });
                });
            });
        });
        topo.eq.run();
        res.dmx_ms = ticksToMs(done_at);
    }
    return res;
}

} // namespace dmx::sys
