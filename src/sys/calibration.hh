/**
 * @file
 * Calibration anchors for the system model.
 *
 * Values marked [paper] are stated in the paper; the rest are
 * engineering estimates chosen to reproduce the paper's reported
 * shapes. EXPERIMENTS.md records the resulting paper-vs-measured
 * comparison for every figure.
 */

#ifndef DMX_SYS_CALIBRATION_HH
#define DMX_SYS_CALIBRATION_HH

#include "common/units.hh"

namespace dmx::sys
{

// --------------------------------------------------------------- clocks
/// [paper] FPGA accelerator and DRX prototype clock.
inline constexpr double fpga_freq_hz = 250e6;
/// [paper] ASIC DRX clock (FreePDK-15 synthesis).
inline constexpr double asic_drx_freq_hz = 1e9;
/// [paper] Host Xeon clock.
inline constexpr double host_freq_hz = 2.4e9;

// ----------------------------------------------------------------- pcie
/// [paper] upstream port of each switch is a single x8 link.
inline constexpr unsigned upstream_lanes = 8;
/// [paper] downstream ports use x16 links.
inline constexpr unsigned downstream_lanes = 16;
/// [paper] 110 ns port-to-port switch latency.
inline constexpr Tick switch_port_latency = 110 * tick_per_ns;
/// Device ports available per switch (accelerators and DRX cards).
inline constexpr unsigned ports_per_switch = 6;
/// Host DRAM staging bandwidth for device<->host DMA. Shared by every
/// application and *independent of the PCIe generation* - this is why
/// newer PCIe generations close less of the baseline's data-movement
/// gap than raw link math suggests (Fig. 19).
inline constexpr double host_staging_bytes_per_sec = 40e9;

// ----------------------------------------------------------------- drx
/// [paper] queue memory per DRX and per queue pair -> 40 accelerators.
inline constexpr std::uint64_t drx_queue_mem_bytes = 8ull * gib;
inline constexpr std::uint64_t drx_queue_pair_bytes = 100ull * mib;
/// Standalone DRX cards amortize across this many applications.
inline constexpr unsigned apps_per_standalone_card = 2;
/// Standalone cards run at the PCIe 25 W slot budget: derated clock.
inline constexpr double standalone_drx_freq_hz = 0.8e9;

// --------------------------------------------------------------- energy
/// Host core active power (per busy core).
inline constexpr double watts_per_busy_core = 9.0;
/// Host uncore/package power over the makespan.
inline constexpr double watts_host_uncore = 35.0;
/// Accelerator idle power over the makespan (active power is per-spec).
inline constexpr double watts_accel_idle = 8.0;
/// DRX engine active power (ASIC).
inline constexpr double watts_drx_active = 4.0;
/// [paper-motivated] replicated glue, dual-port PCIe mux and private
/// DRAM per Bump-in-the-Wire DRX (Sec. VII-B energy discussion: this
/// replication is why Standalone wins energy at 10-15 apps).
inline constexpr double watts_bitw_static = 5.0;
/// Standalone card static power (board, PHY, DRAM).
inline constexpr double watts_standalone_static = 10.0;
/// Integrated (on-CPU) DRX static power.
inline constexpr double watts_integrated_static = 6.0;
/// PCIe transfer energy per byte (PHY + switch traversal, ~10 pJ/bit).
inline constexpr double joules_per_pcie_byte = 1.25e-9;

} // namespace dmx::sys

#endif // DMX_SYS_CALIBRATION_HH
