#include "sys/energy.hh"

#include "sys/calibration.hh"

namespace dmx::sys
{

EnergyReport
computeEnergy(const EnergyInputs &in)
{
    EnergyReport rep;
    rep.host_joules = in.host_busy_core_seconds * watts_per_busy_core +
                      in.makespan_seconds * watts_host_uncore;

    const double accel_idle_seconds =
        in.makespan_seconds * in.accel_count - in.accel_busy_seconds;
    rep.accel_joules =
        in.accel_busy_seconds * in.accel_active_watts +
        (accel_idle_seconds > 0 ? accel_idle_seconds : 0) *
            in.accel_idle_watts;

    rep.drx_joules = in.drx_busy_seconds * watts_drx_active +
                     in.makespan_seconds * in.drx_count *
                         in.drx_static_watts_per_unit;

    rep.pcie_joules =
        static_cast<double>(in.pcie_bytes) * joules_per_pcie_byte;
    return rep;
}

} // namespace dmx::sys
