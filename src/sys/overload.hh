/**
 * @file
 * Open-loop overload stress engine over the runtime::Platform.
 *
 * The figure harnesses and the multi-tenant mode are *closed* loops: a
 * stream never has more than one request in flight, so offered load can
 * never exceed capacity. Overload protection only shows its value under
 * an *open* loop - requests arrive on a clock, whether or not earlier
 * ones finished - so this engine drives a bank of identical accelerator
 * devices at a configurable multiple of their saturation rate while a
 * seeded fault plan fails/hangs a fraction of kernels, and measures what
 * the overload-protection stack (robust::RobustConfig: admission
 * control, per-device circuit breakers, credit-based submission
 * backpressure, deadline budgets) buys:
 *
 *  - goodput (successful requests per simulated second of makespan),
 *  - shed rate and p99 latency of the successful requests,
 *  - circuit-breaker open time and fast-fails,
 *  - submission-ring overruns (legacy) vs. bounded rings (protected).
 *
 * Saturation is self-calibrated: one request is first timed alone on an
 * idle, fault-free platform, and arrivals are spaced so that
 * `load = 1.0` offers exactly one request per device-service-time per
 * device. Everything is deterministic: equal configs give byte-equal
 * results at any exec::ScenarioRunner --jobs level.
 */

#ifndef DMX_SYS_OVERLOAD_HH
#define DMX_SYS_OVERLOAD_HH

#include <cstdint>
#include <vector>

#include "common/percentile.hh"
#include "common/units.hh"
#include "robust/robust.hh"
#include "runtime/runtime.hh"

namespace dmx::sys
{

/** One overload stress point. */
struct OverloadConfig
{
    unsigned devices = 4;            ///< identical accelerator devices
    unsigned requests = 160;         ///< total offered requests
    /// Offered load as a multiple of aggregate saturation: 1.0 arrives
    /// exactly as fast as the device bank can serve, 2.0 twice that.
    double load = 1.0;
    /// Fraction of kernels faulted (80% fail fast, 20% hang until the
    /// watchdog fires), drawn from a seeded per-site stream.
    double fault_rate = 0.0;
    std::uint64_t seed = 1;
    std::uint64_t request_bytes = 4096;  ///< payload per request
    /// Per-device submission-ring capacity in bytes. The legacy path
    /// overruns this ring under overload (counted, per queue); the
    /// protected path credit-gates producers so it never can.
    std::uint64_t ring_bytes = 8 * 4096;
    /// Overload protection; the default (all-off) is the legacy
    /// baseline the protected run is compared against.
    robust::RobustConfig robust;
    /// When > 0, overrides robust.deadline with this multiple of the
    /// self-calibrated solo service time, so deadline budgets track the
    /// workload instead of hard-coding ticks.
    double deadline_factor = 0;
    /// Batched submission window (runtime::submitBatch): each device
    /// packs up to `batch` pending requests into one submission with
    /// coalesced completion notifications. Admission, deadlines and
    /// retries stay per request (per batch member). A partial batch
    /// flushes after `batch` arrival intervals, so credit gates and
    /// bounded rings can never deadlock the accumulator. Default 1 is
    /// the legacy one-command-per-submission path, byte-identical to
    /// before.
    unsigned batch = 1;
};

/** Results of one overload stress point. */
struct OverloadStats
{
    std::uint64_t offered = 0;       ///< requests that arrived
    std::uint64_t completed = 0;     ///< settled Ok
    std::uint64_t shed = 0;          ///< settled Shed (admission/breaker)
    std::uint64_t failed = 0;        ///< settled Failed
    std::uint64_t timed_out = 0;     ///< settled TimedOut (watchdog or
                                     ///< deadline budget)

    double goodput_rps = 0;          ///< completed / makespan seconds
    double mean_latency_ms = 0;      ///< mean over completed requests
    double p99_latency_ms = 0;       ///< nearest-rank p99 over completed
    double makespan_ms = 0;          ///< arrival of first to last settle

    std::uint64_t queue_overflows = 0;      ///< ring pushes rejected
    std::uint64_t ring_credit_window = 0;   ///< bytes, per ring
    std::uint64_t max_ring_high_water = 0;  ///< worst ring fill seen
    std::uint64_t backpressure_stalls = 0;  ///< gated submissions blocked
    double backpressure_stall_ms = 0;       ///< total blocked time

    std::uint64_t breaker_opens = 0;        ///< Closed/HalfOpen -> Open
    std::uint64_t breaker_fast_fails = 0;   ///< rejected by open breakers
    double breaker_open_ms = 0;             ///< total quarantine time
    std::uint64_t retries = 0;              ///< retry attempts scheduled
    std::uint64_t watchdog_timeouts = 0;    ///< per-attempt expiries

    /// Completion-notification accounting (OverloadConfig::batch):
    /// notification events delivered - by interrupt or, when NAPI
    /// switched the controller to polled mode, by poll - and member
    /// completions whose own notification was absorbed into a batch's
    /// coalesced one. Both 0 without a fault plan (the fault-free
    /// settle path never paid notifications, batched or not).
    std::uint64_t irq_notifications = 0;
    std::uint64_t irq_suppressed = 0;

    /// Full latency distribution of the completed requests; mean/p99
    /// are bit-identical to the scalar fields above.
    common::LatencySummary completed_latency;
    /// Time-to-shed distribution: arrival to Shed settle. A protected
    /// config that sheds *slowly* (after queueing) can't hide behind a
    /// completed-only p99 anymore.
    common::LatencySummary shed_latency;
    /// Time-to-timeout distribution: arrival to TimedOut settle
    /// (watchdog expiry or deadline budget).
    common::LatencySummary timeout_latency;

    /** @return fraction of offered requests shed. */
    double
    shedRate() const
    {
        return offered ? static_cast<double>(shed) /
                             static_cast<double>(offered)
                       : 0;
    }
};

/** Run one overload stress point. */
OverloadStats simulateOverload(const OverloadConfig &cfg);

/**
 * Building blocks shared with the serving layer (src/serve), exported
 * so both engines drive byte-identical device banks and calibrate
 * against the same saturation yardstick.
 */

/** The overload stress kernel: byte-bound checksum-rotate pass. */
runtime::Bytes overloadStreamKernel(const runtime::Bytes &in,
                                    kernels::OpCount &ops);

/** Build the "axl<d>" device bank on @p plat; @return the device ids. */
std::vector<runtime::DeviceId> overloadAddBank(runtime::Platform &plat,
                                               unsigned devices);

/**
 * Service time of one request on an idle, fault-free platform: the
 * saturation yardstick arrivals are spaced against.
 */
Tick overloadSoloServiceTicks(const OverloadConfig &cfg);

} // namespace dmx::sys

#endif // DMX_SYS_OVERLOAD_HH
