#include "sys/system.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/percentile.hh"
#include "drx/cache.hh"
#include "exec/scenario.hh"
#include "robust/admission.hh"
#include "robust/credit.hh"
#include "sim/eventq.hh"
#include "sys/calibration.hh"
#include "trace/trace.hh"

namespace dmx::sys
{

std::string
toString(Placement p)
{
    switch (p) {
      case Placement::AllCpu:         return "all-cpu";
      case Placement::MultiAxl:       return "multi-axl";
      case Placement::IntegratedDrx:  return "integrated";
      case Placement::StandaloneDrx:  return "standalone";
      case Placement::BumpInTheWire:  return "bump-in-the-wire";
      case Placement::PcieIntegrated: return "pcie-integrated";
    }
    return "?";
}

std::string
toString(ChainSubmission c)
{
    switch (c) {
      case ChainSubmission::PerHop:     return "per-hop";
      case ChainSubmission::Descriptor: return "descriptor";
    }
    return "?";
}

double
percentileNearestRank(std::vector<double> values, double p)
{
    return common::percentileNearestRank(std::move(values), p);
}

namespace
{

/** Time phases attributed per request. */
enum class Phase { Kernel, Restructure, Movement };

/**
 * Global-index bookkeeping for one fabric domain of a larger system.
 * A shard simulates apps [first_app, first_app + count); first_switch
 * and first_card offset its locally created switches and standalone
 * DRX cards so every node, unit and track name matches what the
 * monolithic engine would have produced for the same hardware.
 */
struct ShardLayout
{
    unsigned first_app = 0;
    unsigned count = 0;
    unsigned first_switch = 0;
    unsigned first_card = 0;
};

/** Raw per-app outputs of one shard, in global app order. */
struct ShardAppResult
{
    double latency_ms_sum = 0;
    std::vector<double> latencies_ms;
    std::uint64_t shed = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t gate_stalls = 0;
    Tick gate_stall_ticks = 0;
    Tick time_ticks[3] = {0, 0, 0};
    std::vector<Tick> stage_ticks;
};

/**
 * Everything one shard's closed loop produced, kept raw (per-app and
 * per-unit) so SystemSim::finalize can replay the monolithic engine's
 * exact accumulation order over the concatenation of all shards.
 */
struct ShardResult
{
    std::vector<ShardAppResult> apps;
    Tick last_done = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t polls = 0;
    std::uint64_t pcie_bytes = 0;
    std::uint64_t flow_retries = 0;
    std::uint64_t dropped_irqs = 0;
    std::uint64_t queue_overflows = 0;
    std::uint64_t peak_active_flows = 0;
    std::uint64_t driver_round_trips = 0;
    std::uint64_t desc_fetches = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t suppressed_notifications = 0;
    std::uint64_t coalesced_bursts = 0;
    double host_busy_core_seconds = 0;
    /// Per-unit busy seconds and active watts in unit-creation order:
    /// summed flat in finalize so the single-shard sum is bit-identical
    /// to the legacy in-place accumulation.
    std::vector<double> accel_busy_seconds;
    std::vector<double> accel_watts;
    std::vector<double> drx_busy_seconds;
    unsigned drx_unit_count = 0;
    /// The shard's private trace (only filled when the caller had an
    /// active buffer); appended to the caller's buffer in shard order.
    trace::TraceBuffer trace;
};

/** The whole live simulation state (one fabric domain). */
class SystemSim
{
  public:
    SystemSim(const SystemConfig &cfg, const std::vector<AppModel> &apps,
              ShardLayout layout);
    RunStats run();

    /** Run this shard's closed loop and harvest its raw outputs. */
    ShardResult simulate();

    /**
     * Fold shard outputs (in domain order) into RunStats, replaying
     * the legacy aggregation loop over the flattened app and unit
     * sequences so a single full-system shard reduces bit-identically
     * to the pre-shard engine.
     */
    static RunStats finalize(const SystemConfig &cfg,
                             std::vector<ShardResult> &shards);

    /** @return the layout covering the whole system as one shard. */
    static ShardLayout
    fullLayout(const SystemConfig &cfg)
    {
        return ShardLayout{0, cfg.n_apps, 0, 0};
    }

  private:
    struct AppInstance
    {
        const AppModel *model = nullptr;
        std::vector<accel::DeviceUnit *> accel_units;
        std::vector<pcie::NodeId> accel_nodes;
        std::vector<pcie::NodeId> drx_nodes;          ///< BitW: per accel
        std::vector<accel::DeviceUnit *> drx_units;   ///< per motion site
        std::vector<pcie::NodeId> switch_drx_nodes;   ///< PcieIntegrated
        std::unique_ptr<driver::DrxQueues> queues;    ///< BitW occupancy

        unsigned requests_done = 0;
        Tick request_start = 0;
        Tick phase_start = 0;
        Tick flow_start = 0;
        Tick time_ticks[3] = {0, 0, 0};          ///< per Phase totals
        std::vector<Tick> stage_ticks;           ///< 2K-1 stage totals
        double latency_ms_sum = 0;

        unsigned priority = 0;                   ///< admission priority
        std::uint64_t shed = 0;                  ///< admission-shed requests
        std::uint64_t deadline_misses = 0;
        std::vector<double> latencies_ms;        ///< completed, for p99
        /// Credit gates in front of the BitW per-stage RX rings,
        /// indexed by motion k (gate k guards rx(k+1, Accelerator)).
        std::vector<std::unique_ptr<robust::CreditGate>> gates;
        /// Whether the in-flight motion's RX push was accepted; a
        /// rejected (overflowed) push must not be popped later.
        bool push_ok = true;
        /// Batched-submission cursors (SystemConfig::batch > 1), kept
        /// PER APP so batching never couples shard domains: flow
        /// submission seq (one doorbell per `batch` submissions) and
        /// pipeline-step completion seq (one interrupt per `batch`
        /// steps, the rest discovered by completion-record polls).
        std::uint64_t submission_seq = 0;
        std::uint64_t completion_seq = 0;
    };

    void startRequest(std::size_t a);
    void startKernel(std::size_t a, std::size_t k);
    void kernelDone(std::size_t a, std::size_t k);
    void startMotion(std::size_t a, std::size_t k);
    void restructureDone(std::size_t a, std::size_t k);
    void deliverToNext(std::size_t a, std::size_t k);
    void requestDone(std::size_t a);

    /** Close the current phase, attributing elapsed time. */
    void closePhase(AppInstance &app, Phase phase, std::size_t stage);

    /** @return the app's trace track label, e.g. "app0". */
    std::string trackName(const AppInstance &app) const;

    /**
     * Record the driver-notification wait since the last phase close as
     * a Driver span, so an app track's spans tile its whole timeline.
     */
    void traceGap(AppInstance &app);

    /** Driver notification latency then continue with @p next. */
    void notifyThen(std::size_t a, std::function<void()> next);

    /**
     * Continue a mid-chain pipeline step: a full notify/doorbell round
     * trip in PerHop mode, a linked-descriptor fetch by the engine in
     * Descriptor mode (the host is never involved).
     */
    void chainThen(std::size_t a, std::function<void()> next);

    /**
     * A flow that survives injected faults: corrupted (or stalled,
     * mapped to corrupted by the installed hook) transfers are
     * retransmitted until delivered, each replay re-paying the full
     * transfer under current contention.
     */
    void startFlowReliable(std::size_t a, pcie::NodeId src,
                           pcie::NodeId dst, std::uint64_t bytes,
                           std::function<void()> done);

    /**
     * Batched-submission leg of startFlowReliable: submit @p d as a
     * descriptor (full dma_setup only when @p first), retransmitting
     * corrupted deliveries like the legacy path. Replays re-fetch
     * their descriptor - the doorbell was already rung.
     */
    void startDescriptorReliable(pcie::DmaDescriptor d, bool first,
                                 std::function<void()> done);

    /** @return app a's credit gate for motion k, or nullptr. */
    robust::CreditGate *gateFor(std::size_t a, std::size_t k);

    /** Account a rejected DataQueue push against the offending queue. */
    void reportOverflow(const driver::DataQueue &q);

    const SystemConfig &_cfg;
    const ShardLayout _layout;
    sim::EventQueue _eq;
    std::unique_ptr<pcie::Fabric> _fabric;
    std::unique_ptr<cpu::CorePool> _pool;
    std::unique_ptr<driver::InterruptController> _irq;
    std::vector<std::unique_ptr<accel::DeviceUnit>> _units;
    std::vector<AppInstance> _apps;
    pcie::NodeId _rc = 0;
    pcie::NodeId _hostmem = 0; ///< DRAM staging behind the root complex
    std::uint64_t _flow_retries = 0;
    std::uint64_t _dropped_irqs = 0;
    std::uint64_t _driver_round_trips = 0;
    std::uint64_t _desc_fetches = 0;
    std::uint64_t _suppressed_notifications = 0;
    /// System-level admission: depth is the system-wide in-flight
    /// request count; sojourn feedback is end-to-end request latency.
    std::unique_ptr<robust::AdmissionController> _admission;
    std::uint64_t _inflight = 0;
    std::uint64_t _queue_overflows = 0;
    Tick _last_done = 0;
    /// Per-accelerator active watts in creation order (finalize sums
    /// these flat, preserving the legacy accumulation order exactly).
    std::vector<double> _accel_watts;
    unsigned _drx_unit_count = 0;
    std::vector<accel::DeviceUnit *> _accel_unit_ptrs;
    std::vector<accel::DeviceUnit *> _drx_unit_ptrs;
};

SystemSim::SystemSim(const SystemConfig &cfg,
                     const std::vector<AppModel> &apps,
                     ShardLayout layout)
    : _cfg(cfg), _layout(layout)
{
    if (apps.empty())
        dmx_fatal("simulateSystem: no application models");
    if (cfg.n_apps == 0)
        dmx_fatal("simulateSystem: need at least one application");
    if (_layout.count == 0 ||
        _layout.first_app + _layout.count > cfg.n_apps)
        dmx_fatal("simulateSystem: shard layout [%u, %u) outside the "
                  "%u-app system",
                  _layout.first_app, _layout.first_app + _layout.count,
                  cfg.n_apps);

    _pool = std::make_unique<cpu::CorePool>(
        _eq, "host.pool", cfg.host.cores, cfg.host.max_job_cores);
    _irq = std::make_unique<driver::InterruptController>(
        _eq, "host.irq", cfg.irq, _pool.get());

    const bool uses_fabric = cfg.placement != Placement::AllCpu;
    if (uses_fabric) {
        pcie::FabricParams fparams;
        fparams.switch_latency = switch_port_latency;
        _fabric = std::make_unique<pcie::Fabric>(_eq, "pcie", fparams);
        _rc = _fabric->addNode(pcie::NodeKind::RootComplex, "rc");
        // Host-staged transfers land in DRAM: that path's bandwidth is
        // shared across all applications and does not scale with the
        // PCIe generation.
        _hostmem = _fabric->addNode(pcie::NodeKind::EndPoint, "hostmem");
        _fabric->connectCustom(_rc, _hostmem,
                               host_staging_bytes_per_sec);
    }

    if (cfg.fault_plan) {
        if (_fabric) {
            _fabric->setFaultHook(
                [plan = cfg.fault_plan](std::uint32_t s, std::uint32_t d,
                                        std::uint64_t b) {
                    // No per-command watchdog in the closed loop: a
                    // stalled TLP is detected by link-level replay and
                    // retransmitted just like a corrupted one.
                    const fault::FlowAction a = plan->onFlow(s, d, b);
                    return a == fault::FlowAction::Stall
                               ? fault::FlowAction::Corrupt
                               : a;
                });
        }
        _irq->setFaultHook(
            [plan = cfg.fault_plan] { return plan->onIrq(); });
    }

    if (cfg.integrity_plan && _fabric) {
        _fabric->setLinkCrcHook(
            [plan = cfg.integrity_plan](std::uint32_t s, std::uint32_t d,
                                        std::uint64_t b) {
                return plan->onLink(s, d, b);
            });
    }

    // Shared DRX units. The on-CPU DRX serves the whole socket, so it
    // integrates several RE-array contexts (each equivalent to one
    // bump-in-the-wire unit); jobs from different applications land on
    // different contexts, but each job runs at single-unit speed.
    std::vector<accel::DeviceUnit *> integrated_units;
    if (cfg.placement == Placement::IntegratedDrx) {
        constexpr unsigned contexts = 4;
        for (unsigned c = 0; c < contexts; ++c) {
            _units.push_back(std::make_unique<accel::DeviceUnit>(
                _eq, "drx.integrated" + std::to_string(c),
                cfg.drx.freq_hz));
            integrated_units.push_back(_units.back().get());
            _drx_unit_ptrs.push_back(_units.back().get());
        }
        _drx_unit_count = 1; // one physical on-CPU device
    }
    std::vector<accel::DeviceUnit *> standalone_cards;
    std::vector<pcie::NodeId> standalone_nodes;

    // Switch packing.
    pcie::NodeId cur_switch = 0;
    unsigned cur_ports = ports_per_switch; // force a switch on first app
    unsigned switch_count = 0;
    std::vector<pcie::NodeId> switch_ids;
    const unsigned up_lanes =
        cfg.upstream_lanes != 0
            ? cfg.upstream_lanes
            : (cfg.gen == pcie::Generation::Gen3 ? upstream_lanes : 16);
    auto ensure_ports = [&](unsigned needed) {
        if (!uses_fabric)
            return;
        if (cur_ports + needed > ports_per_switch) {
            cur_switch = _fabric->addNode(
                pcie::NodeKind::Switch,
                "sw" + std::to_string(_layout.first_switch +
                                      switch_count++));
            _fabric->connect(_rc, cur_switch, cfg.gen, up_lanes);
            switch_ids.push_back(cur_switch);
            cur_ports = 0;
            if (cfg.placement == Placement::PcieIntegrated) {
                // In-switch DRX: fat internal attach (line rate).
                const pcie::NodeId n = _fabric->addNode(
                    pcie::NodeKind::EndPoint,
                    "swdrx" + std::to_string(_layout.first_switch +
                                             switch_count - 1));
                _fabric->connect(cur_switch, n,
                                 pcie::Generation::Gen5, 16);
            }
        }
        cur_ports += needed;
    };

    for (unsigned i = 0; i < _layout.count; ++i) {
        // Global application index: names, model selection, priorities
        // and standalone-card packing all follow the whole system's
        // numbering so a shard builds exactly the hardware slice the
        // monolithic engine would.
        const unsigned g = _layout.first_app + i;
        AppInstance inst;
        inst.model = &apps[g % apps.size()];
        const std::size_t kcount = inst.model->kernels.size();
        if (kcount < 2 || inst.model->motions.size() != kcount - 1)
            dmx_fatal("AppModel '%s': malformed pipeline",
                      inst.model->name.c_str());
        inst.stage_ticks.assign(2 * kcount - 1, 0);

        // Port demand: K accelerator chains, plus possibly a new
        // Standalone card serving this and the next app.
        unsigned needed = static_cast<unsigned>(kcount);
        const bool new_card =
            cfg.placement == Placement::StandaloneDrx &&
            g % apps_per_standalone_card == 0;
        if (new_card)
            ++needed;
        ensure_ports(needed);

        if (new_card) {
            const unsigned card_id =
                _layout.first_card +
                static_cast<unsigned>(standalone_cards.size());
            standalone_nodes.push_back(_fabric->addNode(
                pcie::NodeKind::EndPoint,
                "drxcard" + std::to_string(card_id)));
            // Standalone cards carry the same single-DDR4-channel cap
            // as any DRX.
            _fabric->connectCustom(
                cur_switch, standalone_nodes.back(),
                std::min(pcie::linkBandwidth(cfg.gen, downstream_lanes),
                         cfg.drx.dram_bytes_per_sec));
            _units.push_back(std::make_unique<accel::DeviceUnit>(
                _eq,
                "drx.card" + std::to_string(card_id),
                standalone_drx_freq_hz));
            standalone_cards.push_back(_units.back().get());
            _drx_unit_ptrs.push_back(standalone_cards.back());
            ++_drx_unit_count;
        }

        for (std::size_t k = 0; k < kcount; ++k) {
            const KernelTiming &kt = inst.model->kernels[k];
            _units.push_back(std::make_unique<accel::DeviceUnit>(
                _eq,
                "app" + std::to_string(g) + ".accel" + std::to_string(k),
                kt.accel_freq_hz));
            inst.accel_units.push_back(_units.back().get());
            if (cfg.placement != Placement::AllCpu) {
                // All-CPU has no accelerator hardware to power.
                _accel_unit_ptrs.push_back(_units.back().get());
                _accel_watts.push_back(kt.accel_active_watts);
            }

            if (!uses_fabric)
                continue;
            if (cfg.placement == Placement::BumpInTheWire) {
                // Chain: switch - DRX - accelerator. Traffic in and out
                // of a DRX is additionally capped by its single DDR4
                // channel (the paper sizes it to match an x8 Gen4
                // link), so DRX-side links stop scaling past Gen4.
                const auto drx_link_bw = std::min(
                    pcie::linkBandwidth(cfg.gen, downstream_lanes),
                    cfg.drx.dram_bytes_per_sec);
                const pcie::NodeId drx_node = _fabric->addNode(
                    pcie::NodeKind::EndPoint,
                    "app" + std::to_string(g) + ".drx" +
                        std::to_string(k));
                _fabric->connectCustom(cur_switch, drx_node,
                                       drx_link_bw);
                const pcie::NodeId accel_node = _fabric->addNode(
                    pcie::NodeKind::EndPoint,
                    "app" + std::to_string(g) + ".accel" +
                        std::to_string(k));
                _fabric->connectCustom(drx_node, accel_node,
                                       drx_link_bw);
                inst.drx_nodes.push_back(drx_node);
                inst.accel_nodes.push_back(accel_node);
                _units.push_back(std::make_unique<accel::DeviceUnit>(
                    _eq,
                    "app" + std::to_string(g) + ".drxunit" +
                        std::to_string(k),
                    cfg.drx.freq_hz));
                inst.drx_units.push_back(_units.back().get());
                _drx_unit_ptrs.push_back(_units.back().get());
                ++_drx_unit_count;
            } else {
                const pcie::NodeId accel_node = _fabric->addNode(
                    pcie::NodeKind::EndPoint,
                    "app" + std::to_string(g) + ".accel" +
                        std::to_string(k));
                _fabric->connect(cur_switch, accel_node, cfg.gen,
                                 downstream_lanes);
                inst.accel_nodes.push_back(accel_node);
            }
        }

        if (cfg.placement == Placement::BumpInTheWire) {
            inst.queues = std::make_unique<driver::DrxQueues>(
                drx_queue_mem_bytes, drx_queue_pair_bytes,
                static_cast<unsigned>(kcount));
            inst.queues->labelQueues("app" + std::to_string(g));
            if (cfg.robust.backpressure.enabled) {
                for (std::size_t k = 0; k + 1 < kcount; ++k) {
                    driver::DataQueue &q = inst.queues->rx(
                        static_cast<unsigned>(k + 1),
                        driver::PeerKind::Accelerator);
                    if (cfg.robust.backpressure.credit_window)
                        q.setCreditWindow(
                            cfg.robust.backpressure.credit_window);
                    inst.gates.push_back(
                        std::make_unique<robust::CreditGate>(
                            q.label(), q.creditWindow()));
                }
            }
        }
        if (cfg.placement == Placement::IntegratedDrx) {
            inst.drx_units.assign(
                kcount, integrated_units[g % integrated_units.size()]);
        }
        if (cfg.placement == Placement::StandaloneDrx) {
            inst.drx_units.assign(kcount, standalone_cards.back());
            inst.drx_nodes.assign(kcount, standalone_nodes.back());
        }
        if (cfg.placement == Placement::PcieIntegrated) {
            // The in-switch DRX node for this app's switch is the node
            // added right after the switch itself; recover it by name
            // order: it is the last "swdrx" created at ensure_ports.
            // Store the switch id; flows route accel->accel directly.
            inst.switch_drx_nodes.assign(kcount, cur_switch);
        }

        inst.priority =
            g < cfg.priorities.size() ? cfg.priorities[g] : 0;
        _apps.push_back(std::move(inst));
    }

    if (cfg.robust.admission.policy != robust::AdmissionPolicy::Unbounded)
        _admission = std::make_unique<robust::AdmissionController>(
            "sys.admission", cfg.robust.admission);
}

void
SystemSim::closePhase(AppInstance &app, Phase phase, std::size_t stage)
{
    const Tick at = _eq.now();
    const Tick dt = at - app.phase_start;
    app.time_ticks[static_cast<int>(phase)] += dt;
    if (stage < app.stage_ticks.size())
        app.stage_ticks[stage] += dt;
    if (auto *tb = trace::active()) {
        static constexpr trace::Category phase_cat[3] = {
            trace::Category::Kernel, trace::Category::Restructure,
            trace::Category::Movement};
        static constexpr const char *phase_name[3] = {
            "kernel", "restructure", "movement"};
        tb->span(phase_cat[static_cast<int>(phase)],
                 phase_name[static_cast<int>(phase)], trackName(app),
                 app.phase_start, at, stage);
    }
    app.phase_start = at;
}

std::string
SystemSim::trackName(const AppInstance &app) const
{
    return "app" + std::to_string(_layout.first_app +
                                  static_cast<unsigned>(&app -
                                                        _apps.data()));
}

void
SystemSim::traceGap(AppInstance &app)
{
    if (auto *tb = trace::active()) {
        if (_eq.now() > app.phase_start)
            tb->span(trace::Category::Driver, "notify_wait",
                     trackName(app), app.phase_start, _eq.now());
    }
}

void
SystemSim::notifyThen(std::size_t a, std::function<void()> next)
{
    if (_cfg.batch > 1) {
        // Coalesced completions: only every batch-th pipeline step of
        // this app raises an interrupt; the suppressed steps write a
        // completion record the host discovers by polling (the poll's
        // CPU work and detection latency are charged by the driver).
        // A suppressed step is NOT a driver round trip - no doorbell
        // returns to the device.
        AppInstance &app = _apps[a];
        ++app.completion_seq;
        if (app.completion_seq % _cfg.batch != 0) {
            ++_suppressed_notifications;
            const driver::InterruptController::Notification n =
                _irq->pollRecord();
            if (auto *tb = trace::active()) {
                tb->instant(trace::Category::Driver, "record_poll",
                            "host.irq", _eq.now());
                tb->count("sys.suppressed_notifications", _eq.now());
            }
            _eq.scheduleIn(n.latency, std::move(next));
            return;
        }
    }
    (void)a;
    ++_driver_round_trips;
    const driver::InterruptController::Notification n =
        _irq->notifyChecked();
    if (!n.delivered) {
        ++_dropped_irqs;
        if (auto *tb = trace::active())
            tb->count("sys.dropped_irqs", _eq.now());
    }
    if (auto *tb = trace::active())
        tb->instant(trace::Category::Driver,
                    n.delivered ? "irq" : "poll", "host.irq", _eq.now());
    _eq.scheduleIn(n.latency, std::move(next));
}

void
SystemSim::chainThen(std::size_t a, std::function<void()> next)
{
    if (_cfg.chain != ChainSubmission::Descriptor || !_fabric) {
        notifyThen(a, std::move(next));
        return;
    }
    (void)a;
    // The engine pulls the next linked descriptor out of host memory
    // itself; no interrupt reaches the host and no doorbell returns.
    ++_desc_fetches;
    if (auto *tb = trace::active()) {
        tb->instant(trace::Category::Driver, "desc_fetch", "host.irq",
                    _eq.now());
        tb->count("sys.descriptor_fetches", _eq.now());
    }
    _eq.scheduleIn(_fabric->params().desc_fetch_latency,
                   std::move(next));
}

void
SystemSim::startFlowReliable(std::size_t a, pcie::NodeId src,
                             pcie::NodeId dst, std::uint64_t bytes,
                             std::function<void()> done)
{
    if (_cfg.batch > 1) {
        // Batched submission: the app rings one full doorbell per
        // `batch` flows; the others are engine descriptor fetches of
        // pre-written descriptors (the DSA batch-descriptor model).
        AppInstance &app = _apps[a];
        const bool first = app.submission_seq % _cfg.batch == 0;
        ++app.submission_seq;
        startDescriptorReliable({src, dst, bytes}, first,
                                std::move(done));
        return;
    }
    _fabric->startFlowChecked(
        src, dst, bytes,
        [this, a, src, dst, bytes,
         done = std::move(done)](bool ok) mutable {
            if (ok) {
                done();
                return;
            }
            ++_flow_retries;
            if (auto *tb = trace::active()) {
                tb->count("sys.flow_retries", _eq.now());
                tb->instant(trace::Category::Retry, "flow_retry", "pcie",
                            _eq.now());
            }
            startFlowReliable(a, src, dst, bytes, std::move(done));
        });
}

void
SystemSim::startDescriptorReliable(pcie::DmaDescriptor d, bool first,
                                   std::function<void()> done)
{
    _fabric->startDescriptorFlow(
        d, first, [this, d, done = std::move(done)](bool ok) mutable {
            if (ok) {
                done();
                return;
            }
            ++_flow_retries;
            if (auto *tb = trace::active()) {
                tb->count("sys.flow_retries", _eq.now());
                tb->instant(trace::Category::Retry, "flow_retry", "pcie",
                            _eq.now());
            }
            startDescriptorReliable(d, false, std::move(done));
        });
}

robust::CreditGate *
SystemSim::gateFor(std::size_t a, std::size_t k)
{
    AppInstance &app = _apps[a];
    return k < app.gates.size() ? app.gates[k].get() : nullptr;
}

void
SystemSim::reportOverflow(const driver::DataQueue &q)
{
    ++_queue_overflows;
    if (_cfg.fault_plan)
        _cfg.fault_plan->onQueueOverflow(q.label());
    if (auto *tb = trace::active()) {
        tb->instant(trace::Category::Robust, "queue_overflow",
                    q.label().empty() ? "queue" : q.label(), _eq.now());
        tb->count("sys.queue_overflows", _eq.now());
    }
}

void
SystemSim::startRequest(std::size_t a)
{
    AppInstance &app = _apps[a];
    if (_admission &&
        !_admission->admit(_eq.now(), _inflight, app.priority)) {
        // Shed: the request terminates immediately (observed like a
        // timeout) and still counts toward the closed loop's quota;
        // the re-issue is delayed so the loop cannot spin in place.
        ++app.shed;
        ++app.requests_done;
        _last_done = std::max(_last_done, _eq.now());
        if (app.requests_done < _cfg.requests_per_app)
            _eq.scheduleIn(_cfg.robust.admission.shed_retry,
                           [this, a] { startRequest(a); });
        return;
    }
    ++_inflight;
    app.request_start = _eq.now();
    app.phase_start = _eq.now();
    startKernel(a, 0);
}

void
SystemSim::startKernel(std::size_t a, std::size_t k)
{
    AppInstance &app = _apps[a];
    const KernelTiming &kt = app.model->kernels[k];
    traceGap(app); // PcieIntegrated delivers behind a doorbell notify
    app.phase_start = _eq.now();
    if (_cfg.placement == Placement::AllCpu) {
        _pool->submit(kt.cpu_core_seconds, kt.max_host_cores,
                      [this, a, k] { kernelDone(a, k); });
    } else {
        app.accel_units[k]->submit(kt.accel_cycles,
                                   [this, a, k] { kernelDone(a, k); });
    }
}

void
SystemSim::kernelDone(std::size_t a, std::size_t k)
{
    AppInstance &app = _apps[a];
    closePhase(app, Phase::Kernel, 2 * k);
    if (k + 1 == app.model->kernels.size()) {
        if (_cfg.placement == Placement::AllCpu) {
            requestDone(a);
        } else {
            // Final completion interrupt back to the host program.
            notifyThen(a, [this, a] { requestDone(a); });
        }
        return;
    }
    if (_cfg.placement == Placement::AllCpu) {
        startMotion(a, k);
        return;
    }
    // Completion interrupt; the driver then programs the DMA. Under
    // descriptor chaining the engine already holds the next transfer's
    // descriptor, so chainThen replaces the round trip with a fetch.
    chainThen(a, [this, a, k] { startMotion(a, k); });
}

void
SystemSim::startMotion(std::size_t a, std::size_t k)
{
    AppInstance &app = _apps[a];
    const MotionTiming &mt = app.model->motions[k];
    switch (_cfg.placement) {
      case Placement::AllCpu:
        // No movement: restructure directly on the host.
        app.phase_start = _eq.now();
        _pool->submit(mt.cpu_core_seconds,
                      [this, a, k] { restructureDone(a, k); });
        return;
      case Placement::MultiAxl:
      case Placement::IntegratedDrx:
        // Stage through host memory.
        startFlowReliable(a, app.accel_nodes[k], _hostmem, mt.in_bytes,
                          [this, a, k] {
            AppInstance &ap = _apps[a];
            closePhase(ap, Phase::Movement, 2 * k + 1);
            const MotionTiming &m = ap.model->motions[k];
            if (_cfg.placement == Placement::MultiAxl) {
                _pool->submit(m.cpu_core_seconds, [this, a, k] {
                    restructureDone(a, k);
                });
            } else {
                ap.drx_units[k]->submit(m.drx_cycles, [this, a, k] {
                    restructureDone(a, k);
                });
            }
        });
        return;
      case Placement::StandaloneDrx:
      case Placement::BumpInTheWire: {
        const auto flow_in = [this, a, k] {
            AppInstance &ap = _apps[a];
            startFlowReliable(a, ap.accel_nodes[k], ap.drx_nodes[k],
                              ap.model->motions[k].in_bytes,
                              [this, a, k] {
                AppInstance &ap2 = _apps[a];
                closePhase(ap2, Phase::Movement, 2 * k + 1);
                ap2.drx_units[k]->submit(
                    ap2.model->motions[k].drx_cycles,
                    [this, a, k] { restructureDone(a, k); });
            });
        };
        if (app.queues) {
            driver::DataQueue &q = app.queues->rx(
                static_cast<unsigned>(k + 1),
                driver::PeerKind::Accelerator);
            if (robust::CreditGate *gate = gateFor(a, k)) {
                // Credit-gated producer: the accelerator may not push
                // until the RX ring has window room; a blocked push
                // waits in simulated time and is traced as
                // backpressure. Grants are clamped to the ring's
                // capacity, so a granted push can never overflow.
                gate->acquire(app.model->motions[k].in_bytes, _eq.now(),
                              [this, a, k, flow_in](Tick) {
                    AppInstance &ap = _apps[a];
                    ap.queues
                        ->rx(static_cast<unsigned>(k + 1),
                             driver::PeerKind::Accelerator)
                        .push(ap.model->motions[k].in_bytes);
                    ap.push_ok = true;
                    flow_in();
                });
                return;
            }
            app.push_ok = q.push(mt.in_bytes);
            if (!app.push_ok)
                reportOverflow(q);
        }
        flow_in();
        return;
      }
      case Placement::PcieIntegrated: {
        // Single flow through the switch; restructuring streams at line
        // rate inside it, so only its residual latency is exposed.
        app.flow_start = _eq.now();
        startFlowReliable(a, app.accel_nodes[k], app.accel_nodes[k + 1],
                          mt.in_bytes, [this, a, k] {
            AppInstance &ap = _apps[a];
            closePhase(ap, Phase::Movement, 2 * k + 1);
            const Tick elapsed = _eq.now() - ap.flow_start;
            const Tick drx_time = ClockDomain{_cfg.drx.freq_hz}
                                      .cyclesToTicks(
                                          ap.model->motions[k].drx_cycles);
            const Tick extra =
                drx_time > elapsed ? drx_time - elapsed : 0;
            _eq.scheduleIn(extra,
                           [this, a, k] { restructureDone(a, k); });
        });
        return;
      }
    }
}

void
SystemSim::restructureDone(std::size_t a, std::size_t k)
{
    AppInstance &app = _apps[a];
    closePhase(app, Phase::Restructure, 2 * k + 1);
    if (_cfg.placement == Placement::AllCpu) {
        startKernel(a, k + 1);
        return;
    }
    if (_cfg.placement == Placement::PcieIntegrated) {
        // Data already arrived with the flow; only the doorbell remains.
        chainThen(a, [this, a, k] { deliverToNext(a, k); });
        return;
    }
    // Restructure-complete interrupt, then p2p DMA to the next device
    // (a descriptor fetch instead under descriptor chaining).
    chainThen(a, [this, a, k] {
        AppInstance &ap = _apps[a];
        const MotionTiming &mt = ap.model->motions[k];
        pcie::NodeId src;
        switch (_cfg.placement) {
          case Placement::MultiAxl:
          case Placement::IntegratedDrx:
            src = _hostmem;
            break;
          default:
            src = ap.drx_nodes[k];
            break;
        }
        // The notify latency stays inside the Movement phase.
        startFlowReliable(a, src, ap.accel_nodes[k + 1], mt.out_bytes,
                          [this, a, k] {
            AppInstance &ap2 = _apps[a];
            closePhase(ap2, Phase::Movement, 2 * k + 1);
            if (ap2.queues) {
                driver::DataQueue &q = ap2.queues->rx(
                    static_cast<unsigned>(k + 1),
                    driver::PeerKind::Accelerator);
                const std::uint64_t bytes =
                    ap2.model->motions[k].in_bytes;
                if (robust::CreditGate *gate = gateFor(a, k)) {
                    q.pop(bytes);
                    gate->release(bytes, _eq.now());
                } else if (ap2.push_ok) {
                    // A rejected push left nothing to pop.
                    q.pop(bytes);
                }
            }
            deliverToNext(a, k);
        });
    });
}

void
SystemSim::deliverToNext(std::size_t a, std::size_t k)
{
    startKernel(a, k + 1);
}

void
SystemSim::requestDone(std::size_t a)
{
    AppInstance &app = _apps[a];
    traceGap(app); // the final completion interrupt's latency
    const Tick lat_ticks = _eq.now() - app.request_start;
    app.latency_ms_sum += ticksToMs(lat_ticks);
    app.latencies_ms.push_back(ticksToMs(lat_ticks));
    if (_inflight > 0)
        --_inflight;
    if (_admission)
        _admission->recordSojourn(lat_ticks, _eq.now());
    if (_cfg.robust.deadline && lat_ticks > _cfg.robust.deadline) {
        ++app.deadline_misses;
        if (auto *tb = trace::active())
            tb->count("sys.deadline_misses", _eq.now());
    }
    ++app.requests_done;
    _last_done = std::max(_last_done, _eq.now());
    if (app.requests_done < _cfg.requests_per_app)
        startRequest(a);
}

ShardResult
SystemSim::simulate()
{
    // Stagger application start times: real deployments do not launch
    // every pipeline in the same microsecond, and lock-step starts
    // artificially synchronize the contention on the host pool. The
    // stagger follows the *global* app index so a shard's apps start
    // at the same ticks as in the monolithic run.
    for (std::size_t a = 0; a < _apps.size(); ++a) {
        _eq.schedule(
            static_cast<Tick>(_layout.first_app + a) * 250 * tick_per_us,
            [this, a] { startRequest(a); });
    }
    _eq.run();

    ShardResult r;
    for (AppInstance &app : _apps) {
        if (app.requests_done != _cfg.requests_per_app)
            dmx_panic("system: app '%s' finished %u of %u requests",
                      app.model->name.c_str(), app.requests_done,
                      _cfg.requests_per_app);
        ShardAppResult ar;
        ar.latency_ms_sum = app.latency_ms_sum;
        ar.latencies_ms = std::move(app.latencies_ms);
        ar.shed = app.shed;
        ar.deadline_misses = app.deadline_misses;
        for (const auto &gate : app.gates) {
            ar.gate_stalls += gate->stalls();
            ar.gate_stall_ticks += gate->stallTicks();
        }
        for (int p = 0; p < 3; ++p)
            ar.time_ticks[p] = app.time_ticks[p];
        ar.stage_ticks = std::move(app.stage_ticks);
        r.apps.push_back(std::move(ar));
    }
    r.last_done = _last_done;
    r.interrupts = _irq->interruptsDelivered();
    r.polls = _irq->pollsDelivered();
    r.pcie_bytes = _fabric ? _fabric->totalBytes() : 0;
    r.flow_retries = _flow_retries;
    r.dropped_irqs = _dropped_irqs;
    r.queue_overflows = _queue_overflows;
    r.peak_active_flows = _fabric ? _fabric->peakActiveFlows() : 0;
    r.driver_round_trips = _driver_round_trips;
    r.desc_fetches = _desc_fetches;
    r.doorbells = _fabric ? _fabric->doorbells() : 0;
    r.suppressed_notifications = _suppressed_notifications;
    r.coalesced_bursts = _irq->coalescedBursts();
    r.host_busy_core_seconds = _pool->busyCoreSeconds();
    for (const accel::DeviceUnit *u : _accel_unit_ptrs)
        r.accel_busy_seconds.push_back(u->busySeconds());
    r.accel_watts = _accel_watts;
    for (const accel::DeviceUnit *u : _drx_unit_ptrs)
        r.drx_busy_seconds.push_back(u->busySeconds());
    r.drx_unit_count = _drx_unit_count;
    return r;
}

RunStats
SystemSim::finalize(const SystemConfig &cfg,
                    std::vector<ShardResult> &shards)
{
    RunStats stats;
    std::size_t n_apps_total = 0;
    for (const ShardResult &sh : shards)
        n_apps_total += sh.apps.size();
    const double n_reqs =
        static_cast<double>(cfg.requests_per_app) *
        static_cast<double>(n_apps_total);
    double tput_sum = 0;
    double bottleneck = 0;
    Tick last_done = 0;
    for (ShardResult &sh : shards) {
        for (ShardAppResult &app : sh.apps) {
            // Latency means are over *completed* requests; shed
            // requests never started, so they carry no latency. With
            // admission off (shed == 0) this is the legacy divisor bit
            // for bit.
            const double completed =
                static_cast<double>(cfg.requests_per_app - app.shed);
            stats.per_app_latency_ms.push_back(
                completed > 0 ? app.latency_ms_sum / completed : 0.0);
            stats.avg_latency_ms += stats.per_app_latency_ms.back();
            stats.per_app_p99_latency_ms.push_back(
                percentileNearestRank(app.latencies_ms, 0.99));
            stats.per_app_shed.push_back(app.shed);
            stats.shed_requests += app.shed;
            stats.per_app_deadline_misses.push_back(app.deadline_misses);
            stats.deadline_misses += app.deadline_misses;
            stats.backpressure_stalls += app.gate_stalls;
            stats.backpressure_stall_ticks += app.gate_stall_ticks;
            stats.kernel_ticks += app.time_ticks[0];
            stats.restructure_ticks += app.time_ticks[1];
            stats.movement_ticks += app.time_ticks[2];

            double worst_stage_ms = 0;
            for (Tick s : app.stage_ticks) {
                worst_stage_ms = std::max(
                    worst_stage_ms,
                    completed > 0 ? ticksToMs(s) / completed : 0.0);
            }
            bottleneck = std::max(bottleneck, worst_stage_ms);
            if (worst_stage_ms > 0)
                tput_sum += 1000.0 / worst_stage_ms;
        }
        last_done = std::max(last_done, sh.last_done);
        stats.interrupts += sh.interrupts;
        stats.polls += sh.polls;
        stats.pcie_bytes += sh.pcie_bytes;
        stats.flow_retries += sh.flow_retries;
        stats.dropped_irqs += sh.dropped_irqs;
        stats.queue_overflows += sh.queue_overflows;
        // A per-domain fabric only sees its own flows: across domains
        // the peaks need not coincide in time, so the max over domains
        // is a lower bound on (and for one domain exactly) the global
        // peak.
        stats.peak_active_flows =
            std::max(stats.peak_active_flows, sh.peak_active_flows);
        stats.driver_round_trips += sh.driver_round_trips;
        stats.descriptor_fetches += sh.desc_fetches;
        stats.doorbells += sh.doorbells;
        stats.notifications_suppressed += sh.suppressed_notifications;
        stats.coalesced_bursts += sh.coalesced_bursts;
    }
    const double n_apps = static_cast<double>(n_apps_total);
    stats.avg_latency_ms /= n_apps;
    stats.breakdown.kernel_ms = ticksToMs(stats.kernel_ticks) / n_reqs;
    stats.breakdown.restructure_ms =
        ticksToMs(stats.restructure_ticks) / n_reqs;
    stats.breakdown.movement_ms = ticksToMs(stats.movement_ticks) / n_reqs;
    stats.avg_throughput_rps = tput_sum / n_apps;
    stats.bottleneck_stage_ms = bottleneck;
    stats.makespan_ms = ticksToMs(last_done);
    stats.makespan_ticks = last_done;

    // Energy: flat per-unit sums over the shard sequence reproduce the
    // legacy creation-order accumulation exactly.
    EnergyInputs ein;
    ein.makespan_seconds = ticksToSeconds(last_done);
    double accel_watts_sum = 0;
    unsigned accel_count = 0;
    for (const ShardResult &sh : shards) {
        ein.host_busy_core_seconds += sh.host_busy_core_seconds;
        for (double b : sh.accel_busy_seconds)
            ein.accel_busy_seconds += b;
        for (double w : sh.accel_watts) {
            accel_watts_sum += w;
            ++accel_count;
        }
        for (double b : sh.drx_busy_seconds)
            ein.drx_busy_seconds += b;
        ein.drx_count += sh.drx_unit_count;
    }
    ein.accel_count = accel_count;
    if (accel_count > 0)
        ein.accel_active_watts = accel_watts_sum / accel_count;
    ein.accel_idle_watts = watts_accel_idle;
    switch (cfg.placement) {
      case Placement::BumpInTheWire:
        ein.drx_static_watts_per_unit = watts_bitw_static;
        break;
      case Placement::StandaloneDrx:
        ein.drx_static_watts_per_unit = watts_standalone_static;
        break;
      case Placement::IntegratedDrx:
        ein.drx_static_watts_per_unit = watts_integrated_static;
        break;
      default:
        break;
    }
    ein.pcie_bytes = stats.pcie_bytes;
    stats.energy = computeEnergy(ein);
    return stats;
}

RunStats
SystemSim::run()
{
    std::vector<ShardResult> shards;
    shards.push_back(simulate());
    return finalize(_cfg, shards);
}

} // namespace

RunStats
simulateSystem(const SystemConfig &cfg, const std::vector<AppModel> &apps)
{
    const drx::CacheCounters before =
        drx::ProgramCache::process().counters();
    const integrity::IntegrityStats ibefore =
        cfg.integrity_plan ? cfg.integrity_plan->stats()
                           : integrity::IntegrityStats{};
    SystemSim sim(cfg, apps, SystemSim::fullLayout(cfg));
    RunStats stats = sim.run();
    const drx::CacheCounters after =
        drx::ProgramCache::process().counters();
    stats.drx_cache_hits = after.compile_hits - before.compile_hits;
    stats.drx_cache_misses =
        after.compile_misses - before.compile_misses;
    if (cfg.integrity_plan) {
        const integrity::IntegrityStats &iafter =
            cfg.integrity_plan->stats();
        stats.integrity_injected =
            iafter.injected() - ibefore.injected();
        stats.integrity_detected =
            iafter.detected() - ibefore.detected();
        stats.integrity_corrected =
            iafter.corrected() - ibefore.corrected();
        stats.integrity_uncorrected =
            iafter.uncorrected() - ibefore.uncorrected();
        stats.integrity_sdc_escapes =
            iafter.payload_flips - ibefore.payload_flips;
        stats.link_crc_replays =
            iafter.link_crc_replays - ibefore.link_crc_replays;
    }
    return stats;
}

namespace
{

/**
 * Replay the SystemSim constructor's switch/card packing without
 * building anything, then group applications into independent fabric
 * domains: two apps share PCIe links iff they share a switch (its
 * upstream link) or a standalone DRX card (which routes through its
 * creator's switch). Both relations only ever join an app to apps at
 * adjacent indices, so every domain is a run of consecutive apps.
 *
 * @return one layout per domain, in app order
 */
std::vector<ShardLayout>
partitionDomains(const SystemConfig &cfg, const std::vector<AppModel> &apps)
{
    const unsigned n = cfg.n_apps;
    std::vector<unsigned> app_switch(n, 0);
    unsigned cur_ports = ports_per_switch; // force a switch on first app
    unsigned switch_count = 0;
    for (unsigned g = 0; g < n; ++g) {
        const AppModel &model = apps[g % apps.size()];
        unsigned needed = static_cast<unsigned>(model.kernels.size());
        const bool new_card =
            cfg.placement == Placement::StandaloneDrx &&
            g % apps_per_standalone_card == 0;
        if (new_card)
            ++needed;
        if (cur_ports + needed > ports_per_switch) {
            ++switch_count;
            cur_ports = 0;
        }
        cur_ports += needed;
        app_switch[g] = switch_count - 1;
    }

    // Union-find over apps; all joins are between adjacent indices.
    std::vector<unsigned> parent(n);
    std::iota(parent.begin(), parent.end(), 0u);
    auto find = [&](unsigned x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](unsigned a, unsigned b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    };
    for (unsigned g = 1; g < n; ++g) {
        if (app_switch[g] == app_switch[g - 1])
            unite(g, g - 1); // shared switch (and its upstream link)
        if (cfg.placement == Placement::StandaloneDrx &&
            g % apps_per_standalone_card != 0) {
            // Shares the card created by the group's first app, which
            // hangs off that app's switch.
            unite(g, g - g % apps_per_standalone_card);
        }
    }

    std::vector<ShardLayout> layouts;
    unsigned card_count = 0;
    for (unsigned g = 0; g < n; ++g) {
        if (g == 0 || find(g) != find(g - 1)) {
            ShardLayout lay;
            lay.first_app = g;
            lay.first_switch = app_switch[g];
            lay.first_card = card_count;
            layouts.push_back(lay);
        }
        ++layouts.back().count;
        if (cfg.placement == Placement::StandaloneDrx &&
            g % apps_per_standalone_card == 0)
            ++card_count;
    }
    return layouts;
}

} // namespace

RunStats
simulateSystemSharded(const SystemConfig &cfg,
                      const std::vector<AppModel> &apps, unsigned jobs)
{
    // Decomposability gate: shard only when every domain is provably
    // independent (see the header contract). Everything else takes the
    // monolithic engine, bit for bit.
    const bool placement_ok =
        cfg.placement == Placement::StandaloneDrx ||
        cfg.placement == Placement::BumpInTheWire ||
        cfg.placement == Placement::PcieIntegrated;
    if (!placement_ok || cfg.fault_plan || cfg.integrity_plan ||
        cfg.robust.admission.policy != robust::AdmissionPolicy::Unbounded)
        return simulateSystem(cfg, apps);
    if (apps.empty())
        dmx_fatal("simulateSystemSharded: no application models");
    if (cfg.n_apps == 0)
        dmx_fatal("simulateSystemSharded: need at least one application");

    const drx::CacheCounters before =
        drx::ProgramCache::process().counters();

    const std::vector<ShardLayout> layouts = partitionDomains(cfg, apps);
    trace::TraceBuffer *caller_tb = trace::active();

    std::vector<std::function<ShardResult()>> thunks;
    thunks.reserve(layouts.size());
    for (const ShardLayout &lay : layouts) {
        thunks.push_back([&cfg, &apps, lay, caller_tb] {
            ShardResult r;
            if (caller_tb) {
                // Workers have no active buffer and in serial mode the
                // caller's own buffer is visible, so a shard always
                // records into a private buffer (jobs-invariant by
                // construction) that is stitched back in shard order.
                trace::TraceBuffer tb;
                {
                    trace::TraceSession session(tb);
                    SystemSim sim(cfg, apps, lay);
                    r = sim.simulate();
                }
                r.trace = std::move(tb);
            } else {
                SystemSim sim(cfg, apps, lay);
                r = sim.simulate();
            }
            return r;
        });
    }

    exec::ScenarioRunner runner(jobs);
    std::vector<ShardResult> results =
        runner.run<ShardResult>(std::move(thunks));

    if (caller_tb) {
        for (const ShardResult &r : results)
            caller_tb->append(r.trace);
    }

    RunStats stats = SystemSim::finalize(cfg, results);
    const drx::CacheCounters after =
        drx::ProgramCache::process().counters();
    stats.drx_cache_hits = after.compile_hits - before.compile_hits;
    stats.drx_cache_misses =
        after.compile_misses - before.compile_misses;
    return stats;
}

} // namespace dmx::sys
