/**
 * @file
 * One-to-many (broadcast) and many-to-one (all-reduce) data movement
 * (paper Sec. V "One-to-many and many-to-one data movement" and the
 * Figure 17 sensitivity study).
 *
 * Baseline: the source accelerator DMAs into host memory, the CPU
 * restructures, and the driver then issues N DMA transfers
 * *sequentially* to the destinations. All-reduce is two such stages
 * (scatter-reduce, all-gather) with a host-side summation.
 *
 * DMX: Bump-in-the-Wire DRXs restructure and move data with p2p DMA,
 * overlapping restructuring with the transfers; for all-reduce the
 * destination DRX performs the summation (the vectorReduction kernel).
 */

#ifndef DMX_SYS_COLLECTIVES_HH
#define DMX_SYS_COLLECTIVES_HH

#include "cpu/host_model.hh"
#include "drx/machine.hh"
#include "pcie/generation.hh"

namespace dmx::sys
{

/** Collective experiment parameters. */
struct CollectiveConfig
{
    unsigned n_accels = 8;        ///< participants (4..32 in Fig. 17)
    std::uint64_t bytes = 8 * mib;///< payload per participant
    pcie::Generation gen = pcie::Generation::Gen3;
    drx::DrxConfig drx;
    cpu::HostParams host;
    /// Host restructuring work for one payload (core-seconds).
    double cpu_restructure_core_seconds = 0.015;
    /// DRX restructuring cycles for one payload.
    Cycles drx_restructure_cycles = 700'000;
    /// DRX summation cycles for the full reduction.
    Cycles drx_reduce_cycles = 2'000'000;
};

/** Latency of baseline vs DMX for one collective. */
struct CollectiveResult
{
    double baseline_ms = 0;
    double dmx_ms = 0;

    double
    speedup() const
    {
        return dmx_ms > 0 ? baseline_ms / dmx_ms : 0;
    }
};

/** One-to-many broadcast from accelerator 0 to all the others. */
CollectiveResult simulateBroadcast(const CollectiveConfig &cfg);

/** All-reduce (scatter-reduce + all-gather) across all accelerators. */
CollectiveResult simulateAllReduce(const CollectiveConfig &cfg);

} // namespace dmx::sys

#endif // DMX_SYS_COLLECTIVES_HH
