#include "common/stats.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iomanip>

#include "common/logging.hh"

namespace dmx::stats
{

StatBase::StatBase(StatGroup *group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (group)
        group->add(this);
}

void
StatGroup::dumpAll(std::ostream &os) const
{
    os << "---------- Begin Simulation Statistics (" << _name
       << ") ----------\n";
    for (const StatBase *s : _stats)
        s->dump(os);
    os << "---------- End Simulation Statistics ----------\n";
}

void
StatGroup::dumpAllJson(std::ostream &os) const
{
    os << "{\"group\":\"" << _name << "\",\"stats\":{";
    bool first = true;
    for (const StatBase *s : _stats)
        s->dumpJson(os, first);
    os << "}}\n";
}

void
StatGroup::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
}

namespace
{

void
printLine(std::ostream &os, const std::string &name, double value,
          const std::string &desc)
{
    os << std::left << std::setw(40) << name << ' ' << std::right
       << std::setw(16) << value << "  # " << desc << '\n';
}

/** One JSON object member; values round-trip (%.17g for non-integers). */
void
jsonMember(std::ostream &os, const std::string &name, double value,
           bool &first)
{
    if (!first)
        os << ',';
    first = false;
    char buf[40];
    if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    os << '"' << name << "\":" << buf;
}

} // namespace

void
Scalar::dump(std::ostream &os) const
{
    printLine(os, name(), _value, desc());
}

void
Scalar::dumpJson(std::ostream &os, bool &first) const
{
    jsonMember(os, name(), _value, first);
}

void
Average::dump(std::ostream &os) const
{
    printLine(os, name() + ".mean", mean(), desc());
    printLine(os, name() + ".count", static_cast<double>(_count), desc());
}

void
Average::dumpJson(std::ostream &os, bool &first) const
{
    jsonMember(os, name() + ".mean", mean(), first);
    jsonMember(os, name() + ".count", static_cast<double>(_count), first);
}

Distribution::Distribution(StatGroup *group, std::string name,
                           std::string desc, double min, double max,
                           std::size_t nbuckets)
    : StatBase(group, std::move(name), std::move(desc)), _lo(min), _hi(max),
      _buckets(nbuckets, 0)
{
    if (nbuckets == 0 || max <= min)
        dmx_panic("Distribution '%s': invalid bucket spec", this->name().c_str());
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min_seen = _max_seen = v;
    } else {
        _min_seen = std::min(_min_seen, v);
        _max_seen = std::max(_max_seen, v);
    }
    ++_count;
    _sum += v;
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        const double width = (_hi - _lo) / static_cast<double>(_buckets.size());
        auto idx = static_cast<std::size_t>((v - _lo) / width);
        idx = std::min(idx, _buckets.size() - 1);
        ++_buckets[idx];
    }
}

void
Distribution::dump(std::ostream &os) const
{
    printLine(os, name() + ".mean", mean(), desc());
    printLine(os, name() + ".min", _min_seen, desc());
    printLine(os, name() + ".max", _max_seen, desc());
    printLine(os, name() + ".underflow", static_cast<double>(_underflow),
              desc());
    printLine(os, name() + ".overflow", static_cast<double>(_overflow),
              desc());
    const double width = (_hi - _lo) / static_cast<double>(_buckets.size());
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        printLine(os,
                  name() + ".bucket[" + std::to_string(_lo + width * i) +
                      "]",
                  static_cast<double>(_buckets[i]), desc());
    }
}

void
Distribution::dumpJson(std::ostream &os, bool &first) const
{
    jsonMember(os, name() + ".mean", mean(), first);
    jsonMember(os, name() + ".min", _min_seen, first);
    jsonMember(os, name() + ".max", _max_seen, first);
    jsonMember(os, name() + ".count", static_cast<double>(_count), first);
    jsonMember(os, name() + ".underflow",
               static_cast<double>(_underflow), first);
    jsonMember(os, name() + ".overflow", static_cast<double>(_overflow),
               first);
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = _min_seen = _max_seen = 0;
}

Formula::Formula(StatGroup *group, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(group, std::move(name), std::move(desc)), _fn(std::move(fn))
{
}

void
Formula::dump(std::ostream &os) const
{
    printLine(os, name(), value(), desc());
}

void
Formula::dumpJson(std::ostream &os, bool &first) const
{
    jsonMember(os, name(), value(), first);
}

} // namespace dmx::stats
