#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace dmx
{

namespace
{

std::atomic<bool> debug_enabled{false};
std::atomic<std::uint64_t> warn_count{0};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        warn_count.fetch_add(1, std::memory_order_relaxed);
    std::FILE *sink = level >= LogLevel::Warn ? stderr : stdout;
    std::fprintf(sink, "%s: %s\n", levelTag(level), msg.c_str());
}

void
setDebugLogging(bool enabled)
{
    debug_enabled.store(enabled, std::memory_order_relaxed);
}

bool
debugLoggingEnabled()
{
    return debug_enabled.load(std::memory_order_relaxed);
}

std::uint64_t
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Panic,
               strprintf("%s:%d: %s", file, line, msg.c_str()));
    // Throw instead of abort() so tests can exercise panic paths; the
    // exception type is what gtest's *_DEATH/THROW assertions hook.
    throw std::logic_error(msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Fatal,
               strprintf("%s:%d: %s", file, line, msg.c_str()));
    throw std::runtime_error(msg);
}

} // namespace dmx
