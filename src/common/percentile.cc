#include "common/percentile.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace dmx::common
{

namespace
{

/** Shared nearest-rank index logic; @p n must be nonzero. */
std::size_t
nearestRankIndex(std::size_t n, double p)
{
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return rank - 1;
}

} // namespace

double
percentileNearestRank(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    return values[nearestRankIndex(values.size(), p)];
}

Tick
percentileNearestRank(std::vector<Tick> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    return values[nearestRankIndex(values.size(), p)];
}

LatencySummary
summarizeLatencies(const std::vector<double> &samples_ms)
{
    LatencySummary s;
    s.count = samples_ms.size();
    if (samples_ms.empty())
        return s;
    double sum = 0;
    for (double v : samples_ms)
        sum += v;
    s.mean_ms = sum / static_cast<double>(samples_ms.size());
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    s.p50_ms = sorted[nearestRankIndex(sorted.size(), 0.50)];
    s.p99_ms = sorted[nearestRankIndex(sorted.size(), 0.99)];
    s.p999_ms = sorted[nearestRankIndex(sorted.size(), 0.999)];
    return s;
}

} // namespace dmx::common
