#include "common/table.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace dmx
{

void
Table::header(std::vector<std::string> cells)
{
    _header = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    return strprintf("%.*f", digits, v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(_header);
    for (const auto &r : _rows)
        grow(r);

    os << "== " << _title << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < widths.size())
                os << " | ";
        }
        os << '\n';
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 3;
        os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
    }
    for (const auto &r : _rows)
        emit(r);
    os << '\n';
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &r : _rows)
        emit(r);
}

} // namespace dmx
