/**
 * @file
 * Simulation units and conversions.
 *
 * Simulated time is kept in integer picoseconds (Tick) so that event
 * ordering is exact and runs are bit-reproducible. Helpers convert
 * between ticks, seconds, clock frequencies and byte/bandwidth units.
 */

#ifndef DMX_COMMON_UNITS_HH
#define DMX_COMMON_UNITS_HH

#include <cstdint>

namespace dmx
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Cycle count of some clocked component. */
using Cycles = std::uint64_t;

/** A sentinel for "no time" / "not scheduled". */
inline constexpr Tick max_tick = ~Tick(0);

inline constexpr Tick tick_per_ps = 1;
inline constexpr Tick tick_per_ns = 1000;
inline constexpr Tick tick_per_us = 1000 * tick_per_ns;
inline constexpr Tick tick_per_ms = 1000 * tick_per_us;
inline constexpr Tick tick_per_s  = 1000 * tick_per_ms;

/** @return ticks expressed as (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tick_per_s);
}

/** @return ticks expressed as (double) milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tick_per_ms);
}

/** @return ticks expressed as (double) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tick_per_us);
}

/** @return seconds converted to ticks (rounded down). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(tick_per_s));
}

/** Clock description for clocked simulation objects. */
struct ClockDomain
{
    /** Clock frequency in hertz. */
    double freq_hz = 1e9;

    /** @return the period of one cycle in ticks. */
    constexpr Tick
    period() const
    {
        return static_cast<Tick>(static_cast<double>(tick_per_s) / freq_hz);
    }

    /** @return ticks needed for @p cycles cycles. */
    constexpr Tick
    cyclesToTicks(Cycles cycles) const
    {
        return static_cast<Tick>(static_cast<double>(cycles) *
                                 static_cast<double>(tick_per_s) / freq_hz);
    }

    /** @return whole cycles elapsed after @p t ticks (rounded up). */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        const double c = static_cast<double>(t) * freq_hz /
                         static_cast<double>(tick_per_s);
        const auto floor_c = static_cast<Cycles>(c);
        return c > static_cast<double>(floor_c) ? floor_c + 1 : floor_c;
    }
};

inline constexpr std::uint64_t kib = 1024;
inline constexpr std::uint64_t mib = 1024 * kib;
inline constexpr std::uint64_t gib = 1024 * mib;

/** Bandwidth in bytes per second. */
using BytesPerSec = double;

/**
 * Time to move @p bytes at @p bw bytes/second.
 *
 * @return transfer time in ticks (at least 1 tick for nonzero sizes).
 */
constexpr Tick
transferTicks(std::uint64_t bytes, BytesPerSec bw)
{
    if (bytes == 0)
        return 0;
    const double sec = static_cast<double>(bytes) / bw;
    const Tick t = secondsToTicks(sec);
    return t == 0 ? 1 : t;
}

} // namespace dmx

#endif // DMX_COMMON_UNITS_HH
