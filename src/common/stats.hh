/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Statistics register themselves with a StatGroup; groups can be dumped
 * to any ostream. Only the stat kinds the simulator actually needs are
 * provided: scalar counters, averages, distributions and formulas
 * evaluated at dump time.
 */

#ifndef DMX_COMMON_STATS_HH
#define DMX_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dmx::stats
{

class StatGroup;

/** Base class for everything dumpable. */
class StatBase
{
  public:
    /**
     * @param group owning group (may be null for free-standing stats)
     * @param name  dotted stat name
     * @param desc  human-readable description
     */
    StatBase(StatGroup *group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Write one or more lines describing the current value. */
    virtual void dump(std::ostream &os) const = 0;

    /**
     * Write the current value as JSON object members ("name": value
     * pairs). @p first tracks whether a separating comma is needed and
     * is cleared after the first member.
     */
    virtual void dumpJson(std::ostream &os, bool &first) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A named collection of statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Called by StatBase's constructor. */
    void add(StatBase *stat) { _stats.push_back(stat); }

    /** Dump every registered stat. */
    void dumpAll(std::ostream &os) const;

    /**
     * Dump every registered stat as one machine-readable JSON object:
     * {"group": <name>, "stats": {"stat.name": value, ...}}.
     */
    void dumpAllJson(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

  private:
    std::string _name;
    std::vector<StatBase *> _stats;
};

/** Monotonic (or at least additive) scalar counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    void set(double v) { _value = v; }
    double value() const { return _value; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os, bool &first) const override;
    void reset() override { _value = 0; }

  private:
    double _value = 0;
};

/** Running average (sum / count). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { _sum += v; ++_count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os, bool &first) const override;
    void reset() override { _sum = 0; _count = 0; }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/** Fixed-bucket distribution with under/overflow buckets. */
class Distribution : public StatBase
{
  public:
    /**
     * @param group  owning group
     * @param name   stat name
     * @param desc   description
     * @param min    lowest bucketed value
     * @param max    highest bucketed value
     * @param nbuckets number of equal-width buckets between min and max
     */
    Distribution(StatGroup *group, std::string name, std::string desc,
                 double min, double max, std::size_t nbuckets);

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minSample() const { return _min_seen; }
    double maxSample() const { return _max_seen; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os, bool &first) const override;
    void reset() override;

  private:
    double _lo, _hi;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0, _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0;
    double _min_seen = 0, _max_seen = 0;
};

/** A value computed from other stats at dump time. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *group, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return _fn ? _fn() : 0.0; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os, bool &first) const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

} // namespace dmx::stats

#endif // DMX_COMMON_STATS_HH
