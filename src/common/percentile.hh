/**
 * @file
 * Shared nearest-rank percentile and latency-summary helpers.
 *
 * Every layer that reports tail latency (the overload engine, the
 * serving engine, the multi-tenant simulator, the stress tools) must
 * agree on what "p99" means, or protected-vs-legacy comparisons drift
 * on definition instead of behaviour. This is the one implementation:
 * nearest-rank (no interpolation) over a sorted copy of the samples,
 *
 *   rank = clamp(ceil(p * n), 1, n),  result = sorted[rank - 1],
 *
 * so a single-element sample returns that element at every percentile
 * and an empty sample returns 0. LatencySummary packages the standard
 * p50/p99/p999 triple plus mean and count; the mean is accumulated in
 * the caller's sample order (before sorting), keeping results
 * bit-identical to the historical inline computations it replaced.
 */

#ifndef DMX_COMMON_PERCENTILE_HH
#define DMX_COMMON_PERCENTILE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace dmx::common
{

/** @return the nearest-rank percentile @p p (in [0, 1]) of @p values. */
double percentileNearestRank(std::vector<double> values, double p);

/** Integer-tick overload: exact, no double rounding of tick samples. */
Tick percentileNearestRank(std::vector<Tick> values, double p);

/** The standard latency triple over one sample population. */
struct LatencySummary
{
    std::uint64_t count = 0; ///< samples summarized
    double mean_ms = 0;      ///< arithmetic mean, sample order
    double p50_ms = 0;       ///< nearest-rank median
    double p99_ms = 0;       ///< nearest-rank p99
    double p999_ms = 0;      ///< nearest-rank p999
};

/**
 * Summarize @p samples_ms (latencies in milliseconds, in whatever
 * order the caller collected them; the mean sums in that order).
 */
LatencySummary summarizeLatencies(const std::vector<double> &samples_ms);

} // namespace dmx::common

#endif // DMX_COMMON_PERCENTILE_HH
