#include "common/strutil.hh"

#include <cctype>
#include <cstdint>

#include "common/logging.hh"

namespace dmx
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int idx = 0;
    while (v >= 1024.0 && idx < 4) {
        v /= 1024.0;
        ++idx;
    }
    return strprintf("%.1f %s", v, suffix[idx]);
}

std::string
formatRatio(double r)
{
    return strprintf("%.2fx", r);
}

} // namespace dmx
