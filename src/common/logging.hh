/**
 * @file
 * Status-message and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant of the simulator itself was violated;
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  - the *user* asked for something impossible (bad configuration,
 *            invalid arguments); exits with an error code.
 * warn()   - behaviour may be approximate but the simulation continues.
 * inform() - plain status output.
 */

#ifndef DMX_COMMON_LOGGING_HH
#define DMX_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <sstream>
#include <string>

namespace dmx
{

/** Severity levels understood by the log sink. */
enum class LogLevel : std::uint8_t { Debug, Info, Warn, Fatal, Panic };

/**
 * Route a formatted message to the process log sink.
 *
 * @param level severity of the message
 * @param msg   fully formatted message body
 */
void logMessage(LogLevel level, const std::string &msg);

/** Enable or disable Debug-level messages (off by default). */
void setDebugLogging(bool enabled);

/** @return true when Debug-level messages are being emitted. */
bool debugLoggingEnabled();

/**
 * Count of warnings emitted so far in this process.
 * Exposed so tests can assert that a code path warned.
 */
std::uint64_t warnCount();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal worker for panic(); never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Internal worker for fatal(); never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace dmx

/** Abort on a simulator bug. Arguments are printf-style. */
#define dmx_panic(...) \
    ::dmx::panicImpl(__FILE__, __LINE__, ::dmx::strprintf(__VA_ARGS__))

/** Exit on a user error. Arguments are printf-style. */
#define dmx_fatal(...) \
    ::dmx::fatalImpl(__FILE__, __LINE__, ::dmx::strprintf(__VA_ARGS__))

/** Warn but continue. */
#define dmx_warn(...) \
    ::dmx::logMessage(::dmx::LogLevel::Warn, ::dmx::strprintf(__VA_ARGS__))

/** Plain status message. */
#define dmx_inform(...) \
    ::dmx::logMessage(::dmx::LogLevel::Info, ::dmx::strprintf(__VA_ARGS__))

/** Debug message, compiled in but gated at runtime. */
#define dmx_debug(...)                                                     \
    do {                                                                   \
        if (::dmx::debugLoggingEnabled()) {                                \
            ::dmx::logMessage(::dmx::LogLevel::Debug,                      \
                              ::dmx::strprintf(__VA_ARGS__));              \
        }                                                                  \
    } while (0)

/** Invariant check that survives NDEBUG builds. */
#define dmx_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dmx::panicImpl(__FILE__, __LINE__,                           \
                             std::string("assertion failed: " #cond " ") + \
                                 ::dmx::strprintf(__VA_ARGS__));           \
        }                                                                  \
    } while (0)

#endif // DMX_COMMON_LOGGING_HH
