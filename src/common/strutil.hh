/**
 * @file
 * Small string helpers used across the simulator.
 */

#ifndef DMX_COMMON_STRUTIL_HH
#define DMX_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace dmx
{

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Join @p parts with @p sep between them. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** @return true when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Render a byte count as a human string, e.g. "8.0 MiB". */
std::string formatBytes(std::uint64_t bytes);

/** Render a ratio as e.g. "3.42x". */
std::string formatRatio(double r);

} // namespace dmx

#endif // DMX_COMMON_STRUTIL_HH
