/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload generation, test
 * data) must draw from an explicitly seeded Rng so runs are reproducible.
 * The generator is xoshiro256** with a splitmix64 seeding routine.
 *
 * Streams are explicitly *splittable*: Rng(seed, stream) derives an
 * independent stream per (seed, stream-id) pair, so N parallel
 * scenarios can share one experiment seed while each drawing from its
 * own uncorrelated sequence (stream id = submission index in
 * exec::ScenarioRunner). Stream 0 is bit-identical to the legacy
 * single-argument constructor.
 */

#ifndef DMX_COMMON_RANDOM_HH
#define DMX_COMMON_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>

namespace dmx
{

/** Small, fast, deterministic RNG (xoshiro256**). */
class Rng
{
  public:
    /**
     * @param seed   any 64-bit value; equal seeds give equal streams
     * @param stream stream id splitting the seed into independent
     *               sequences; stream 0 reproduces the legacy
     *               single-argument seeding exactly
     */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull,
                 std::uint64_t stream = 0)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        // A nonzero stream id relocates the splitmix origin through an
        // avalanching finalizer, so (seed, i) and (seed, j) expand
        // from statistically unrelated points of the splitmix
        // sequence rather than nearby ones.
        std::uint64_t x = seed;
        if (stream != 0)
            x ^= mix64(stream + 0x9e3779b97f4a7c15ull) | 1;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ull;
            word = mix64(x);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound) (bound must be nonzero). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method would be overkill here;
        // 128-bit multiply keeps the bias negligible and branch-free.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

    /** @return exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u;
        do {
            u = uniform();
        } while (u <= 0.0);
        return -mean * std::log(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** splitmix64's avalanching finalizer. */
    static std::uint64_t
    mix64(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::array<std::uint64_t, 4> _state{};
};

} // namespace dmx

#endif // DMX_COMMON_RANDOM_HH
