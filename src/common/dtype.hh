/**
 * @file
 * Element data types used by restructuring kernels and the DRX.
 *
 * Data restructuring between heterogeneous accelerators routinely
 * changes element types (the paper's "typecasting" operations), so the
 * type system is modelled for real: buffers hold genuinely converted
 * bytes, including IEEE-754 half precision.
 */

#ifndef DMX_COMMON_DTYPE_HH
#define DMX_COMMON_DTYPE_HH

#include <cstdint>
#include <string>

namespace dmx
{

/** Supported element types. */
enum class DType : std::uint8_t { F32, F16, I32, I16, I8, U8 };

/** @return element size in bytes. */
std::size_t dtypeSize(DType t);

/** @return human name, e.g. "f16". */
std::string dtypeName(DType t);

/**
 * Read one element of type @p t at @p src and widen it to float.
 * Integer types are read as their numeric value.
 */
float loadAsFloat(const std::uint8_t *src, DType t);

/**
 * Narrow @p v to type @p t and store it at @p dst.
 * Integer targets round to nearest and saturate at the type bounds.
 */
void storeFromFloat(std::uint8_t *dst, DType t, float v);

/** IEEE-754 binary16 encode (round-to-nearest-even, with saturation). */
std::uint16_t floatToHalf(float v);

/** IEEE-754 binary16 decode. */
float halfToFloat(std::uint16_t h);

} // namespace dmx

#endif // DMX_COMMON_DTYPE_HH
