/**
 * @file
 * A fixed-column text table printer used by the benchmark harnesses to
 * print figures/tables in both human-readable and machine-parsable form.
 */

#ifndef DMX_COMMON_TABLE_HH
#define DMX_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace dmx
{

/** Accumulates rows of string cells and renders them aligned. */
class Table
{
  public:
    /** @param title caption printed above the table */
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; trailing cells may be omitted. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double cell with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Render aligned, pipe-separated. */
    void print(std::ostream &os) const;

    /** Render as CSV (header first), for machine consumption. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace dmx

#endif // DMX_COMMON_TABLE_HH
