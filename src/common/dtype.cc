#include "common/dtype.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace dmx
{

std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::F32:
      case DType::I32:
        return 4;
      case DType::F16:
      case DType::I16:
        return 2;
      case DType::I8:
      case DType::U8:
        return 1;
    }
    dmx_panic("dtypeSize: bad dtype");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::F32: return "f32";
      case DType::F16: return "f16";
      case DType::I32: return "i32";
      case DType::I16: return "i16";
      case DType::I8:  return "i8";
      case DType::U8:  return "u8";
    }
    return "?";
}

std::uint16_t
floatToHalf(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) &
                                                          0x8000);
    const std::int32_t exp = static_cast<std::int32_t>((bits >> 23) &
                                                       0xff) - 127 + 15;
    std::uint32_t mant = bits & 0x7fffff;

    if (((bits >> 23) & 0xff) == 0xff) {
        // Inf / NaN.
        return static_cast<std::uint16_t>(sign | 0x7c00 |
                                          (mant ? 0x200 : 0));
    }
    if (exp >= 0x1f) {
        // Overflow: saturate to max finite half (65504).
        return static_cast<std::uint16_t>(sign | 0x7bff);
    }
    if (exp <= 0) {
        // Subnormal or underflow to zero.
        if (exp < -10)
            return sign;
        mant |= 0x800000;
        const int shift = 14 - exp;
        std::uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    // Normalized. Round mantissa from 23 to 10 bits, nearest even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1fff;
    if (rem > 0x1000 || (rem == 0x1000 && (half_mant & 1))) {
        ++half_mant;
        if (half_mant == 0x400) {
            half_mant = 0;
            if (exp + 1 >= 0x1f)
                return static_cast<std::uint16_t>(sign | 0x7bff);
            return static_cast<std::uint16_t>(
                sign | ((exp + 1) << 10));
        }
    }
    return static_cast<std::uint16_t>(sign | (exp << 10) | half_mant);
}

float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = (h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1f;
    const std::uint32_t mant = h & 0x3ff;
    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign;
        } else {
            // Subnormal: normalize.
            int e = -1;
            std::uint32_t m = mant;
            do {
                ++e;
                m <<= 1;
            } while (!(m & 0x400));
            bits = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
                   ((m & 0x3ff) << 13);
        }
    } else if (exp == 0x1f) {
        bits = sign | 0x7f800000 | (mant << 13);
    } else {
        bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float out;
    std::memcpy(&out, &bits, 4);
    return out;
}

float
loadAsFloat(const std::uint8_t *src, DType t)
{
    switch (t) {
      case DType::F32: {
        float v;
        std::memcpy(&v, src, 4);
        return v;
      }
      case DType::F16: {
        std::uint16_t h;
        std::memcpy(&h, src, 2);
        return halfToFloat(h);
      }
      case DType::I32: {
        std::int32_t v;
        std::memcpy(&v, src, 4);
        return static_cast<float>(v);
      }
      case DType::I16: {
        std::int16_t v;
        std::memcpy(&v, src, 2);
        return static_cast<float>(v);
      }
      case DType::I8:
        return static_cast<float>(*reinterpret_cast<const std::int8_t *>(
            src));
      case DType::U8:
        return static_cast<float>(*src);
    }
    dmx_panic("loadAsFloat: bad dtype");
}

void
storeFromFloat(std::uint8_t *dst, DType t, float v)
{
    switch (t) {
      case DType::F32:
        std::memcpy(dst, &v, 4);
        return;
      case DType::F16: {
        const std::uint16_t h = floatToHalf(v);
        std::memcpy(dst, &h, 2);
        return;
      }
      case DType::I32: {
        const double r = std::nearbyint(static_cast<double>(v));
        const auto clamped = static_cast<std::int32_t>(
            std::clamp(r, -2147483648.0, 2147483647.0));
        std::memcpy(dst, &clamped, 4);
        return;
      }
      case DType::I16: {
        const float r = std::nearbyintf(v);
        const auto clamped = static_cast<std::int16_t>(
            std::clamp(r, -32768.0f, 32767.0f));
        std::memcpy(dst, &clamped, 2);
        return;
      }
      case DType::I8: {
        const float r = std::nearbyintf(v);
        *reinterpret_cast<std::int8_t *>(dst) =
            static_cast<std::int8_t>(std::clamp(r, -128.0f, 127.0f));
        return;
      }
      case DType::U8: {
        const float r = std::nearbyintf(v);
        *dst = static_cast<std::uint8_t>(std::clamp(r, 0.0f, 255.0f));
        return;
      }
    }
    dmx_panic("storeFromFloat: bad dtype");
}

} // namespace dmx
