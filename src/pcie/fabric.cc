#include "pcie/fabric.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::pcie
{

namespace
{

/// A flow is considered drained when fewer than this many bytes remain.
constexpr double completion_epsilon = 1.0;

} // namespace

Fabric::Fabric(sim::EventQueue &eq, std::string name, Params params)
    : sim::SimObject(eq, std::move(name)), _params(params)
{
}

NodeId
Fabric::addNode(NodeKind kind, std::string name)
{
    _nodes.push_back(Node{kind, std::move(name), {}});
    return static_cast<NodeId>(_nodes.size() - 1);
}

void
Fabric::connect(NodeId a, NodeId b, Generation gen, unsigned lanes)
{
    connectCustom(a, b, linkBandwidth(gen, lanes));
}

void
Fabric::connectCustom(NodeId a, NodeId b, BytesPerSec bandwidth)
{
    if (a >= _nodes.size() || b >= _nodes.size())
        dmx_fatal("connect: node id out of range");
    if (a == b)
        dmx_fatal("connect: cannot self-connect node %u", a);
    if (bandwidth <= 0)
        dmx_fatal("connect: need positive bandwidth");
    // Tree invariant: the two nodes must not already be connected.
    if (!findPath(a, b).empty())
        dmx_fatal("connect: %s and %s are already connected (tree only)",
                  _nodes[a].name.c_str(), _nodes[b].name.c_str());

    const auto link_id = static_cast<std::uint32_t>(_links.size());
    _links.push_back(Link{a, b, bandwidth});
    _link_stats.emplace_back();
    _nodes[a].links.push_back(link_id);
    _nodes[b].links.push_back(link_id);
}

std::vector<Fabric::DirectedLink>
Fabric::findPath(NodeId src, NodeId dst) const
{
    if (src == dst)
        return {};
    // BFS over the tree; parent[] records the directed link taken.
    std::vector<std::int64_t> parent_link(_nodes.size(), -1);
    std::vector<NodeId> parent_node(_nodes.size(), src);
    std::vector<bool> seen(_nodes.size(), false);
    std::deque<NodeId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop_front();
        if (cur == dst)
            break;
        for (std::uint32_t link_id : _nodes[cur].links) {
            const Link &link = _links[link_id];
            const NodeId other = link.a == cur ? link.b : link.a;
            if (seen[other])
                continue;
            seen[other] = true;
            parent_link[other] = link_id;
            parent_node[other] = cur;
            frontier.push_back(other);
        }
    }
    if (!seen[dst])
        return {};
    std::vector<DirectedLink> path;
    for (NodeId cur = dst; cur != src; cur = parent_node[cur]) {
        const auto link_id = static_cast<std::uint32_t>(parent_link[cur]);
        const Link &link = _links[link_id];
        // forward == the flow moves a -> b on this link.
        const bool forward = link.b == cur;
        path.push_back(DirectedLink{link_id, forward});
    }
    std::reverse(path.begin(), path.end());
    return path;
}

unsigned
Fabric::pathLength(NodeId src, NodeId dst) const
{
    return static_cast<unsigned>(findPath(src, dst).size());
}

unsigned
Fabric::switchesOnPath(NodeId src, NodeId dst) const
{
    const auto path = findPath(src, dst);
    if (path.empty())
        return 0;
    unsigned switches = 0;
    // Interior nodes of the path are every node except src and dst.
    NodeId cur = src;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Link &link = _links[path[i].link];
        cur = path[i].forward ? link.b : link.a;
        if (_nodes[cur].kind == NodeKind::Switch ||
            _nodes[cur].kind == NodeKind::RootComplex) {
            ++switches;
        }
    }
    (void)cur;
    return switches;
}

BytesPerSec
Fabric::linkCapacity(std::size_t link) const
{
    if (link >= _links.size())
        dmx_fatal("linkCapacity: link id out of range");
    return _links[link].capacity;
}

FlowId
Fabric::startFlow(NodeId src, NodeId dst, std::uint64_t bytes,
                  FlowCallback callback)
{
    // The status-blind legacy entry point: completion means delivery.
    return startFlowChecked(
        src, dst, bytes,
        [callback = std::move(callback)](bool ok) {
            (void)ok;
            if (callback)
                callback();
        });
}

FlowId
Fabric::startFlowChecked(NodeId src, NodeId dst, std::uint64_t bytes,
                         FlowStatusCallback callback)
{
    return startFlowInternal(src, dst, bytes, _params.dma_setup,
                             std::move(callback));
}

FlowId
Fabric::startDescriptorFlow(const DmaDescriptor &desc,
                            bool first_descriptor,
                            FlowStatusCallback callback)
{
    if (!first_descriptor) {
        ++_descriptor_fetches;
        if (auto *tb = trace::active())
            tb->count("fabric.descriptor_fetches", now());
    }
    return startFlowInternal(desc.src, desc.dst, desc.bytes,
                             first_descriptor
                                 ? _params.dma_setup
                                 : _params.desc_fetch_latency,
                             std::move(callback));
}

void
Fabric::startDescriptorChain(std::vector<DmaDescriptor> chain,
                             FlowStatusCallback done)
{
    if (chain.empty()) {
        if (done)
            done(true);
        return;
    }
    ++_descriptor_chains;
    if (auto *tb = trace::active())
        tb->count("fabric.descriptor_chains", now());
    // Shared walk state: each completion launches the next descriptor
    // from inside the previous one's status callback, so the engine
    // never consults the host between hops.
    auto descs = std::make_shared<std::vector<DmaDescriptor>>(
        std::move(chain));
    auto step = std::make_shared<std::function<void(std::size_t)>>();
    *step = [this, descs, step, done = std::move(done)](std::size_t i) {
        startDescriptorFlow(
            (*descs)[i], /*first_descriptor=*/i == 0,
            [this, descs, step, done, i](bool ok) {
                if (!ok || i + 1 == descs->size()) {
                    if (done)
                        done(ok);
                    return;
                }
                (*step)(i + 1);
            });
    };
    (*step)(0);
}

FlowId
Fabric::startFlowInternal(NodeId src, NodeId dst, std::uint64_t bytes,
                          Tick setup, FlowStatusCallback callback)
{
    if (src >= _nodes.size() || dst >= _nodes.size())
        dmx_fatal("startFlow: node id out of range");
    if (src == dst)
        dmx_fatal("startFlow: src == dst (%s)", _nodes[src].name.c_str());

    fault::FlowAction action = fault::FlowAction::None;
    if (_fault_hook)
        action = _fault_hook(src, dst, bytes);
    if (action == fault::FlowAction::Stall) {
        // The link wedged mid-transfer: the DMA engine never raises its
        // completion. The flow is dropped rather than parked so a
        // wedged transfer does not consume fair-share bandwidth; the
        // caller's watchdog is responsible for detecting the loss.
        ++_stalled_flows;
        if (auto *tb = trace::active())
            tb->count("fabric.stalled", now());
        return _next_flow++;
    }

    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.remaining = static_cast<double>(bytes);
    flow.trace_begin = now();
    flow.bytes = bytes;
    flow.path = findPath(src, dst);
    if (flow.path.empty())
        dmx_fatal("startFlow: no path between %s and %s",
                  _nodes[src].name.c_str(), _nodes[dst].name.c_str());
    flow.callback = std::move(callback);
    if (action == fault::FlowAction::Corrupt) {
        flow.corrupt = true;
        ++_corrupted_flows;
        if (auto *tb = trace::active())
            tb->count("fabric.corrupted", now());
    }

    // Start latency: the setup fee (full DMA-engine setup, or a linked
    // descriptor fetch) plus one traversal fee per interior node.
    Tick latency = setup;
    NodeId cur = src;
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        const Link &link = _links[flow.path[i].link];
        cur = flow.path[i].forward ? link.b : link.a;
        if (_nodes[cur].kind == NodeKind::Switch) {
            latency += _params.switch_latency;
            ++_switch_traversals;
        } else if (_nodes[cur].kind == NodeKind::RootComplex) {
            latency += _params.root_latency;
        }
    }

    // Link-CRC replay: wire errors detected by the link CRC are
    // recovered by deterministic TLP retransmission before streaming
    // becomes eligible - the payload stays intact, only time is lost.
    if (_crc_hook) {
        if (const unsigned replays = _crc_hook(src, dst, bytes)) {
            const Tick extra = replays * _params.crc_replay_latency;
            _crc_replays += replays;
            if (auto *tb = trace::active()) {
                tb->span(trace::Category::Integrity, "crc_replay",
                         "fabric", now() + latency,
                         now() + latency + extra, replays);
                tb->count("fabric.crc_replays", now(),
                          static_cast<double>(replays));
            }
            latency += extra;
        }
    }
    flow.eligible_at = now() + latency;
    _total_bytes += bytes;

    advanceProgress();
    const FlowId id = _next_flow++;
    _flows.emplace(id, std::move(flow));
    if (_flows.size() > _peak_active_flows)
        _peak_active_flows = _flows.size();
    solveRates();
    scheduleNextCompletion();
    return id;
}

void
Fabric::advanceProgress()
{
    const Tick t = now();
    if (t <= _last_update) {
        _last_update = t;
        return;
    }
    const double dt_sec = ticksToSeconds(t - _last_update);
    for (auto &[id, flow] : _flows) {
        if (flow.rate <= 0)
            continue;
        const double moved =
            std::min(flow.remaining, flow.rate * dt_sec);
        flow.remaining -= moved;
        for (const DirectedLink &dl : flow.path) {
            LinkStats &ls = _link_stats[dl.link];
            ls.bytes += static_cast<std::uint64_t>(moved);
            ls.busy_byte_seconds +=
                (flow.rate / _links[dl.link].capacity) * dt_sec;
        }
    }
    _last_update = t;
}

void
Fabric::solveRates()
{
    // Progressive filling (max-min fairness). Each *direction* of a link
    // has the full link capacity (PCIe is full duplex).
    struct DirCap
    {
        double residual;
        std::vector<FlowId> users; // unfrozen flows crossing this direction
    };
    std::map<DirectedLink, DirCap> caps;

    const Tick t = now();
    std::vector<FlowId> unfrozen;
    for (auto &[id, flow] : _flows) {
        flow.rate = 0;
        if (flow.eligible_at > t || flow.remaining <= 0)
            continue;
        unfrozen.push_back(id);
        for (const DirectedLink &dl : flow.path) {
            auto [it, fresh] = caps.try_emplace(
                dl, DirCap{_links[dl.link].capacity, {}});
            it->second.users.push_back(id);
            (void)fresh;
        }
    }

    std::vector<bool> frozen_flag; // parallel to unfrozen order
    std::map<FlowId, bool> frozen;
    for (FlowId id : unfrozen)
        frozen[id] = false;
    (void)frozen_flag;

    std::size_t remaining_flows = unfrozen.size();
    while (remaining_flows > 0) {
        // Find the tightest directed link.
        double min_share = std::numeric_limits<double>::infinity();
        for (auto &[dl, cap] : caps) {
            std::size_t live = 0;
            for (FlowId id : cap.users)
                if (!frozen[id])
                    ++live;
            if (live == 0)
                continue;
            min_share = std::min(min_share,
                                 cap.residual / static_cast<double>(live));
        }
        if (!std::isfinite(min_share))
            break; // no constrained flows left (should not happen)

        // Raise every unfrozen flow by min_share, charge links, freeze
        // flows sitting on now-saturated links.
        for (auto &[dl, cap] : caps) {
            std::size_t live = 0;
            for (FlowId id : cap.users)
                if (!frozen[id])
                    ++live;
            cap.residual -= min_share * static_cast<double>(live);
        }
        for (FlowId id : unfrozen) {
            if (!frozen[id])
                _flows.at(id).rate += min_share;
        }
        for (auto &[dl, cap] : caps) {
            if (cap.residual > 1e-3)
                continue;
            for (FlowId id : cap.users) {
                if (!frozen[id]) {
                    frozen[id] = true;
                    --remaining_flows;
                }
            }
        }
    }
}

void
Fabric::scheduleNextCompletion()
{
    _pending_check.cancel();
    if (_flows.empty())
        return;

    const Tick t = now();
    Tick earliest = max_tick;
    for (const auto &[id, flow] : _flows) {
        Tick candidate;
        if (flow.eligible_at > t) {
            candidate = flow.eligible_at;
        } else if (flow.remaining <= completion_epsilon) {
            candidate = t;
        } else if (flow.rate > 0) {
            const double sec = flow.remaining / flow.rate;
            candidate = t + secondsToTicks(sec) + 1;
        } else {
            continue; // stalled; will be re-solved on the next change
        }
        earliest = std::min(earliest, candidate);
    }
    if (earliest == max_tick)
        return;
    earliest = std::max(earliest, t + 1);
    _pending_check = eventq().schedule(
        earliest, [this] { onCompletionCheck(); });
}

void
Fabric::onCompletionCheck()
{
    advanceProgress();

    // Collect finished flows first, then fire callbacks after the fabric
    // state is consistent (callbacks often start follow-on flows).
    std::vector<std::pair<FlowStatusCallback, bool>> done;
    const Tick t = now();
    for (auto it = _flows.begin(); it != _flows.end();) {
        Flow &flow = it->second;
        if (flow.eligible_at <= t &&
            flow.remaining <= completion_epsilon) {
            if (auto *tb = trace::active()) {
                const std::string label = _nodes[flow.src].name + "->" +
                                          _nodes[flow.dst].name;
                tb->span(trace::Category::Flow, label, name(),
                         flow.trace_begin, t, flow.bytes);
                // Per-hop spans: one lane per directed link, so Perfetto
                // shows each physical link's occupancy.
                for (const DirectedLink &dl : flow.path) {
                    const Link &link = _links[dl.link];
                    const NodeId from = dl.forward ? link.a : link.b;
                    const NodeId to = dl.forward ? link.b : link.a;
                    tb->span(trace::Category::Flow, label,
                             name() + "." + _nodes[from].name + "->" +
                                 _nodes[to].name,
                             flow.trace_begin, t, flow.bytes);
                }
            }
            done.emplace_back(std::move(flow.callback), !flow.corrupt);
            it = _flows.erase(it);
        } else {
            ++it;
        }
    }

    solveRates();
    scheduleNextCompletion();

    for (auto &[cb, ok] : done) {
        if (cb)
            cb(ok);
    }
}

} // namespace dmx::pcie
