#include "pcie/fabric.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::pcie
{

namespace
{

/// A flow is considered drained when fewer than this many bytes remain.
constexpr double completion_epsilon = 1.0;

} // namespace

Fabric::Fabric(sim::EventQueue &eq, std::string name, Params params)
    : sim::SimObject(eq, std::move(name)), _params(params),
      _opt(sim::coreMode() == sim::CoreMode::Optimized)
{
}

NodeId
Fabric::addNode(NodeKind kind, std::string name)
{
    _nodes.push_back(Node{kind, std::move(name), {}});
    return static_cast<NodeId>(_nodes.size() - 1);
}

void
Fabric::connect(NodeId a, NodeId b, Generation gen, unsigned lanes)
{
    connectCustom(a, b, linkBandwidth(gen, lanes));
}

void
Fabric::connectCustom(NodeId a, NodeId b, BytesPerSec bandwidth)
{
    if (a >= _nodes.size() || b >= _nodes.size())
        dmx_fatal("connect: node id out of range");
    if (a == b)
        dmx_fatal("connect: cannot self-connect node %u", a);
    if (bandwidth <= 0)
        dmx_fatal("connect: need positive bandwidth");
    // Tree invariant: the two nodes must not already be connected.
    if (!findPath(a, b).empty())
        dmx_fatal("connect: %s and %s are already connected (tree only)",
                  _nodes[a].name.c_str(), _nodes[b].name.c_str());

    const auto link_id = static_cast<std::uint32_t>(_links.size());
    _links.push_back(Link{a, b, bandwidth});
    _link_stats.emplace_back();
    _nodes[a].links.push_back(link_id);
    _nodes[b].links.push_back(link_id);
    // Topology changed: cached paths are stale. In-flight flows keep
    // their shared PathEntry (tree growth never reroutes an existing
    // path, and removal does not exist).
    _path_cache.clear();
}

std::vector<Fabric::DirectedLink>
Fabric::findPath(NodeId src, NodeId dst) const
{
    if (src == dst)
        return {};
    // BFS over the tree; parent[] records the directed link taken.
    std::vector<std::int64_t> parent_link(_nodes.size(), -1);
    std::vector<NodeId> parent_node(_nodes.size(), src);
    std::vector<bool> seen(_nodes.size(), false);
    std::deque<NodeId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop_front();
        if (cur == dst)
            break;
        for (std::uint32_t link_id : _nodes[cur].links) {
            const Link &link = _links[link_id];
            const NodeId other = link.a == cur ? link.b : link.a;
            if (seen[other])
                continue;
            seen[other] = true;
            parent_link[other] = link_id;
            parent_node[other] = cur;
            frontier.push_back(other);
        }
    }
    if (!seen[dst])
        return {};
    std::vector<DirectedLink> path;
    for (NodeId cur = dst; cur != src; cur = parent_node[cur]) {
        const auto link_id = static_cast<std::uint32_t>(parent_link[cur]);
        const Link &link = _links[link_id];
        // forward == the flow moves a -> b on this link.
        const bool forward = link.b == cur;
        path.push_back(DirectedLink{link_id, forward});
    }
    std::reverse(path.begin(), path.end());
    return path;
}

const std::shared_ptr<const Fabric::PathEntry> &
Fabric::cachedPath(NodeId src, NodeId dst)
{
    const auto key = std::make_pair(src, dst);
    auto it = _path_cache.find(key);
    if (it != _path_cache.end())
        return it->second;

    auto entry = std::make_shared<PathEntry>();
    entry->path = findPath(src, dst);
    // Pre-sum the interior traversal fees exactly as the legacy latency
    // loop charges them: one fee per interior node of the path. Integer
    // tick addition, so the pre-summed total is the identical value.
    NodeId cur = src;
    for (std::size_t i = 0; i + 1 < entry->path.size(); ++i) {
        const Link &link = _links[entry->path[i].link];
        cur = entry->path[i].forward ? link.b : link.a;
        if (_nodes[cur].kind == NodeKind::Switch) {
            entry->interior_latency += _params.switch_latency;
            ++entry->n_switches;
        } else if (_nodes[cur].kind == NodeKind::RootComplex) {
            entry->interior_latency += _params.root_latency;
        }
    }
    return _path_cache.emplace(key, std::move(entry)).first->second;
}

unsigned
Fabric::pathLength(NodeId src, NodeId dst) const
{
    return static_cast<unsigned>(findPath(src, dst).size());
}

unsigned
Fabric::switchesOnPath(NodeId src, NodeId dst) const
{
    const auto path = findPath(src, dst);
    if (path.empty())
        return 0;
    unsigned switches = 0;
    // Interior nodes of the path are every node except src and dst.
    NodeId cur = src;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Link &link = _links[path[i].link];
        cur = path[i].forward ? link.b : link.a;
        if (_nodes[cur].kind == NodeKind::Switch ||
            _nodes[cur].kind == NodeKind::RootComplex) {
            ++switches;
        }
    }
    (void)cur;
    return switches;
}

BytesPerSec
Fabric::linkCapacity(std::size_t link) const
{
    if (link >= _links.size())
        dmx_fatal("linkCapacity: link id out of range");
    return _links[link].capacity;
}

FlowId
Fabric::startFlow(NodeId src, NodeId dst, std::uint64_t bytes,
                  FlowCallback callback)
{
    // The status-blind legacy entry point: completion means delivery.
    return startFlowChecked(
        src, dst, bytes,
        [callback = std::move(callback)](bool ok) {
            (void)ok;
            if (callback)
                callback();
        });
}

FlowId
Fabric::startFlowChecked(NodeId src, NodeId dst, std::uint64_t bytes,
                         FlowStatusCallback callback)
{
    ++_doorbells;
    return startFlowInternal(src, dst, bytes, _params.dma_setup,
                             std::move(callback));
}

FlowId
Fabric::startDescriptorFlow(const DmaDescriptor &desc,
                            bool first_descriptor,
                            FlowStatusCallback callback)
{
    if (first_descriptor) {
        ++_doorbells;
    } else {
        ++_descriptor_fetches;
        if (auto *tb = trace::active())
            tb->count("fabric.descriptor_fetches", now());
    }
    return startFlowInternal(desc.src, desc.dst, desc.bytes,
                             first_descriptor
                                 ? _params.dma_setup
                                 : _params.desc_fetch_latency,
                             std::move(callback));
}

void
Fabric::startDescriptorChain(std::vector<DmaDescriptor> chain,
                             FlowStatusCallback done)
{
    if (chain.empty()) {
        if (done)
            done(true);
        return;
    }
    ++_descriptor_chains;
    if (auto *tb = trace::active())
        tb->count("fabric.descriptor_chains", now());
    // Shared walk state: each completion launches the next descriptor
    // from inside the previous one's status callback, so the engine
    // never consults the host between hops.
    auto descs = std::make_shared<std::vector<DmaDescriptor>>(
        std::move(chain));
    auto step = std::make_shared<std::function<void(std::size_t)>>();
    *step = [this, descs, step, done = std::move(done)](std::size_t i) {
        startDescriptorFlow(
            (*descs)[i], /*first_descriptor=*/i == 0,
            [this, descs, step, done, i](bool ok) {
                if (!ok || i + 1 == descs->size()) {
                    if (done)
                        done(ok);
                    return;
                }
                (*step)(i + 1);
            });
    };
    (*step)(0);
}

FlowId
Fabric::startFlowInternal(NodeId src, NodeId dst, std::uint64_t bytes,
                          Tick setup, FlowStatusCallback callback)
{
    if (src >= _nodes.size() || dst >= _nodes.size())
        dmx_fatal("startFlow: node id out of range");
    if (src == dst)
        dmx_fatal("startFlow: src == dst (%s)", _nodes[src].name.c_str());

    fault::FlowAction action = fault::FlowAction::None;
    if (_fault_hook)
        action = _fault_hook(src, dst, bytes);
    if (action == fault::FlowAction::Stall) {
        // The link wedged mid-transfer: the DMA engine never raises its
        // completion. The flow is dropped rather than parked so a
        // wedged transfer does not consume fair-share bandwidth; the
        // caller's watchdog is responsible for detecting the loss.
        ++_stalled_flows;
        if (auto *tb = trace::active())
            tb->count("fabric.stalled", now());
        return _next_flow++;
    }

    if (_opt) {
        return startFlowOpt(src, dst, bytes, setup, std::move(callback),
                            action == fault::FlowAction::Corrupt);
    }

    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.remaining = static_cast<double>(bytes);
    flow.trace_begin = now();
    flow.bytes = bytes;
    flow.path = findPath(src, dst);
    if (flow.path.empty())
        dmx_fatal("startFlow: no path between %s and %s",
                  _nodes[src].name.c_str(), _nodes[dst].name.c_str());
    flow.callback = std::move(callback);
    if (action == fault::FlowAction::Corrupt) {
        flow.corrupt = true;
        ++_corrupted_flows;
        if (auto *tb = trace::active())
            tb->count("fabric.corrupted", now());
    }

    // Start latency: the setup fee (full DMA-engine setup, or a linked
    // descriptor fetch) plus one traversal fee per interior node.
    Tick latency = setup;
    NodeId cur = src;
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        const Link &link = _links[flow.path[i].link];
        cur = flow.path[i].forward ? link.b : link.a;
        if (_nodes[cur].kind == NodeKind::Switch) {
            latency += _params.switch_latency;
            ++_switch_traversals;
        } else if (_nodes[cur].kind == NodeKind::RootComplex) {
            latency += _params.root_latency;
        }
    }

    // Link-CRC replay: wire errors detected by the link CRC are
    // recovered by deterministic TLP retransmission before streaming
    // becomes eligible - the payload stays intact, only time is lost.
    if (_crc_hook) {
        if (const unsigned replays = _crc_hook(src, dst, bytes)) {
            const Tick extra = replays * _params.crc_replay_latency;
            _crc_replays += replays;
            if (auto *tb = trace::active()) {
                tb->span(trace::Category::Integrity, "crc_replay",
                         "fabric", now() + latency,
                         now() + latency + extra, replays);
                tb->count("fabric.crc_replays", now(),
                          static_cast<double>(replays));
            }
            latency += extra;
        }
    }
    flow.eligible_at = now() + latency;
    _total_bytes += bytes;

    advanceProgress();
    const FlowId id = _next_flow++;
    _flows.emplace(id, std::move(flow));
    if (_flows.size() > _peak_active_flows)
        _peak_active_flows = _flows.size();
    solveRates();
    scheduleNextCompletion();
    return id;
}

FlowId
Fabric::startFlowOpt(NodeId src, NodeId dst, std::uint64_t bytes,
                     Tick setup, FlowStatusCallback callback, bool corrupt)
{
    const auto &path = cachedPath(src, dst);
    if (path->path.empty())
        dmx_fatal("startFlow: no path between %s and %s",
                  _nodes[src].name.c_str(), _nodes[dst].name.c_str());
    if (corrupt) {
        ++_corrupted_flows;
        if (auto *tb = trace::active())
            tb->count("fabric.corrupted", now());
    }

    // Same latency as the legacy interior-node walk: the PathEntry
    // pre-summed the traversal fees (integer tick arithmetic).
    Tick latency = setup + path->interior_latency;
    _switch_traversals += path->n_switches;

    if (_crc_hook) {
        if (const unsigned replays = _crc_hook(src, dst, bytes)) {
            const Tick extra = replays * _params.crc_replay_latency;
            _crc_replays += replays;
            if (auto *tb = trace::active()) {
                tb->span(trace::Category::Integrity, "crc_replay",
                         "fabric", now() + latency,
                         now() + latency + extra, replays);
                tb->count("fabric.crc_replays", now(),
                          static_cast<double>(replays));
            }
            latency += extra;
        }
    }
    _total_bytes += bytes;

    advanceProgressOpt();
    const FlowId id = _next_flow++;

    std::uint32_t slot;
    if (!_free_slots.empty()) {
        slot = _free_slots.back();
        _free_slots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(_f_remaining.size());
        _f_remaining.emplace_back();
        _f_rate.emplace_back();
        _f_eligible.emplace_back();
        _f_cold.emplace_back();
        _f_frozen.emplace_back();
    }
    _f_remaining[slot] = static_cast<double>(bytes);
    _f_rate[slot] = 0;
    _f_eligible[slot] = now() + latency;
    FlowCold &cold = _f_cold[slot];
    cold.id = id;
    cold.src = src;
    cold.dst = dst;
    cold.trace_begin = now();
    cold.bytes = bytes;
    cold.corrupt = corrupt;
    cold.in_reap = false;
    cold.path = path;
    cold.callback = std::move(callback);

    // New ids are strictly increasing, so appending keeps _active in
    // FlowId-ascending order - the iteration order every float
    // accumulation below is pinned to.
    _active.push_back(slot);
    if (_active.size() > _peak_active_flows)
        _peak_active_flows = _active.size();

    // Flows born at or below the completion epsilon never cross it in
    // advanceProgress, so they become reap candidates immediately.
    if (_f_remaining[slot] <= completion_epsilon) {
        cold.in_reap = true;
        _reap_cand.push_back(slot);
    }

    solveRatesOpt();
    scheduleNextCompletionOpt();
    return id;
}

void
Fabric::advanceProgress()
{
    if (_opt) {
        advanceProgressOpt();
        return;
    }
    const Tick t = now();
    if (t <= _last_update) {
        _last_update = t;
        return;
    }
    const double dt_sec = ticksToSeconds(t - _last_update);
    for (auto &[id, flow] : _flows) {
        if (flow.rate <= 0)
            continue;
        const double moved =
            std::min(flow.remaining, flow.rate * dt_sec);
        flow.remaining -= moved;
        for (const DirectedLink &dl : flow.path) {
            LinkStats &ls = _link_stats[dl.link];
            ls.bytes += static_cast<std::uint64_t>(moved);
            ls.busy_byte_seconds +=
                (flow.rate / _links[dl.link].capacity) * dt_sec;
        }
    }
    _last_update = t;
}

void
Fabric::advanceProgressOpt()
{
    const Tick t = now();
    if (t <= _last_update) {
        _last_update = t;
        return;
    }
    const double dt_sec = ticksToSeconds(t - _last_update);
    // FlowId-ascending, matching the legacy map walk: link busy
    // integrals accumulate in the identical order.
    for (const std::uint32_t slot : _active) {
        const double rate = _f_rate[slot];
        if (rate <= 0)
            continue;
        double &remaining = _f_remaining[slot];
        const double moved = std::min(remaining, rate * dt_sec);
        remaining -= moved;
        for (const DirectedLink &dl : _f_cold[slot].path->path) {
            LinkStats &ls = _link_stats[dl.link];
            ls.bytes += static_cast<std::uint64_t>(moved);
            ls.busy_byte_seconds +=
                (rate / _links[dl.link].capacity) * dt_sec;
        }
        // Epsilon crossing: this flow is done streaming - queue it for
        // the reaper so completion checks never rescan the whole flow
        // table (the legacy O(n^2) settle behavior).
        if (remaining <= completion_epsilon && !_f_cold[slot].in_reap) {
            _f_cold[slot].in_reap = true;
            _reap_cand.push_back(slot);
        }
    }
    _last_update = t;
}

void
Fabric::solveRates()
{
    if (_opt) {
        solveRatesOpt();
        return;
    }
    // Progressive filling (max-min fairness). Each *direction* of a link
    // has the full link capacity (PCIe is full duplex).
    struct DirCap
    {
        double residual;
        std::vector<FlowId> users; // unfrozen flows crossing this direction
    };
    std::map<DirectedLink, DirCap> caps;

    const Tick t = now();
    std::vector<FlowId> unfrozen;
    for (auto &[id, flow] : _flows) {
        flow.rate = 0;
        if (flow.eligible_at > t || flow.remaining <= 0)
            continue;
        unfrozen.push_back(id);
        for (const DirectedLink &dl : flow.path) {
            auto [it, fresh] = caps.try_emplace(
                dl, DirCap{_links[dl.link].capacity, {}});
            it->second.users.push_back(id);
            (void)fresh;
        }
    }

    std::vector<bool> frozen_flag; // parallel to unfrozen order
    std::map<FlowId, bool> frozen;
    for (FlowId id : unfrozen)
        frozen[id] = false;
    (void)frozen_flag;

    std::size_t remaining_flows = unfrozen.size();
    while (remaining_flows > 0) {
        // Find the tightest directed link.
        double min_share = std::numeric_limits<double>::infinity();
        for (auto &[dl, cap] : caps) {
            std::size_t live = 0;
            for (FlowId id : cap.users)
                if (!frozen[id])
                    ++live;
            if (live == 0)
                continue;
            min_share = std::min(min_share,
                                 cap.residual / static_cast<double>(live));
        }
        if (!std::isfinite(min_share))
            break; // no constrained flows left (should not happen)

        // Raise every unfrozen flow by min_share, charge links, freeze
        // flows sitting on now-saturated links.
        for (auto &[dl, cap] : caps) {
            std::size_t live = 0;
            for (FlowId id : cap.users)
                if (!frozen[id])
                    ++live;
            cap.residual -= min_share * static_cast<double>(live);
        }
        for (FlowId id : unfrozen) {
            if (!frozen[id])
                _flows.at(id).rate += min_share;
        }
        for (auto &[dl, cap] : caps) {
            if (cap.residual > 1e-3)
                continue;
            for (FlowId id : cap.users) {
                if (!frozen[id]) {
                    frozen[id] = true;
                    --remaining_flows;
                }
            }
        }
    }
}

void
Fabric::solveRatesOpt()
{
    // Bit-identical progressive filling over dense arrays. Safe because
    // the values the legacy solver produces are independent of its map
    // iteration orders: the per-round minimum is a min over finite
    // doubles (any order), each cap's residual sequence and each flow's
    // rate sequence are the per-object round sequence (same sequence
    // here), and the freeze set per round is determined by values
    // alone. Live counts are maintained incrementally instead of
    // recounted, which is the same integer.
    const std::size_t ncaps = _links.size() * 2;
    if (_cap_residual.size() < ncaps) {
        _cap_residual.resize(ncaps);
        _cap_live.resize(ncaps);
        _cap_epoch.resize(ncaps, 0);
    }
    const std::uint64_t epoch = ++_solve_epoch;
    _caps_used.clear();
    _unfrozen.clear();

    const Tick t = now();
    for (const std::uint32_t slot : _active) {
        _f_rate[slot] = 0;
        if (_f_eligible[slot] > t || _f_remaining[slot] <= 0)
            continue;
        _unfrozen.push_back(slot);
        _f_frozen[slot] = 0;
        for (const DirectedLink &dl : _f_cold[slot].path->path) {
            const std::uint32_t idx = dl.link * 2 + (dl.forward ? 1 : 0);
            if (_cap_epoch[idx] != epoch) {
                _cap_epoch[idx] = epoch;
                _cap_residual[idx] = _links[dl.link].capacity;
                _cap_live[idx] = 0;
                _caps_used.push_back(idx);
            }
            ++_cap_live[idx];
        }
    }

    std::size_t remaining_flows = _unfrozen.size();
    while (remaining_flows > 0) {
        double min_share = std::numeric_limits<double>::infinity();
        for (const std::uint32_t idx : _caps_used) {
            if (_cap_live[idx] == 0)
                continue;
            min_share = std::min(
                min_share,
                _cap_residual[idx] / static_cast<double>(_cap_live[idx]));
        }
        if (!std::isfinite(min_share))
            break; // no constrained flows left (should not happen)

        for (const std::uint32_t idx : _caps_used) {
            _cap_residual[idx] -=
                min_share * static_cast<double>(_cap_live[idx]);
        }
        for (const std::uint32_t slot : _unfrozen) {
            if (!_f_frozen[slot])
                _f_rate[slot] += min_share;
        }
        // Freeze flows that touch a saturated direction; drop their
        // contribution from every cap they cross.
        for (const std::uint32_t slot : _unfrozen) {
            if (_f_frozen[slot])
                continue;
            const auto &path = _f_cold[slot].path->path;
            bool saturated = false;
            for (const DirectedLink &dl : path) {
                const std::uint32_t idx =
                    dl.link * 2 + (dl.forward ? 1 : 0);
                if (_cap_residual[idx] <= 1e-3) {
                    saturated = true;
                    break;
                }
            }
            if (!saturated)
                continue;
            _f_frozen[slot] = 1;
            --remaining_flows;
            for (const DirectedLink &dl : path) {
                const std::uint32_t idx =
                    dl.link * 2 + (dl.forward ? 1 : 0);
                --_cap_live[idx];
            }
        }
    }
}

void
Fabric::scheduleNextCompletion()
{
    if (_opt) {
        scheduleNextCompletionOpt();
        return;
    }
    _pending_check.cancel();
    if (_flows.empty())
        return;

    const Tick t = now();
    Tick earliest = max_tick;
    for (const auto &[id, flow] : _flows) {
        Tick candidate;
        if (flow.eligible_at > t) {
            candidate = flow.eligible_at;
        } else if (flow.remaining <= completion_epsilon) {
            candidate = t;
        } else if (flow.rate > 0) {
            const double sec = flow.remaining / flow.rate;
            candidate = t + secondsToTicks(sec) + 1;
        } else {
            continue; // stalled; will be re-solved on the next change
        }
        earliest = std::min(earliest, candidate);
    }
    if (earliest == max_tick)
        return;
    earliest = std::max(earliest, t + 1);
    _pending_check = eventq().schedule(
        earliest, [this] { onCompletionCheck(); });
}

void
Fabric::scheduleNextCompletionOpt()
{
    _pending_check.cancel();
    if (_active.empty())
        return;

    const Tick t = now();
    Tick earliest = max_tick;
    for (const std::uint32_t slot : _active) {
        Tick candidate;
        if (_f_eligible[slot] > t) {
            candidate = _f_eligible[slot];
        } else if (_f_remaining[slot] <= completion_epsilon) {
            candidate = t;
        } else if (_f_rate[slot] > 0) {
            const double sec = _f_remaining[slot] / _f_rate[slot];
            candidate = t + secondsToTicks(sec) + 1;
        } else {
            continue; // stalled; will be re-solved on the next change
        }
        earliest = std::min(earliest, candidate);
    }
    if (earliest == max_tick)
        return;
    earliest = std::max(earliest, t + 1);
    _pending_check = eventq().schedule(
        earliest, [this] { onCompletionCheck(); });
}

void
Fabric::onCompletionCheck()
{
    if (_opt) {
        onCompletionCheckOpt();
        return;
    }
    advanceProgress();

    // Collect finished flows first, then fire callbacks after the fabric
    // state is consistent (callbacks often start follow-on flows).
    std::vector<std::pair<FlowStatusCallback, bool>> done;
    const Tick t = now();
    _settle_visits += _flows.size();
    for (auto it = _flows.begin(); it != _flows.end();) {
        Flow &flow = it->second;
        if (flow.eligible_at <= t &&
            flow.remaining <= completion_epsilon) {
            if (auto *tb = trace::active()) {
                const std::string label = _nodes[flow.src].name + "->" +
                                          _nodes[flow.dst].name;
                tb->span(trace::Category::Flow, label, name(),
                         flow.trace_begin, t, flow.bytes);
                // Per-hop spans: one lane per directed link, so Perfetto
                // shows each physical link's occupancy.
                for (const DirectedLink &dl : flow.path) {
                    const Link &link = _links[dl.link];
                    const NodeId from = dl.forward ? link.a : link.b;
                    const NodeId to = dl.forward ? link.b : link.a;
                    tb->span(trace::Category::Flow, label,
                             name() + "." + _nodes[from].name + "->" +
                                 _nodes[to].name,
                             flow.trace_begin, t, flow.bytes);
                }
            }
            done.emplace_back(std::move(flow.callback), !flow.corrupt);
            it = _flows.erase(it);
        } else {
            ++it;
        }
    }

    solveRates();
    scheduleNextCompletion();

    for (auto &[cb, ok] : done) {
        if (cb)
            cb(ok);
    }
}

void
Fabric::onCompletionCheckOpt()
{
    advanceProgressOpt();

    // Only reap candidates - flows whose residual crossed the epsilon -
    // are visited, in FlowId order (the legacy map-walk order for trace
    // emission and callback firing). Candidates that are not yet
    // streaming-eligible stay queued; remaining never increases, so a
    // candidate can never leave the list except by completing.
    std::vector<std::pair<FlowStatusCallback, bool>> done;
    const Tick t = now();
    std::vector<std::uint32_t> dead;
    if (!_reap_cand.empty()) {
        std::sort(_reap_cand.begin(), _reap_cand.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return _f_cold[a].id < _f_cold[b].id;
                  });
        std::size_t keep = 0;
        for (const std::uint32_t slot : _reap_cand) {
            ++_settle_visits;
            FlowCold &cold = _f_cold[slot];
            if (_f_eligible[slot] <= t &&
                _f_remaining[slot] <= completion_epsilon) {
                if (auto *tb = trace::active()) {
                    const std::string label = _nodes[cold.src].name +
                                              "->" + _nodes[cold.dst].name;
                    tb->span(trace::Category::Flow, label, name(),
                             cold.trace_begin, t, cold.bytes);
                    for (const DirectedLink &dl : cold.path->path) {
                        const Link &link = _links[dl.link];
                        const NodeId from = dl.forward ? link.a : link.b;
                        const NodeId to = dl.forward ? link.b : link.a;
                        tb->span(trace::Category::Flow, label,
                                 name() + "." + _nodes[from].name + "->" +
                                     _nodes[to].name,
                                 cold.trace_begin, t, cold.bytes);
                    }
                }
                done.emplace_back(std::move(cold.callback), !cold.corrupt);
                dead.push_back(slot);
            } else {
                _reap_cand[keep++] = slot;
            }
        }
        _reap_cand.resize(keep);
    }

    if (!dead.empty()) {
        // Both lists are FlowId-sorted: remove with one merge pass.
        std::size_t di = 0, w = 0;
        for (std::size_t r = 0; r < _active.size(); ++r) {
            if (di < dead.size() && _active[r] == dead[di]) {
                ++di;
                continue;
            }
            _active[w++] = _active[r];
        }
        _active.resize(w);
        for (const std::uint32_t slot : dead) {
            _f_cold[slot].path.reset();
            _f_cold[slot].in_reap = false;
            _free_slots.push_back(slot);
        }
    }

    solveRatesOpt();
    scheduleNextCompletionOpt();

    for (auto &[cb, ok] : done) {
        if (cb)
            cb(ok);
    }
}

} // namespace dmx::pcie
