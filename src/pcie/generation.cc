#include "pcie/generation.hh"

#include "common/logging.hh"

namespace dmx::pcie
{

std::string
toString(Generation gen)
{
    switch (gen) {
      case Generation::Gen3: return "Gen3";
      case Generation::Gen4: return "Gen4";
      case Generation::Gen5: return "Gen5";
    }
    return "Gen?";
}

BytesPerSec
perLaneBandwidth(Generation gen)
{
    // GT/s * (128/130) / 8 bits-per-byte, in bytes/second.
    constexpr double coding = 128.0 / 130.0;
    switch (gen) {
      case Generation::Gen3: return 8e9 * coding / 8.0;
      case Generation::Gen4: return 16e9 * coding / 8.0;
      case Generation::Gen5: return 32e9 * coding / 8.0;
    }
    dmx_panic("unknown PCIe generation");
}

BytesPerSec
linkBandwidth(Generation gen, unsigned lanes)
{
    if (lanes == 0 || lanes > 16)
        dmx_fatal("invalid PCIe lane count %u", lanes);
    return perLaneBandwidth(gen) * lanes * protocol_efficiency;
}

} // namespace dmx::pcie
