/**
 * @file
 * Flow-level PCIe fabric simulator.
 *
 * The fabric is a tree of nodes (one root complex, switches, endpoints)
 * connected by full-duplex links. Data movement is modelled at flow
 * granularity: a flow carries N bytes from one node to another along the
 * unique tree path, sharing each directed link's capacity with all other
 * concurrent flows under max-min fairness. Whenever the set of active
 * flows changes, rates are re-solved and the earliest completion is
 * rescheduled. This reproduces the paper's central contention effect:
 * many accelerators oversubscribing the x8 upstream link of a switch.
 *
 * Latency model per flow: a fixed start latency (DMA engine setup and
 * doorbell) plus 110 ns port-to-port latency per switch traversed plus
 * the bandwidth-determined streaming time.
 */

#ifndef DMX_PCIE_FABRIC_HH
#define DMX_PCIE_FABRIC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/hooks.hh"
#include "pcie/generation.hh"
#include "sim/core.hh"
#include "sim/sim_object.hh"

namespace dmx::pcie
{

/** Index of a node in the fabric. */
using NodeId = std::uint32_t;

/** Index of an active flow. */
using FlowId = std::uint64_t;

/** What a node is; affects traversal latency accounting. */
enum class NodeKind { RootComplex, Switch, EndPoint };

/** Per-link static counters exposed for energy accounting. */
struct LinkStats
{
    std::uint64_t bytes = 0;          ///< payload bytes moved (both dirs)
    double busy_byte_seconds = 0;     ///< integral of rate/capacity dt
};

/** Completion callback: invoked at the simulated completion time. */
using FlowCallback = std::function<void()>;

/**
 * Status-carrying completion callback: @p ok is false when the flow was
 * delivered but failed its end-to-end check (injected corruption).
 * Stalled flows never invoke their callback; callers that can see
 * stalls own a watchdog (the runtime's per-command timeout).
 */
using FlowStatusCallback = std::function<void(bool ok)>;

/** Tunable fabric constants. */
struct FabricParams
{
    /// Switch port-to-port forwarding latency (paper: 110 ns).
    Tick switch_latency = 110 * tick_per_ns;
    /// Root-complex traversal latency.
    Tick root_latency = 150 * tick_per_ns;
    /// Fixed software/DMA-engine setup cost charged to each flow.
    Tick dma_setup = 500 * tick_per_ns;
    /// Delay charged per link-CRC replay event (replay-timer expiry
    /// plus TLP retransmission) before the flow may start streaming.
    Tick crc_replay_latency = 600 * tick_per_ns;
    /// Cost of the DMA engine fetching the *next* linked-list
    /// descriptor out of host memory: one small read across the
    /// fabric, far cheaper than a full software doorbell + engine
    /// setup (dma_setup). Charged instead of dma_setup for every
    /// descriptor of a chain after the first.
    Tick desc_fetch_latency = 100 * tick_per_ns;
};

/**
 * One linked-list DMA descriptor: a (src, dst, bytes) transfer the
 * engine executes autonomously. A chain of descriptors is walked
 * without host involvement: the first pays the full dma_setup
 * (doorbell + engine programming), each successor only the
 * desc_fetch_latency of pulling the next descriptor from memory.
 */
struct DmaDescriptor
{
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t bytes = 0;
};

/**
 * The PCIe interconnect.
 *
 * Build the topology first (addNode/connect), then start flows. The
 * topology must be a tree; connect() enforces acyclicity.
 */
class Fabric : public sim::SimObject
{
  public:
    /** Back-compat alias: fabric parameters. */
    using Params = FabricParams;

    Fabric(sim::EventQueue &eq, std::string name, Params params = {});

    /** Add a node of the given kind; @return its id. */
    NodeId addNode(NodeKind kind, std::string name);

    /**
     * Connect two nodes with a full-duplex link.
     *
     * @param a     one node
     * @param b     other node
     * @param gen   PCIe generation of the link
     * @param lanes lane count
     */
    void connect(NodeId a, NodeId b, Generation gen, unsigned lanes);

    /**
     * Connect two nodes with an arbitrary-bandwidth link (used for
     * non-PCIe resources such as the host DRAM staging path, whose
     * bandwidth does not scale with the PCIe generation).
     */
    void connectCustom(NodeId a, NodeId b, BytesPerSec bandwidth);

    /**
     * Begin moving @p bytes from @p src to @p dst.
     *
     * @param src      source node
     * @param dst      destination node (must differ from src)
     * @param bytes    payload size
     * @param callback invoked when the last byte arrives
     * @return flow id (also passed to nothing else; useful for debugging)
     */
    FlowId startFlow(NodeId src, NodeId dst, std::uint64_t bytes,
                     FlowCallback callback);

    /**
     * Like startFlow, but the callback learns whether the payload
     * arrived intact. Under an installed fault hook the flow may stall
     * (callback never fires) or arrive corrupted (callback fires with
     * ok == false at the normal completion time).
     */
    FlowId startFlowChecked(NodeId src, NodeId dst, std::uint64_t bytes,
                            FlowStatusCallback callback);

    /**
     * Start one descriptor of a linked-list DMA chain. Identical to
     * startFlowChecked - same fault-hook consultation, same link-CRC
     * replays, same contention model - except for the setup cost:
     * @p first_descriptor charges the full dma_setup (the host rang
     * the doorbell), a follow-on descriptor charges only
     * desc_fetch_latency (the engine pulled the next descriptor out
     * of memory itself).
     */
    FlowId startDescriptorFlow(const DmaDescriptor &desc,
                               bool first_descriptor,
                               FlowStatusCallback callback);

    /**
     * Walk @p chain autonomously: descriptor i+1 starts when i
     * delivers intact. The walk aborts on the first corrupted delivery
     * (callback fires with ok == false) and wedges on an injected
     * stall (callback never fires - the caller's watchdog owns
     * detection, exactly as for single flows). @p done receives the
     * overall outcome and runs at the last delivery.
     */
    void startDescriptorChain(std::vector<DmaDescriptor> chain,
                              FlowStatusCallback done);

    /** @return descriptor-chain walks started. */
    std::uint64_t descriptorChains() const { return _descriptor_chains; }

    /**
     * @return doorbell rings: submissions that paid the full dma_setup
     * (startFlow/startFlowChecked, and the first descriptor of a batch
     * or chain). Follow-on descriptors are engine-fetched and counted
     * by descriptorFetches() instead. A stalled submission still rang
     * its doorbell. Pure observability; never affects timing.
     */
    std::uint64_t doorbells() const { return _doorbells; }

    /** @return non-first descriptors fetched by the engine itself. */
    std::uint64_t descriptorFetches() const { return _descriptor_fetches; }

    /**
     * Install (or clear, with nullptr) the fault-injection hook
     * consulted by every subsequent flow start.
     */
    void setFaultHook(fault::FlowHook hook) { _fault_hook = std::move(hook); }

    /**
     * Install (or clear, with nullptr) the link-CRC hook consulted by
     * every flow that actually starts. Each reported replay event
     * deterministically delays the flow's streaming eligibility by
     * params().crc_replay_latency: the error is detected and recovered
     * at the link layer, so it costs time but never data.
     */
    void setLinkCrcHook(fault::LinkCrcHook hook)
    {
        _crc_hook = std::move(hook);
    }

    /** @return flows that stalled (wedged, never completing). */
    std::uint64_t stalledFlows() const { return _stalled_flows; }

    /** @return flows delivered with an injected corruption. */
    std::uint64_t corruptedFlows() const { return _corrupted_flows; }

    /** @return link-CRC replay events charged to flows. */
    std::uint64_t crcReplays() const { return _crc_replays; }

    /** @return number of in-flight flows. */
    std::size_t
    activeFlows() const
    {
        return _opt ? _active.size() : _flows.size();
    }

    /**
     * @return peak number of concurrently in-flight flows observed.
     * Pure observability for overload diagnosis: how deep did the
     * fabric's contention ever get? Never affects timing.
     */
    std::size_t peakActiveFlows() const { return _peak_active_flows; }

    /** @return nodes in the fabric. */
    std::size_t nodeCount() const { return _nodes.size(); }

    /** @return hops (links) on the unique path between two nodes. */
    unsigned pathLength(NodeId src, NodeId dst) const;

    /** @return switches traversed on the path between two nodes. */
    unsigned switchesOnPath(NodeId src, NodeId dst) const;

    /** @return cumulative per-link statistics, indexed by link id. */
    const std::vector<LinkStats> &linkStats() const { return _link_stats; }

    /** @return total payload bytes moved through the fabric. */
    std::uint64_t totalBytes() const { return _total_bytes; }

    /** @return total switch traversals (for energy accounting). */
    std::uint64_t switchTraversals() const { return _switch_traversals; }

    /**
     * @return flow-record visits performed by completion reaping. Pure
     * observability: the legacy engine re-scans every active flow on
     * each completion check (quadratic in flow count when n flows
     * drain), the optimized engine only visits flows whose residual
     * crossed the completion epsilon. The core-equivalence suite pins
     * the linear scaling with this counter.
     */
    std::uint64_t settleVisits() const { return _settle_visits; }

    /** @return capacity of link @p link in bytes/second. */
    BytesPerSec linkCapacity(std::size_t link) const;

    const Params &params() const { return _params; }

  private:
    struct Node
    {
        NodeKind kind;
        std::string name;
        std::vector<std::uint32_t> links; ///< incident link ids
    };

    struct Link
    {
        NodeId a, b;
        BytesPerSec capacity;
    };

    /** A directed use of a link: link id + direction flag (a->b?). */
    struct DirectedLink
    {
        std::uint32_t link;
        bool forward;

        bool
        operator<(const DirectedLink &o) const
        {
            return link != o.link ? link < o.link : forward < o.forward;
        }
    };

    struct Flow
    {
        NodeId src, dst;
        double remaining;              ///< bytes left to stream
        double rate = 0;               ///< current bytes/second
        Tick eligible_at;              ///< start latency absorbed until here
        Tick trace_begin = 0;          ///< submission time, for tracing
        std::uint64_t bytes = 0;       ///< total payload, for tracing
        bool corrupt = false;          ///< delivered but fails its check
        std::vector<DirectedLink> path;
        FlowStatusCallback callback;
    };

    /**
     * Optimized engine: cached path between a (src, dst) pair with the
     * interior-node latency pre-summed. Flows hold a shared_ptr so a
     * topology mutation can drop the cache without invalidating
     * in-flight flows.
     */
    struct PathEntry
    {
        std::vector<DirectedLink> path;
        Tick interior_latency = 0;  ///< sum of switch/root traversal fees
        unsigned n_switches = 0;    ///< switches on the path
    };

    /** Optimized engine: cold per-flow state (off the settle loop). */
    struct FlowCold
    {
        FlowId id = 0;
        NodeId src = 0, dst = 0;
        Tick trace_begin = 0;
        std::uint64_t bytes = 0;
        bool corrupt = false;
        bool in_reap = false;       ///< queued on the reap-candidate list
        std::shared_ptr<const PathEntry> path;
        FlowStatusCallback callback;
    };

    /** Find the unique tree path between two nodes (directed links). */
    std::vector<DirectedLink> findPath(NodeId src, NodeId dst) const;

    /** Look up (or build) the cached PathEntry for (src, dst). */
    const std::shared_ptr<const PathEntry> &cachedPath(NodeId src,
                                                       NodeId dst);

    /** Shared flow-start body; @p setup is the charged setup latency. */
    FlowId startFlowInternal(NodeId src, NodeId dst, std::uint64_t bytes,
                             Tick setup, FlowStatusCallback callback);

    /** Charge progress to all flows for time elapsed since last update. */
    void advanceProgress();

    /** Re-solve max-min fair rates for all eligible flows. */
    void solveRates();

    /** (Re)schedule the completion-check event. */
    void scheduleNextCompletion();

    /** Handle the completion-check event. */
    void onCompletionCheck();

    // Optimized-engine bodies (bit-identical semantics, SoA state).
    FlowId startFlowOpt(NodeId src, NodeId dst, std::uint64_t bytes,
                        Tick latency, FlowStatusCallback callback,
                        bool corrupt);
    void advanceProgressOpt();
    void solveRatesOpt();
    void scheduleNextCompletionOpt();
    void onCompletionCheckOpt();

    Params _params;
    fault::FlowHook _fault_hook;
    fault::LinkCrcHook _crc_hook;
    std::uint64_t _stalled_flows = 0;
    std::uint64_t _corrupted_flows = 0;
    std::uint64_t _crc_replays = 0;
    std::size_t _peak_active_flows = 0;
    std::vector<Node> _nodes;
    std::vector<Link> _links;
    std::vector<LinkStats> _link_stats;
    std::map<FlowId, Flow> _flows;
    FlowId _next_flow = 0;
    Tick _last_update = 0;
    sim::EventHandle _pending_check;
    std::uint64_t _total_bytes = 0;
    std::uint64_t _switch_traversals = 0;
    std::uint64_t _descriptor_chains = 0;
    std::uint64_t _descriptor_fetches = 0;
    std::uint64_t _doorbells = 0;
    std::uint64_t _settle_visits = 0;

    // ---- Optimized engine (sim::CoreMode::Optimized) ----
    // Flow state is structure-of-arrays over slot indices with a free
    // list; _active keeps live slots in FlowId-ascending order, which
    // pins every order-sensitive accumulation (link busy integrals,
    // solver round increments, reap/callback order) to the legacy
    // std::map iteration order.
    const bool _opt;
    std::vector<double> _f_remaining;       ///< [slot] bytes left
    std::vector<double> _f_rate;            ///< [slot] bytes/second
    std::vector<Tick> _f_eligible;          ///< [slot] streaming-eligible at
    std::vector<FlowCold> _f_cold;          ///< [slot] everything else
    std::vector<std::uint32_t> _free_slots; ///< vacant slot indices
    std::vector<std::uint32_t> _active;     ///< live slots, FlowId asc
    std::vector<std::uint32_t> _reap_cand;  ///< slots at/below epsilon
    std::map<std::pair<NodeId, NodeId>, std::shared_ptr<const PathEntry>>
        _path_cache;

    // Solver scratch, persistent across solves (epoch-stamped so no
    // per-solve clearing): one entry per directed link (link*2+forward).
    std::vector<double> _cap_residual;
    std::vector<std::uint32_t> _cap_live;
    std::vector<std::uint64_t> _cap_epoch;
    std::vector<std::uint32_t> _caps_used;
    std::vector<std::uint32_t> _unfrozen;   ///< eligible slots, id asc
    std::vector<std::uint8_t> _f_frozen;    ///< [slot] solver freeze flag
    std::uint64_t _solve_epoch = 0;
};

} // namespace dmx::pcie

#endif // DMX_PCIE_FABRIC_HH
