/**
 * @file
 * PCIe generation parameters: per-lane signalling rate, line coding and
 * protocol efficiency. These feed Link bandwidth computations.
 */

#ifndef DMX_PCIE_GENERATION_HH
#define DMX_PCIE_GENERATION_HH

#include <string>

#include "common/units.hh"

namespace dmx::pcie
{

/** Supported PCI Express generations. */
enum class Generation { Gen3, Gen4, Gen5 };

/** @return human name, e.g. "Gen4". */
std::string toString(Generation gen);

/**
 * Raw per-lane data rate after line coding, in bytes per second.
 *
 * Gen3: 8 GT/s with 128b/130b -> ~0.985 GB/s per lane.
 * Gen4: 16 GT/s with 128b/130b -> ~1.969 GB/s per lane.
 * Gen5: 32 GT/s with 128b/130b -> ~3.938 GB/s per lane.
 */
BytesPerSec perLaneBandwidth(Generation gen);

/**
 * Protocol efficiency applied on top of line coding: TLP/DLLP headers,
 * flow-control credits and ACKs. ~0.87 for typical 256 B payloads.
 */
inline constexpr double protocol_efficiency = 0.87;

/**
 * Effective payload bandwidth of a link.
 *
 * @param gen   PCIe generation
 * @param lanes lane count (x1..x16)
 */
BytesPerSec linkBandwidth(Generation gen, unsigned lanes);

} // namespace dmx::pcie

#endif // DMX_PCIE_GENERATION_HH
