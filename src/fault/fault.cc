#include "fault/fault.hh"

#include "common/logging.hh"

namespace dmx::fault
{

namespace
{

/// Site-stream derivation constants: arbitrary odd words xored into the
/// master seed so the four streams are decorrelated.
constexpr std::uint64_t flow_stream = 0x1b87f1a7c5d2e3f1ull;
constexpr std::uint64_t kernel_stream = 0x9d3a55a1b4c6d7e9ull;
constexpr std::uint64_t machine_stream = 0x5e2c33c9d8e0f1a3ull;
constexpr std::uint64_t irq_stream = 0x7f4b11e5f6a8b9c7ull;

void
checkProb(const char *what, double p)
{
    if (p < 0.0 || p > 1.0)
        dmx_fatal("FaultPlan: %s probability %g outside [0, 1]", what, p);
}

} // namespace

FaultPlan::FaultPlan(FaultSpec spec)
    : _spec(spec),
      _flow_rng(spec.seed ^ flow_stream),
      _kernel_rng(spec.seed ^ kernel_stream),
      _machine_rng(spec.seed ^ machine_stream),
      _irq_rng(spec.seed ^ irq_stream)
{
    checkProb("flow_stall", spec.flow_stall_prob);
    checkProb("flow_corrupt", spec.flow_corrupt_prob);
    checkProb("kernel_fail", spec.kernel_fail_prob);
    checkProb("kernel_hang", spec.kernel_hang_prob);
    checkProb("irq_drop", spec.irq_drop_prob);
    checkProb("drx_fault", spec.drx_fault_prob);
    if (spec.flow_stall_prob + spec.flow_corrupt_prob > 1.0)
        dmx_fatal("FaultPlan: flow stall+corrupt probabilities exceed 1");
    if (spec.kernel_fail_prob + spec.kernel_hang_prob > 1.0)
        dmx_fatal("FaultPlan: kernel fail+hang probabilities exceed 1");
    if (spec.unhealthy_threshold == 0)
        dmx_fatal("FaultPlan: unhealthy_threshold must be >= 1");
}

FlowAction
FaultPlan::onFlow(std::uint32_t src, std::uint32_t dst,
                  std::uint64_t bytes)
{
    (void)src;
    (void)dst;
    (void)bytes;
    const std::uint64_t n = _flow_n++;
    ++_stats.flows_seen;
    // Always draw so scripted entries do not shift later decisions.
    const double u = _flow_rng.uniform();
    FlowAction action;
    if (const auto it = _flow_script.find(n); it != _flow_script.end()) {
        action = it->second;
    } else if (u < _spec.flow_stall_prob) {
        action = FlowAction::Stall;
    } else if (u < _spec.flow_stall_prob + _spec.flow_corrupt_prob) {
        action = FlowAction::Corrupt;
    } else {
        action = FlowAction::None;
    }
    if (action == FlowAction::Stall)
        ++_stats.flows_stalled;
    else if (action == FlowAction::Corrupt)
        ++_stats.flows_corrupted;
    return action;
}

KernelAction
FaultPlan::onKernel()
{
    const std::uint64_t n = _kernel_n++;
    ++_stats.kernels_seen;
    const double u = _kernel_rng.uniform();
    KernelAction action;
    if (const auto it = _kernel_script.find(n);
        it != _kernel_script.end()) {
        action = it->second;
    } else if (u < _spec.kernel_fail_prob) {
        action = KernelAction::Fail;
    } else if (u < _spec.kernel_fail_prob + _spec.kernel_hang_prob) {
        action = KernelAction::Hang;
    } else {
        action = KernelAction::None;
    }
    if (action == KernelAction::Fail)
        ++_stats.kernels_failed;
    else if (action == KernelAction::Hang)
        ++_stats.kernels_hung;
    return action;
}

MachineAction
FaultPlan::onMachine()
{
    const std::uint64_t n = _machine_n++;
    ++_stats.machines_seen;
    const double u = _machine_rng.uniform();
    MachineAction action;
    if (const auto it = _machine_script.find(n);
        it != _machine_script.end()) {
        action = it->second;
    } else {
        action = u < _spec.drx_fault_prob ? MachineAction::Fault
                                          : MachineAction::None;
    }
    if (action == MachineAction::Fault)
        ++_stats.machine_faults;
    return action;
}

IrqAction
FaultPlan::onIrq()
{
    const std::uint64_t n = _irq_n++;
    ++_stats.irqs_seen;
    const double u = _irq_rng.uniform();
    IrqAction action;
    if (const auto it = _irq_script.find(n); it != _irq_script.end()) {
        action = it->second;
    } else {
        action =
            u < _spec.irq_drop_prob ? IrqAction::Drop : IrqAction::None;
    }
    if (action == IrqAction::Drop)
        ++_stats.irqs_dropped;
    return action;
}

void
FaultPlan::onQueueOverflow(std::string_view queue)
{
    ++_stats.queue_overflows;
    ++_stats.queue_overflow_by_queue[std::string(queue)];
}

void
FaultPlan::scriptFlow(std::uint64_t nth, FlowAction action)
{
    _flow_script[nth] = action;
}

void
FaultPlan::scriptKernel(std::uint64_t nth, KernelAction action)
{
    _kernel_script[nth] = action;
}

void
FaultPlan::scriptMachine(std::uint64_t nth, MachineAction action)
{
    _machine_script[nth] = action;
}

void
FaultPlan::scriptIrq(std::uint64_t nth, IrqAction action)
{
    _irq_script[nth] = action;
}

std::string
toString(FlowAction a)
{
    switch (a) {
      case FlowAction::None:    return "none";
      case FlowAction::Stall:   return "stall";
      case FlowAction::Corrupt: return "corrupt";
    }
    return "?";
}

std::string
toString(KernelAction a)
{
    switch (a) {
      case KernelAction::None: return "none";
      case KernelAction::Fail: return "fail";
      case KernelAction::Hang: return "hang";
    }
    return "?";
}

std::string
toString(MachineAction a)
{
    switch (a) {
      case MachineAction::None:  return "none";
      case MachineAction::Fault: return "fault";
    }
    return "?";
}

std::string
toString(IrqAction a)
{
    switch (a) {
      case IrqAction::None: return "none";
      case IrqAction::Drop: return "drop";
    }
    return "?";
}

} // namespace dmx::fault
