/**
 * @file
 * Per-device health tracking.
 *
 * The runtime keeps one HealthTracker per device. Command failures
 * (errors and timeouts, counting every retry attempt) advance a
 * consecutive-failure streak; a success resets it. Once the streak
 * reaches the threshold the device is marked unhealthy and stays so
 * until reset() - the runtime stops dispatching to an unhealthy device,
 * so there is no organic path back to health (mirroring a device held
 * in reset pending operator attention).
 */

#ifndef DMX_FAULT_HEALTH_HH
#define DMX_FAULT_HEALTH_HH

#include <cstdint>

namespace dmx::fault
{

/** Consecutive-failure health state of one device. */
class HealthTracker
{
  public:
    /** @param threshold consecutive failures that mark unhealthy */
    explicit HealthTracker(unsigned threshold = 3)
        : _threshold(threshold == 0 ? 1 : threshold)
    {
    }

    /** Record a successful command attempt. */
    void
    recordSuccess()
    {
        _streak = 0;
        ++_successes;
    }

    /** Record a failed command attempt (error or timeout). */
    void
    recordFailure()
    {
        ++_failures;
        if (!_unhealthy && ++_streak >= _threshold)
            _unhealthy = true;
    }

    /** Return the device to service and clear the streak. */
    void
    reset()
    {
        _unhealthy = false;
        _streak = 0;
    }

    bool healthy() const { return !_unhealthy; }
    unsigned consecutiveFailures() const { return _streak; }
    unsigned threshold() const { return _threshold; }
    std::uint64_t totalFailures() const { return _failures; }
    std::uint64_t totalSuccesses() const { return _successes; }

  private:
    unsigned _threshold;
    unsigned _streak = 0;
    bool _unhealthy = false;
    std::uint64_t _failures = 0;
    std::uint64_t _successes = 0;
};

} // namespace dmx::fault

#endif // DMX_FAULT_HEALTH_HH
