/**
 * @file
 * Deterministic, seeded fault plans.
 *
 * A FaultPlan decides, for every injectable operation in the simulator,
 * whether it proceeds normally or fails in a layer-appropriate way. Two
 * mechanisms compose:
 *
 *  - *probabilistic* faults: each site (flows, kernels, DRX programs,
 *    interrupts) draws from its own seeded Rng stream, so fault
 *    sequences are reproducible and independent across sites;
 *  - *scripted* faults: "fault the nth query at this site" overrides,
 *    which tests and the chaos example use to build exact scenarios
 *    (e.g. stall exactly the first DMA, then succeed).
 *
 * Determinism contract: with equal seeds and equal (deterministic)
 * simulations, two runs see identical fault decisions, identical retry
 * counts and identical final simulated times.
 */

#ifndef DMX_FAULT_FAULT_HH
#define DMX_FAULT_FAULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/random.hh"
#include "fault/hooks.hh"

namespace dmx::fault
{

/** Probabilities and knobs of one fault plan. */
struct FaultSpec
{
    std::uint64_t seed = 1;        ///< master seed for all fault streams

    double flow_stall_prob = 0;    ///< P[a DMA flow wedges]
    double flow_corrupt_prob = 0;  ///< P[a DMA flow fails its CRC]
    double kernel_fail_prob = 0;   ///< P[an accelerator kernel errors]
    double kernel_hang_prob = 0;   ///< P[an accelerator kernel hangs]
    double drx_fault_prob = 0;     ///< P[a DRX program faults]
    double irq_drop_prob = 0;      ///< P[a completion irq is lost]

    /// When true, the switch's p2p forwarding path is considered down
    /// and the runtime stages p2p copies through the root complex.
    bool p2p_switch_faulted = false;

    /// Consecutive command failures before a device is marked unhealthy
    /// (and, for DRX devices, work degrades to CPU restructuring).
    unsigned unhealthy_threshold = 3;
};

/** Cumulative counts of queries and injected faults. */
struct FaultStats
{
    std::uint64_t flows_seen = 0;
    std::uint64_t flows_stalled = 0;
    std::uint64_t flows_corrupted = 0;
    std::uint64_t kernels_seen = 0;
    std::uint64_t kernels_failed = 0;
    std::uint64_t kernels_hung = 0;
    std::uint64_t machines_seen = 0;
    std::uint64_t machine_faults = 0;
    std::uint64_t irqs_seen = 0;
    std::uint64_t irqs_dropped = 0;

    /// Data-queue pushes rejected for lack of space, keyed by queue
    /// label (see DataQueue::setLabel) so the offending queue - not
    /// just an aggregate - is identifiable. Overflows are an overload
    /// symptom, not an injected fault, so they do not count toward
    /// injected().
    std::uint64_t queue_overflows = 0;
    std::map<std::string, std::uint64_t, std::less<>>
        queue_overflow_by_queue;

    /** @return total faults injected across every site. */
    std::uint64_t
    injected() const
    {
        return flows_stalled + flows_corrupted + kernels_failed +
               kernels_hung + machine_faults + irqs_dropped;
    }
};

/**
 * The fault decision engine. Install with Platform::setFaultPlan (or
 * wire the on*() members into layer hooks directly). The plan is
 * stateful: site counters advance on every query.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(FaultSpec spec = {});

    const FaultSpec &spec() const { return _spec; }
    const FaultStats &stats() const { return _stats; }

    // ------------------------------------------------ hook entry points

    /** Decide the fate of a starting flow. */
    FlowAction onFlow(std::uint32_t src, std::uint32_t dst,
                      std::uint64_t bytes);

    /** Decide the fate of a kernel submission. */
    KernelAction onKernel();

    /** Decide the fate of a DRX program run. */
    MachineAction onMachine();

    /** Decide the fate of a completion notification. */
    IrqAction onIrq();

    /**
     * Report a data-queue push rejected for lack of space. Pure
     * accounting (no decision): the per-queue tally names the
     * offending queue in stats() and diagnostics.
     */
    void onQueueOverflow(std::string_view queue);

    /** @return true while the switch p2p path is considered down. */
    bool p2pFaulted() const { return _spec.p2p_switch_faulted; }

    /** Fail or restore the switch p2p forwarding path. */
    void setP2pFaulted(bool faulted) { _spec.p2p_switch_faulted = faulted; }

    // -------------------------------------------------- scripted faults
    // The nth (0-based) query at a site takes the scripted action
    // instead of a probabilistic draw. The Rng stream still advances on
    // scripted queries so that adding a script does not perturb the
    // probabilistic decisions of later queries.

    void scriptFlow(std::uint64_t nth, FlowAction action);
    void scriptKernel(std::uint64_t nth, KernelAction action);
    void scriptMachine(std::uint64_t nth, MachineAction action);
    void scriptIrq(std::uint64_t nth, IrqAction action);

  private:
    FaultSpec _spec;
    FaultStats _stats;

    // Independent streams per site: the decision sequence at one site
    // does not depend on how queries interleave with other sites.
    Rng _flow_rng;
    Rng _kernel_rng;
    Rng _machine_rng;
    Rng _irq_rng;

    std::uint64_t _flow_n = 0;
    std::uint64_t _kernel_n = 0;
    std::uint64_t _machine_n = 0;
    std::uint64_t _irq_n = 0;

    std::map<std::uint64_t, FlowAction> _flow_script;
    std::map<std::uint64_t, KernelAction> _kernel_script;
    std::map<std::uint64_t, MachineAction> _machine_script;
    std::map<std::uint64_t, IrqAction> _irq_script;
};

/** @return human name of an action, e.g. "stall". */
std::string toString(FlowAction a);
std::string toString(KernelAction a);
std::string toString(MachineAction a);
std::string toString(IrqAction a);

} // namespace dmx::fault

#endif // DMX_FAULT_FAULT_HH
