/**
 * @file
 * Fault-injection hook types shared by the simulated hardware layers.
 *
 * Each injectable layer (PCIe fabric, accelerator units, DRX machines,
 * the interrupt controller) owns an optional hook of the matching type.
 * When no hook is installed the layer behaves exactly as before - the
 * null check is the only cost, so fault support is zero-overhead by
 * default. Hooks are consulted once per operation and return the action
 * to take; the stock implementation of every hook is fault::FaultPlan,
 * but tests may install ad-hoc lambdas.
 *
 * This header is intentionally dependency-free so that the hardware
 * layers can include it without linking against dmx_fault.
 */

#ifndef DMX_FAULT_HOOKS_HH
#define DMX_FAULT_HOOKS_HH

#include <cstdint>
#include <functional>

namespace dmx::fault
{

/** What to do with a PCIe flow that is about to start. */
enum class FlowAction
{
    None,    ///< deliver normally
    Stall,   ///< the DMA never completes (link wedged; caller times out)
    Corrupt, ///< delivered on time but fails the end-to-end CRC check
};

/** What to do with a kernel submitted to an accelerator unit. */
enum class KernelAction
{
    None, ///< run normally
    Fail, ///< completes at the normal time with an error status
    Hang, ///< never signals completion (caller times out)
};

/** What to do with a DRX program about to execute. */
enum class MachineAction
{
    None,  ///< run normally
    Fault, ///< the machine raises a fault; the run produces no output
};

/** What to do with a completion notification. */
enum class IrqAction
{
    None, ///< delivered normally
    Drop, ///< lost; the driver discovers completion by polling later
};

/**
 * SEC-DED scratchpad ECC outcome for one DRX program run. Single-bit
 * upsets are corrected in place at a small scrub-cycle penalty;
 * double-bit upsets are detected but uncorrectable, so the run aborts
 * (poisoned data must never be committed).
 */
enum class EccAction
{
    None,          ///< no upset this run
    CorrectSingle, ///< single-bit flip, corrected (scrub penalty)
    DetectDouble,  ///< double-bit flip, detected-uncorrectable (abort)
};

/** Fabric hook: consulted by every startFlow (src, dst, bytes). */
using FlowHook = std::function<FlowAction(
    std::uint32_t src, std::uint32_t dst, std::uint64_t bytes)>;

/** Device-unit hook: consulted by every kernel submission. */
using KernelHook = std::function<KernelAction()>;

/** DRX-machine hook: consulted by every program run. */
using MachineHook = std::function<MachineAction()>;

/** Interrupt-controller hook: consulted by every notification. */
using IrqHook = std::function<IrqAction()>;

/** DRX scratchpad ECC hook: consulted once per program run. */
using EccHook = std::function<EccAction()>;

/**
 * PCIe link-CRC hook: consulted by every flow that actually starts
 * (src, dst, bytes). @return the number of link-level replay events
 * the flow suffers; each one deterministically delays the flow's
 * streaming eligibility by the fabric's configured replay latency.
 * Link CRC errors are detected *and* recovered at the link layer, so
 * they cost time but never corrupt the payload.
 */
using LinkCrcHook = std::function<unsigned(
    std::uint32_t src, std::uint32_t dst, std::uint64_t bytes)>;

} // namespace dmx::fault

#endif // DMX_FAULT_HOOKS_HH
