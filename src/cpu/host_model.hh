/**
 * @file
 * Host CPU timing model.
 *
 * Converts kernel/restructuring operation counts into host execution
 * work (in core-seconds), following the paper's characterization of the
 * Xeon host: AVX-256 vector units, streaming access patterns that
 * thrash the cache hierarchy, and abundant but memory-bound data-level
 * parallelism.
 */

#ifndef DMX_CPU_HOST_MODEL_HH
#define DMX_CPU_HOST_MODEL_HH

#include "common/units.hh"
#include "kernels/opcount.hh"

namespace dmx::cpu
{

/** Host processor parameters (Xeon Platinum 8260L-like). */
struct HostParams
{
    unsigned cores = 16;              ///< cores available to the runtime
    double freq_hz = 2.4e9;
    /// *Achieved* fp32 throughput per core. AVX-256 peak is 16
    /// flops/cycle, but restructuring and signal-processing codes reach
    /// a small fraction of peak (pointer chasing, shuffles, short
    /// reductions); 2 flops/cycle matches the observed gap between the
    /// paper's per-kernel accelerator speedups (geomean 6.5x) and the
    /// FPGA datapath widths.
    double flops_per_cycle = 2.0;
    double intops_per_cycle = 2.0;
    /// Sustained per-core DRAM bandwidth under streaming (shared-socket
    /// bandwidth divided by active cores under load).
    double core_mem_bytes_per_sec = 6e9;
    /// Cache-thrash multiplier applied to restructuring traffic: the
    /// 6-16 MB batches do not fit the 1 MB L2 (Sec. IV-A, 50-215 L1D
    /// MPKI), strided/gathered patterns defeat the prefetchers, and
    /// dirty lines write back - most bytes cross DRAM more than once.
    double thrash_factor = 3.0;
    /// Parallel efficiency when a job spreads across several cores.
    double parallel_efficiency = 0.75;
    /// Most one job can productively use (ephemeral MKL-style threads
    /// saturate memory bandwidth long before 16 cores help).
    double max_job_cores = 4.0;
    /// Fixed host-side cost per restructuring invocation: the paper's
    /// profile shows 130-140 ephemeral worker threads spawned per
    /// operation, plus library dispatch and buffer marshalling.
    double restructure_spawn_core_seconds = 0.020;
};

/**
 * Host work for a compute kernel (FFT, SVM, ... run on the CPU in the
 * All-CPU configuration).
 *
 * @return core-seconds of work (roofline of compute vs memory)
 */
double kernelCoreSeconds(const kernels::OpCount &ops,
                         const HostParams &host);

/**
 * Host work for a data-restructuring operation. Restructuring is
 * penalized by the thrash factor: its streaming batches miss in the
 * cache hierarchy (50-215 L1D MPKI in the paper's profile).
 *
 * @return core-seconds of work
 */
double restructureCoreSeconds(const kernels::OpCount &ops,
                              const HostParams &host);

} // namespace dmx::cpu

#endif // DMX_CPU_HOST_MODEL_HH
