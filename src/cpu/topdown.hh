/**
 * @file
 * Top-down characterization of restructuring ops on the host CPU
 * (reproduces the methodology behind the paper's Figure 5).
 *
 * The restructuring kernel executes for real on the CPU reference
 * executor; its data address stream drives the cache simulator
 * (mem::Hierarchy) and its instruction stream is synthesized from the
 * retired-instruction counts (tight loop bodies, which is why L1I MPKI
 * stays low). Stall components are then attributed with a fixed-cost
 * model per miss level and folded into the four top-down buckets.
 */

#ifndef DMX_CPU_TOPDOWN_HH
#define DMX_CPU_TOPDOWN_HH

#include <string>

#include "mem/hierarchy.hh"
#include "restructure/cpu_exec.hh"
#include "restructure/ir.hh"

namespace dmx::cpu
{

/** Fractions of total cycles per top-down category (sum to 1). */
struct TopDownReport
{
    double retiring = 0;
    double frontend = 0;
    double bad_speculation = 0;
    double backend_core = 0;
    double backend_memory = 0;

    mem::MpkiReport mpki;
    std::uint64_t instructions = 0;

    /** @return backend_core + backend_memory. */
    double backend() const { return backend_core + backend_memory; }
};

/** Knobs for the stall attribution model. */
struct TopDownParams
{
    double base_cpi = 0.30;          ///< issue-limited cycles per instr
    double core_stall_cpi = 0.09;    ///< FU contention / dependency
    double frontend_base_cpi = 0.03; ///< decode/uop-cache switches
    double l1d_miss_cycles = 12;     ///< L1D miss, L2 hit
    double l2_miss_cycles = 65;      ///< L2 miss to DRAM
    double l1i_miss_cycles = 20;
    double branch_rate = 0.08;       ///< branches per instruction
    double mispredict_rate = 0.04;   ///< of branches
    double mispredict_cycles = 16;
};

/**
 * Characterize one restructuring kernel.
 *
 * @param kernel restructuring pipeline
 * @param input  input bytes matching kernel.input
 * @param params stall-model knobs (branchy workloads raise branch_rate)
 * @return top-down fractions plus MPKI
 */
TopDownReport characterize(const restructure::Kernel &kernel,
                           const restructure::Bytes &input,
                           const TopDownParams &params = {});

} // namespace dmx::cpu

#endif // DMX_CPU_TOPDOWN_HH
