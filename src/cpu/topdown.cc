#include "cpu/topdown.hh"

#include "common/logging.hh"

namespace dmx::cpu
{

namespace
{

/** Feeds the executor's accesses into the cache hierarchy. */
class HierarchyTracer : public restructure::MemTracer
{
  public:
    explicit HierarchyTracer(mem::Hierarchy &h) : _h(h) {}

    void
    read(std::uint64_t addr, std::size_t bytes) override
    {
        _h.data(addr, false);
        (void)bytes;
    }

    void
    write(std::uint64_t addr, std::size_t bytes) override
    {
        _h.data(addr, true);
        (void)bytes;
    }

    void
    retire(std::uint64_t n, std::size_t body_bytes) override
    {
        // Synthesize the instruction stream: the loop body is a small
        // contiguous code region re-fetched per iteration. Sampling one
        // fetch per 4 instructions models a 16-byte fetch window.
        const std::uint64_t fetches = n / 4 + 1;
        const std::size_t span = std::max<std::size_t>(body_bytes, 16);
        for (std::uint64_t f = 0; f < fetches; ++f) {
            const std::uint64_t pc =
                code_base + (_fetch_cursor % span);
            _h.fetch(pc);
            _fetch_cursor += 16;
            // Every so often the kernel dispatches into library code
            // (MKL / libc memmove / scheduler) whose footprint exceeds
            // the L1I - the source of the paper's small-but-nonzero
            // L1I MPKI (~2.3).
            if (++_since_lib >= 96) {
                _since_lib = 0;
                _h.fetch(lib_base + (_lib_cursor % lib_span));
                _lib_cursor += 8192; // scattered call targets
            }
        }
        _h.retire(n);
    }

  private:
    static constexpr std::uint64_t code_base = 0x400000;
    static constexpr std::uint64_t lib_base = 0x7f0000000000ull;
    static constexpr std::uint64_t lib_span = 16 * 1024 * 1024;
    std::uint64_t _lib_cursor = 0;
    unsigned _since_lib = 0;
    mem::Hierarchy &_h;
    std::uint64_t _fetch_cursor = 0;
};

} // namespace

TopDownReport
characterize(const restructure::Kernel &kernel,
             const restructure::Bytes &input, const TopDownParams &p)
{
    mem::Hierarchy hierarchy;
    HierarchyTracer tracer(hierarchy);
    restructure::executeOnCpu(kernel, input, nullptr, &tracer);

    TopDownReport rep;
    rep.mpki = hierarchy.report();
    rep.instructions = hierarchy.instructions();
    const auto instr = static_cast<double>(rep.instructions);
    if (instr == 0)
        dmx_fatal("topdown: kernel retired no instructions");

    const double retiring_cycles = instr * p.base_cpi;
    const double core_cycles = instr * p.core_stall_cpi;
    const double mem_cycles =
        static_cast<double>(hierarchy.l1d().misses()) * p.l1d_miss_cycles +
        static_cast<double>(hierarchy.l2().misses()) * p.l2_miss_cycles;
    const double frontend_cycles =
        instr * p.frontend_base_cpi +
        static_cast<double>(hierarchy.l1i().misses()) * p.l1i_miss_cycles;
    const double badspec_cycles = instr * p.branch_rate *
                                  p.mispredict_rate * p.mispredict_cycles;

    const double total = retiring_cycles + core_cycles + mem_cycles +
                         frontend_cycles + badspec_cycles;
    rep.retiring = retiring_cycles / total;
    rep.backend_core = core_cycles / total;
    rep.backend_memory = mem_cycles / total;
    rep.frontend = frontend_cycles / total;
    rep.bad_speculation = badspec_cycles / total;
    return rep;
}

} // namespace dmx::cpu
