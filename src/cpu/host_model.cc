#include "cpu/host_model.hh"

#include <algorithm>

namespace dmx::cpu
{

namespace
{

double
rooflineSeconds(const kernels::OpCount &ops, const HostParams &host,
                double traffic_multiplier)
{
    const double compute_sec =
        static_cast<double>(ops.flops) /
            (host.flops_per_cycle * host.freq_hz) +
        static_cast<double>(ops.int_ops) /
            (host.intops_per_cycle * host.freq_hz);
    const double mem_sec = static_cast<double>(ops.bytes()) *
                           traffic_multiplier /
                           host.core_mem_bytes_per_sec;
    return std::max(compute_sec, mem_sec);
}

} // namespace

double
kernelCoreSeconds(const kernels::OpCount &ops, const HostParams &host)
{
    // Compute kernels have some locality; charge raw traffic only.
    return rooflineSeconds(ops, host, 1.0);
}

double
restructureCoreSeconds(const kernels::OpCount &ops, const HostParams &host)
{
    return rooflineSeconds(ops, host, host.thrash_factor) +
           host.restructure_spawn_core_seconds;
}

} // namespace dmx::cpu
