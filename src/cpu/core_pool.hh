/**
 * @file
 * A malleable-job core pool.
 *
 * Jobs carry work in core-seconds. All active jobs share the pool's
 * cores max-min fairly, with a per-job parallelism cap (a single
 * restructuring job cannot productively use the whole socket). On every
 * arrival/completion the core allocation is re-solved and the earliest
 * completion rescheduled - the same flow-level technique the PCIe
 * fabric uses, applied to CPU time. This reproduces the paper's
 * Figure 3 observation: beyond ~10 concurrent applications the 16 Xeon
 * cores cannot keep up with the restructuring load.
 */

#ifndef DMX_CPU_CORE_POOL_HH
#define DMX_CPU_CORE_POOL_HH

#include <cstdint>
#include <functional>
#include <map>

#include "cpu/host_model.hh"
#include "sim/sim_object.hh"

namespace dmx::cpu
{

/** Completion callback for a submitted job. */
using JobCallback = std::function<void()>;

/** Event-driven malleable core pool. */
class CorePool : public sim::SimObject
{
  public:
    /**
     * @param eq    system event queue
     * @param name  object name
     * @param cores number of cores in the pool
     * @param max_job_cores per-job parallelism cap
     */
    CorePool(sim::EventQueue &eq, std::string name, double cores,
             double max_job_cores);

    /**
     * Submit a job.
     *
     * @param core_seconds work amount
     * @param done         invoked at the job's completion time
     */
    void submit(double core_seconds, JobCallback done);

    /**
     * Submit a job with its own parallelism cap (e.g. 1 for inherently
     * serial work such as decompression).
     *
     * @param core_seconds work amount
     * @param max_cores    cores this job can use (0 = pool default)
     * @param done         invoked at the job's completion time
     */
    void submit(double core_seconds, double max_cores, JobCallback done);

    /** @return jobs currently executing or queued. */
    std::size_t activeJobs() const { return _jobs.size(); }

    /** @return integral of allocated cores over time (core-seconds). */
    double busyCoreSeconds() const { return _busy_core_seconds; }

    /** @return total jobs completed. */
    std::uint64_t completedJobs() const { return _completed; }

    double cores() const { return _cores; }

  private:
    struct Job
    {
        double remaining;  ///< core-seconds left
        double rate = 0;   ///< cores currently allocated
        double cap = 0;    ///< per-job parallelism limit
        JobCallback done;
    };

    void advanceProgress();
    void solveRates();
    void scheduleNextCompletion();
    void onCompletionCheck();

    double _cores;
    double _max_job_cores;
    std::map<std::uint64_t, Job> _jobs;
    std::uint64_t _next_id = 0;
    Tick _last_update = 0;
    sim::EventHandle _pending;
    double _busy_core_seconds = 0;
    std::uint64_t _completed = 0;
};

} // namespace dmx::cpu

#endif // DMX_CPU_CORE_POOL_HH
