#include "cpu/core_pool.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace dmx::cpu
{

namespace
{

constexpr double work_epsilon = 1e-12; // core-seconds

} // namespace

CorePool::CorePool(sim::EventQueue &eq, std::string name, double cores,
                   double max_job_cores)
    : sim::SimObject(eq, std::move(name)), _cores(cores),
      _max_job_cores(std::min(max_job_cores, cores))
{
    if (cores <= 0)
        dmx_fatal("CorePool: need a positive core count");
}

void
CorePool::submit(double core_seconds, JobCallback done)
{
    submit(core_seconds, 0, std::move(done));
}

void
CorePool::submit(double core_seconds, double max_cores, JobCallback done)
{
    if (core_seconds < 0)
        dmx_fatal("CorePool: negative work");
    advanceProgress();
    Job job;
    job.remaining = core_seconds;
    job.cap = max_cores > 0 ? std::min(max_cores, _cores)
                            : _max_job_cores;
    job.done = std::move(done);
    _jobs.emplace(_next_id++, std::move(job));
    solveRates();
    scheduleNextCompletion();
}

void
CorePool::advanceProgress()
{
    const Tick t = now();
    if (t <= _last_update) {
        _last_update = t;
        return;
    }
    const double dt = ticksToSeconds(t - _last_update);
    for (auto &[id, job] : _jobs) {
        const double done_work = std::min(job.remaining, job.rate * dt);
        job.remaining -= done_work;
        _busy_core_seconds += done_work;
    }
    _last_update = t;
}

void
CorePool::solveRates()
{
    // Water-filling on one resource: raise every job's share equally,
    // freezing jobs at their individual parallelism caps and
    // redistributing the leftover to the rest.
    if (_jobs.empty())
        return;
    double pool = _cores;
    std::vector<Job *> open;
    open.reserve(_jobs.size());
    for (auto &[id, job] : _jobs) {
        job.rate = 0;
        open.push_back(&job);
    }
    while (!open.empty()) {
        const double share = pool / static_cast<double>(open.size());
        bool any_capped = false;
        for (std::size_t i = 0; i < open.size();) {
            if (open[i]->cap <= share) {
                open[i]->rate = open[i]->cap;
                pool -= open[i]->cap;
                open[i] = open.back();
                open.pop_back();
                any_capped = true;
            } else {
                ++i;
            }
        }
        if (!any_capped) {
            for (Job *job : open)
                job->rate = share;
            break;
        }
    }
}

void
CorePool::scheduleNextCompletion()
{
    _pending.cancel();
    if (_jobs.empty())
        return;
    const Tick t = now();
    Tick earliest = max_tick;
    for (const auto &[id, job] : _jobs) {
        Tick candidate;
        if (job.remaining <= work_epsilon) {
            candidate = t;
        } else if (job.rate > 0) {
            candidate = t + secondsToTicks(job.remaining / job.rate) + 1;
        } else {
            continue;
        }
        earliest = std::min(earliest, candidate);
    }
    if (earliest == max_tick)
        return;
    earliest = std::max(earliest, t + 1);
    _pending = eventq().schedule(earliest, [this] { onCompletionCheck(); });
}

void
CorePool::onCompletionCheck()
{
    advanceProgress();
    std::vector<JobCallback> done;
    for (auto it = _jobs.begin(); it != _jobs.end();) {
        if (it->second.remaining <= work_epsilon) {
            done.push_back(std::move(it->second.done));
            it = _jobs.erase(it);
            ++_completed;
        } else {
            ++it;
        }
    }
    solveRates();
    scheduleNextCompletion();
    for (JobCallback &cb : done) {
        if (cb)
            cb();
    }
}

} // namespace dmx::cpu
