/**
 * @file
 * Columnar tables and an equi hash join (build + probe).
 *
 * The Database Hash Join pipeline joins two decompressed tables as its
 * second accelerated kernel; this is the functional implementation the
 * accelerator model wraps.
 */

#ifndef DMX_KERNELS_HASHJOIN_HH
#define DMX_KERNELS_HASHJOIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** A simple two-column table: int64 key plus int64 payload. */
struct Table
{
    std::vector<std::int64_t> keys;
    std::vector<std::int64_t> payloads;

    std::size_t rows() const { return keys.size(); }

    /** Append one row. */
    void
    add(std::int64_t key, std::int64_t payload)
    {
        keys.push_back(key);
        payloads.push_back(payload);
    }

    /** Serialize to a flat byte buffer (row-major key,payload pairs). */
    std::vector<std::uint8_t> serialize() const;

    /** Inverse of serialize(). */
    static Table deserialize(const std::vector<std::uint8_t> &bytes);
};

/** One joined output row. */
struct JoinedRow
{
    std::int64_t key;
    std::int64_t left_payload;
    std::int64_t right_payload;

    bool
    operator==(const JoinedRow &o) const
    {
        return key == o.key && left_payload == o.left_payload &&
               right_payload == o.right_payload;
    }
};

/**
 * Equi-join @p build and @p probe on their key columns.
 *
 * Builds an open-addressing hash table over @p build, then streams
 * @p probe through it. Handles duplicate keys on both sides (full
 * cross product per matching key).
 *
 * @param build smaller relation (hash table side)
 * @param probe larger relation (streamed side)
 * @param ops   optional op accounting
 * @return joined rows, in probe order
 */
std::vector<JoinedRow> hashJoin(const Table &build, const Table &probe,
                                OpCount *ops = nullptr);

} // namespace dmx::kernels

#endif // DMX_KERNELS_HASHJOIN_HH
