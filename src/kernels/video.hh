/**
 * @file
 * A block-transform intra-only video codec (DCT + quantization + RLE).
 *
 * The Video Surveillance pipeline decodes camera streams before object
 * detection; the paper uses the VT1 instance's hard-IP H.264 decoder.
 * We substitute an MJPEG-like intra codec: the decode path exercises the
 * same stages (entropy decode, dequantize, inverse transform, block
 * reassembly) that dominate a hardware video decoder's data flow.
 */

#ifndef DMX_KERNELS_VIDEO_HH
#define DMX_KERNELS_VIDEO_HH

#include <cstdint>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** One grayscale frame (row-major, 8-bit). */
struct Frame
{
    std::size_t width = 0;
    std::size_t height = 0;
    std::vector<std::uint8_t> pixels;

    Frame() = default;
    Frame(std::size_t w, std::size_t h)
        : width(w), height(h), pixels(w * h, 0)
    {
    }

    std::uint8_t
    at(std::size_t x, std::size_t y) const
    {
        return pixels[y * width + x];
    }

    void
    set(std::size_t x, std::size_t y, std::uint8_t v)
    {
        pixels[y * width + x] = v;
    }
};

/** An encoded bitstream for a sequence of frames. */
struct VideoStream
{
    std::size_t width = 0;
    std::size_t height = 0;
    std::size_t frames = 0;
    std::uint8_t quality = 50; ///< 1 (worst) .. 100 (near lossless)
    std::vector<std::uint8_t> bits;
};

/**
 * Encode frames into a stream.
 *
 * @param frames  input frames (all the same size, multiples of 8)
 * @param quality quantization quality, 1..100
 * @param ops     optional op accounting
 */
VideoStream videoEncode(const std::vector<Frame> &frames,
                        std::uint8_t quality = 50, OpCount *ops = nullptr);

/**
 * Decode a stream back into frames.
 *
 * @param stream encoded stream
 * @param ops    optional op accounting
 * @return decoded frames (lossy relative to the originals)
 */
std::vector<Frame> videoDecode(const VideoStream &stream,
                               OpCount *ops = nullptr);

/** @return peak signal-to-noise ratio between two frames, in dB. */
double psnr(const Frame &a, const Frame &b);

} // namespace dmx::kernels

#endif // DMX_KERNELS_VIDEO_HH
