/**
 * @file
 * Operation accounting shared by all functional kernels.
 *
 * Every kernel reports the work it performed; the accelerator latency
 * models convert these counts into FPGA/ASIC cycle estimates, and the
 * CPU model converts them into host execution time.
 */

#ifndef DMX_KERNELS_OPCOUNT_HH
#define DMX_KERNELS_OPCOUNT_HH

#include <cstdint>

namespace dmx::kernels
{

/** Work performed by one kernel invocation. */
struct OpCount
{
    std::uint64_t flops = 0;         ///< floating-point operations
    std::uint64_t int_ops = 0;       ///< integer/logic operations
    std::uint64_t bytes_read = 0;    ///< input traffic
    std::uint64_t bytes_written = 0; ///< output traffic

    OpCount &
    operator+=(const OpCount &o)
    {
        flops += o.flops;
        int_ops += o.int_ops;
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        return *this;
    }

    /** @return total bytes moved. */
    std::uint64_t bytes() const { return bytes_read + bytes_written; }

    /** @return total operations. */
    std::uint64_t ops() const { return flops + int_ops; }
};

} // namespace dmx::kernels

#endif // DMX_KERNELS_OPCOUNT_HH
