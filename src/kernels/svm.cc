#include "kernels/svm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmx::kernels
{

LinearSvm::LinearSvm(std::size_t features, std::size_t classes)
    : _features(features), _classes(classes),
      _weights(classes * (features + 1), 0.0f)
{
    if (features == 0 || classes < 2)
        dmx_fatal("LinearSvm: need >=1 feature and >=2 classes");
}

std::vector<float>
LinearSvm::decision(const std::vector<float> &x, OpCount *ops) const
{
    if (x.size() != _features)
        dmx_fatal("LinearSvm::decision: expected %zu features, got %zu",
                  _features, x.size());
    std::vector<float> scores(_classes, 0.0f);
    const std::size_t stride = _features + 1;
    for (std::size_t c = 0; c < _classes; ++c) {
        const float *w = &_weights[c * stride];
        float acc = w[_features]; // bias
        for (std::size_t f = 0; f < _features; ++f)
            acc += w[f] * x[f];
        scores[c] = acc;
    }
    if (ops) {
        ops->flops += 2ull * _classes * _features;
        // The weight matrix is hot (it fits in cache / accelerator
        // SRAM); charge it once per batch (see predictBatch), and only
        // the sample traffic here.
        ops->bytes_read += x.size() * sizeof(float);
        ops->bytes_written += scores.size() * sizeof(float);
    }
    return scores;
}

std::size_t
LinearSvm::predict(const std::vector<float> &x, OpCount *ops) const
{
    const auto scores = decision(x, ops);
    return static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<std::size_t>
LinearSvm::predictBatch(const std::vector<float> &batch, std::size_t rows,
                        OpCount *ops) const
{
    if (batch.size() != rows * _features)
        dmx_fatal("LinearSvm::predictBatch: batch size mismatch");
    if (ops)
        ops->bytes_read += _weights.size() * sizeof(float);
    std::vector<std::size_t> out(rows);
    std::vector<float> x(_features);
    for (std::size_t r = 0; r < rows; ++r) {
        std::copy_n(batch.begin() + static_cast<std::ptrdiff_t>(
                        r * _features), _features, x.begin());
        out[r] = predict(x, ops);
    }
    return out;
}

void
LinearSvm::fit(const std::vector<float> &xs,
               const std::vector<std::size_t> &ys, std::size_t rows,
               unsigned epochs, float lr, float reg)
{
    if (xs.size() != rows * _features || ys.size() != rows)
        dmx_fatal("LinearSvm::fit: shape mismatch");
    const std::size_t stride = _features + 1;
    for (unsigned e = 0; e < epochs; ++e) {
        for (std::size_t r = 0; r < rows; ++r) {
            const float *x = &xs[r * _features];
            for (std::size_t c = 0; c < _classes; ++c) {
                float *w = &_weights[c * stride];
                const float y = ys[r] == c ? 1.0f : -1.0f;
                float margin = w[_features];
                for (std::size_t f = 0; f < _features; ++f)
                    margin += w[f] * x[f];
                margin *= y;
                for (std::size_t f = 0; f < _features; ++f) {
                    float grad = reg * w[f];
                    if (margin < 1.0f)
                        grad -= y * x[f];
                    w[f] -= lr * grad;
                }
                if (margin < 1.0f)
                    w[_features] += lr * y;
            }
        }
    }
}

} // namespace dmx::kernels
