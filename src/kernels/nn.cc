#include "kernels/nn.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace dmx::kernels
{

Tensor::Tensor(std::vector<std::size_t> s) : shape(std::move(s))
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    data.assign(n, 0.0f);
}

std::size_t
Tensor::size() const
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return n;
}

void
Tensor::randomize(std::uint64_t seed, float scale)
{
    Rng rng(seed);
    for (float &v : data)
        v = static_cast<float>(rng.uniform(-scale, scale));
}

Tensor
conv2d(const Tensor &input, const Tensor &kernel, OpCount *ops)
{
    if (input.shape.size() != 4 || kernel.shape.size() != 4)
        dmx_fatal("conv2d: expected NCHW input and OIKK kernel");
    const std::size_t batch = input.dim(0), cin = input.dim(1),
                      h = input.dim(2), w = input.dim(3);
    const std::size_t cout = kernel.dim(0), kin = kernel.dim(1),
                      kh = kernel.dim(2), kw = kernel.dim(3);
    if (kin != cin)
        dmx_fatal("conv2d: channel mismatch (%zu vs %zu)", kin, cin);
    const std::size_t pad_h = kh / 2, pad_w = kw / 2;

    Tensor out({batch, cout, h, w});
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oc = 0; oc < cout; ++oc) {
            for (std::size_t y = 0; y < h; ++y) {
                for (std::size_t x = 0; x < w; ++x) {
                    float acc = 0.0f;
                    for (std::size_t ic = 0; ic < cin; ++ic) {
                        for (std::size_t ky = 0; ky < kh; ++ky) {
                            const std::ptrdiff_t iy =
                                static_cast<std::ptrdiff_t>(y + ky) -
                                static_cast<std::ptrdiff_t>(pad_h);
                            if (iy < 0 ||
                                iy >= static_cast<std::ptrdiff_t>(h))
                                continue;
                            for (std::size_t kx = 0; kx < kw; ++kx) {
                                const std::ptrdiff_t ix =
                                    static_cast<std::ptrdiff_t>(x + kx) -
                                    static_cast<std::ptrdiff_t>(pad_w);
                                if (ix < 0 ||
                                    ix >= static_cast<std::ptrdiff_t>(w))
                                    continue;
                                const float iv = input.data[
                                    ((n * cin + ic) * h +
                                     static_cast<std::size_t>(iy)) * w +
                                    static_cast<std::size_t>(ix)];
                                const float kv = kernel.data[
                                    ((oc * cin + ic) * kh + ky) * kw + kx];
                                acc += iv * kv;
                            }
                        }
                    }
                    out.data[((n * cout + oc) * h + y) * w + x] = acc;
                }
            }
        }
    }
    if (ops) {
        ops->flops += 2ull * batch * cout * h * w * cin * kh * kw;
        ops->bytes_read += (input.size() + kernel.size()) * sizeof(float);
        ops->bytes_written += out.size() * sizeof(float);
    }
    return out;
}

void
reluInPlace(Tensor &t, OpCount *ops)
{
    for (float &v : t.data)
        v = std::max(0.0f, v);
    if (ops) {
        ops->flops += t.size();
        ops->bytes_read += t.size() * sizeof(float);
        ops->bytes_written += t.size() * sizeof(float);
    }
}

Tensor
maxpool2x2(const Tensor &input, OpCount *ops)
{
    if (input.shape.size() != 4)
        dmx_fatal("maxpool2x2: expected NCHW");
    const std::size_t batch = input.dim(0), c = input.dim(1),
                      h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / 2, ow = w / 2;
    Tensor out({batch, c, oh, ow});
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            for (std::size_t y = 0; y < oh; ++y) {
                for (std::size_t x = 0; x < ow; ++x) {
                    float m = -1e30f;
                    for (std::size_t dy = 0; dy < 2; ++dy)
                        for (std::size_t dx = 0; dx < 2; ++dx)
                            m = std::max(m, input.data[
                                ((n * c + ch) * h + 2 * y + dy) * w +
                                2 * x + dx]);
                    out.data[((n * c + ch) * oh + y) * ow + x] = m;
                }
            }
        }
    }
    if (ops) {
        ops->flops += out.size() * 4;
        ops->bytes_read += input.size() * sizeof(float);
        ops->bytes_written += out.size() * sizeof(float);
    }
    return out;
}

Tensor
dense(const Tensor &x, const Tensor &w, const Tensor &b, OpCount *ops)
{
    if (w.shape.size() != 2 || b.shape.size() != 1)
        dmx_fatal("dense: W must be 2-D and b 1-D");
    const std::size_t out_dim = w.dim(0), in_dim = w.dim(1);
    if (x.size() != in_dim)
        dmx_fatal("dense: input size %zu != %zu", x.size(), in_dim);
    if (b.dim(0) != out_dim)
        dmx_fatal("dense: bias size mismatch");
    Tensor y({1, out_dim});
    for (std::size_t o = 0; o < out_dim; ++o) {
        float acc = b.data[o];
        for (std::size_t i = 0; i < in_dim; ++i)
            acc += w.data[o * in_dim + i] * x.data[i];
        y.data[o] = acc;
    }
    if (ops) {
        ops->flops += 2ull * out_dim * in_dim;
        ops->bytes_read += (x.size() + w.size() + b.size()) * sizeof(float);
        ops->bytes_written += y.size() * sizeof(float);
    }
    return y;
}

void
softmaxRows(Tensor &t, OpCount *ops)
{
    if (t.shape.size() != 2)
        dmx_fatal("softmaxRows: expected 2-D tensor");
    const std::size_t rows = t.dim(0), cols = t.dim(1);
    for (std::size_t r = 0; r < rows; ++r) {
        float *row = &t.data[r * cols];
        const float mx = *std::max_element(row, row + cols);
        float sum = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        for (std::size_t c = 0; c < cols; ++c)
            row[c] /= sum;
    }
    if (ops)
        ops->flops += t.size() * 6;
}

Tensor
selfAttention(const Tensor &x, const Tensor &wq, const Tensor &wk,
              const Tensor &wv, OpCount *ops)
{
    if (x.shape.size() != 2)
        dmx_fatal("selfAttention: expected (seq x dim)");
    const std::size_t seq = x.dim(0), dim = x.dim(1);

    auto matmul = [&](const Tensor &a, const Tensor &w) {
        // a: (seq x dim), w: (dim x dim) -> (seq x dim)
        Tensor r({seq, dim});
        for (std::size_t s = 0; s < seq; ++s)
            for (std::size_t o = 0; o < dim; ++o) {
                float acc = 0.0f;
                for (std::size_t i = 0; i < dim; ++i)
                    acc += a.data[s * dim + i] * w.data[i * dim + o];
                r.data[s * dim + o] = acc;
            }
        return r;
    };

    const Tensor q = matmul(x, wq);
    const Tensor k = matmul(x, wk);
    const Tensor v = matmul(x, wv);

    Tensor scores({seq, seq});
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (std::size_t i = 0; i < seq; ++i)
        for (std::size_t j = 0; j < seq; ++j) {
            float acc = 0.0f;
            for (std::size_t d = 0; d < dim; ++d)
                acc += q.data[i * dim + d] * k.data[j * dim + d];
            scores.data[i * seq + j] = acc * scale;
        }
    softmaxRows(scores, nullptr);

    Tensor out({seq, dim});
    for (std::size_t i = 0; i < seq; ++i)
        for (std::size_t d = 0; d < dim; ++d) {
            float acc = 0.0f;
            for (std::size_t j = 0; j < seq; ++j)
                acc += scores.data[i * seq + j] * v.data[j * dim + d];
            out.data[i * dim + d] = acc;
        }

    if (ops) {
        ops->flops += 2ull * seq * dim * dim * 3 // projections
                      + 2ull * seq * seq * dim * 2 // scores + weighted sum
                      + 6ull * seq * seq;          // softmax
        ops->bytes_read += (x.size() * 3 + wq.size() * 3) * sizeof(float);
        ops->bytes_written += out.size() * sizeof(float);
    }
    return out;
}

TinyCnn::TinyCnn(std::size_t in_channels, std::size_t classes,
                 std::uint64_t seed)
    : _classes(classes), _conv1({16, in_channels, 3, 3}),
      _conv2({32, 16, 3, 3})
{
    _conv1.randomize(seed * 31 + 1);
    _conv2.randomize(seed * 31 + 2);
    // Head operates on 32 channels per 4x4-downsampled cell.
    _head_w = Tensor({classes, 32});
    _head_b = Tensor({classes});
    _head_w.randomize(seed * 31 + 3);
    _head_b.randomize(seed * 31 + 4);
}

Tensor
TinyCnn::detect(const Tensor &image, OpCount *ops) const
{
    Tensor f = conv2d(image, _conv1, ops);
    reluInPlace(f, ops);
    f = maxpool2x2(f, ops);
    f = conv2d(f, _conv2, ops);
    reluInPlace(f, ops);
    f = maxpool2x2(f, ops);

    // Per-cell classification over the 32-channel feature map.
    const std::size_t c = f.dim(1), h = f.dim(2), w = f.dim(3);
    Tensor scores({h * w, _classes});
    Tensor cell({1, c});
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            for (std::size_t ch = 0; ch < c; ++ch)
                cell.data[ch] = f.data[(ch * h + y) * w + x];
            Tensor logit = dense(cell, _head_w, _head_b, ops);
            std::copy(logit.data.begin(), logit.data.end(),
                      scores.data.begin() +
                          static_cast<std::ptrdiff_t>(
                              (y * w + x) * _classes));
        }
    }
    softmaxRows(scores, ops);
    return scores;
}

MlpPolicy::MlpPolicy(std::size_t obs_dim, std::size_t actions,
                     std::size_t hidden, std::uint64_t seed)
    : _actions(actions), _w1({hidden, obs_dim}), _b1({hidden}),
      _w2({hidden, hidden}), _b2({hidden}), _w3({actions, hidden}),
      _b3({actions})
{
    _w1.randomize(seed + 1);
    _b1.randomize(seed + 2);
    _w2.randomize(seed + 3);
    _b2.randomize(seed + 4);
    _w3.randomize(seed + 5);
    _b3.randomize(seed + 6);
}

Tensor
MlpPolicy::act(const Tensor &obs, OpCount *ops) const
{
    Tensor h1 = dense(obs, _w1, _b1, ops);
    reluInPlace(h1, ops);
    Tensor h2 = dense(h1, _w2, _b2, ops);
    reluInPlace(h2, ops);
    Tensor logits = dense(h2, _w3, _b3, ops);
    softmaxRows(logits, ops);
    return logits;
}

NerEncoder::NerEncoder(std::size_t dim, std::size_t labels,
                       std::uint64_t seed)
    : _dim(dim), _labels(labels), _wq({dim, dim}), _wk({dim, dim}),
      _wv({dim, dim}), _ff1_w({4 * dim, dim}), _ff1_b({4 * dim}),
      _ff2_w({dim, 4 * dim}), _ff2_b({dim}), _head_w({labels, dim}),
      _head_b({labels})
{
    _wq.randomize(seed + 11);
    _wk.randomize(seed + 12);
    _wv.randomize(seed + 13);
    _ff1_w.randomize(seed + 14);
    _ff1_b.randomize(seed + 15);
    _ff2_w.randomize(seed + 16);
    _ff2_b.randomize(seed + 17);
    _head_w.randomize(seed + 18);
    _head_b.randomize(seed + 19);
}

Tensor
NerEncoder::classify(const Tensor &tokens, OpCount *ops) const
{
    if (tokens.shape.size() != 2 || tokens.dim(1) != _dim)
        dmx_fatal("NerEncoder: expected (seq x %zu)", _dim);
    const std::size_t seq = tokens.dim(0);

    Tensor attended = selfAttention(tokens, _wq, _wk, _wv, ops);
    // Residual connection.
    for (std::size_t i = 0; i < attended.size(); ++i)
        attended.data[i] += tokens.data[i];

    Tensor out({seq, _labels});
    Tensor token({1, _dim});
    for (std::size_t s = 0; s < seq; ++s) {
        std::copy_n(attended.data.begin() +
                        static_cast<std::ptrdiff_t>(s * _dim),
                    _dim, token.data.begin());
        Tensor h = dense(token, _ff1_w, _ff1_b, ops);
        reluInPlace(h, ops);
        Tensor ff = dense(h, _ff2_w, _ff2_b, ops);
        for (std::size_t i = 0; i < _dim; ++i)
            ff.data[i] += token.data[i]; // second residual
        Tensor logits = dense(ff, _head_w, _head_b, ops);
        std::copy(logits.data.begin(), logits.data.end(),
                  out.data.begin() +
                      static_cast<std::ptrdiff_t>(s * _labels));
    }
    softmaxRows(out, ops);
    return out;
}

} // namespace dmx::kernels
