/**
 * @file
 * AES-128 in CTR mode with GCM authentication (encrypt-then-GHASH).
 *
 * The Personal Information Redaction pipeline decrypts privacy-sensitive
 * text before scanning it; the paper accelerates AES-GCM with a Vitis
 * HLS core, this is the functional equivalent (table-based, byte
 * oriented - correctness over host speed).
 */

#ifndef DMX_KERNELS_AES_HH
#define DMX_KERNELS_AES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** 128-bit key/block convenience types. */
using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/** Expanded AES-128 key schedule (11 round keys). */
class Aes128
{
  public:
    /** @param key the 128-bit cipher key */
    explicit Aes128(const AesKey &key);

    /** Encrypt a single 16-byte block (ECB primitive). */
    AesBlock encryptBlock(const AesBlock &in) const;

    /**
     * CTR-mode keystream transform (encrypt == decrypt).
     *
     * @param data  bytes to transform in place
     * @param iv    96-bit IV (first 12 bytes used), counter starts at 2
     *              to match GCM's layout (counter 1 is the tag mask)
     * @param ops   optional op accounting
     */
    void ctrTransform(std::vector<std::uint8_t> &data, const AesBlock &iv,
                      OpCount *ops = nullptr) const;

  private:
    std::array<std::uint8_t, 176> _round_keys{};
};

/** Authenticated ciphertext. */
struct GcmSealed
{
    std::vector<std::uint8_t> ciphertext;
    AesBlock tag{};
};

/**
 * AES-128-GCM encryption.
 *
 * @param key       cipher key
 * @param iv        96-bit IV in the first 12 bytes
 * @param plaintext message to protect
 * @param ops       optional op accounting
 */
GcmSealed gcmEncrypt(const AesKey &key, const AesBlock &iv,
                     const std::vector<std::uint8_t> &plaintext,
                     OpCount *ops = nullptr);

/**
 * AES-128-GCM decryption with tag verification.
 *
 * @param key    cipher key
 * @param iv     96-bit IV in the first 12 bytes
 * @param sealed ciphertext plus tag
 * @param ok     set to true when the tag verified
 * @param ops    optional op accounting
 * @return plaintext (empty and ok=false on tag mismatch)
 */
std::vector<std::uint8_t> gcmDecrypt(const AesKey &key, const AesBlock &iv,
                                     const GcmSealed &sealed, bool &ok,
                                     OpCount *ops = nullptr);

} // namespace dmx::kernels

#endif // DMX_KERNELS_AES_HH
