/**
 * @file
 * Linear multi-class support vector machine (one-vs-rest inference plus
 * a simple subgradient trainer for tests). The Sound Detection pipeline
 * uses this as its second accelerated kernel (audio-genre classifier).
 */

#ifndef DMX_KERNELS_SVM_HH
#define DMX_KERNELS_SVM_HH

#include <cstddef>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** A trained (or loaded) linear one-vs-rest SVM. */
class LinearSvm
{
  public:
    /**
     * @param features input dimensionality
     * @param classes  number of one-vs-rest classifiers
     */
    LinearSvm(std::size_t features, std::size_t classes);

    std::size_t features() const { return _features; }
    std::size_t classes() const { return _classes; }

    /** Direct weight access (class-major, features+1 with bias last). */
    std::vector<float> &weights() { return _weights; }
    const std::vector<float> &weights() const { return _weights; }

    /**
     * Compute per-class decision values for one sample.
     *
     * @param x   feature vector (size features())
     * @param ops optional op accounting
     * @return one score per class
     */
    std::vector<float> decision(const std::vector<float> &x,
                                OpCount *ops = nullptr) const;

    /** @return argmax class for one sample. */
    std::size_t predict(const std::vector<float> &x,
                        OpCount *ops = nullptr) const;

    /**
     * Batched prediction (the accelerated deployment shape).
     *
     * @param batch   samples, row-major (rows x features)
     * @param rows    number of samples
     * @param ops     optional op accounting
     * @return predicted class per row
     */
    std::vector<std::size_t> predictBatch(const std::vector<float> &batch,
                                          std::size_t rows,
                                          OpCount *ops = nullptr) const;

    /**
     * Train with hinge-loss subgradient descent (pegasos-style).
     *
     * @param xs     samples, row-major
     * @param ys     labels (one per row)
     * @param rows   number of samples
     * @param epochs passes over the data
     * @param lr     learning rate
     * @param reg    L2 regularization strength
     */
    void fit(const std::vector<float> &xs, const std::vector<std::size_t> &ys,
             std::size_t rows, unsigned epochs = 20, float lr = 0.05f,
             float reg = 1e-4f);

  private:
    std::size_t _features;
    std::size_t _classes;
    std::vector<float> _weights; // classes x (features + 1), bias last
};

} // namespace dmx::kernels

#endif // DMX_KERNELS_SVM_HH
