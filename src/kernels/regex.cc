#include "kernels/regex.hh"

#include <limits>

#include "common/logging.hh"

namespace dmx::kernels
{

namespace
{

std::bitset<256>
classFor(char escape)
{
    std::bitset<256> cls;
    auto add_range = [&](unsigned char lo, unsigned char hi) {
        for (unsigned c = lo; c <= hi; ++c)
            cls.set(c);
    };
    switch (escape) {
      case 'd':
        add_range('0', '9');
        break;
      case 'w':
        add_range('a', 'z');
        add_range('A', 'Z');
        add_range('0', '9');
        cls.set('_');
        break;
      case 's':
        cls.set(' ');
        cls.set('\t');
        cls.set('\n');
        cls.set('\r');
        cls.set('\f');
        cls.set('\v');
        break;
      case 'D':
      case 'W':
      case 'S': {
        std::bitset<256> pos =
            classFor(static_cast<char>(escape - 'A' + 'a'));
        cls = ~pos;
        break;
      }
      default:
        // Escaped literal (\., \\, \+, ...).
        cls.set(static_cast<unsigned char>(escape));
        break;
    }
    return cls;
}

} // namespace

Regex::Regex(const std::string &pattern)
{
    std::size_t i = 0;
    Frag frag = parseAlternation(pattern, i);
    if (i != pattern.size())
        dmx_fatal("regex: unexpected '%c' at offset %zu", pattern[i], i);
    const std::int32_t accept = addState(State{});
    patchAll(frag.dangling, accept);
    _start = frag.start;
}

std::int32_t
Regex::addState(State s)
{
    _states.push_back(s);
    return static_cast<std::int32_t>(_states.size() - 1);
}

void
Regex::patchAll(const std::vector<Patch> &list, std::int32_t target)
{
    for (const Patch &p : list) {
        if (p.second)
            _states[p.state].out2 = target;
        else
            _states[p.state].out = target;
    }
}

Regex::Frag
Regex::parseAlternation(const std::string &p, std::size_t &i)
{
    Frag left = parseConcat(p, i);
    while (i < p.size() && p[i] == '|') {
        ++i;
        Frag right = parseConcat(p, i);
        State split;
        split.kind = State::Kind::Split;
        split.out = left.start;
        split.out2 = right.start;
        const std::int32_t s = addState(split);
        Frag merged;
        merged.start = s;
        merged.dangling = left.dangling;
        merged.dangling.insert(merged.dangling.end(),
                               right.dangling.begin(),
                               right.dangling.end());
        left = std::move(merged);
    }
    return left;
}

Regex::Frag
Regex::parseConcat(const std::string &p, std::size_t &i)
{
    Frag result;
    result.start = -1;
    while (i < p.size() && p[i] != '|' && p[i] != ')') {
        Frag next = parseRepeat(p, i);
        if (result.start == -1) {
            result = std::move(next);
        } else {
            patchAll(result.dangling, next.start);
            result.dangling = std::move(next.dangling);
        }
    }
    if (result.start == -1) {
        // Empty concatenation: a single split that falls straight through.
        State eps;
        eps.kind = State::Kind::Split;
        const std::int32_t s = addState(eps);
        result.start = s;
        result.dangling = {{s, false}, {s, true}};
    }
    return result;
}

Regex::Frag
Regex::parseRepeat(const std::string &p, std::size_t &i)
{
    Frag atom = parseAtom(p, i);
    while (i < p.size() &&
           (p[i] == '*' || p[i] == '+' || p[i] == '?')) {
        const char q = p[i++];
        State split;
        split.kind = State::Kind::Split;
        split.out = atom.start;
        const std::int32_t s = addState(split);
        Frag result;
        if (q == '*') {
            patchAll(atom.dangling, s);
            result.start = s;
            result.dangling = {{s, true}};
        } else if (q == '+') {
            patchAll(atom.dangling, s);
            result.start = atom.start;
            result.dangling = {{s, true}};
        } else { // '?'
            result.start = s;
            result.dangling = atom.dangling;
            result.dangling.push_back({s, true});
        }
        atom = std::move(result);
    }
    return atom;
}

Regex::Frag
Regex::parseAtom(const std::string &p, std::size_t &i)
{
    if (i >= p.size())
        dmx_fatal("regex: pattern ends where an atom was expected");
    const char c = p[i];
    if (c == '(') {
        ++i;
        Frag inner = parseAlternation(p, i);
        if (i >= p.size() || p[i] != ')')
            dmx_fatal("regex: missing ')'");
        ++i;
        return inner;
    }
    if (c == '*' || c == '+' || c == '?' || c == ')' || c == '|')
        dmx_fatal("regex: unexpected '%c' at offset %zu", c, i);

    State st;
    st.kind = State::Kind::Char;
    if (c == '[') {
        ++i;
        st.cls = parseClass(p, i);
    } else if (c == '.') {
        ++i;
        st.cls.set();
        st.cls.reset('\n');
    } else if (c == '\\') {
        if (i + 1 >= p.size())
            dmx_fatal("regex: dangling backslash");
        st.cls = classFor(p[i + 1]);
        i += 2;
    } else {
        st.cls.set(static_cast<unsigned char>(c));
        ++i;
    }
    const std::int32_t s = addState(st);
    Frag frag;
    frag.start = s;
    frag.dangling = {{s, false}};
    return frag;
}

std::bitset<256>
Regex::parseClass(const std::string &p, std::size_t &i)
{
    std::bitset<256> cls;
    bool negate = false;
    if (i < p.size() && p[i] == '^') {
        negate = true;
        ++i;
    }
    bool first = true;
    while (i < p.size() && (p[i] != ']' || first)) {
        first = false;
        if (p[i] == '\\' && i + 1 < p.size()) {
            cls |= classFor(p[i + 1]);
            i += 2;
            continue;
        }
        const auto lo = static_cast<unsigned char>(p[i]);
        if (i + 2 < p.size() && p[i + 1] == '-' && p[i + 2] != ']') {
            const auto hi = static_cast<unsigned char>(p[i + 2]);
            if (hi < lo)
                dmx_fatal("regex: inverted range %c-%c", lo, hi);
            for (unsigned c = lo; c <= hi; ++c)
                cls.set(c);
            i += 3;
        } else {
            cls.set(lo);
            ++i;
        }
    }
    if (i >= p.size())
        dmx_fatal("regex: missing ']'");
    ++i; // consume ']'
    return negate ? ~cls : cls;
}

void
Regex::addEpsilonClosure(std::int32_t s, std::vector<std::int32_t> &list,
                         std::vector<std::uint32_t> &mark,
                         std::uint32_t gen) const
{
    if (s < 0 || mark[static_cast<std::size_t>(s)] == gen)
        return;
    mark[static_cast<std::size_t>(s)] = gen;
    const State &st = _states[static_cast<std::size_t>(s)];
    if (st.kind == State::Kind::Split) {
        addEpsilonClosure(st.out, list, mark, gen);
        addEpsilonClosure(st.out2, list, mark, gen);
    } else {
        list.push_back(s);
    }
}

std::size_t
Regex::matchAt(const std::string &text, std::size_t pos,
               OpCount *ops) const
{
    std::vector<std::int32_t> current, next;
    std::vector<std::uint32_t> mark(_states.size(), 0);
    std::uint32_t gen = 1;
    addEpsilonClosure(_start, current, mark, gen);

    std::size_t best = std::numeric_limits<std::size_t>::max();
    std::uint64_t steps = 0;
    std::size_t scanned = 0;
    auto check_accept = [&](std::size_t len) {
        for (std::int32_t s : current) {
            if (_states[static_cast<std::size_t>(s)].kind ==
                State::Kind::Accept) {
                best = len;
                break;
            }
        }
    };
    check_accept(0);

    for (std::size_t i = pos; i < text.size() && !current.empty(); ++i) {
        const auto c = static_cast<unsigned char>(text[i]);
        next.clear();
        ++gen;
        for (std::int32_t s : current) {
            const State &st = _states[static_cast<std::size_t>(s)];
            ++steps;
            if (st.kind == State::Kind::Char && st.cls.test(c))
                addEpsilonClosure(st.out, next, mark, gen);
        }
        std::swap(current, next);
        check_accept(i - pos + 1);
        scanned = i - pos + 1;
    }
    if (ops) {
        // Each NFA thread step costs class test + state push + epsilon
        // walk + list management on a CPU (~10 scalar ops).
        ops->int_ops += steps * 10;
        // Only the characters the NFA actually consumed before its
        // thread list drained; charging the whole tail would make
        // findAll() look quadratic in the text length.
        ops->bytes_read += scanned + 1;
    }
    return best;
}

bool
Regex::fullMatch(const std::string &text, OpCount *ops) const
{
    return matchAt(text, 0, ops) == text.size();
}

std::vector<Match>
Regex::findAll(const std::string &text, OpCount *ops) const
{
    std::vector<Match> out;
    std::size_t i = 0;
    while (i < text.size()) {
        const std::size_t len = matchAt(text, i, ops);
        if (len != std::numeric_limits<std::size_t>::max() && len > 0) {
            out.push_back(Match{i, i + len});
            i += len;
        } else {
            ++i;
        }
    }
    return out;
}

std::string
redact(const Regex &re, const std::string &text, char fill, OpCount *ops)
{
    std::string out = text;
    for (const Match &m : re.findAll(text, ops)) {
        for (std::size_t i = m.begin; i < m.end; ++i)
            out[i] = fill;
    }
    if (ops)
        ops->bytes_written += out.size();
    return out;
}

} // namespace dmx::kernels
