#include "kernels/hashjoin.hh"

#include <cstring>

#include "common/logging.hh"

namespace dmx::kernels
{

std::vector<std::uint8_t>
Table::serialize() const
{
    std::vector<std::uint8_t> out(rows() * 16);
    for (std::size_t r = 0; r < rows(); ++r) {
        std::memcpy(&out[r * 16], &keys[r], 8);
        std::memcpy(&out[r * 16 + 8], &payloads[r], 8);
    }
    return out;
}

Table
Table::deserialize(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() % 16 != 0)
        dmx_fatal("Table::deserialize: size %zu not a multiple of 16",
                  bytes.size());
    Table t;
    const std::size_t rows = bytes.size() / 16;
    t.keys.resize(rows);
    t.payloads.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        std::memcpy(&t.keys[r], &bytes[r * 16], 8);
        std::memcpy(&t.payloads[r], &bytes[r * 16 + 8], 8);
    }
    return t;
}

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

std::vector<JoinedRow>
hashJoin(const Table &build, const Table &probe, OpCount *ops)
{
    // Open addressing with linear probing; each slot chains duplicates
    // through a next-index list so duplicate build keys join correctly.
    std::size_t cap = 16;
    while (cap < build.rows() * 2)
        cap <<= 1;
    const std::uint64_t mask = cap - 1;

    std::vector<std::int64_t> slot_row(cap, -1);
    std::vector<std::int64_t> next_dup(build.rows(), -1);
    std::uint64_t work = 0;

    for (std::size_t r = 0; r < build.rows(); ++r) {
        std::uint64_t idx =
            mix64(static_cast<std::uint64_t>(build.keys[r])) & mask;
        while (true) {
            ++work;
            if (slot_row[idx] == -1) {
                slot_row[idx] = static_cast<std::int64_t>(r);
                break;
            }
            const auto head = static_cast<std::size_t>(slot_row[idx]);
            if (build.keys[head] == build.keys[r]) {
                // Same key: push onto the duplicate chain.
                next_dup[r] = slot_row[idx];
                slot_row[idx] = static_cast<std::int64_t>(r);
                break;
            }
            idx = (idx + 1) & mask;
        }
    }

    std::vector<JoinedRow> out;
    for (std::size_t r = 0; r < probe.rows(); ++r) {
        const std::int64_t key = probe.keys[r];
        std::uint64_t idx =
            mix64(static_cast<std::uint64_t>(key)) & mask;
        while (slot_row[idx] != -1) {
            ++work;
            const auto head = static_cast<std::size_t>(slot_row[idx]);
            if (build.keys[head] == key) {
                for (std::int64_t b = slot_row[idx]; b != -1;
                     b = next_dup[static_cast<std::size_t>(b)]) {
                    const auto br = static_cast<std::size_t>(b);
                    out.push_back(JoinedRow{key, build.payloads[br],
                                            probe.payloads[r]});
                }
                break;
            }
            idx = (idx + 1) & mask;
        }
    }

    if (ops) {
        ops->int_ops += work * 6;
        // Each hash-table touch lands on a random cache line: charge a
        // full line of traffic per probe/insert on top of the row scan.
        ops->bytes_read += (build.rows() + probe.rows()) * 16 + work * 64;
        ops->bytes_written += out.size() * sizeof(JoinedRow);
    }
    return out;
}

} // namespace dmx::kernels
