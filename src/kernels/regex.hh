/**
 * @file
 * A Thompson-NFA regular expression engine.
 *
 * Supports literals, '.', character classes ([a-z0-9], negation), the
 * escapes \d \w \s (and upper-case negations), quantifiers * + ?,
 * alternation '|' and grouping '()'. Matching is performed by NFA
 * simulation (no backtracking), which is the execution model the
 * paper's regular-expression accelerator implements.
 *
 * The Personal Information Redaction pipeline uses findAll()/redact()
 * to blank out personally identifiable information in decrypted text.
 */

#ifndef DMX_KERNELS_REGEX_HH
#define DMX_KERNELS_REGEX_HH

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** A span of matched text. */
struct Match
{
    std::size_t begin = 0; ///< byte offset of the first matched char
    std::size_t end = 0;   ///< one past the last matched char

    bool
    operator==(const Match &o) const
    {
        return begin == o.begin && end == o.end;
    }
};

/** Compiled regular expression (thread-compatible, immutable). */
class Regex
{
  public:
    /**
     * Compile @p pattern.
     * @throws std::runtime_error (via fatal) on malformed patterns.
     */
    explicit Regex(const std::string &pattern);

    /** @return true when the whole input matches. */
    bool fullMatch(const std::string &text, OpCount *ops = nullptr) const;

    /**
     * Longest match starting exactly at @p pos.
     * @return match length, or SIZE_MAX when no match starts there.
     */
    std::size_t matchAt(const std::string &text, std::size_t pos,
                        OpCount *ops = nullptr) const;

    /** All non-overlapping leftmost-longest matches. */
    std::vector<Match> findAll(const std::string &text,
                               OpCount *ops = nullptr) const;

    /** @return number of NFA states (size metric for the accelerator). */
    std::size_t stateCount() const { return _states.size(); }

  private:
    /** NFA state: either a character-class edge or an epsilon split. */
    struct State
    {
        enum class Kind { Char, Split, Accept } kind = Kind::Accept;
        std::bitset<256> cls;  ///< valid when kind == Char
        std::int32_t out = -1;  ///< next state
        std::int32_t out2 = -1; ///< second branch when kind == Split
    };

    /** A dangling out-edge awaiting its target (index-based: the state
     *  vector may reallocate while fragments are alive). */
    struct Patch
    {
        std::int32_t state;
        bool second; ///< patch out2 instead of out
    };

    struct Frag
    {
        std::int32_t start;
        std::vector<Patch> dangling;
    };

    void patchAll(const std::vector<Patch> &list, std::int32_t target);

    // Recursive-descent parser over the pattern.
    Frag parseAlternation(const std::string &p, std::size_t &i);
    Frag parseConcat(const std::string &p, std::size_t &i);
    Frag parseRepeat(const std::string &p, std::size_t &i);
    Frag parseAtom(const std::string &p, std::size_t &i);
    std::bitset<256> parseClass(const std::string &p, std::size_t &i);
    std::int32_t addState(State s);

    void addEpsilonClosure(std::int32_t s,
                           std::vector<std::int32_t> &list,
                           std::vector<std::uint32_t> &mark,
                           std::uint32_t gen) const;

    std::vector<State> _states;
    std::int32_t _start = -1;
};

/**
 * Replace every match of @p re in @p text with @p fill characters.
 *
 * @return the redacted text (same length as the input).
 */
std::string redact(const Regex &re, const std::string &text,
                   char fill = '#', OpCount *ops = nullptr);

} // namespace dmx::kernels

#endif // DMX_KERNELS_REGEX_HH
