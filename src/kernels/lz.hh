/**
 * @file
 * A byte-oriented LZ77 compressor/decompressor.
 *
 * The Database Hash Join pipeline stores tables compressed and
 * decompresses them as its first accelerated kernel. The paper uses a
 * Gzip (DEFLATE) HLS core; we substitute an LZ77 token format without
 * the Huffman entropy stage - the accelerator-relevant behaviour
 * (sequential dependency, byte-granular output, match copying) is the
 * same, while the format stays small enough to verify exhaustively.
 *
 * Token stream format:
 *   0x00 len  <len literal bytes>            (len in 1..255)
 *   0x01 len  off_lo off_hi                  (match: copy len from -off)
 */

#ifndef DMX_KERNELS_LZ_HH
#define DMX_KERNELS_LZ_HH

#include <cstdint>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

using Bytes = std::vector<std::uint8_t>;

/**
 * Compress @p input.
 *
 * @param input bytes to compress
 * @param ops   optional op accounting
 * @return token stream (see file header for the format)
 */
Bytes lzCompress(const Bytes &input, OpCount *ops = nullptr);

/**
 * Decompress a token stream produced by lzCompress().
 *
 * @param compressed token stream
 * @param ops        optional op accounting
 * @return original bytes
 * @throws std::runtime_error (via fatal) on malformed streams
 */
Bytes lzDecompress(const Bytes &compressed, OpCount *ops = nullptr);

} // namespace dmx::kernels

#endif // DMX_KERNELS_LZ_HH
