#include "kernels/aes.hh"

#include <cstring>

#include "common/logging.hh"

namespace dmx::kernels
{

namespace
{

constexpr std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
};

constexpr std::uint8_t rcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                   0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

/** GF(2^128) multiply for GHASH (right-shift convention, NIST SP800-38D). */
AesBlock
gfMul(const AesBlock &x, const AesBlock &y)
{
    AesBlock z{};
    AesBlock v = y;
    for (int i = 0; i < 128; ++i) {
        const int byte = i / 8;
        const int bit = 7 - (i % 8);
        if ((x[byte] >> bit) & 1) {
            for (int b = 0; b < 16; ++b)
                z[b] ^= v[b];
        }
        const bool lsb = v[15] & 1;
        for (int b = 15; b > 0; --b)
            v[b] = static_cast<std::uint8_t>((v[b] >> 1) | (v[b - 1] << 7));
        v[0] >>= 1;
        if (lsb)
            v[0] ^= 0xe1;
    }
    return z;
}

/** GHASH accumulator. */
class Ghash
{
  public:
    explicit Ghash(const AesBlock &h) : _h(h) {}

    void
    update(const std::uint8_t *data, std::size_t len)
    {
        std::size_t off = 0;
        while (off < len) {
            AesBlock blk{};
            const std::size_t chunk = std::min<std::size_t>(16, len - off);
            std::memcpy(blk.data(), data + off, chunk);
            for (int i = 0; i < 16; ++i)
                _y[i] ^= blk[i];
            _y = gfMul(_y, _h);
            off += chunk;
        }
    }

    /** Finish with the standard len(A)||len(C) block (A empty here). */
    AesBlock
    finish(std::uint64_t cipher_bytes)
    {
        AesBlock lens{};
        const std::uint64_t cbits = cipher_bytes * 8;
        for (int i = 0; i < 8; ++i)
            lens[15 - i] = static_cast<std::uint8_t>(cbits >> (8 * i));
        for (int i = 0; i < 16; ++i)
            _y[i] ^= lens[i];
        _y = gfMul(_y, _h);
        return _y;
    }

  private:
    AesBlock _h;
    AesBlock _y{};
};

AesBlock
counterBlock(const AesBlock &iv, std::uint32_t counter)
{
    AesBlock ctr{};
    std::memcpy(ctr.data(), iv.data(), 12);
    ctr[12] = static_cast<std::uint8_t>(counter >> 24);
    ctr[13] = static_cast<std::uint8_t>(counter >> 16);
    ctr[14] = static_cast<std::uint8_t>(counter >> 8);
    ctr[15] = static_cast<std::uint8_t>(counter);
    return ctr;
}

} // namespace

Aes128::Aes128(const AesKey &key)
{
    std::memcpy(_round_keys.data(), key.data(), 16);
    for (int i = 4; i < 44; ++i) {
        std::uint8_t t[4];
        std::memcpy(t, &_round_keys[(i - 1) * 4], 4);
        if (i % 4 == 0) {
            const std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(sbox[t[1]] ^ rcon[i / 4]);
            t[1] = sbox[t[2]];
            t[2] = sbox[t[3]];
            t[3] = sbox[tmp];
        }
        for (int b = 0; b < 4; ++b)
            _round_keys[i * 4 + b] =
                static_cast<std::uint8_t>(_round_keys[(i - 4) * 4 + b] ^
                                          t[b]);
    }
}

AesBlock
Aes128::encryptBlock(const AesBlock &in) const
{
    AesBlock s = in;
    auto add_round_key = [&](int round) {
        for (int i = 0; i < 16; ++i)
            s[i] ^= _round_keys[round * 16 + i];
    };
    auto sub_bytes = [&] {
        for (auto &b : s)
            b = sbox[b];
    };
    auto shift_rows = [&] {
        AesBlock t = s;
        // state is column-major: s[col*4 + row]
        for (int r = 1; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                s[c * 4 + r] = t[((c + r) % 4) * 4 + r];
    };
    auto mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t *col = &s[c * 4];
            const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                               a3 = col[3];
            col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^
                                               a2 ^ a3);
            col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                               a2 ^ a3);
            col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                               xtime(a3) ^ a3);
            col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                               xtime(a3));
        }
    };

    add_round_key(0);
    for (int round = 1; round < 10; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
    return s;
}

void
Aes128::ctrTransform(std::vector<std::uint8_t> &data, const AesBlock &iv,
                     OpCount *ops) const
{
    std::uint32_t counter = 2;
    for (std::size_t off = 0; off < data.size(); off += 16) {
        const AesBlock ks = encryptBlock(counterBlock(iv, counter++));
        const std::size_t chunk = std::min<std::size_t>(16, data.size() - off);
        for (std::size_t i = 0; i < chunk; ++i)
            data[off + i] ^= ks[i];
    }
    if (ops) {
        // ~20 table lookups+xors per byte for AES rounds.
        ops->int_ops += data.size() * 20;
        ops->bytes_read += data.size();
        ops->bytes_written += data.size();
    }
}

GcmSealed
gcmEncrypt(const AesKey &key, const AesBlock &iv,
           const std::vector<std::uint8_t> &plaintext, OpCount *ops)
{
    const Aes128 aes(key);
    GcmSealed out;
    out.ciphertext = plaintext;
    aes.ctrTransform(out.ciphertext, iv, ops);

    const AesBlock h = aes.encryptBlock(AesBlock{});
    Ghash ghash(h);
    ghash.update(out.ciphertext.data(), out.ciphertext.size());
    AesBlock s = ghash.finish(out.ciphertext.size());

    const AesBlock j0_mask = aes.encryptBlock(counterBlock(iv, 1));
    for (int i = 0; i < 16; ++i)
        out.tag[i] = static_cast<std::uint8_t>(s[i] ^ j0_mask[i]);
    if (ops)
        ops->int_ops += plaintext.size() * 8; // GHASH cost
    return out;
}

std::vector<std::uint8_t>
gcmDecrypt(const AesKey &key, const AesBlock &iv, const GcmSealed &sealed,
           bool &ok, OpCount *ops)
{
    const Aes128 aes(key);
    const AesBlock h = aes.encryptBlock(AesBlock{});
    Ghash ghash(h);
    ghash.update(sealed.ciphertext.data(), sealed.ciphertext.size());
    AesBlock s = ghash.finish(sealed.ciphertext.size());
    const AesBlock j0_mask = aes.encryptBlock(counterBlock(iv, 1));

    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>((s[i] ^ j0_mask[i]) ^
                                          sealed.tag[i]);
    ok = diff == 0;
    if (!ok)
        return {};

    std::vector<std::uint8_t> plain = sealed.ciphertext;
    aes.ctrTransform(plain, iv, ops);
    if (ops)
        ops->int_ops += plain.size() * 8;
    return plain;
}

} // namespace dmx::kernels
