#include "kernels/lz.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmx::kernels
{

namespace
{

constexpr std::size_t min_match = 4;
constexpr std::size_t max_match = 255;
constexpr std::size_t max_offset = 65535;
constexpr std::size_t hash_bits = 15;

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    v = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    return (v * 2654435761u) >> (32 - hash_bits);
}

} // namespace

Bytes
lzCompress(const Bytes &input, OpCount *ops)
{
    Bytes out;
    out.reserve(input.size() / 2 + 16);
    // Heap-allocated: 32 Ki entries would be too large for the stack.
    std::vector<std::int64_t> table(std::size_t(1) << hash_bits, -1);

    std::size_t lit_start = 0;
    std::uint64_t work = 0;

    auto flush_literals = [&](std::size_t upto) {
        std::size_t pos = lit_start;
        while (pos < upto) {
            const std::size_t run = std::min<std::size_t>(255, upto - pos);
            out.push_back(0x00);
            out.push_back(static_cast<std::uint8_t>(run));
            out.insert(out.end(), input.begin() + static_cast<long>(pos),
                       input.begin() + static_cast<long>(pos + run));
            pos += run;
        }
        lit_start = upto;
    };

    std::size_t i = 0;
    while (i + min_match <= input.size()) {
        const std::uint32_t h = hash4(&input[i]);
        const std::int64_t cand = table[h];
        table[h] = static_cast<std::int64_t>(i);
        ++work;

        if (cand >= 0 &&
            static_cast<std::size_t>(i - cand) <= max_offset &&
            std::equal(input.begin() + cand,
                       input.begin() + cand + min_match,
                       input.begin() + static_cast<long>(i))) {
            // Extend the match forward.
            std::size_t len = min_match;
            const std::size_t limit =
                std::min(max_match, input.size() - i);
            while (len < limit &&
                   input[static_cast<std::size_t>(cand) + len] ==
                       input[i + len]) {
                ++len;
            }
            work += len;
            flush_literals(i);
            const auto off = static_cast<std::uint16_t>(i - cand);
            out.push_back(0x01);
            out.push_back(static_cast<std::uint8_t>(len));
            out.push_back(static_cast<std::uint8_t>(off & 0xff));
            out.push_back(static_cast<std::uint8_t>(off >> 8));
            i += len;
            lit_start = i;
        } else {
            ++i;
        }
    }
    flush_literals(input.size());

    if (ops) {
        ops->int_ops += work * 4 + input.size() * 2;
        ops->bytes_read += input.size();
        ops->bytes_written += out.size();
    }
    return out;
}

Bytes
lzDecompress(const Bytes &compressed, OpCount *ops)
{
    Bytes out;
    out.reserve(compressed.size() * 2);
    std::size_t i = 0;
    while (i < compressed.size()) {
        const std::uint8_t tag = compressed[i++];
        if (i >= compressed.size())
            dmx_fatal("lzDecompress: truncated token header");
        const std::size_t len = compressed[i++];
        if (tag == 0x00) {
            if (len == 0 || i + len > compressed.size())
                dmx_fatal("lzDecompress: bad literal run");
            out.insert(out.end(),
                       compressed.begin() + static_cast<long>(i),
                       compressed.begin() + static_cast<long>(i + len));
            i += len;
        } else if (tag == 0x01) {
            if (i + 2 > compressed.size())
                dmx_fatal("lzDecompress: truncated match token");
            const std::size_t off =
                static_cast<std::size_t>(compressed[i]) |
                (static_cast<std::size_t>(compressed[i + 1]) << 8);
            i += 2;
            if (off == 0 || off > out.size() || len < min_match)
                dmx_fatal("lzDecompress: invalid match (off=%zu len=%zu)",
                          off, len);
            // Byte-by-byte copy: offsets may overlap the output tail.
            const std::size_t base = out.size() - off;
            for (std::size_t k = 0; k < len; ++k)
                out.push_back(out[base + k]);
        } else {
            dmx_fatal("lzDecompress: unknown token 0x%02x", tag);
        }
    }
    if (ops) {
        // Decompression is inherently serial and branchy: token
        // dispatch, bounds checks and byte-wise match copies cost far
        // more than a straight memcpy per output byte.
        ops->int_ops += out.size() * 8 + compressed.size() * 2;
        ops->bytes_read += compressed.size();
        ops->bytes_written += out.size();
    }
    return out;
}

} // namespace dmx::kernels
