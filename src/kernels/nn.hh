/**
 * @file
 * Minimal neural-network inference kernels.
 *
 * Three model shapes from the paper's benchmarks are provided:
 *  - TinyCnn: convolutional object-detection head (Video Surveillance),
 *  - MlpPolicy: proximal-policy-optimization actor (Brain Stimulation),
 *  - NerEncoder: a single-block transformer token classifier (the
 *    Personal Info Redaction three-kernel extension, Sec. VII-C).
 *
 * Weights are deterministic functions of a seed; the system evaluation
 * cares about shapes/op counts and end-to-end data flow, not accuracy.
 */

#ifndef DMX_KERNELS_NN_HH
#define DMX_KERNELS_NN_HH

#include <cstddef>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

/** Dense row-major float tensor with an explicit shape. */
struct Tensor
{
    std::vector<std::size_t> shape;
    std::vector<float> data;

    Tensor() = default;

    /** Allocate a zeroed tensor of the given shape. */
    explicit Tensor(std::vector<std::size_t> s);

    /** @return product of all dimensions. */
    std::size_t size() const;

    /** @return dimension @p i. */
    std::size_t dim(std::size_t i) const { return shape.at(i); }

    /** Fill with deterministic pseudo-random weights in [-scale, scale]. */
    void randomize(std::uint64_t seed, float scale = 0.1f);
};

/** 2-D convolution, NCHW, stride 1, zero padding to keep H/W. */
Tensor conv2d(const Tensor &input, const Tensor &kernel, OpCount *ops);

/** Elementwise max(0, x). */
void reluInPlace(Tensor &t, OpCount *ops);

/** 2x2 max pooling with stride 2 (NCHW). */
Tensor maxpool2x2(const Tensor &input, OpCount *ops);

/** Fully connected layer: y = W x + b. W is (out x in), b is (out). */
Tensor dense(const Tensor &x, const Tensor &w, const Tensor &b,
             OpCount *ops);

/** Row-wise softmax over the last dimension of a 2-D tensor. */
void softmaxRows(Tensor &t, OpCount *ops);

/** Single-head scaled-dot-product self-attention over (seq x dim). */
Tensor selfAttention(const Tensor &x, const Tensor &wq, const Tensor &wk,
                     const Tensor &wv, OpCount *ops);

/**
 * Object-detection CNN: two conv+pool stages and a per-cell class head.
 */
class TinyCnn
{
  public:
    /**
     * @param in_channels input image channels (e.g. 3)
     * @param classes     detection classes per grid cell
     * @param seed        weight seed
     */
    TinyCnn(std::size_t in_channels, std::size_t classes,
            std::uint64_t seed);

    /**
     * Run detection on an image.
     * @param image NCHW tensor (batch 1)
     * @param ops   op accounting
     * @return grid of per-cell class scores (cells x classes)
     */
    Tensor detect(const Tensor &image, OpCount *ops) const;

    std::size_t classes() const { return _classes; }

  private:
    std::size_t _classes;
    Tensor _conv1, _conv2; // (out,in,3,3)
    Tensor _head_w, _head_b;
};

/** PPO actor network: 2 hidden layers + action logits. */
class MlpPolicy
{
  public:
    /**
     * @param obs_dim observation vector length
     * @param actions discrete action count
     * @param hidden  hidden width
     * @param seed    weight seed
     */
    MlpPolicy(std::size_t obs_dim, std::size_t actions, std::size_t hidden,
              std::uint64_t seed);

    /**
     * @param obs observation (1 x obs_dim tensor)
     * @param ops op accounting
     * @return action probabilities (1 x actions)
     */
    Tensor act(const Tensor &obs, OpCount *ops) const;

    std::size_t actions() const { return _actions; }

  private:
    std::size_t _actions;
    Tensor _w1, _b1, _w2, _b2, _w3, _b3;
};

/** One-block transformer encoder with a token-classification head. */
class NerEncoder
{
  public:
    /**
     * @param dim     model width
     * @param labels  token label count (e.g. O / PII)
     * @param seed    weight seed
     */
    NerEncoder(std::size_t dim, std::size_t labels, std::uint64_t seed);

    /**
     * Classify each token embedding.
     * @param tokens (seq x dim) embeddings
     * @param ops    op accounting
     * @return per-token label probabilities (seq x labels)
     */
    Tensor classify(const Tensor &tokens, OpCount *ops) const;

    std::size_t dim() const { return _dim; }
    std::size_t labels() const { return _labels; }

  private:
    std::size_t _dim, _labels;
    Tensor _wq, _wk, _wv, _ff1_w, _ff1_b, _ff2_w, _ff2_b, _head_w, _head_b;
};

} // namespace dmx::kernels

#endif // DMX_KERNELS_NN_HH
