#include "kernels/video.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace dmx::kernels
{

namespace
{

constexpr std::size_t block = 8;

/** JPEG-style base luminance quantization table. */
constexpr int base_quant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
};

/** Zig-zag scan order for an 8x8 block. */
constexpr int zigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

void
quantTable(std::uint8_t quality, int out[64])
{
    // libjpeg-style quality scaling.
    const int q = quality < 1 ? 1 : (quality > 100 ? 100 : quality);
    const int scale = q < 50 ? 5000 / q : 200 - 2 * q;
    for (int i = 0; i < 64; ++i) {
        int v = (base_quant[i] * scale + 50) / 100;
        out[i] = v < 1 ? 1 : (v > 255 ? 255 : v);
    }
}

void
dct8x8(const float in[64], float out[64])
{
    for (std::size_t u = 0; u < block; ++u) {
        for (std::size_t v = 0; v < block; ++v) {
            float acc = 0.0f;
            for (std::size_t x = 0; x < block; ++x) {
                for (std::size_t y = 0; y < block; ++y) {
                    acc += in[x * block + y] *
                           std::cos((2 * x + 1) * u *
                                    std::numbers::pi_v<float> / 16.0f) *
                           std::cos((2 * y + 1) * v *
                                    std::numbers::pi_v<float> / 16.0f);
                }
            }
            const float cu = u == 0 ? 1.0f / std::sqrt(2.0f) : 1.0f;
            const float cv = v == 0 ? 1.0f / std::sqrt(2.0f) : 1.0f;
            out[u * block + v] = 0.25f * cu * cv * acc;
        }
    }
}

void
idct8x8(const float in[64], float out[64])
{
    for (std::size_t x = 0; x < block; ++x) {
        for (std::size_t y = 0; y < block; ++y) {
            float acc = 0.0f;
            for (std::size_t u = 0; u < block; ++u) {
                for (std::size_t v = 0; v < block; ++v) {
                    const float cu =
                        u == 0 ? 1.0f / std::sqrt(2.0f) : 1.0f;
                    const float cv =
                        v == 0 ? 1.0f / std::sqrt(2.0f) : 1.0f;
                    acc += cu * cv * in[u * block + v] *
                           std::cos((2 * x + 1) * u *
                                    std::numbers::pi_v<float> / 16.0f) *
                           std::cos((2 * y + 1) * v *
                                    std::numbers::pi_v<float> / 16.0f);
                }
            }
            out[x * block + y] = 0.25f * acc;
        }
    }
}

void
emitI16(std::vector<std::uint8_t> &bits, std::int16_t v)
{
    bits.push_back(static_cast<std::uint8_t>(v & 0xff));
    bits.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::int16_t
readI16(const std::vector<std::uint8_t> &bits, std::size_t &pos)
{
    if (pos + 2 > bits.size())
        dmx_fatal("videoDecode: truncated stream");
    const auto v = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(bits[pos]) |
        (static_cast<std::uint16_t>(bits[pos + 1]) << 8));
    pos += 2;
    return v;
}

} // namespace

VideoStream
videoEncode(const std::vector<Frame> &frames, std::uint8_t quality,
            OpCount *ops)
{
    VideoStream stream;
    if (frames.empty())
        return stream;
    stream.width = frames[0].width;
    stream.height = frames[0].height;
    stream.frames = frames.size();
    stream.quality = quality;
    if (stream.width % block != 0 || stream.height % block != 0)
        dmx_fatal("videoEncode: dimensions must be multiples of 8");

    int quant[64];
    quantTable(quality, quant);

    float pix[64], freq[64];
    OpCount total;
    for (const Frame &frame : frames) {
        if (frame.width != stream.width || frame.height != stream.height)
            dmx_fatal("videoEncode: inconsistent frame sizes");
        for (std::size_t by = 0; by < stream.height; by += block) {
            for (std::size_t bx = 0; bx < stream.width; bx += block) {
                for (std::size_t y = 0; y < block; ++y)
                    for (std::size_t x = 0; x < block; ++x)
                        pix[y * block + x] =
                            static_cast<float>(
                                frame.at(bx + x, by + y)) - 128.0f;
                dct8x8(pix, freq);
                total.flops += 64 * 64 * 4;

                // Quantize in zig-zag order and run-length encode zeros:
                // (run, value) pairs, terminated by run=255.
                std::uint8_t run = 0;
                for (int i = 0; i < 64; ++i) {
                    const int zi = zigzag[i];
                    const int q = static_cast<int>(
                        std::lround(freq[zi] / static_cast<float>(
                                        quant[zi])));
                    if (q == 0 && run < 254) {
                        ++run;
                        continue;
                    }
                    stream.bits.push_back(run);
                    emitI16(stream.bits,
                            static_cast<std::int16_t>(q));
                    run = 0;
                }
                stream.bits.push_back(255); // end-of-block
                total.int_ops += 64 * 3;
            }
        }
        total.bytes_read += frame.pixels.size();
    }
    total.bytes_written += stream.bits.size();
    if (ops)
        *ops += total;
    return stream;
}

std::vector<Frame>
videoDecode(const VideoStream &stream, OpCount *ops)
{
    std::vector<Frame> frames;
    if (stream.frames == 0)
        return frames;

    int quant[64];
    quantTable(stream.quality, quant);

    std::size_t pos = 0;
    float freq[64], pix[64];
    OpCount total;
    for (std::size_t f = 0; f < stream.frames; ++f) {
        Frame frame(stream.width, stream.height);
        for (std::size_t by = 0; by < stream.height; by += block) {
            for (std::size_t bx = 0; bx < stream.width; bx += block) {
                for (float &v : freq)
                    v = 0.0f;
                int i = 0;
                while (i < 64) {
                    if (pos >= stream.bits.size())
                        dmx_fatal("videoDecode: truncated block");
                    const std::uint8_t run = stream.bits[pos++];
                    if (run == 255)
                        break; // rest of block is zero
                    i += run;
                    const std::int16_t q = readI16(stream.bits, pos);
                    if (i >= 64)
                        dmx_fatal("videoDecode: coefficient overrun");
                    const int zi = zigzag[i];
                    freq[zi] = static_cast<float>(q) *
                               static_cast<float>(quant[zi]);
                    ++i;
                }
                idct8x8(freq, pix);
                total.flops += 64 * 64 * 4;
                for (std::size_t y = 0; y < block; ++y) {
                    for (std::size_t x = 0; x < block; ++x) {
                        const float v = pix[y * block + x] + 128.0f;
                        const int clamped = v < 0.0f
                            ? 0 : (v > 255.0f ? 255
                                              : static_cast<int>(
                                                    std::lround(v)));
                        frame.set(bx + x, by + y,
                                  static_cast<std::uint8_t>(clamped));
                    }
                }
                total.int_ops += 64 * 2;
            }
        }
        total.bytes_written += frame.pixels.size();
        frames.push_back(std::move(frame));
    }
    total.bytes_read += stream.bits.size();
    if (ops)
        *ops += total;
    return frames;
}

double
psnr(const Frame &a, const Frame &b)
{
    if (a.width != b.width || a.height != b.height)
        dmx_fatal("psnr: frame size mismatch");
    double mse = 0.0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
        const double d = static_cast<double>(a.pixels[i]) -
                         static_cast<double>(b.pixels[i]);
        mse += d * d;
    }
    mse /= static_cast<double>(a.pixels.size());
    if (mse == 0.0)
        return 100.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace dmx::kernels
