#include "kernels/fft.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace dmx::kernels
{

namespace
{

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

OpCount
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    if (!isPow2(n))
        dmx_fatal("fft: size %zu is not a power of two", n);
    OpCount ops;
    ops.bytes_read = n * sizeof(Complex);
    ops.bytes_written = n * sizeof(Complex);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    const float sign = inverse ? 1.0f : -1.0f;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const float angle =
            sign * 2.0f * std::numbers::pi_v<float> /
            static_cast<float>(len);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0f, 0.0f);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
                // butterfly: 1 cmul (6 flops) + 2 cadd (4 flops) + twiddle
                ops.flops += 16;
            }
        }
    }

    if (inverse) {
        const float inv_n = 1.0f / static_cast<float>(n);
        for (Complex &c : data)
            c *= inv_n;
        ops.flops += 2 * n;
    }
    return ops;
}

Stft
stft(const std::vector<float> &samples, std::size_t fft_size,
     std::size_t hop, OpCount *ops)
{
    if (!isPow2(fft_size))
        dmx_fatal("stft: fft_size %zu is not a power of two", fft_size);
    if (hop == 0)
        dmx_fatal("stft: hop must be nonzero");

    Stft out;
    out.bins = fft_size / 2 + 1;
    if (samples.size() < fft_size)
        return out;
    out.frames = (samples.size() - fft_size) / hop + 1;
    out.values.resize(out.frames * out.bins);

    // Precompute the Hann window.
    std::vector<float> window(fft_size);
    for (std::size_t i = 0; i < fft_size; ++i) {
        window[i] = 0.5f - 0.5f * std::cos(
            2.0f * std::numbers::pi_v<float> * static_cast<float>(i) /
            static_cast<float>(fft_size - 1));
    }

    std::vector<Complex> frame(fft_size);
    OpCount total;
    for (std::size_t f = 0; f < out.frames; ++f) {
        const std::size_t base = f * hop;
        for (std::size_t i = 0; i < fft_size; ++i)
            frame[i] = Complex(samples[base + i] * window[i], 0.0f);
        total.flops += fft_size;
        total.bytes_read += fft_size * sizeof(float);
        total += fft(frame, false);
        for (std::size_t b = 0; b < out.bins; ++b)
            out.values[f * out.bins + b] = frame[b];
        total.bytes_written += out.bins * sizeof(Complex);
    }
    if (ops)
        *ops += total;
    return out;
}

} // namespace dmx::kernels
