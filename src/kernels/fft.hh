/**
 * @file
 * Radix-2 FFT and short-time Fourier transform (STFT).
 *
 * Used by the Sound Detection and Brain Stimulation benchmark pipelines
 * as their first accelerated kernel (the paper uses Vitis HLS FFT IP;
 * this is the functional equivalent).
 */

#ifndef DMX_KERNELS_FFT_HH
#define DMX_KERNELS_FFT_HH

#include <complex>
#include <cstddef>
#include <vector>

#include "kernels/opcount.hh"

namespace dmx::kernels
{

using Complex = std::complex<float>;

/**
 * In-place iterative radix-2 decimation-in-time FFT.
 *
 * @param data  complex samples; size must be a power of two
 * @param inverse when true computes the (scaled) inverse transform
 * @return operation counts
 */
OpCount fft(std::vector<Complex> &data, bool inverse = false);

/** Result of a short-time Fourier transform. */
struct Stft
{
    std::size_t frames = 0;       ///< number of analysis windows
    std::size_t bins = 0;         ///< frequency bins per frame (n/2+1)
    std::vector<Complex> values;  ///< frames x bins, row-major
};

/**
 * Short-time Fourier transform with a Hann window.
 *
 * @param samples  real input audio samples
 * @param fft_size power-of-two window size
 * @param hop      samples between adjacent windows
 * @param ops      optional accumulator for operation counts
 * @return frames x (fft_size/2+1) complex spectra
 */
Stft stft(const std::vector<float> &samples, std::size_t fft_size,
          std::size_t hop, OpCount *ops = nullptr);

} // namespace dmx::kernels

#endif // DMX_KERNELS_FFT_HH
