#include "driver/interrupts.hh"

namespace dmx::driver
{

InterruptController::InterruptController(sim::EventQueue &eq,
                                         std::string name,
                                         InterruptParams params,
                                         cpu::CorePool *host)
    : sim::SimObject(eq, std::move(name)), _params(params), _host(host)
{
}

InterruptController::Notification
InterruptController::notifyChecked()
{
    const Tick t = now();

    if (_fault_hook && _fault_hook() == fault::IrqAction::Drop) {
        // The notification never reached the host: no handler runs and
        // the rate estimator sees nothing. The driver's periodic
        // completion-record poll discovers the completion later.
        ++_dropped;
        return {_params.lost_irq_recovery, false};
    }

    // Update the EWMA completion-rate estimate.
    if (_have_last && t > _last_notify) {
        const double inst_rate =
            1.0 / ticksToSeconds(t - _last_notify);
        _rate_hz = _params.rate_alpha * inst_rate +
                   (1.0 - _params.rate_alpha) * _rate_hz;
    }
    _have_last = true;

    // NAPI-style mode switch with hysteresis (half threshold to leave).
    if (!_polling && _rate_hz > _params.polling_threshold_hz)
        _polling = true;
    else if (_polling && _rate_hz < _params.polling_threshold_hz / 2)
        _polling = false;

    Tick latency;
    if (_polling) {
        ++_polls;
        latency = _params.polling_latency;
        if (_host)
            _host->submit(_params.cpu_work_per_poll, {});
    } else {
        ++_interrupts;
        latency = _params.interrupt_latency;
        // Detect bursts: consecutive notifications closer than the
        // delivery latency get coalesced into one delayed delivery.
        if (_have_last && t - _last_notify < _params.interrupt_latency) {
            ++_burst_run;
        } else {
            _burst_run = 0;
        }
        if (_burst_run >= _params.coalesce_burst) {
            ++_coalesced;
            latency += _params.coalesce_delay;
        }
        if (_host)
            _host->submit(_params.cpu_work_per_irq, {});
    }
    _last_notify = t;
    return {latency, true};
}

InterruptController::Notification
InterruptController::notifyBatch(unsigned completions)
{
    if (completions == 0)
        return {0, true};
    // All but one notification are absorbed: the device writes every
    // member's completion record, then signals once for the window.
    _suppressed += completions - 1;
    return notifyChecked();
}

InterruptController::Notification
InterruptController::pollRecord()
{
    ++_polls;
    if (_host)
        _host->submit(_params.cpu_work_per_poll, {});
    return {_params.polling_latency, true};
}

} // namespace dmx::driver
