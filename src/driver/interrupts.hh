/**
 * @file
 * Driver notification model (paper Sec. V, "Driver support for DMX").
 *
 * Devices notify the host of completions. By default delivery is by
 * interrupt; the driver coalesces bursty interrupts, and when the
 * arrival rate exceeds a threshold it switches to polling - the NAPI
 * design the paper cites. Each interrupt also consumes host CPU time
 * (handler + context switch), which is charged to the core pool so
 * heavy notification traffic degrades concurrent restructuring work.
 */

#ifndef DMX_DRIVER_INTERRUPTS_HH
#define DMX_DRIVER_INTERRUPTS_HH

#include <cstdint>

#include "cpu/core_pool.hh"
#include "fault/hooks.hh"
#include "sim/sim_object.hh"

namespace dmx::driver
{

/** Notification-path parameters. */
struct InterruptParams
{
    /// Interrupt delivery to handler-return latency.
    Tick interrupt_latency = 3 * tick_per_us;
    /// Extra latency when the controller is coalescing a burst.
    Tick coalesce_delay = 8 * tick_per_us;
    /// Mean detection latency in polled mode (half the poll period).
    Tick polling_latency = 500 * tick_per_ns;
    /// Host CPU work consumed per delivered interrupt (core-seconds).
    double cpu_work_per_irq = 2e-6;
    /// Host CPU work per polled completion (cheaper: batched reaping).
    double cpu_work_per_poll = 3e-7;
    /// Switch to polling above this completion rate (per second).
    double polling_threshold_hz = 50e3;
    /// Burst size that triggers coalescing in interrupt mode.
    unsigned coalesce_burst = 4;
    /// EWMA smoothing for the rate estimate.
    double rate_alpha = 0.3;
    /// Detection latency when a completion notification is lost: the
    /// driver's periodic completion-record poll discovers it.
    Tick lost_irq_recovery = 100 * tick_per_us;
};

/**
 * Per-device-group interrupt controller with NAPI-style mode switching.
 */
class InterruptController : public sim::SimObject
{
  public:
    /**
     * @param eq     event queue
     * @param name   instance name
     * @param params notification parameters
     * @param host   optional core pool charged with handler work
     */
    InterruptController(sim::EventQueue &eq, std::string name,
                        InterruptParams params = {},
                        cpu::CorePool *host = nullptr);

    /** Outcome of one completion notification. */
    struct Notification
    {
        /// Latency to add to the request path (the recovery-poll
        /// latency when the notification was lost).
        Tick latency;
        /// False when the notification was dropped and completion was
        /// discovered by the driver's poll instead.
        bool delivered;
    };

    /**
     * Record a completion notification at the current time.
     *
     * @return the notification latency to add to the request path
     */
    Tick notify() { return notifyChecked().latency; }

    /**
     * Like notify, but reports whether the notification was actually
     * delivered or lost (under an installed fault hook) and recovered
     * by the driver's completion poll.
     */
    Notification notifyChecked();

    /**
     * Record @p completions device completions delivered as ONE
     * coalesced notification (the DSA batch-completion model): the
     * driver reaps every completion record behind a single interrupt
     * or poll, so completions - 1 notifications are suppressed and
     * only one pays the delivery path. A dropped coalesced
     * notification loses the whole batch and is recovered by the
     * periodic completion-record poll, exactly like a lost single
     * interrupt.
     *
     * @return the one delivered (or recovered) notification;
     *         {0, true} when @p completions is zero
     */
    Notification notifyBatch(unsigned completions);

    /**
     * Reap one completion record by polling, bypassing the interrupt
     * path entirely: no fault hook (there is no interrupt to lose), no
     * EWMA/mode update (the poll is host-initiated, not device-paced).
     * Charges the per-poll CPU work and the poll detection latency.
     */
    Notification pollRecord();

    /**
     * Install (or clear, with nullptr) the fault-injection hook
     * consulted by every subsequent notification.
     */
    void setFaultHook(fault::IrqHook hook) { _fault_hook = std::move(hook); }

    /** @return notifications lost and recovered by polling. */
    std::uint64_t droppedInterrupts() const { return _dropped; }

    /** @return true while operating in polled mode. */
    bool polling() const { return _polling; }

    /** @return estimated completion rate (per second). */
    double estimatedRateHz() const { return _rate_hz; }

    std::uint64_t interruptsDelivered() const { return _interrupts; }
    std::uint64_t pollsDelivered() const { return _polls; }
    std::uint64_t coalescedBursts() const { return _coalesced; }

    /** @return notifications absorbed by batch coalescing. */
    std::uint64_t suppressedNotifications() const { return _suppressed; }

    const InterruptParams &params() const { return _params; }

  private:
    InterruptParams _params;
    cpu::CorePool *_host;
    fault::IrqHook _fault_hook;
    std::uint64_t _dropped = 0;
    bool _polling = false;
    double _rate_hz = 0;
    Tick _last_notify = 0;
    bool _have_last = false;
    unsigned _burst_run = 0;
    std::uint64_t _interrupts = 0;
    std::uint64_t _polls = 0;
    std::uint64_t _coalesced = 0;
    std::uint64_t _suppressed = 0;
};

} // namespace dmx::driver

#endif // DMX_DRIVER_INTERRUPTS_HH
