/**
 * @file
 * Driver notification model (paper Sec. V, "Driver support for DMX").
 *
 * Devices notify the host of completions. By default delivery is by
 * interrupt; the driver coalesces bursty interrupts, and when the
 * arrival rate exceeds a threshold it switches to polling - the NAPI
 * design the paper cites. Each interrupt also consumes host CPU time
 * (handler + context switch), which is charged to the core pool so
 * heavy notification traffic degrades concurrent restructuring work.
 */

#ifndef DMX_DRIVER_INTERRUPTS_HH
#define DMX_DRIVER_INTERRUPTS_HH

#include <cstdint>

#include "cpu/core_pool.hh"
#include "fault/hooks.hh"
#include "sim/sim_object.hh"

namespace dmx::driver
{

/** Notification-path parameters. */
struct InterruptParams
{
    /// Interrupt delivery to handler-return latency.
    Tick interrupt_latency = 3 * tick_per_us;
    /// Extra latency when the controller is coalescing a burst.
    Tick coalesce_delay = 8 * tick_per_us;
    /// Mean detection latency in polled mode (half the poll period).
    Tick polling_latency = 500 * tick_per_ns;
    /// Host CPU work consumed per delivered interrupt (core-seconds).
    double cpu_work_per_irq = 2e-6;
    /// Host CPU work per polled completion (cheaper: batched reaping).
    double cpu_work_per_poll = 3e-7;
    /// Switch to polling above this completion rate (per second).
    double polling_threshold_hz = 50e3;
    /// Burst size that triggers coalescing in interrupt mode.
    unsigned coalesce_burst = 4;
    /// EWMA smoothing for the rate estimate.
    double rate_alpha = 0.3;
    /// Detection latency when a completion notification is lost: the
    /// driver's periodic completion-record poll discovers it.
    Tick lost_irq_recovery = 100 * tick_per_us;
};

/**
 * Per-device-group interrupt controller with NAPI-style mode switching.
 */
class InterruptController : public sim::SimObject
{
  public:
    /**
     * @param eq     event queue
     * @param name   instance name
     * @param params notification parameters
     * @param host   optional core pool charged with handler work
     */
    InterruptController(sim::EventQueue &eq, std::string name,
                        InterruptParams params = {},
                        cpu::CorePool *host = nullptr);

    /** Outcome of one completion notification. */
    struct Notification
    {
        /// Latency to add to the request path (the recovery-poll
        /// latency when the notification was lost).
        Tick latency;
        /// False when the notification was dropped and completion was
        /// discovered by the driver's poll instead.
        bool delivered;
    };

    /**
     * Record a completion notification at the current time.
     *
     * @return the notification latency to add to the request path
     */
    Tick notify() { return notifyChecked().latency; }

    /**
     * Like notify, but reports whether the notification was actually
     * delivered or lost (under an installed fault hook) and recovered
     * by the driver's completion poll.
     */
    Notification notifyChecked();

    /**
     * Install (or clear, with nullptr) the fault-injection hook
     * consulted by every subsequent notification.
     */
    void setFaultHook(fault::IrqHook hook) { _fault_hook = std::move(hook); }

    /** @return notifications lost and recovered by polling. */
    std::uint64_t droppedInterrupts() const { return _dropped; }

    /** @return true while operating in polled mode. */
    bool polling() const { return _polling; }

    /** @return estimated completion rate (per second). */
    double estimatedRateHz() const { return _rate_hz; }

    std::uint64_t interruptsDelivered() const { return _interrupts; }
    std::uint64_t pollsDelivered() const { return _polls; }
    std::uint64_t coalescedBursts() const { return _coalesced; }

    const InterruptParams &params() const { return _params; }

  private:
    InterruptParams _params;
    cpu::CorePool *_host;
    fault::IrqHook _fault_hook;
    std::uint64_t _dropped = 0;
    bool _polling = false;
    double _rate_hz = 0;
    Tick _last_notify = 0;
    bool _have_last = false;
    unsigned _burst_run = 0;
    std::uint64_t _interrupts = 0;
    std::uint64_t _polls = 0;
    std::uint64_t _coalesced = 0;
};

} // namespace dmx::driver

#endif // DMX_DRIVER_INTERRUPTS_HH
