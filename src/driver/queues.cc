#include "driver/queues.hh"

#include "common/logging.hh"

namespace dmx::driver
{

DataQueue::DataQueue(std::uint64_t capacity) : _capacity(capacity)
{
    if (capacity == 0)
        dmx_fatal("DataQueue: zero capacity");
}

bool
DataQueue::push(std::uint64_t bytes)
{
    if (bytes == 0)
        dmx_fatal("DataQueue: zero-byte push");
    // Guard the absolute-pointer wraparound contract (see header).
    if (_tail > ~std::uint64_t(0) - bytes)
        dmx_panic("DataQueue: tail pointer would overflow "
                  "(tail=%llu, push=%llu)",
                  static_cast<unsigned long long>(_tail),
                  static_cast<unsigned long long>(bytes));
    if (used() + bytes > _capacity) {
        ++_overflows;
        return false;
    }
    _tail += bytes;
    _high_water = std::max(_high_water, used());
    return true;
}

void
DataQueue::setCreditWindow(std::uint64_t bytes)
{
    _credit_window = bytes > _capacity ? _capacity : bytes;
}

void
DataQueue::pop(std::uint64_t bytes)
{
    if (bytes > used())
        dmx_panic("DataQueue: pop of %llu exceeds %llu used",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(used()));
    _head += bytes;
}

std::uint64_t
DataQueue::used() const
{
    return _tail - _head;
}

DrxQueues::DrxQueues(std::uint64_t mem_bytes, std::uint64_t pair_bytes,
                     unsigned peers)
    : _peers(peers)
{
    if (peers == 0)
        dmx_fatal("DrxQueues: need at least one peer");
    if (peers > maxPeers(mem_bytes, pair_bytes))
        dmx_fatal("DrxQueues: %u peers exceed the %u supported by "
                  "%llu bytes of queue memory",
                  peers, maxPeers(mem_bytes, pair_bytes),
                  static_cast<unsigned long long>(mem_bytes));
    // Two pairs (accelerator + DRX) of two queues (RX + TX) per peer.
    const std::uint64_t queue_bytes = pair_bytes / 2;
    for (unsigned p = 0; p < peers * 4; ++p)
        _queues.emplace_back(queue_bytes);
}

unsigned
DrxQueues::maxPeers(std::uint64_t mem_bytes, std::uint64_t pair_bytes)
{
    // Each peer consumes two pairs.
    return static_cast<unsigned>(mem_bytes / (2 * pair_bytes));
}

void
DrxQueues::labelQueues(const std::string &owner)
{
    for (unsigned p = 0; p < _peers; ++p) {
        for (int k = 0; k < 2; ++k) {
            const PeerKind kind =
                k == 0 ? PeerKind::Accelerator : PeerKind::Drx;
            const char *kname = k == 0 ? "acc" : "drx";
            rx(p, kind).setLabel(owner + ".p" + std::to_string(p) + "." +
                                 kname + ".rx");
            tx(p, kind).setLabel(owner + ".p" + std::to_string(p) + "." +
                                 kname + ".tx");
        }
    }
}

std::size_t
DrxQueues::index(unsigned peer, PeerKind kind, bool tx) const
{
    if (peer >= _peers)
        dmx_fatal("DrxQueues: peer %u out of range", peer);
    return peer * 4 + (kind == PeerKind::Drx ? 2 : 0) + (tx ? 1 : 0);
}

DataQueue &
DrxQueues::rx(unsigned peer, PeerKind kind)
{
    return _queues[index(peer, kind, false)];
}

DataQueue &
DrxQueues::tx(unsigned peer, PeerKind kind)
{
    return _queues[index(peer, kind, true)];
}

} // namespace dmx::driver
