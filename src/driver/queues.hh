/**
 * @file
 * DRX data queues (paper Sec. V, Figure 9).
 *
 * Each DRX statically partitions its device memory into RX/TX data
 * queue pairs, two pairs per peer accelerator (one pair for direct
 * DRX-accelerator traffic, one for DRX-DRX). Queues are rings with
 * head/tail pointers; the paper provisions 8 GB per DRX and 100 MB per
 * pair, supporting up to 40 accelerators per server.
 */

#ifndef DMX_DRIVER_QUEUES_HH
#define DMX_DRIVER_QUEUES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace dmx::driver
{

/**
 * A byte-granular ring with head/tail pointers.
 *
 * Pointer contract: head and tail are *absolute* byte counters that
 * only ever increase; the ring offset is (pointer % capacity) and the
 * fill level is tail - head, which is wraparound-safe as long as both
 * pointers wrap together. A tail overflow past UINT64_MAX would break
 * the used() arithmetic, so push() guards it; at the paper's 25 GB/s
 * per queue that is ~23 years of continuous traffic, making the guard
 * a diagnostic rather than an operating concern.
 */
class DataQueue
{
  public:
    /** @param capacity queue size in bytes */
    explicit DataQueue(std::uint64_t capacity);

    /**
     * Reserve space for an incoming payload.
     *
     * @param bytes payload size; must be nonzero (a zero-byte descriptor
     *              is a driver bug, rejected via fatal)
     * @return false when the queue lacks space (backpressure)
     */
    bool push(std::uint64_t bytes);

    /** Release @p bytes from the head (consumption complete). */
    void pop(std::uint64_t bytes);

    std::uint64_t used() const;
    std::uint64_t capacity() const { return _capacity; }
    std::uint64_t head() const { return _head; }
    std::uint64_t tail() const { return _tail; }
    std::uint64_t highWater() const { return _high_water; }

    /** Name the queue for per-queue overflow/backpressure reporting. */
    void setLabel(std::string label) { _label = std::move(label); }

    /** @return the queue's label ("" until setLabel). */
    const std::string &label() const { return _label; }

    /** @return pushes rejected for lack of space. */
    std::uint64_t overflows() const { return _overflows; }

    /**
     * Credit window for producer backpressure, in bytes. Defaults to
     * the queue capacity; a robust::CreditGate sized with this value
     * can never admit a push the ring would reject.
     */
    std::uint64_t creditWindow() const
    {
        return _credit_window ? _credit_window : _capacity;
    }

    /** Override the credit window (clamped to the capacity; 0 resets
     *  to the default full-capacity window). */
    void setCreditWindow(std::uint64_t bytes);

  private:
    std::uint64_t _capacity;
    std::uint64_t _head = 0; ///< consumption pointer (absolute)
    std::uint64_t _tail = 0; ///< production pointer (absolute)
    std::uint64_t _high_water = 0;
    std::uint64_t _overflows = 0;
    std::uint64_t _credit_window = 0; ///< 0 = capacity
    std::string _label;
};

/** Which of the two queue pairs a peer connection uses. */
enum class PeerKind { Accelerator, Drx };

/** The static queue partition of one DRX's memory. */
class DrxQueues
{
  public:
    /**
     * @param mem_bytes        total DRX memory set aside for queues
     * @param pair_bytes       bytes per RX/TX pair
     * @param peers            number of peer accelerators
     * @throws via fatal when peers exceed the partition capacity
     */
    DrxQueues(std::uint64_t mem_bytes, std::uint64_t pair_bytes,
              unsigned peers);

    /**
     * Label every queue "<owner>.p<peer>.<acc|drx>.<rx|tx>" so
     * overflow and backpressure reports name the offending queue.
     */
    void labelQueues(const std::string &owner);

    /** @return max peers representable with this partitioning. */
    static unsigned maxPeers(std::uint64_t mem_bytes,
                             std::uint64_t pair_bytes);

    DataQueue &rx(unsigned peer, PeerKind kind);
    DataQueue &tx(unsigned peer, PeerKind kind);

    unsigned peers() const { return _peers; }

  private:
    std::size_t index(unsigned peer, PeerKind kind, bool tx) const;

    unsigned _peers;
    std::vector<DataQueue> _queues;
};

} // namespace dmx::driver

#endif // DMX_DRIVER_QUEUES_HH
