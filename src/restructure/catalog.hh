/**
 * @file
 * The restructuring kernels used by the paper's five end-to-end
 * benchmarks (Table I) and the collective-communication study.
 *
 * Each builder returns a Kernel (see ir.hh) describing the exact data
 * motion between kernel-1's output format and kernel-2's input format.
 */

#ifndef DMX_RESTRUCTURE_CATALOG_HH
#define DMX_RESTRUCTURE_CATALOG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "restructure/ir.hh"

namespace dmx::restructure
{

/**
 * Triangular mel filter bank (mels x bins, row-major).
 *
 * @param mels        number of mel bins
 * @param bins        number of linear frequency bins
 * @param sample_rate audio sample rate (Hz)
 */
std::shared_ptr<const std::vector<float>>
makeMelFilterbank(std::size_t mels, std::size_t bins, double sample_rate);

/** Nearest-neighbour resize index table (dst*dst <- src_h x src_w). */
std::shared_ptr<const std::vector<std::uint32_t>>
makeResizeIndices(std::size_t src_h, std::size_t src_w, std::size_t dst);

/**
 * Sound Detection: FFT output -> SVM input.
 * Complex spectra (frames x 2*bins f32) -> magnitude -> mel projection
 * -> log compression. Output: frames x mels f32.
 */
Kernel melSpectrogram(std::size_t frames, std::size_t bins,
                      std::size_t mels, double sample_rate = 16000.0);

/**
 * Video Surveillance: decoded frame -> object-detection input.
 * u8 pixels (src_h x src_w) -> normalize to f32 -> nearest resize to
 * dst x dst -> f16. Output: dst x dst f16.
 */
Kernel videoFrameRestructure(std::size_t src_h, std::size_t src_w,
                             std::size_t dst);

/**
 * Brain Stimulation: FFT output -> reinforcement-learning observation.
 * Complex spectra (frames x 2*bins f32) -> magnitude -> band averaging
 * (bands x bins matrix) -> log -> f16. Output: frames x bands f16.
 */
Kernel brainSignalRestructure(std::size_t frames, std::size_t bins,
                              std::size_t bands);

/**
 * Personal Info Redaction: decrypted text -> regex-accelerator records.
 * u8 text (len) -> reblock into fixed records -> pad each record.
 * Output: records x padded u8. len must be a multiple of record.
 */
Kernel textRecordRestructure(std::size_t len, std::size_t record,
                             std::size_t padded);

/**
 * Personal Info Redaction (3-kernel extension): redacted text -> NER
 * token embeddings. u8 text (len) -> gather into seq x dim (wraparound)
 * -> normalize to f32. Output: seq x dim f32.
 */
Kernel nerTokenRestructure(std::size_t len, std::size_t seq,
                           std::size_t dim);

/**
 * Database Hash Join: decompressed row-major table -> the join
 * accelerator's columnar, partitioned layout.
 * u8 rows (rows x 16, two int64 fields) -> field-major gather; with
 * @p partition the rows are additionally shuffled into hash buckets
 * (the bucket permutation is produced by the DRX's scalar pre-pass and
 * applied as a gather).
 * Output: 2 x rows x 8 u8.
 */
Kernel dbColumnarize(std::size_t rows, bool partition = false,
                     std::uint64_t seed = 42);

/**
 * All-reduce summation step executed on a DRX (Sec. VII-C collectives):
 * n_sources interleaved vectors -> elementwise sum. Input is
 * (n_sources x elems) f32; output (1 x elems)... implemented as a
 * transpose + row reduce. Output: elems x 1 f32.
 */
Kernel vectorReduction(std::size_t n_sources, std::size_t elems);

} // namespace dmx::restructure

#endif // DMX_RESTRUCTURE_CATALOG_HH
