#include "restructure/catalog.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"

namespace dmx::restructure
{

namespace
{

double
hzToMel(double hz)
{
    return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double
melToHz(double mel)
{
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

} // namespace

std::shared_ptr<const std::vector<float>>
makeMelFilterbank(std::size_t mels, std::size_t bins, double sample_rate)
{
    if (mels == 0 || bins < 2)
        dmx_fatal("makeMelFilterbank: need mels>0, bins>=2");
    auto fb = std::make_shared<std::vector<float>>(mels * bins, 0.0f);

    const double f_max = sample_rate / 2.0;
    const double mel_max = hzToMel(f_max);
    // mels+2 edge points define mels triangular filters.
    std::vector<double> edges(mels + 2);
    for (std::size_t i = 0; i < edges.size(); ++i)
        edges[i] = melToHz(mel_max * static_cast<double>(i) /
                           static_cast<double>(mels + 1));

    const double bin_hz = f_max / static_cast<double>(bins - 1);
    for (std::size_t m = 0; m < mels; ++m) {
        const double lo = edges[m], mid = edges[m + 1], hi = edges[m + 2];
        for (std::size_t b = 0; b < bins; ++b) {
            const double f = static_cast<double>(b) * bin_hz;
            double w = 0.0;
            if (f > lo && f < mid) {
                w = (f - lo) / (mid - lo);
            } else if (f >= mid && f < hi) {
                w = (hi - f) / (hi - mid);
            }
            (*fb)[m * bins + b] = static_cast<float>(w);
        }
    }
    return fb;
}

std::shared_ptr<const std::vector<std::uint32_t>>
makeResizeIndices(std::size_t src_h, std::size_t src_w, std::size_t dst)
{
    auto idx = std::make_shared<std::vector<std::uint32_t>>(dst * dst);
    for (std::size_t y = 0; y < dst; ++y) {
        const std::size_t sy = y * src_h / dst;
        for (std::size_t x = 0; x < dst; ++x) {
            const std::size_t sx = x * src_w / dst;
            (*idx)[y * dst + x] =
                static_cast<std::uint32_t>(sy * src_w + sx);
        }
    }
    return idx;
}

Kernel
melSpectrogram(std::size_t frames, std::size_t bins, std::size_t mels,
               double sample_rate)
{
    Kernel k;
    k.name = "mel_spectrogram";
    k.input = BufferDesc{DType::F32, {frames, 2 * bins}};
    k.stages.push_back(magnitudeStage());
    k.stages.push_back(
        matVecStage(mels, bins, makeMelFilterbank(mels, bins, sample_rate)));
    k.stages.push_back(mapStage({{MapFn::Log1p, 0.0f}}));
    return k;
}

Kernel
videoFrameRestructure(std::size_t src_h, std::size_t src_w,
                      std::size_t dst)
{
    Kernel k;
    k.name = "video_frame_restructure";
    k.input = BufferDesc{DType::U8, {src_h, src_w}};
    k.stages.push_back(castStage(DType::F32));
    k.stages.push_back(mapStage(
        {{MapFn::Scale, 1.0f / 255.0f}, {MapFn::Offset, -0.5f}}));
    k.stages.push_back(
        gatherStage(makeResizeIndices(src_h, src_w, dst), {dst, dst}));
    k.stages.push_back(castStage(DType::F16));
    return k;
}

Kernel
brainSignalRestructure(std::size_t frames, std::size_t bins,
                       std::size_t bands)
{
    Kernel k;
    k.name = "brain_signal_restructure";
    k.input = BufferDesc{DType::F32, {frames, 2 * bins}};
    k.stages.push_back(magnitudeStage());

    // Band-averaging matrix: contiguous equal-width bands.
    auto w = std::make_shared<std::vector<float>>(bands * bins, 0.0f);
    const std::size_t width = bins / bands;
    if (width == 0)
        dmx_fatal("brainSignalRestructure: bands > bins");
    for (std::size_t band = 0; band < bands; ++band) {
        const std::size_t lo = band * width;
        const std::size_t hi =
            band + 1 == bands ? bins : lo + width;
        for (std::size_t b = lo; b < hi; ++b)
            (*w)[band * bins + b] =
                1.0f / static_cast<float>(hi - lo);
    }
    k.stages.push_back(matVecStage(bands, bins, std::move(w)));
    k.stages.push_back(mapStage({{MapFn::Log1p, 0.0f}}));
    k.stages.push_back(castStage(DType::F16));
    return k;
}

Kernel
textRecordRestructure(std::size_t len, std::size_t record,
                      std::size_t padded)
{
    if (record == 0 || len % record != 0)
        dmx_fatal("textRecordRestructure: len %zu not a multiple of "
                  "record %zu", len, record);
    if (padded < record)
        dmx_fatal("textRecordRestructure: padded < record");
    const std::size_t records = len / record;

    Kernel k;
    k.name = "text_record_restructure";
    k.input = BufferDesc{DType::U8, {len}};
    // Reshape (identity gather) into records, then pad each record.
    auto idx = std::make_shared<std::vector<std::uint32_t>>(len);
    for (std::size_t i = 0; i < len; ++i)
        (*idx)[i] = static_cast<std::uint32_t>(i);
    k.stages.push_back(gatherStage(std::move(idx), {records, record}));
    k.stages.push_back(padStage(padded, 0.0f));
    return k;
}

Kernel
nerTokenRestructure(std::size_t len, std::size_t seq, std::size_t dim)
{
    if (len == 0)
        dmx_fatal("nerTokenRestructure: empty text");
    Kernel k;
    k.name = "ner_token_restructure";
    k.input = BufferDesc{DType::U8, {len}};
    auto idx = std::make_shared<std::vector<std::uint32_t>>(seq * dim);
    for (std::size_t i = 0; i < idx->size(); ++i)
        (*idx)[i] = static_cast<std::uint32_t>(i % len);
    k.stages.push_back(gatherStage(std::move(idx), {seq, dim}));
    k.stages.push_back(castStage(DType::F32));
    k.stages.push_back(mapStage(
        {{MapFn::Scale, 1.0f / 255.0f}, {MapFn::Offset, -0.5f}}));
    return k;
}

Kernel
dbColumnarize(std::size_t rows, bool partition, std::uint64_t seed)
{
    Kernel k;
    k.name = partition ? "db_partition_columnarize" : "db_columnarize";
    k.input = BufferDesc{DType::U8, {rows, 16}};

    // Optional hash-partition permutation of the row order; without it
    // the gather is a pure affine layout transform.
    std::vector<std::uint32_t> perm(rows);
    for (std::size_t r = 0; r < rows; ++r)
        perm[r] = static_cast<std::uint32_t>(r);
    if (partition) {
        Rng rng(seed);
        for (std::size_t r = rows; r > 1; --r)
            std::swap(perm[r - 1], perm[rng.below(r)]);
    }

    auto idx = std::make_shared<std::vector<std::uint32_t>>(rows * 16);
    std::size_t o = 0;
    for (std::size_t field = 0; field < 2; ++field)
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t b = 0; b < 8; ++b)
                (*idx)[o++] = static_cast<std::uint32_t>(
                    perm[r] * 16 + field * 8 + b);
    k.stages.push_back(gatherStage(std::move(idx), {2, rows, 8}));
    return k;
}

Kernel
vectorReduction(std::size_t n_sources, std::size_t elems)
{
    Kernel k;
    k.name = "vector_reduction";
    k.input = BufferDesc{DType::F32, {n_sources, elems}};
    // Transpose so each output row holds one element's contributions,
    // then reduce over them.
    k.stages.push_back(transposeStage());
    k.stages.push_back(reduceStage());
    return k;
}

} // namespace dmx::restructure
