#include "restructure/ir.hh"

#include "common/logging.hh"

namespace dmx::restructure
{

std::size_t
BufferDesc::elems() const
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

std::size_t
BufferDesc::inner() const
{
    if (shape.empty())
        dmx_fatal("BufferDesc::inner: rank-0 buffer");
    return shape.back();
}

std::size_t
BufferDesc::rows() const
{
    if (shape.empty())
        return 0;
    std::size_t n = 1;
    for (std::size_t i = 0; i + 1 < shape.size(); ++i)
        n *= shape[i];
    return n;
}

BufferDesc
Kernel::descAfter(std::size_t upto) const
{
    if (upto > stages.size())
        dmx_fatal("Kernel '%s': descAfter(%zu) beyond %zu stages",
                  name.c_str(), upto, stages.size());
    BufferDesc desc = input;
    for (std::size_t i = 0; i < upto; ++i) {
        const Stage &st = stages[i];
        switch (st.op) {
          case StageOp::Map:
            if (st.steps.empty())
                dmx_fatal("Kernel '%s' stage %zu: empty Map",
                          name.c_str(), i);
            break;
          case StageOp::Cast:
            desc.dtype = st.to;
            break;
          case StageOp::Transpose2D: {
            if (desc.shape.size() < 2)
                dmx_fatal("Kernel '%s' stage %zu: Transpose2D needs rank>=2",
                          name.c_str(), i);
            std::swap(desc.shape[desc.shape.size() - 1],
                      desc.shape[desc.shape.size() - 2]);
            break;
          }
          case StageOp::MatVec:
            if (!st.weights ||
                st.weights->size() != st.mat_rows * st.mat_cols)
                dmx_fatal("Kernel '%s' stage %zu: bad MatVec weights",
                          name.c_str(), i);
            if (desc.inner() != st.mat_cols)
                dmx_fatal("Kernel '%s' stage %zu: MatVec cols %zu != "
                          "inner %zu",
                          name.c_str(), i, st.mat_cols, desc.inner());
            desc.shape.back() = st.mat_rows;
            desc.dtype = DType::F32;
            break;
          case StageOp::Gather: {
            if (!st.indices || st.out_shape.empty())
                dmx_fatal("Kernel '%s' stage %zu: bad Gather",
                          name.c_str(), i);
            std::size_t out_elems = 1;
            for (std::size_t d : st.out_shape)
                out_elems *= d;
            if (st.indices->size() != out_elems)
                dmx_fatal("Kernel '%s' stage %zu: Gather index count %zu "
                          "!= out elems %zu",
                          name.c_str(), i, st.indices->size(), out_elems);
            for (std::uint32_t idx : *st.indices) {
                if (idx >= desc.elems())
                    dmx_fatal("Kernel '%s' stage %zu: Gather index %u out "
                              "of range %zu",
                              name.c_str(), i, idx, desc.elems());
            }
            desc.shape = st.out_shape;
            break;
          }
          case StageOp::Magnitude:
            if (desc.inner() % 2 != 0)
                dmx_fatal("Kernel '%s' stage %zu: Magnitude needs even "
                          "inner dim",
                          name.c_str(), i);
            desc.shape.back() = desc.inner() / 2;
            desc.dtype = DType::F32;
            break;
          case StageOp::Reduce:
            desc.shape.back() = 1;
            desc.dtype = DType::F32;
            break;
          case StageOp::Pad:
            if (st.pad_to < desc.inner())
                dmx_fatal("Kernel '%s' stage %zu: Pad %zu below inner %zu",
                          name.c_str(), i, st.pad_to, desc.inner());
            desc.shape.back() = st.pad_to;
            break;
        }
    }
    return desc;
}

Stage
mapStage(std::vector<MapStep> steps)
{
    Stage s;
    s.op = StageOp::Map;
    s.steps = std::move(steps);
    return s;
}

Stage
castStage(DType to)
{
    Stage s;
    s.op = StageOp::Cast;
    s.to = to;
    return s;
}

Stage
transposeStage()
{
    Stage s;
    s.op = StageOp::Transpose2D;
    return s;
}

Stage
matVecStage(std::size_t rows, std::size_t cols,
            std::shared_ptr<const std::vector<float>> weights)
{
    Stage s;
    s.op = StageOp::MatVec;
    s.mat_rows = rows;
    s.mat_cols = cols;
    s.weights = std::move(weights);
    return s;
}

Stage
gatherStage(std::shared_ptr<const std::vector<std::uint32_t>> idx,
            std::vector<std::size_t> out_shape)
{
    Stage s;
    s.op = StageOp::Gather;
    s.indices = std::move(idx);
    s.out_shape = std::move(out_shape);
    return s;
}

Stage
magnitudeStage()
{
    Stage s;
    s.op = StageOp::Magnitude;
    return s;
}

Stage
reduceStage()
{
    Stage s;
    s.op = StageOp::Reduce;
    return s;
}

Stage
padStage(std::size_t pad_to, float value)
{
    Stage s;
    s.op = StageOp::Pad;
    s.pad_to = pad_to;
    s.pad_value = value;
    return s;
}

} // namespace dmx::restructure
