/**
 * @file
 * Scalar CPU reference executor for restructuring kernels.
 *
 * This is both the correctness oracle for the DRX (the DRX machine must
 * produce byte-identical results) and the source of the host address
 * stream used by the Figure-5 characterization (via MemTracer).
 */

#ifndef DMX_RESTRUCTURE_CPU_EXEC_HH
#define DMX_RESTRUCTURE_CPU_EXEC_HH

#include <cstdint>

#include "kernels/opcount.hh"
#include "restructure/ir.hh"

namespace dmx::restructure
{

/**
 * Observer of the executor's memory behaviour.
 *
 * Addresses are virtual: each intermediate buffer occupies its own
 * region, mirroring a malloc'd staging buffer on a real host.
 */
class MemTracer
{
  public:
    virtual ~MemTracer() = default;

    /** Data read of @p bytes at @p addr. */
    virtual void read(std::uint64_t addr, std::size_t bytes) = 0;

    /** Data write of @p bytes at @p addr. */
    virtual void write(std::uint64_t addr, std::size_t bytes) = 0;

    /** @p n instructions retired in a loop body of @p body_bytes code. */
    virtual void retire(std::uint64_t n, std::size_t body_bytes) = 0;
};

/**
 * Execute @p kernel on @p input.
 *
 * @param kernel restructuring pipeline
 * @param input  bytes matching kernel.input
 * @param ops    optional operation accounting
 * @param tracer optional memory-access observer
 * @return output bytes matching kernel.output()
 */
Bytes executeOnCpu(const Kernel &kernel, const Bytes &input,
                   kernels::OpCount *ops = nullptr,
                   MemTracer *tracer = nullptr);

} // namespace dmx::restructure

#endif // DMX_RESTRUCTURE_CPU_EXEC_HH
