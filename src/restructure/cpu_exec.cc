#include "restructure/cpu_exec.hh"

#include <cmath>

#include "common/logging.hh"

namespace dmx::restructure
{

namespace
{

/** Apply one Map primitive. */
float
applyStep(const MapStep &step, float x)
{
    switch (step.fn) {
      case MapFn::Scale:    return x * step.arg;
      case MapFn::Offset:   return x + step.arg;
      case MapFn::Abs:      return std::fabs(x);
      case MapFn::Sqrt:     return std::sqrt(std::max(x, 0.0f));
      case MapFn::Log1p:    return std::log1p(std::max(x, 0.0f));
      case MapFn::Exp:      return std::exp(x);
      case MapFn::ClampMin: return std::max(x, step.arg);
      case MapFn::ClampMax: return std::min(x, step.arg);
    }
    dmx_panic("applyStep: bad MapFn");
}

/** Virtual base address of staging buffer @p i (ping-pong regions). */
std::uint64_t
bufferBase(std::size_t i)
{
    // 256 MB apart: staging buffers never alias.
    return 0x100000000ull + static_cast<std::uint64_t>(i) * 0x10000000ull;
}

/** Typed element accessors against a byte buffer with tracing. */
struct View
{
    const Bytes *bytes;
    DType dtype;
    std::uint64_t base;
    MemTracer *tracer;

    float
    load(std::size_t idx) const
    {
        const std::size_t esz = dtypeSize(dtype);
        if (tracer)
            tracer->read(base + idx * esz, esz);
        return loadAsFloat(bytes->data() + idx * esz, dtype);
    }
};

struct MutView
{
    Bytes *bytes;
    DType dtype;
    std::uint64_t base;
    MemTracer *tracer;

    void
    store(std::size_t idx, float v)
    {
        const std::size_t esz = dtypeSize(dtype);
        if (tracer)
            tracer->write(base + idx * esz, esz);
        storeFromFloat(bytes->data() + idx * esz, dtype, v);
    }
};

} // namespace

Bytes
executeOnCpu(const Kernel &kernel, const Bytes &input,
             kernels::OpCount *ops, MemTracer *tracer)
{
    if (input.size() != kernel.input.bytes())
        dmx_fatal("executeOnCpu('%s'): input is %zu bytes, expected %zu",
                  kernel.name.c_str(), input.size(), kernel.input.bytes());

    Bytes cur = input;
    BufferDesc cur_desc = kernel.input;
    kernels::OpCount total;

    for (std::size_t si = 0; si < kernel.stages.size(); ++si) {
        const Stage &st = kernel.stages[si];
        const BufferDesc out_desc = kernel.descAfter(si + 1);
        Bytes out(out_desc.bytes());

        View in{&cur, cur_desc.dtype, bufferBase(si), tracer};
        MutView dst{&out, out_desc.dtype, bufferBase(si + 1), tracer};

        // Rough instruction cost per element for the retire() model:
        // load + compute + store + loop bookkeeping.
        std::uint64_t instr = 0;
        const std::size_t body_bytes = 160; // tight loop body

        switch (st.op) {
          case StageOp::Map: {
            const std::size_t n = cur_desc.elems();
            for (std::size_t i = 0; i < n; ++i) {
                float v = in.load(i);
                for (const MapStep &step : st.steps)
                    v = applyStep(step, v);
                dst.store(i, v);
            }
            instr = n * (4 + st.steps.size());
            total.flops += n * st.steps.size();
            break;
          }
          case StageOp::Cast: {
            const std::size_t n = cur_desc.elems();
            for (std::size_t i = 0; i < n; ++i)
                dst.store(i, in.load(i));
            instr = n * 4;
            total.int_ops += n;
            break;
          }
          case StageOp::Transpose2D: {
            const std::size_t rank = cur_desc.shape.size();
            const std::size_t r = cur_desc.shape[rank - 2];
            const std::size_t c = cur_desc.shape[rank - 1];
            const std::size_t outer = cur_desc.elems() / (r * c);
            for (std::size_t o = 0; o < outer; ++o)
                for (std::size_t y = 0; y < r; ++y)
                    for (std::size_t x = 0; x < c; ++x)
                        dst.store(o * r * c + x * r + y,
                                  in.load(o * r * c + y * c + x));
            instr = cur_desc.elems() * 6;
            total.int_ops += cur_desc.elems() * 2;
            break;
          }
          case StageOp::MatVec: {
            const std::size_t rows = cur_desc.rows();
            const std::size_t cols = st.mat_cols;
            const std::vector<float> &w = *st.weights;
            for (std::size_t row = 0; row < rows; ++row) {
                for (std::size_t m = 0; m < st.mat_rows; ++m) {
                    float acc = 0.0f;
                    for (std::size_t k = 0; k < cols; ++k) {
                        acc += w[m * cols + k] * in.load(row * cols + k);
                        if (tracer) {
                            tracer->read(0x080000000ull +
                                             (m * cols + k) * 4, 4);
                        }
                    }
                    dst.store(row * st.mat_rows + m, acc);
                }
            }
            instr = rows * st.mat_rows * cols * 3;
            total.flops += 2ull * rows * st.mat_rows * cols;
            break;
          }
          case StageOp::Gather: {
            const std::vector<std::uint32_t> &idx = *st.indices;
            for (std::size_t i = 0; i < idx.size(); ++i)
                dst.store(i, in.load(idx[i]));
            instr = idx.size() * 5;
            total.int_ops += idx.size() * 4;
            // Fancy indexing streams the index table as well as the
            // data (numpy/MKL gather semantics).
            total.bytes_read += idx.size() * 4;
            break;
          }
          case StageOp::Magnitude: {
            const std::size_t n = out_desc.elems();
            for (std::size_t i = 0; i < n; ++i) {
                const float re = in.load(2 * i);
                const float im = in.load(2 * i + 1);
                dst.store(i, std::sqrt(re * re + im * im));
            }
            instr = n * 7;
            total.flops += n * 4;
            break;
          }
          case StageOp::Reduce: {
            const std::size_t rows = cur_desc.rows();
            const std::size_t cols = cur_desc.inner();
            for (std::size_t row = 0; row < rows; ++row) {
                float acc = 0.0f;
                for (std::size_t k = 0; k < cols; ++k)
                    acc += in.load(row * cols + k);
                dst.store(row, acc);
            }
            instr = rows * cols * 2;
            total.flops += rows * cols;
            break;
          }
          case StageOp::Pad: {
            const std::size_t rows = cur_desc.rows();
            const std::size_t cols = cur_desc.inner();
            for (std::size_t row = 0; row < rows; ++row) {
                for (std::size_t k = 0; k < st.pad_to; ++k) {
                    const float v = k < cols ? in.load(row * cols + k)
                                             : st.pad_value;
                    dst.store(row * st.pad_to + k, v);
                }
            }
            instr = rows * st.pad_to * 4;
            total.int_ops += rows * st.pad_to;
            break;
          }
        }

        if (tracer)
            tracer->retire(instr, body_bytes);
        total.bytes_read += cur.size();
        total.bytes_written += out.size();

        cur = std::move(out);
        cur_desc = out_desc;
    }

    if (ops)
        *ops += total;
    return cur;
}

} // namespace dmx::restructure
