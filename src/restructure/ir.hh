/**
 * @file
 * Intermediate representation of data-restructuring kernels.
 *
 * A restructuring kernel is a short pipeline of Stages applied to a
 * typed, shaped buffer as it moves between two accelerators: element
 * type conversion, arithmetic normalization, layout transformation
 * (transpose / gather), spectral binning (matrix-vector against constant
 * filter banks), padding and reduction. The same IR has
 *   - a scalar CPU reference executor (cpu_exec.hh) used as ground truth
 *     and for host-side characterization, and
 *   - a DRX compiler (drx/compiler.hh) that lowers it to DRX programs.
 */

#ifndef DMX_RESTRUCTURE_IR_HH
#define DMX_RESTRUCTURE_IR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/dtype.hh"

namespace dmx::restructure
{

/** Flat byte buffer holding typed elements. */
using Bytes = std::vector<std::uint8_t>;

/** Shape + element type of a buffer. */
struct BufferDesc
{
    DType dtype = DType::F32;
    std::vector<std::size_t> shape;

    /** @return number of elements. */
    std::size_t elems() const;

    /** @return total bytes. */
    std::size_t bytes() const { return elems() * dtypeSize(dtype); }

    /** @return the last (innermost) dimension. */
    std::size_t inner() const;

    /** @return product of all dimensions except the last. */
    std::size_t rows() const;
};

/** Elementwise primitive applied by a Map stage. */
enum class MapFn : std::uint8_t
{
    Scale,    ///< x * arg
    Offset,   ///< x + arg
    Abs,      ///< |x|
    Sqrt,     ///< sqrt(max(x, 0))
    Log1p,    ///< log(1 + max(x, 0))
    Exp,      ///< exp(x)
    ClampMin, ///< max(x, arg)
    ClampMax, ///< min(x, arg)
};

/** One step of a Map chain. */
struct MapStep
{
    MapFn fn;
    float arg = 0.0f;
};

/** Stage kinds (see the file header). */
enum class StageOp : std::uint8_t
{
    Map,         ///< elementwise chain, dtype preserved
    Cast,        ///< convert element type (values preserved)
    Transpose2D, ///< swap the last two dimensions
    MatVec,      ///< rows x inner -> rows x mat_rows against weights
    Gather,      ///< out[i] = in[indices[i]], arbitrary layout transform
    Magnitude,   ///< interleaved (re,im) pairs -> magnitudes, inner/2
    Reduce,      ///< sum over the innermost dimension
    Pad,         ///< widen the innermost dimension with a constant
};

/** One pipeline stage. */
struct Stage
{
    StageOp op = StageOp::Map;

    // Map
    std::vector<MapStep> steps;

    // Cast
    DType to = DType::F32;

    // MatVec: weights are mat_rows x mat_cols, row-major, constant.
    std::size_t mat_rows = 0;
    std::size_t mat_cols = 0;
    std::shared_ptr<const std::vector<float>> weights;

    // Gather: flat element indices into the stage input; out_shape is
    // the resulting shape.
    std::shared_ptr<const std::vector<std::uint32_t>> indices;
    std::vector<std::size_t> out_shape;

    // Pad
    std::size_t pad_to = 0;
    float pad_value = 0.0f;
};

/** A complete restructuring kernel. */
struct Kernel
{
    std::string name;
    BufferDesc input;
    std::vector<Stage> stages;

    /**
     * Infer the buffer descriptor after @p upto stages.
     * @param upto number of stages applied (defaults to all)
     * @throws via fatal on shape/type inconsistencies
     */
    BufferDesc descAfter(std::size_t upto) const;

    /** @return descriptor of the kernel output. */
    BufferDesc output() const { return descAfter(stages.size()); }
};

/** Convenience builders for the Stage variants. */
Stage mapStage(std::vector<MapStep> steps);
Stage castStage(DType to);
Stage transposeStage();
Stage matVecStage(std::size_t rows, std::size_t cols,
                  std::shared_ptr<const std::vector<float>> weights);
Stage gatherStage(std::shared_ptr<const std::vector<std::uint32_t>> idx,
                  std::vector<std::size_t> out_shape);
Stage magnitudeStage();
Stage reduceStage();
Stage padStage(std::size_t pad_to, float value);

} // namespace dmx::restructure

#endif // DMX_RESTRUCTURE_IR_HH
