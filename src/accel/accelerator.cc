#include "accel/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::accel
{

std::string
toString(Domain d)
{
    switch (d) {
      case Domain::VideoCodec:      return "video_codec";
      case Domain::ObjectDetection: return "object_detection";
      case Domain::FFT:             return "fft";
      case Domain::SVM:             return "svm";
      case Domain::Crypto:          return "aes_gcm";
      case Domain::Regex:           return "regex";
      case Domain::Decompression:   return "decompress";
      case Domain::HashJoin:        return "hash_join";
      case Domain::RL:              return "ppo";
      case Domain::NER:             return "ner";
    }
    return "?";
}

AcceleratorSpec
specFor(Domain d)
{
    AcceleratorSpec s;
    s.domain = d;
    switch (d) {
      case Domain::VideoCodec:
        // Hard IP: modest programmable-logic throughput, lower power.
        s.flops_per_cycle = 96;
        s.intops_per_cycle = 192;
        s.mem_bytes_per_cycle = 48;
        s.active_watts = 15;
        break;
      case Domain::ObjectDetection:
        s.flops_per_cycle = 1024;     // systolic MAC array
        s.mem_bytes_per_cycle = 512;  // weights resident in on-chip SRAM
        s.active_watts = 30;
        break;
      case Domain::FFT:
        // Two streaming FFT cores, each with the full butterfly
        // pipeline in flight.
        s.flops_per_cycle = 320;
        s.mem_bytes_per_cycle = 64;
        break;
      case Domain::SVM:
        s.flops_per_cycle = 512;
        s.mem_bytes_per_cycle = 256; // model coefficients stay on chip
        break;
      case Domain::Crypto:
        s.intops_per_cycle = 640; // wide AES round pipeline
        s.mem_bytes_per_cycle = 64;
        break;
      case Domain::Regex:
        // Record-parallel NFA lanes; each lane advances every state of
        // its automaton per cycle.
        s.intops_per_cycle = 1024;
        s.mem_bytes_per_cycle = 64;
        s.active_watts = 18;
        break;
      case Domain::Decompression:
        // The HLS pipeline hides the CPU's serial token dependencies
        // but emits a limited number of bytes per cycle.
        s.intops_per_cycle = 256;
        s.mem_bytes_per_cycle = 16;
        break;
      case Domain::HashJoin:
        s.intops_per_cycle = 384;
        // On-card partitioning turns random probes into streaming.
        s.mem_bytes_per_cycle = 256;
        break;
      case Domain::RL:
        s.flops_per_cycle = 512;
        s.mem_bytes_per_cycle = 512; // policy weights pinned on chip
        break;
      case Domain::NER:
        s.flops_per_cycle = 2048;    // large GEMM engine
        s.mem_bytes_per_cycle = 512; // layer weights cached on chip
        s.active_watts = 35;
        break;
    }
    // Global datapath calibration: with these widths the suite's
    // geomean per-kernel speedup over the host lands at the paper's
    // ~6.5x (Fig. 3(b)).
    constexpr double throughput_scale = 1.5;
    s.flops_per_cycle *= throughput_scale;
    s.intops_per_cycle *= throughput_scale;
    s.mem_bytes_per_cycle *= throughput_scale;
    return s;
}

Cycles
kernelCycles(const AcceleratorSpec &spec, const kernels::OpCount &ops)
{
    const double compute =
        static_cast<double>(ops.flops) / spec.flops_per_cycle +
        static_cast<double>(ops.int_ops) / spec.intops_per_cycle;
    const double mem =
        static_cast<double>(ops.bytes()) / spec.mem_bytes_per_cycle;
    return static_cast<Cycles>(std::ceil(std::max(compute, mem))) +
           spec.fixed_overhead;
}

DeviceUnit::DeviceUnit(sim::EventQueue &eq, std::string name,
                       double freq_hz)
    : sim::SimObject(eq, std::move(name)), _freq_hz(freq_hz)
{
    if (freq_hz <= 0)
        dmx_fatal("DeviceUnit '%s': invalid clock", this->name().c_str());
}

void
DeviceUnit::submit(Cycles cycles, DoneCallback done)
{
    submitChecked(cycles, [done = std::move(done)](bool ok) {
        (void)ok;
        if (done)
            done();
    });
}

void
DeviceUnit::submitChecked(Cycles cycles, StatusCallback done)
{
    fault::KernelAction action = fault::KernelAction::None;
    if (_fault_hook)
        action = _fault_hook();

    const Tick duration = ClockDomain{_freq_hz}.cyclesToTicks(cycles);
    const Tick start = std::max(now(), _busy_until);
    const Tick finish = start + duration;
    _busy_until = finish;
    _busy_seconds += ticksToSeconds(duration);

    if (auto *tb = trace::active())
        tb->span(trace::Category::Device, "job", name(), start, finish,
                 cycles);

    if (action == fault::KernelAction::Hang) {
        // The engine wedged: it stays busy for the job's duration (its
        // eventual reset) but never raises completion. The caller's
        // watchdog detects the loss.
        ++_hung;
        if (auto *tb = trace::active())
            tb->count("accel.hung", now());
        return;
    }

    const bool ok = action == fault::KernelAction::None;
    eventq().schedule(finish, [this, ok, done = std::move(done)] {
        if (ok)
            ++_completed;
        else
            ++_failed;
        if (done)
            done(ok);
    });
}

} // namespace dmx::accel
