/**
 * @file
 * Domain-specific accelerator models.
 *
 * Each accelerator wraps a functional kernel with an FPGA latency model:
 * cycles = max(ops / throughput, bytes / memory-width) + fixed overhead,
 * at the 250 MHz clock of the paper's VU9P deployments (a 4x ASIC
 * scaling mirrors the paper's 250 MHz -> 1 GHz projection). Throughputs
 * are per-domain estimates of the Vitis HLS / RTL engines used in
 * Table I.
 */

#ifndef DMX_ACCEL_ACCELERATOR_HH
#define DMX_ACCEL_ACCELERATOR_HH

#include <functional>
#include <string>

#include "common/units.hh"
#include "fault/hooks.hh"
#include "kernels/opcount.hh"
#include "sim/sim_object.hh"

namespace dmx::accel
{

/** Accelerated domains from Table I. */
enum class Domain
{
    VideoCodec,      ///< hard-IP video decoder
    ObjectDetection, ///< CNN detector (RTL DNN engine)
    FFT,             ///< Vitis FFT
    SVM,             ///< Vitis SVM classifier
    Crypto,          ///< AES-GCM engine
    Regex,           ///< regular-expression engine
    Decompression,   ///< Gzip/LZ decompressor
    HashJoin,        ///< database hash join
    RL,              ///< proximal policy optimization network
    NER,             ///< transformer token classifier (Sec. VII-C)
};

/** @return human name, e.g. "fft". */
std::string toString(Domain d);

/** Latency-model parameters for one accelerator design. */
struct AcceleratorSpec
{
    Domain domain;
    double freq_hz = 250e6;         ///< FPGA clock
    double flops_per_cycle = 256;   ///< fp datapath width
    double intops_per_cycle = 256;  ///< integer/logic width
    double mem_bytes_per_cycle = 64;///< on-card DRAM interface
    Cycles fixed_overhead = 2000;   ///< kernel launch/drain
    double active_watts = 25.0;     ///< post-synthesis active power
    double idle_watts = 8.0;
};

/** @return the catalog spec for @p domain. */
AcceleratorSpec specFor(Domain d);

/**
 * Kernel execution cycles under the roofline latency model.
 *
 * @param spec accelerator design
 * @param ops  work performed by the kernel invocation
 */
Cycles kernelCycles(const AcceleratorSpec &spec,
                    const kernels::OpCount &ops);

/** Completion callback type. */
using DoneCallback = std::function<void()>;

/**
 * Status-carrying completion callback: @p ok is false when the kernel
 * completed with a device error (injected fault). Hung kernels never
 * invoke their callback; callers own the timeout.
 */
using StatusCallback = std::function<void(bool ok)>;

/**
 * One accelerator device instance: a FIFO-serving unit on the event
 * queue. Also used for DRX devices (they are served the same way).
 */
class DeviceUnit : public sim::SimObject
{
  public:
    /**
     * @param eq      event queue
     * @param name    instance name
     * @param freq_hz device clock for cycle->time conversion
     */
    DeviceUnit(sim::EventQueue &eq, std::string name, double freq_hz);

    /**
     * Enqueue work of @p cycles; @p done fires when it completes
     * (FIFO order after everything already queued).
     */
    void submit(Cycles cycles, DoneCallback done);

    /**
     * Like submit, but @p done learns whether the kernel succeeded.
     * Under an installed fault hook the kernel may fail (done(false) at
     * the normal completion time) or hang (done never fires; the device
     * stays charged busy until its modelled reset).
     */
    void submitChecked(Cycles cycles, StatusCallback done);

    /**
     * Install (or clear, with nullptr) the fault-injection hook
     * consulted by every subsequent submission.
     */
    void setFaultHook(fault::KernelHook hook) { _fault_hook = std::move(hook); }

    /** @return device-busy time integrated so far plus queued work. */
    Tick busyUntil() const { return _busy_until; }

    /** @return total busy seconds (for energy accounting). */
    double busySeconds() const { return _busy_seconds; }

    /** @return completed jobs. */
    std::uint64_t completedJobs() const { return _completed; }

    /** @return jobs that completed with an injected device error. */
    std::uint64_t failedJobs() const { return _failed; }

    /** @return jobs that hung (never signalled completion). */
    std::uint64_t hungJobs() const { return _hung; }

    double freqHz() const { return _freq_hz; }

  private:
    double _freq_hz;
    fault::KernelHook _fault_hook;
    Tick _busy_until = 0;
    double _busy_seconds = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _failed = 0;
    std::uint64_t _hung = 0;
};

} // namespace dmx::accel

#endif // DMX_ACCEL_ACCELERATOR_HH
