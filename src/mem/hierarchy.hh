/**
 * @file
 * A two-level cache hierarchy (split L1I/L1D, unified L2) matching the
 * Xeon-like host the paper characterizes in Section IV-A.
 *
 * The hierarchy is driven by the instruction and data address streams of
 * the restructuring kernels; the resulting MPKI values feed the top-down
 * CPU model (Figure 5).
 */

#ifndef DMX_MEM_HIERARCHY_HH
#define DMX_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace dmx::mem
{

/** Parameters of the modelled hierarchy. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 64, 8};
    CacheParams l1d{"l1d", 32 * 1024, 64, 8};
    // 1 MB L2, as called out in the paper ("does not fit in the 1MB L2").
    CacheParams l2{"l2", 1024 * 1024, 64, 16};
};

/** Aggregate MPKI report for a characterization run. */
struct MpkiReport
{
    double l1i = 0;
    double l1d = 0;
    double l2 = 0;
    std::uint64_t instructions = 0;
};

/** Split-L1, unified-L2 hierarchy with inclusive-ish fill behaviour. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /**
     * Fetch one instruction line.
     * @param pc instruction address
     */
    void fetch(Addr pc);

    /**
     * Perform a data access.
     * @param addr  data address
     * @param write true for stores
     */
    void data(Addr addr, bool write);

    /** Account @p n retired instructions (for MPKI denominators). */
    void retire(std::uint64_t n = 1) { _instructions += n; }

    /** @return MPKI for each level given retired instructions so far. */
    MpkiReport report() const;

    const Cache &l1i() const { return _l1i; }
    const Cache &l1d() const { return _l1d; }
    const Cache &l2() const { return _l2; }
    std::uint64_t instructions() const { return _instructions; }

    /** Invalidate all levels and zero counters. */
    void reset();

  private:
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    std::uint64_t _instructions = 0;
};

} // namespace dmx::mem

#endif // DMX_MEM_HIERARCHY_HH
