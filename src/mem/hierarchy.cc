#include "mem/hierarchy.hh"

namespace dmx::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : _l1i(params.l1i), _l1d(params.l1d), _l2(params.l2)
{
}

void
Hierarchy::fetch(Addr pc)
{
    if (_l1i.access(pc, false) == AccessResult::Miss)
        _l2.access(pc, false);
}

void
Hierarchy::data(Addr addr, bool write)
{
    if (_l1d.access(addr, write) == AccessResult::Miss)
        _l2.access(addr, write);
}

MpkiReport
Hierarchy::report() const
{
    MpkiReport rep;
    rep.instructions = _instructions;
    rep.l1i = _l1i.mpki(_instructions);
    rep.l1d = _l1d.mpki(_instructions);
    rep.l2 = _l2.mpki(_instructions);
    return rep;
}

void
Hierarchy::reset()
{
    _l1i.reset();
    _l1d.reset();
    _l2.reset();
    _instructions = 0;
}

} // namespace dmx::mem
