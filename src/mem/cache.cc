#include "mem/cache.hh"

#include "common/logging.hh"

namespace dmx::mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params) : _params(params)
{
    if (!isPow2(params.line_bytes))
        dmx_fatal("%s: line size must be a power of two", params.name.c_str());
    if (params.ways == 0)
        dmx_fatal("%s: need at least one way", params.name.c_str());
    const std::uint64_t lines = params.size_bytes / params.line_bytes;
    if (lines == 0 || lines % params.ways != 0)
        dmx_fatal("%s: size/line/ways do not divide evenly",
                  params.name.c_str());
    _num_sets = lines / params.ways;
    if (!isPow2(_num_sets))
        dmx_fatal("%s: set count must be a power of two", params.name.c_str());
    _lines.resize(lines);
}

AccessResult
Cache::access(Addr addr, bool write)
{
    const Addr line_addr = addr / _params.line_bytes;
    const std::uint64_t set = line_addr & (_num_sets - 1);
    // The full line address serves as the tag; keeping the set bits in
    // the tag is harmless and avoids a shift by log2(sets).
    const Addr tag = line_addr;
    Line *base = &_lines[set * _params.ways];
    ++_use_clock;

    Line *victim = base;
    for (std::uint32_t w = 0; w < _params.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.last_use = _use_clock;
            line.dirty |= write;
            ++_hits;
            return AccessResult::Hit;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.last_use < victim->last_use) {
            victim = &line;
        }
    }

    ++_misses;
    if (victim->valid && victim->dirty)
        ++_writebacks;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->last_use = _use_clock;
    return AccessResult::Miss;
}

void
Cache::reset()
{
    for (Line &line : _lines)
        line = Line{};
    _hits = _misses = _writebacks = _use_clock = 0;
}

} // namespace dmx::mem
