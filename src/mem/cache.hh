/**
 * @file
 * A set-associative cache model with true-LRU replacement.
 *
 * This is a functional hit/miss model (no timing of its own); it is used
 * by the CPU characterization path to reproduce the paper's Figure 5
 * (MPKI of the data-restructuring operations) from the kernels' real
 * address streams.
 */

#ifndef DMX_MEM_CACHE_HH
#define DMX_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dmx::mem
{

/** Physical (or virtual; the model does not care) byte address. */
using Addr = std::uint64_t;

/** Configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t ways = 8;
};

/** Outcome of a single cache lookup. */
enum class AccessResult { Hit, Miss };

/**
 * Set-associative, write-allocate, true-LRU cache.
 *
 * Writebacks are counted but not modelled as traffic consumers; the
 * characterization only needs hit/miss statistics.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr, allocating the line on a miss.
     *
     * @param addr  byte address
     * @param write true for stores (marks the line dirty)
     * @return Hit or Miss
     */
    AccessResult access(Addr addr, bool write);

    /** Invalidate all lines and zero the statistics. */
    void reset();

    const CacheParams &params() const { return _params; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t accesses() const { return _hits + _misses; }
    std::uint64_t writebacks() const { return _writebacks; }

    /** @return misses per kilo "instructions" given an instruction count. */
    double
    mpki(std::uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(_misses) /
               static_cast<double>(instructions);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t last_use = 0;
    };

    CacheParams _params;
    std::uint64_t _num_sets;
    std::vector<Line> _lines; // _num_sets * ways, row-major by set
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _writebacks = 0;
    std::uint64_t _use_clock = 0;
};

} // namespace dmx::mem

#endif // DMX_MEM_CACHE_HH
