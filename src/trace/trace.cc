#include "trace/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace dmx::trace
{

namespace
{

// Thread-local so that parallel scenario workers (src/exec/) each see
// only their own scenario's buffer: installing a session on one worker
// can never leak spans into another scenario running concurrently. In
// the single-threaded simulator this is indistinguishable from a
// process-wide pointer.
thread_local TraceBuffer *g_active = nullptr;

/** JSON string escaping for names (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Ticks (integer picoseconds) as Chrome's microsecond timestamps.
 * %.6f of an exact pico value is deterministic across platforms and
 * loses nothing: 1 ps = 1e-6 us is exactly the last printed digit.
 */
std::string
ticksAsUs(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06u",
                  t / tick_per_us,
                  static_cast<unsigned>(t % tick_per_us));
    return buf;
}

/** Counter values: plain counts in practice; print exact integers. */
std::string
numAsJson(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    return buf;
}

} // namespace

const char *
toString(Category c)
{
    switch (c) {
      case Category::Kernel:      return "kernel";
      case Category::Restructure: return "restructure";
      case Category::Movement:    return "movement";
      case Category::Driver:      return "driver";
      case Category::Command:     return "command";
      case Category::Retry:       return "retry";
      case Category::Degrade:     return "degrade";
      case Category::Device:      return "device";
      case Category::Flow:        return "flow";
      case Category::Drx:         return "drx";
      case Category::Robust:      return "robust";
      case Category::DrxCache:    return "drxcache";
      case Category::Integrity:   return "integrity";
      case Category::Serve:       return "serve";
      case Category::NumCategories: break;
    }
    return "?";
}

// ---------------------------------------------------------- TraceBuffer

std::uint32_t
TraceBuffer::intern(std::string_view s)
{
    const auto it = _ids.find(s);
    if (it != _ids.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(_strings.size());
    _strings.emplace_back(s);
    _ids.emplace(std::string(s), id);
    return id;
}

const std::string &
TraceBuffer::stringAt(std::uint32_t id) const
{
    if (id >= _strings.size())
        dmx_panic("TraceBuffer::stringAt: bad string id %u", id);
    return _strings[id];
}

void
TraceBuffer::span(Category cat, std::string_view name,
                  std::string_view track, Tick begin, Tick end,
                  std::uint64_t arg)
{
    if (end < begin)
        dmx_panic("TraceBuffer::span('%.*s'): negative duration "
                  "(begin %" PRIu64 " > end %" PRIu64 ")",
                  static_cast<int>(name.size()), name.data(), begin, end);
    Span s;
    s.begin = begin;
    s.end = end;
    s.cat = cat;
    s.name = intern(name);
    s.track = intern(track);
    s.arg = arg;
    _spans.push_back(s);
}

void
TraceBuffer::count(std::string_view name, Tick at, double delta)
{
    CounterSample c;
    c.at = at;
    c.name = intern(name);
    double &total = _counter_totals[c.name];
    total += delta;
    c.value = total;
    _counters.push_back(c);
}

void
TraceBuffer::append(const TraceBuffer &other)
{
    if (&other == this)
        dmx_panic("TraceBuffer::append: cannot append a buffer to itself");
    for (const Span &s : other._spans) {
        Span copy = s;
        copy.name = intern(other._strings[s.name]);
        copy.track = intern(other._strings[s.track]);
        _spans.push_back(copy);
    }
    // Each sample's value is cumulative within `other`; replay the
    // per-sample deltas through count() so totals continue on top of
    // whatever this buffer has already accumulated under that name.
    std::map<std::uint32_t, double> prev;
    for (const CounterSample &c : other._counters) {
        double &p = prev[c.name];
        const double delta = c.value - p;
        p = c.value;
        count(other._strings[c.name], c.at, delta);
    }
}

double
TraceBuffer::counterTotal(std::string_view name) const
{
    const auto it = _ids.find(name);
    if (it == _ids.end())
        return 0;
    const auto tot = _counter_totals.find(it->second);
    return tot == _counter_totals.end() ? 0 : tot->second;
}

std::array<CategoryTotal,
           static_cast<std::size_t>(Category::NumCategories)>
TraceBuffer::breakdown() const
{
    std::array<CategoryTotal,
               static_cast<std::size_t>(Category::NumCategories)>
        out{};
    for (const Span &s : _spans) {
        CategoryTotal &t = out[static_cast<std::size_t>(s.cat)];
        t.ticks += s.duration();
        ++t.spans;
    }
    return out;
}

Tick
TraceBuffer::categoryTicks(Category cat) const
{
    Tick total = 0;
    for (const Span &s : _spans) {
        if (s.cat == cat)
            total += s.duration();
    }
    return total;
}

Tick
TraceBuffer::maxEnd() const
{
    Tick m = 0;
    for (const Span &s : _spans)
        m = std::max(m, s.end);
    return m;
}

void
TraceBuffer::exportChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track (thread) metadata. Tracks are string-table ids; emit a
    // thread_name record for every id that any span uses as a track.
    std::map<std::uint32_t, bool> tracks;
    for (const Span &s : _spans)
        tracks.emplace(s.track, true);
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"dmx\"}}";
    for (const auto &[id, used] : tracks) {
        (void)used;
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << id << ",\"args\":{\"name\":\""
           << jsonEscape(_strings[id]) << "\"}}";
    }

    for (const Span &s : _spans) {
        sep();
        os << "{\"name\":\"" << jsonEscape(_strings[s.name])
           << "\",\"cat\":\"" << toString(s.cat)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.track
           << ",\"ts\":" << ticksAsUs(s.begin)
           << ",\"dur\":" << ticksAsUs(s.duration())
           << ",\"args\":{\"arg\":" << s.arg << "}}";
    }
    for (const CounterSample &c : _counters) {
        sep();
        os << "{\"name\":\"" << jsonEscape(_strings[c.name])
           << "\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
           << ticksAsUs(c.at) << ",\"args\":{\"value\":"
           << numAsJson(c.value) << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
TraceBuffer::writeSummary(std::ostream &os) const
{
    const auto bd = breakdown();
    os << "---------- Trace summary (" << _spans.size() << " spans, "
       << _counters.size() << " counter samples) ----------\n";
    char line[160];
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(Category::NumCategories); ++c) {
        if (bd[c].spans == 0)
            continue;
        std::snprintf(line, sizeof(line),
                      "%-14s %14" PRIu64 " ticks  %12.3f ms  %8" PRIu64
                      " spans\n",
                      toString(static_cast<Category>(c)), bd[c].ticks,
                      ticksToMs(bd[c].ticks), bd[c].spans);
        os << line;
    }
    for (const auto &[name, total] : _counter_totals) {
        std::snprintf(line, sizeof(line), "%-40s %16s\n",
                      _strings[name].c_str(), numAsJson(total).c_str());
        os << line;
    }
    os << "---------- End trace summary ----------\n";
}

void
TraceBuffer::clear()
{
    _strings.clear();
    _ids.clear();
    _spans.clear();
    _counters.clear();
    _counter_totals.clear();
}

// --------------------------------------------------- session management

TraceBuffer *
active()
{
    return g_active;
}

TraceSession::TraceSession(TraceBuffer &buffer) : _previous(g_active)
{
    g_active = &buffer;
}

TraceSession::~TraceSession()
{
    g_active = _previous;
}

} // namespace dmx::trace
