/**
 * @file
 * Simulated-time tracing and metrics.
 *
 * The simulator's whole argument rests on *where simulated time goes*
 * (CPU restructuring vs. DMA hops vs. kernel compute), so this layer
 * records first-class spans and counters rather than only end-of-run
 * aggregates. A TraceBuffer holds:
 *
 *  - *spans*: [begin, end] intervals of simulated time, each tagged
 *    with a Category (what kind of time this is), an interned name and
 *    a track (who spent it: an app pipeline, a device, a link);
 *  - *counters*: cumulative event counts sampled at a simulated time
 *    (retries, degradations, re-routed copies, dropped interrupts).
 *
 * Instrumentation sites across runtime / pcie / drx / accel / sys all
 * consult the *thread-local* active buffer (trace::active()); with no
 * session installed every site reduces to one null-pointer check, so
 * tracing is zero-overhead when disabled and can never perturb
 * simulated time (it only ever *observes* ticks). Thread-locality is
 * what lets exec::ScenarioRunner run scenarios in parallel with fully
 * isolated per-scenario traces: a session installed on one worker
 * thread is invisible to every other.
 *
 * Determinism contract: the simulator is single-threaded and
 * deterministic, so two equal-seed runs record byte-identical traces -
 * record order, interning order, tick values and the exported Chrome
 * trace_event JSON all match exactly. Tests assert this.
 *
 * Export targets:
 *  - exportChromeJson(): Chrome trace_event format ("ph":"X" complete
 *    events plus "C" counter series), loadable in chrome://tracing or
 *    https://ui.perfetto.dev (ts/dur are microseconds, exact to 1 ps);
 *  - writeSummary(): compact per-category time breakdown.
 */

#ifndef DMX_TRACE_TRACE_HH
#define DMX_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hh"

namespace dmx::trace
{

/**
 * What kind of simulated time a span accounts for. Categories are
 * designed not to double-count *within* a category: the three phase
 * categories (Kernel / Restructure / Movement) exactly tile each sys
 * request per app track, while device occupancy, fabric flows and DRX
 * pipeline phases live in their own categories.
 */
enum class Category : std::uint8_t
{
    Kernel,      ///< sys per-request kernel phase
    Restructure, ///< sys per-request restructuring phase
    Movement,    ///< sys per-request data-motion phase
    Driver,      ///< driver notifications (instants; zero duration)
    Command,     ///< runtime command first attempts (dispatch->settle)
    Retry,       ///< runtime retry attempts and backoff waits
    Degrade,     ///< CPU-fallback execution of degraded commands
    Device,      ///< accelerator/DRX unit occupancy
    Flow,        ///< PCIe fabric flows and per-hop spans
    Drx,         ///< DRX machine phases (fetch / execute / DMA)
    Robust,      ///< overload protection: backpressure, shed, breakers
    DrxCache,    ///< compiled-kernel cache hits/misses/evictions (opt-in)
    Integrity,   ///< data-integrity events: ECC, CRC replay, checksums
    Serve,       ///< serving layer: hedges, budget denials, brownout
    NumCategories,
};

/** @return human name, e.g. "restructure". */
const char *toString(Category c);

/** One closed interval of simulated time. */
struct Span
{
    Tick begin = 0;
    Tick end = 0;
    Category cat = Category::Kernel;
    std::uint32_t name = 0;  ///< string-table id
    std::uint32_t track = 0; ///< string-table id of the owning track
    std::uint64_t arg = 0;   ///< free-form payload (bytes, cycles, ...)

    Tick duration() const { return end - begin; }
};

/** One cumulative counter sample. */
struct CounterSample
{
    Tick at = 0;
    std::uint32_t name = 0; ///< string-table id
    double value = 0;       ///< cumulative value after this event
};

/** Per-category aggregate of recorded spans. */
struct CategoryTotal
{
    Tick ticks = 0;
    std::uint64_t spans = 0;
};

/**
 * The deterministic in-memory trace store.
 *
 * Not a SimObject: a buffer may outlive (and span) several simulations,
 * and instrumentation sites always pass explicit ticks from their own
 * clocks.
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    // ------------------------------------------------------- recording

    /** Intern @p s; equal strings always return equal ids. */
    std::uint32_t intern(std::string_view s);

    /** @return the interned string for @p id. */
    const std::string &stringAt(std::uint32_t id) const;

    /**
     * Record a completed span.
     *
     * @param cat   time category
     * @param name  span label (interned)
     * @param track owning track label (interned)
     * @param begin simulated start tick
     * @param end   simulated end tick; must be >= begin
     * @param arg   free-form payload (bytes, cycles, ...)
     */
    void span(Category cat, std::string_view name, std::string_view track,
              Tick begin, Tick end, std::uint64_t arg = 0);

    /** Record a zero-duration marker span at @p at. */
    void
    instant(Category cat, std::string_view name, std::string_view track,
            Tick at, std::uint64_t arg = 0)
    {
        span(cat, name, track, at, at, arg);
    }

    /**
     * Add @p delta to the named cumulative counter and sample it at
     * @p at.
     */
    void count(std::string_view name, Tick at, double delta = 1.0);

    /**
     * Append every record of @p other to this buffer, in @p other's
     * record order, after everything already recorded here. Strings
     * are re-interned; counter samples - whose values are cumulative
     * *within their own buffer* - are replayed as deltas, so a counter
     * both buffers recorded continues accumulating instead of
     * resetting. The sharded system engine uses this to stitch
     * per-domain traces back into the caller's buffer in domain order.
     */
    void append(const TraceBuffer &other);

    // ------------------------------------------------------ inspection

    const std::vector<Span> &spans() const { return _spans; }
    const std::vector<CounterSample> &counters() const { return _counters; }
    bool empty() const { return _spans.empty() && _counters.empty(); }

    /** @return current cumulative value of @p name (0 when unseen). */
    double counterTotal(std::string_view name) const;

    /** @return per-category span totals. */
    std::array<CategoryTotal,
               static_cast<std::size_t>(Category::NumCategories)>
    breakdown() const;

    /** @return total ticks recorded under @p cat. */
    Tick categoryTicks(Category cat) const;

    /** @return the latest span end tick (0 when empty). */
    Tick maxEnd() const;

    // --------------------------------------------------------- export

    /** Write the whole buffer as Chrome trace_event JSON. */
    void exportChromeJson(std::ostream &os) const;

    /** Write the compact per-category time-breakdown summary. */
    void writeSummary(std::ostream &os) const;

    /** Drop every record (interned strings are dropped too). */
    void clear();

  private:
    std::vector<std::string> _strings;
    std::map<std::string, std::uint32_t, std::less<>> _ids;
    std::vector<Span> _spans;
    std::vector<CounterSample> _counters;
    std::map<std::uint32_t, double> _counter_totals;
};

/**
 * @return the calling thread's installed buffer, or nullptr when
 *         tracing is disabled on this thread
 */
TraceBuffer *active();

/**
 * RAII installation of a TraceBuffer as the calling thread's active
 * trace sink. Sessions nest; destruction restores the previously
 * active buffer. The buffer must outlive the session, and the session
 * must be destroyed on the thread that created it.
 */
class TraceSession
{
  public:
    explicit TraceSession(TraceBuffer &buffer);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    TraceBuffer *_previous;
};

} // namespace dmx::trace

#endif // DMX_TRACE_TRACE_HH
