#include "robust/breaker.hh"

#include <utility>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::robust
{

const char *
toString(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(std::string label, const BreakerConfig &cfg)
    : _label(std::move(label)), _cfg(cfg),
      _health(cfg.failure_threshold ? cfg.failure_threshold : 3)
{
    if (_cfg.cooldown == 0)
        dmx_fatal("CircuitBreaker %s: cooldown must be > 0", _label.c_str());
    if (_cfg.half_open_probes == 0)
        _cfg.half_open_probes = 1;
}

void
CircuitBreaker::transition(BreakerState to, Tick now)
{
    if (to == _state)
        return;
    const bool was_quarantined = _state != BreakerState::Closed;
    const bool is_quarantined = to != BreakerState::Closed;
    if (!was_quarantined && is_quarantined) {
        _quarantine_since = now;
    } else if (was_quarantined && !is_quarantined) {
        _quarantine_ticks += now - _quarantine_since;
    }
    _state = to;
    if (auto *tb = trace::active()) {
        std::string name = std::string("breaker_") + toString(to);
        tb->instant(trace::Category::Robust, name, _label, now);
        tb->count(std::string("robust.breaker_") + toString(to), now);
    }
}

bool
CircuitBreaker::allow(Tick now)
{
    switch (_state) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        if (now >= _opened_at + _cfg.cooldown) {
            transition(BreakerState::HalfOpen, now);
            _probes_in_flight = 1;
            _probe_successes = 0;
            return true;
        }
        ++_fast_fails;
        return false;
      case BreakerState::HalfOpen:
        if (_probes_in_flight < _cfg.half_open_probes) {
            ++_probes_in_flight;
            return true;
        }
        ++_fast_fails;
        return false;
    }
    return true;
}

void
CircuitBreaker::recordSuccess(Tick now)
{
    _health.recordSuccess();
    if (_state == BreakerState::HalfOpen) {
        ++_probe_successes;
        if (_probe_successes >= _cfg.half_open_probes) {
            ++_closes;
            _health.reset();
            transition(BreakerState::Closed, now);
        }
    }
}

void
CircuitBreaker::recordFailure(Tick now)
{
    _health.recordFailure();
    if (_state == BreakerState::Closed) {
        if (!_health.healthy()) {
            ++_opens;
            _opened_at = now;
            transition(BreakerState::Open, now);
        }
    } else if (_state == BreakerState::HalfOpen) {
        // A failed probe re-arms the full cool-down.
        ++_opens;
        _opened_at = now;
        transition(BreakerState::Open, now);
    }
}

} // namespace dmx::robust
