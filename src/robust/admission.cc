#include "robust/admission.hh"

#include <algorithm>
#include <utility>

#include "trace/trace.hh"

namespace dmx::robust
{

const char *
toString(AdmissionPolicy p)
{
    switch (p) {
      case AdmissionPolicy::Unbounded: return "unbounded";
      case AdmissionPolicy::StaticCap: return "static-cap";
      case AdmissionPolicy::Adaptive:  return "adaptive";
    }
    return "?";
}

AdmissionController::AdmissionController(std::string label,
                                         AdmissionConfig cfg)
    : _label(std::move(label)), _cfg(cfg)
{
}

bool
AdmissionController::decide(Tick now, std::uint64_t depth, unsigned priority)
{
    switch (_cfg.policy) {
      case AdmissionPolicy::Unbounded:
        return true;
      case AdmissionPolicy::StaticCap: {
        // Each priority level below 0 halves the share of the cap;
        // everyone keeps at least one slot of headroom.
        const unsigned shift = std::min(priority, 63u);
        const std::uint64_t cap =
            std::max<std::uint64_t>(_cfg.queue_depth_cap >> shift, 1);
        return depth < cap;
      }
      case AdmissionPolicy::Adaptive: {
        if (!_above)
            return true;
        const Tick grace = priority == 0 ? 2 * _cfg.interval : _cfg.interval;
        return now - _first_above < grace;
      }
    }
    return true;
}

bool
AdmissionController::admit(Tick now, std::uint64_t depth, unsigned priority)
{
    const bool ok = decide(now, depth, priority);
    if (ok) {
        ++_admitted;
    } else {
        ++_shed;
        if (auto *tb = trace::active()) {
            tb->instant(trace::Category::Robust, "shed", _label, now, depth);
            tb->count("robust.shed", now);
        }
    }
    return ok;
}

void
AdmissionController::recordSojourn(Tick sojourn, Tick now)
{
    if (_cfg.policy != AdmissionPolicy::Adaptive)
        return;
    if (sojourn > _cfg.sojourn_target) {
        if (!_above) {
            _above = true;
            _first_above = now;
        }
    } else {
        _above = false;
    }
}

} // namespace dmx::robust
