/**
 * @file
 * Overload-protection and failure-containment configuration.
 *
 * The robust layer bounds how far the system is allowed to degrade
 * under sustained overload or repeated device faults. It provides four
 * cooperating mechanisms, all default-off so legacy behaviour (and
 * byte-identical output) is preserved until a caller opts in:
 *
 *  - credit-based backpressure (CreditGate): producers block in
 *    simulated time instead of overrunning a bounded DataQueue;
 *  - admission control (AdmissionController): requests past a depth or
 *    sojourn-time limit are shed up front instead of queueing forever;
 *  - per-device circuit breakers (CircuitBreaker): a flapping device is
 *    quarantined so fresh commands fast-fail to CPU degradation or shed
 *    instead of burning a full retry/backoff budget each;
 *  - deadline budgets (CommandPolicy::deadline / RobustConfig::deadline):
 *    retries and backoff draw down one end-to-end budget.
 *
 * Everything here is driven by explicit simulated ticks - no wall
 * clock, no global state - so runs stay bit-reproducible under
 * exec::ScenarioRunner at any --jobs level.
 */

#ifndef DMX_ROBUST_ROBUST_HH
#define DMX_ROBUST_ROBUST_HH

#include <cstdint>

#include "common/units.hh"

namespace dmx::robust
{

/** Admission policy in front of a request stream or command queue. */
enum class AdmissionPolicy : std::uint8_t
{
    Unbounded, ///< legacy: admit everything (default)
    StaticCap, ///< admit while outstanding depth < queue_depth_cap
    Adaptive,  ///< CoDel-style: shed while sojourn time stays above
               ///< sojourn_target for longer than interval
};

/** @return human name, e.g. "static-cap". */
const char *toString(AdmissionPolicy p);

/** Credit-based producer backpressure on bounded data queues. */
struct BackpressureConfig
{
    bool enabled = false;

    /**
     * Credit window in bytes; 0 means "the queue's capacity". A gate
     * never hands out more credits than the protected queue can hold,
     * so an admitted push can never overflow.
     */
    std::uint64_t credit_window = 0;
};

/** Admission-control knobs; interpretation depends on the policy. */
struct AdmissionConfig
{
    AdmissionPolicy policy = AdmissionPolicy::Unbounded;

    /** StaticCap: max outstanding requests at priority 0. */
    std::uint64_t queue_depth_cap = 8;

    /** Adaptive: acceptable sojourn (queueing + service) time. */
    Tick sojourn_target = 2 * tick_per_ms;

    /**
     * Adaptive: how long sojourn may stay above target before the
     * controller starts shedding (priority 0 tolerates 2x this).
     */
    Tick interval = 20 * tick_per_ms;

    /**
     * Closed-loop streams re-issue a shed request after this delay so
     * a shed can never re-arrive at the same tick it was rejected.
     */
    Tick shed_retry = tick_per_ms;
};

/** Per-device circuit breaker (Closed -> Open -> HalfOpen). */
struct BreakerConfig
{
    bool enabled = false;

    /**
     * Consecutive failures that trip Closed -> Open. 0 means "use the
     * device HealthTracker threshold already configured by the fault
     * plan".
     */
    unsigned failure_threshold = 0;

    /** Ticks an Open breaker rejects traffic before probing. */
    Tick cooldown = 10 * tick_per_ms;

    /** Probe commands admitted (and successes required) in HalfOpen. */
    unsigned half_open_probes = 1;
};

/** The whole overload-protection feature set; all default-off. */
struct RobustConfig
{
    BackpressureConfig backpressure;
    AdmissionConfig admission;
    BreakerConfig breaker;

    /**
     * End-to-end per-request deadline in ticks (0 = unbounded). The
     * runtime copies it into CommandPolicy::deadline; the sys layer
     * counts a request that settles past it as a deadline miss.
     */
    Tick deadline = 0;

    /** @return true when any protection feature is switched on. */
    bool
    anyEnabled() const
    {
        return backpressure.enabled || breaker.enabled || deadline != 0 ||
               admission.policy != AdmissionPolicy::Unbounded;
    }
};

} // namespace dmx::robust

#endif // DMX_ROBUST_ROBUST_HH
