/**
 * @file
 * Credit-based producer backpressure for bounded data queues.
 *
 * A CreditGate models the credit/flow-control loop real chaining
 * fabrics run over PCIe: a producer must acquire byte credits before
 * pushing into the peer's RX queue, and blocked producers wait - in
 * simulated time - until the consumer returns credits, instead of
 * overrunning the ring. Grants are strictly FIFO so the wait order is
 * deterministic, and every stall is recorded as a `backpressure` trace
 * span plus stall-tick statistics.
 */

#ifndef DMX_ROBUST_CREDIT_HH
#define DMX_ROBUST_CREDIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/units.hh"

namespace dmx::robust
{

/** Continuation invoked when credits are granted; @p at is the grant tick. */
using GrantFn = std::function<void(Tick at)>;

/**
 * Byte-credit window guarding one bounded queue. Not a SimObject: the
 * gate never schedules anything itself; blocked producers simply run
 * their continuation later, from the consumer's release() call.
 */
class CreditGate
{
  public:
    /**
     * @param label  queue label used in traces/diagnostics
     * @param window credit window in bytes (must be > 0)
     */
    CreditGate(std::string label, std::uint64_t window);

    /**
     * Acquire @p bytes of credit. If the window has room and nobody is
     * already waiting, @p grant runs immediately (at @p now). Otherwise
     * the producer blocks in simulated time: the continuation is queued
     * FIFO and runs from a later release(). A request larger than the
     * whole window can never be satisfied and is fatal.
     */
    void acquire(std::uint64_t bytes, Tick now, GrantFn grant);

    /** Return @p bytes of credit and unblock waiting producers FIFO. */
    void release(std::uint64_t bytes, Tick now);

    /** @return true if @p bytes could be granted right now. */
    bool
    wouldGrant(std::uint64_t bytes) const
    {
        return _waiters.empty() && _used + bytes <= _window;
    }

    const std::string &label() const { return _label; }
    std::uint64_t window() const { return _window; }

    /** @return credits currently held by producers. */
    std::uint64_t used() const { return _used; }

    /** @return max credits ever held at once. */
    std::uint64_t highWater() const { return _high_water; }

    /** @return producers currently blocked. */
    std::size_t waiting() const { return _waiters.size(); }

    /** @return acquisitions that had to block. */
    std::uint64_t stalls() const { return _stalls; }

    /** @return total simulated ticks producers spent blocked. */
    Tick stallTicks() const { return _stall_ticks; }

  private:
    struct Waiter
    {
        std::uint64_t bytes;
        Tick since;
        GrantFn grant;
    };

    void grantNow(std::uint64_t bytes, Tick now);

    std::string _label;
    std::uint64_t _window;
    std::uint64_t _used = 0;
    std::uint64_t _high_water = 0;
    std::uint64_t _stalls = 0;
    Tick _stall_ticks = 0;
    std::deque<Waiter> _waiters;
};

} // namespace dmx::robust

#endif // DMX_ROBUST_CREDIT_HH
