/**
 * @file
 * Admission control and load shedding for request streams.
 *
 * An AdmissionController sits in front of a command queue or a
 * multi-tenant request stream and decides, per request, whether to
 * admit or shed. Three policies:
 *
 *  - Unbounded: legacy behaviour, everything is admitted;
 *  - StaticCap: admit while outstanding depth < cap, with the cap
 *    halved per priority level so high-priority tenants (priority 0)
 *    keep their full share when low-priority tenants are squeezed;
 *  - Adaptive: CoDel-style - track the sojourn time (admission to
 *    completion) of finished requests; once sojourn has stayed above
 *    the target continuously for longer than the interval, shed until
 *    a below-target sample is observed. Priority 0 tolerates 2x the
 *    interval before shedding begins.
 *
 * Shed requests settle as Status::Shed, a terminal state callers
 * observe exactly like TimedOut. Decisions depend only on simulated
 * ticks and prior samples, never on wall clock, so they are
 * byte-reproducible.
 */

#ifndef DMX_ROBUST_ADMISSION_HH
#define DMX_ROBUST_ADMISSION_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "robust/robust.hh"

namespace dmx::robust
{

/** One admission decision point (per device or per system). */
class AdmissionController
{
  public:
    /**
     * @param label decision-point label used in traces/diagnostics
     * @param cfg   policy and thresholds
     */
    explicit AdmissionController(std::string label, AdmissionConfig cfg = {});

    /**
     * Decide whether to admit a request arriving at @p now.
     *
     * @param now      arrival tick
     * @param depth    requests currently outstanding behind this gate
     * @param priority tenant priority; 0 is highest
     * @return true to admit, false to shed
     */
    bool admit(Tick now, std::uint64_t depth, unsigned priority = 0);

    /**
     * Feed back the sojourn time of a finished request (Adaptive policy
     * state; harmless no-op for the others).
     */
    void recordSojourn(Tick sojourn, Tick now);

    const std::string &label() const { return _label; }
    const AdmissionConfig &config() const { return _cfg; }
    std::uint64_t admitted() const { return _admitted; }
    std::uint64_t shed() const { return _shed; }

    /** @return true while the Adaptive policy is in its shedding state. */
    bool overloaded() const { return _above; }

  private:
    bool decide(Tick now, std::uint64_t depth, unsigned priority);

    std::string _label;
    AdmissionConfig _cfg;
    std::uint64_t _admitted = 0;
    std::uint64_t _shed = 0;

    // Adaptive (CoDel-style) state.
    bool _above = false;       ///< sojourn currently above target
    Tick _first_above = 0;     ///< when the above-target episode began
};

} // namespace dmx::robust

#endif // DMX_ROBUST_ADMISSION_HH
