/**
 * @file
 * Per-device circuit breaker (Closed -> Open -> HalfOpen).
 *
 * A breaker layers a quarantine policy on top of fault::HealthTracker:
 * the tracker decides *when* a device is sick (consecutive-failure
 * streak), the breaker decides *what to do about it* - reject traffic
 * up front for a deterministic tick-based cool-down, then let a bounded
 * number of probe commands through (HalfOpen) and close again only
 * when they succeed. This turns "every command burns its full
 * retry/backoff budget against a dead device" into "commands fast-fail
 * immediately while the device is quarantined".
 *
 * All transitions are driven by explicit simulated ticks and are traced
 * (Category::Robust instants) and counted, so breaker behaviour is
 * byte-reproducible under exec::ScenarioRunner.
 */

#ifndef DMX_ROBUST_BREAKER_HH
#define DMX_ROBUST_BREAKER_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "fault/health.hh"
#include "robust/robust.hh"

namespace dmx::robust
{

/** Breaker states, classic three-state machine. */
enum class BreakerState : std::uint8_t
{
    Closed,   ///< traffic flows; failures are being counted
    Open,     ///< quarantined; everything fast-fails until cooldown
    HalfOpen, ///< probing: a few commands allowed to test recovery
};

/** @return human name, e.g. "half-open". */
const char *toString(BreakerState s);

/** Deterministic per-device circuit breaker. */
class CircuitBreaker
{
  public:
    /**
     * @param label device label used in traces/diagnostics
     * @param cfg   thresholds and cool-down (cfg.enabled is ignored
     *              here; an instantiated breaker is an enabled breaker)
     */
    CircuitBreaker(std::string label, const BreakerConfig &cfg);

    /**
     * Gate a command about to dispatch at @p now. Returns true when the
     * command may proceed. An Open breaker whose cool-down has elapsed
     * transitions to HalfOpen and admits the probe; otherwise rejection
     * is counted as a fast-fail.
     */
    bool allow(Tick now);

    /** Record a command success observed at @p now. */
    void recordSuccess(Tick now);

    /** Record a command failure (or timeout) observed at @p now. */
    void recordFailure(Tick now);

    BreakerState state() const { return _state; }
    const std::string &label() const { return _label; }
    const fault::HealthTracker &health() const { return _health; }

    /** @return Closed->Open (and HalfOpen->Open) transitions. */
    std::uint64_t opens() const { return _opens; }

    /** @return HalfOpen->Closed recoveries. */
    std::uint64_t closes() const { return _closes; }

    /** @return commands rejected by allow(). */
    std::uint64_t fastFails() const { return _fast_fails; }

    /** @return total ticks spent Open or HalfOpen up to @p now. */
    Tick
    quarantineTicks(Tick now) const
    {
        Tick t = _quarantine_ticks;
        if (_state != BreakerState::Closed)
            t += now - _quarantine_since;
        return t;
    }

  private:
    void transition(BreakerState to, Tick now);

    std::string _label;
    BreakerConfig _cfg;
    fault::HealthTracker _health;
    BreakerState _state = BreakerState::Closed;
    Tick _opened_at = 0;
    Tick _quarantine_since = 0;
    Tick _quarantine_ticks = 0;
    unsigned _probes_in_flight = 0;
    unsigned _probe_successes = 0;
    std::uint64_t _opens = 0;
    std::uint64_t _closes = 0;
    std::uint64_t _fast_fails = 0;
};

} // namespace dmx::robust

#endif // DMX_ROBUST_BREAKER_HH
