#include "robust/credit.hh"

#include <utility>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::robust
{

CreditGate::CreditGate(std::string label, std::uint64_t window)
    : _label(std::move(label)), _window(window)
{
    if (_window == 0)
        dmx_fatal("CreditGate %s: window must be > 0", _label.c_str());
}

void
CreditGate::grantNow(std::uint64_t bytes, Tick now)
{
    _used += bytes;
    if (_used > _high_water)
        _high_water = _used;
    if (_used > _window)
        dmx_panic("CreditGate %s: granted %llu past window %llu",
                  _label.c_str(), (unsigned long long)_used,
                  (unsigned long long)_window);
    (void)now;
}

void
CreditGate::acquire(std::uint64_t bytes, Tick now, GrantFn grant)
{
    if (bytes == 0)
        dmx_fatal("CreditGate %s: zero-byte acquire", _label.c_str());
    if (bytes > _window)
        dmx_fatal("CreditGate %s: acquire of %llu exceeds window %llu",
                  _label.c_str(), (unsigned long long)bytes,
                  (unsigned long long)_window);

    // FIFO fairness: once anyone waits, everyone waits behind them.
    if (_waiters.empty() && _used + bytes <= _window) {
        grantNow(bytes, now);
        grant(now);
        return;
    }

    ++_stalls;
    if (auto *tb = trace::active())
        tb->count("robust.backpressure_stalls", now);
    _waiters.push_back({bytes, now, std::move(grant)});
}

void
CreditGate::release(std::uint64_t bytes, Tick now)
{
    if (bytes > _used)
        dmx_panic("CreditGate %s: release of %llu exceeds held %llu",
                  _label.c_str(), (unsigned long long)bytes,
                  (unsigned long long)_used);
    _used -= bytes;

    while (!_waiters.empty() && _used + _waiters.front().bytes <= _window) {
        Waiter w = std::move(_waiters.front());
        _waiters.pop_front();
        _stall_ticks += now - w.since;
        if (auto *tb = trace::active())
            tb->span(trace::Category::Robust, "backpressure", _label,
                     w.since, now, w.bytes);
        grantNow(w.bytes, now);
        w.grant(now);
    }
}

} // namespace dmx::robust
