#include "drx/isa.hh"

#include "common/logging.hh"

namespace dmx::drx
{

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::CfgLoop:   return "cfg.loop";
      case Opcode::CfgStream: return "cfg.stream";
      case Opcode::Load:      return "ld.tile";
      case Opcode::Store:     return "st.tile";
      case Opcode::Gather:    return "ld.gather";
      case Opcode::Compute:   return "v";
      case Opcode::Sync:      return "sync";
      case Opcode::Halt:      return "halt";
    }
    return "?";
}

std::string
toString(VFunc fn)
{
    switch (fn) {
      case VFunc::Add:    return "add";
      case VFunc::Sub:    return "sub";
      case VFunc::Mul:    return "mul";
      case VFunc::Max:    return "max";
      case VFunc::Min:    return "min";
      case VFunc::Mac:    return "mac";
      case VFunc::AddS:   return "adds";
      case VFunc::MulS:   return "muls";
      case VFunc::MaxS:   return "maxs";
      case VFunc::MinS:   return "mins";
      case VFunc::Abs:    return "abs";
      case VFunc::Sqrt:   return "sqrt";
      case VFunc::Log1p:  return "log1p";
      case VFunc::Exp:    return "exp";
      case VFunc::RedSum: return "redsum";
      case VFunc::Fill:   return "fill";
      case VFunc::Copy:   return "copy";
      case VFunc::TransB: return "transb";
      case VFunc::DeintEven: return "deint.e";
      case VFunc::DeintOdd:  return "deint.o";
      case VFunc::Reset:  return "reset";
      case VFunc::Append: return "append";
      case VFunc::SegSum: return "segsum";
    }
    return "?";
}

std::string
Instruction::disassemble() const
{
    switch (op) {
      case Opcode::CfgLoop:
        return strprintf("cfg.loop   d%u, iters=%u", dim, iters);
      case Opcode::CfgStream:
        return strprintf("cfg.stream s%u, base=0x%llx, %s, "
                         "stride=[%lld,%lld,%lld], tile=%u",
                         stream, static_cast<unsigned long long>(base),
                         dtypeName(dtype).c_str(),
                         static_cast<long long>(stride[0]),
                         static_cast<long long>(stride[1]),
                         static_cast<long long>(stride[2]), tile);
      case Opcode::Load:
        return strprintf("ld.tile    r%u <- s%u, depth=%u", reg, stream,
                         depth);
      case Opcode::Store:
        return strprintf("st.tile    s%u <- r%u, depth=%u", stream, reg,
                         depth);
      case Opcode::Gather:
        return strprintf("ld.gather  r%u <- s%u[r%u]", dst, stream,
                         src_b);
      case Opcode::Compute:
        return strprintf("v.%-8s r%u, r%u, r%u, imm=%g, n=%u",
                         drx::toString(fn).c_str(), dst, src_a, src_b,
                         static_cast<double>(imm), count);
      case Opcode::Sync:
        return "sync";
      case Opcode::Halt:
        return "halt";
    }
    return "?";
}

} // namespace dmx::drx
