/**
 * @file
 * The DRX compiler (paper Sec. IV-B, "DRX compiler").
 *
 * Takes a high-level restructuring kernel (restructure::Kernel) plus the
 * DRX hardware configuration, and emits one DRX program per pipeline
 * stage. The compiler performs the optimizations the paper describes:
 *  - tiling against the scratchpad size and RE lane count,
 *  - loop-invariant hoisting via instruction depth placement,
 *  - banded lowering of sparse filter-bank MatVec stages (detected from
 *    the weights themselves),
 *  - fusion of the Transpose+Reduce idiom used by reduction collectives,
 *  - constant placement (filter banks, gather index tables) in device
 *    DRAM.
 */

#ifndef DMX_DRX_COMPILER_HH
#define DMX_DRX_COMPILER_HH

#include <cstdint>
#include <vector>

#include "drx/machine.hh"
#include "drx/program.hh"
#include "restructure/ir.hh"

namespace dmx::drx
{

/** A kernel lowered to DRX programs with its device buffer plan. */
struct CompiledKernel
{
    std::vector<Program> programs;     ///< one per stage (or fused)
    std::uint64_t input_addr = 0;      ///< device address of the input
    std::uint64_t output_addr = 0;     ///< device address of the output
    restructure::BufferDesc in_desc;   ///< input layout
    restructure::BufferDesc out_desc;  ///< output layout
};

/**
 * Compile @p kernel against @p machine's configuration, allocating the
 * input, intermediate, output and constant buffers in its DRAM and
 * writing the constants.
 *
 * @param kernel  restructuring pipeline
 * @param machine target DRX (provides config and owns the buffers)
 * @return the lowered programs plus the buffer plan
 */
CompiledKernel compileKernel(const restructure::Kernel &kernel,
                             DrxMachine &machine);

/**
 * Convenience: compile, upload @p input, execute every stage and read
 * back the output.
 *
 * @param kernel     restructuring pipeline
 * @param input      input bytes matching kernel.input
 * @param machine    target DRX
 * @param out        when non-null, receives the output bytes
 * @param trace_base simulated tick anchoring the stages' trace spans
 * @return accumulated timing over all stages
 */
RunResult runKernelOnDrx(const restructure::Kernel &kernel,
                         const restructure::Bytes &input,
                         DrxMachine &machine,
                         restructure::Bytes *out = nullptr,
                         Tick trace_base = 0);

} // namespace dmx::drx

#endif // DMX_DRX_COMPILER_HH
