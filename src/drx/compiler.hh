/**
 * @file
 * The DRX compiler (paper Sec. IV-B, "DRX compiler").
 *
 * Takes a high-level restructuring kernel (restructure::Kernel) plus the
 * DRX hardware configuration, and emits one DRX program per pipeline
 * stage. The compiler performs the optimizations the paper describes:
 *  - tiling against the scratchpad size and RE lane count,
 *  - loop-invariant hoisting via instruction depth placement,
 *  - banded lowering of sparse filter-bank MatVec stages (detected from
 *    the weights themselves),
 *  - fusion of the Transpose+Reduce idiom used by reduction collectives,
 *  - constant placement (filter banks, gather index tables) in device
 *    DRAM.
 */

#ifndef DMX_DRX_COMPILER_HH
#define DMX_DRX_COMPILER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "drx/machine.hh"
#include "drx/program.hh"
#include "restructure/ir.hh"

namespace dmx::drx
{

/** One compiler-placed constant region (index table, filter bank). */
struct ConstSegment
{
    std::uint64_t addr = 0;           ///< plan-relative device address
    std::vector<std::uint8_t> bytes;  ///< serialized contents
};

/**
 * A kernel lowered to DRX programs with its device buffer plan.
 *
 * The plan is machine-independent: every address is relative to a
 * fresh 64-byte-aligned bump allocator starting at 0, and the
 * constants are carried as serialized segments instead of being
 * written into a particular machine's DRAM. installPlan() materializes
 * a plan on a machine (and rebases it when the machine's allocator is
 * not at 0), which is what makes compiled kernels shareable through
 * drx::ProgramCache.
 */
struct CompiledKernel
{
    std::vector<Program> programs;     ///< one per stage (or fused)
    std::uint64_t input_addr = 0;      ///< device address of the input
    std::uint64_t output_addr = 0;     ///< device address of the output
    restructure::BufferDesc in_desc;   ///< input layout
    restructure::BufferDesc out_desc;  ///< output layout
    std::vector<ConstSegment> consts;  ///< compiler-placed constants
    std::uint64_t dram_bytes = 0;      ///< total device-DRAM footprint
    /// Every program passed the shape-determinism classifier: the
    /// run's trip counts, vector lengths and DMA byte counts depend
    /// only on the input shape, never on the input bytes, so timing
    /// can be memoized (see shapeDeterministic()).
    bool shape_deterministic = false;
};

/**
 * Lower @p kernel for a DRX with configuration @p cfg without touching
 * any machine: a pure function of (kernel structure, config) whose
 * result can be cached and installed on any machine of that config.
 *
 * @throws via fatal when a buffer or constant exceeds cfg.dram_bytes
 */
CompiledKernel planKernel(const restructure::Kernel &kernel,
                          const DrxConfig &cfg);

/**
 * Materialize @p plan on @p machine: reserve its DRAM footprint and
 * write the constant segments. When the machine's allocator is at 0
 * (the common case: fresh machine or after resetAlloc) the plan is
 * installed in place and returned unchanged; otherwise a rebased copy
 * is returned whose stream bases and buffer addresses are shifted to
 * the reserved region.
 */
std::shared_ptr<const CompiledKernel>
installPlan(std::shared_ptr<const CompiledKernel> plan,
            DrxMachine &machine);

/**
 * Static shape-determinism classifier. A program is shape-
 * deterministic when its dynamic behaviour (loop trip counts, vector
 * lengths, DMA addresses and byte counts) is a function of the stream
 * configuration alone. Index gathers are conservatively rejected: the
 * Gather opcode reads index *values* out of DRAM, so its addresses and
 * burst coalescing depend on data bytes.
 */
bool shapeDeterministic(const Program &program);

/**
 * Compile @p kernel against @p machine's configuration, allocating the
 * input, intermediate, output and constant buffers in its DRAM and
 * writing the constants. Equivalent to planKernel + installPlan.
 *
 * @param kernel  restructuring pipeline
 * @param machine target DRX (provides config and owns the buffers)
 * @return the lowered programs plus the buffer plan
 */
CompiledKernel compileKernel(const restructure::Kernel &kernel,
                             DrxMachine &machine);

/**
 * Execute an installed @p plan on @p machine: upload @p input, run
 * every stage and optionally read back the output. The plan must have
 * been installed on (or compiled against) @p machine.
 *
 * @param name       kernel name for diagnostics
 * @param plan       installed compiled kernel
 * @param input      input bytes matching plan.in_desc
 * @param machine    target DRX
 * @param out        when non-null, receives the output bytes
 * @param trace_base simulated tick anchoring the stages' trace spans
 * @return accumulated timing over all stages
 */
RunResult runPlanOnDrx(const std::string &name, const CompiledKernel &plan,
                       const restructure::Bytes &input, DrxMachine &machine,
                       restructure::Bytes *out = nullptr,
                       Tick trace_base = 0);

/**
 * Convenience: compile, upload @p input, execute every stage and read
 * back the output.
 *
 * @param kernel     restructuring pipeline
 * @param input      input bytes matching kernel.input
 * @param machine    target DRX
 * @param out        when non-null, receives the output bytes
 * @param trace_base simulated tick anchoring the stages' trace spans
 * @return accumulated timing over all stages
 */
RunResult runKernelOnDrx(const restructure::Kernel &kernel,
                         const restructure::Bytes &input,
                         DrxMachine &machine,
                         restructure::Bytes *out = nullptr,
                         Tick trace_base = 0);

} // namespace dmx::drx

#endif // DMX_DRX_COMPILER_HH
