/**
 * @file
 * DRX hot-path acceleration: the compiled-kernel cache and the timing
 * memoization layer (see DESIGN.md Sec. 7e).
 *
 * Compiling a restructure::Kernel is a pure function of the kernel's
 * structure and the DRX hardware configuration, so repeat workloads --
 * the closed-loop system sims, the retry loop in the runtime's command
 * queue, every bench harness under --repeat -- can share one lowered
 * plan instead of re-running the compiler. Three tiers:
 *
 *  1. ProgramCache memoizes planKernel() output keyed by a structural
 *     hash of (kernel, DrxConfig), with an LRU bound and hit/miss/
 *     eviction counters.
 *  2. For shape-deterministic plans (no data-dependent Gather opcode,
 *     see drx::shapeDeterministic) the per-stage RunResults of one
 *     fault-free execution are memoized too; timing-only callers then
 *     replay the recorded results through DrxMachine::replayRun without
 *     re-interpreting the programs. Outputs and simulated timing are
 *     bit-identical to the uncached path by construction: replay is
 *     only used when no output is requested, and the memo is only
 *     recorded from a real run of the very same installed plan.
 *  3. The interpreter itself keeps per-machine scratch arenas (see
 *     DrxMachine) so the remaining cold runs do not allocate per op.
 *
 * Determinism: the default cache is thread-local (ProgramCache::
 * process()), so parallel scenario workers never share mutable state
 * and per-worker hit sequences are reproducible. Process-wide counter
 * totals (globalCounters()) are plain atomics whose final values are
 * schedule-independent.
 *
 * Kill switch: DrxCacheConfig::enabled, or the DMX_NO_DRX_CACHE
 * environment variable (any non-empty value) which flips the default
 * configuration off for the whole process.
 */

#ifndef DMX_DRX_CACHE_HH
#define DMX_DRX_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "restructure/ir.hh"

namespace dmx::drx
{

/** Configuration of one ProgramCache instance. */
struct DrxCacheConfig
{
    bool enabled = true;      ///< master switch (miss-only when false)
    bool timing_memo = true;  ///< tier-2 RunResult memoization
    std::size_t capacity = 64; ///< max cached plans (LRU beyond this)
    /// Emit DrxCache trace instants on hit/miss/evict. Off by default
    /// so golden traces recorded before the cache existed stay
    /// byte-identical.
    bool trace_events = false;
};

/**
 * @return the process-default cache configuration: enabled unless the
 * DMX_NO_DRX_CACHE environment variable is set to a non-empty value.
 * The environment is read once, at first use.
 */
DrxCacheConfig defaultCacheConfig();

/** Hit/miss/eviction totals (plain values; see also globalCounters). */
struct CacheCounters
{
    std::uint64_t compile_hits = 0;
    std::uint64_t compile_misses = 0;
    std::uint64_t timing_hits = 0;    ///< lookups that found a memo
    std::uint64_t timing_misses = 0;  ///< lookups on entries without one
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = compile_hits + compile_misses;
        return total ? static_cast<double>(compile_hits) / total : 0.0;
    }
};

/**
 * Structural hash of (kernel, config): covers the input descriptor,
 * every stage field including weight and index table contents, and
 * every DrxConfig field -- everything planKernel() can observe. The
 * kernel name is deliberately excluded (it only labels diagnostics and
 * trace spans carried by the Program, which the stored kernel copy
 * disambiguates).
 */
std::uint64_t kernelStructuralHash(const restructure::Kernel &kernel,
                                   const DrxConfig &cfg);

/** Field-by-field equality on everything kernelStructuralHash covers. */
bool kernelStructurallyEqual(const restructure::Kernel &a,
                             const restructure::Kernel &b);

/**
 * Structural hash of a fused kernel chain: a tagged fold of each
 * part's kernelStructuralHash, so a chain entry can never collide
 * "by type" with a plain single-kernel entry of the same content.
 */
std::uint64_t fusedChainHash(const std::vector<restructure::Kernel> &parts,
                             const DrxConfig &cfg);

/** Field-by-field equality of two hardware configurations. */
bool drxConfigEqual(const DrxConfig &a, const DrxConfig &b);

/**
 * Bounded LRU cache of compiled kernels and their timing memos.
 *
 * Not thread-safe by design: use process() for a per-thread instance,
 * or own one per single-threaded domain (runtime::Platform does).
 */
class ProgramCache
{
  public:
    explicit ProgramCache(DrxCacheConfig cfg = defaultCacheConfig());

    const DrxCacheConfig &config() const { return _cfg; }
    void setConfig(const DrxCacheConfig &cfg);

    /** One lookup's outcome. */
    struct LookupResult
    {
        std::shared_ptr<const CompiledKernel> compiled; ///< base-0 plan
        /// Per-stage timing memo, or null when none is recorded (first
        /// run, non-shape-deterministic kernel, or timing_memo off).
        std::shared_ptr<const std::vector<RunResult>> timing;
        std::uint64_t key = 0;
        bool hit = false; ///< compile-cache hit (plan was already there)
    };

    /**
     * Look up (and on a miss, plan and insert) @p kernel for hardware
     * @p cfg. Always returns a valid base-0 plan. @p tick anchors the
     * optional trace instants in simulated time.
     */
    LookupResult lookup(const restructure::Kernel &kernel,
                        const DrxConfig &cfg, Tick tick = 0);

    /**
     * Look up (and on a miss, build via @p plan and insert) the fused
     * plan for the kernel chain @p parts on hardware @p cfg. The entry
     * is keyed by fusedChainHash and verified part-by-part, and shares
     * the LRU/counter machinery with plain entries. @p plan is only
     * invoked on a miss; it must return the fused base-0 plan (the
     * caller has already proven the chain legal -- see
     * drx::planFusedChain, the only intended caller).
     */
    LookupResult lookupFused(const std::vector<restructure::Kernel> &parts,
                             const DrxConfig &cfg, Tick tick,
                             const std::function<CompiledKernel()> &plan);

    /**
     * Attach a timing memo to the entry for @p key. Ignored when the
     * entry has been evicted in the meantime or already has a memo
     * (first recording wins; both runs measured the same plan).
     */
    void storeTiming(std::uint64_t key,
                     std::shared_ptr<const std::vector<RunResult>> memo);

    const CacheCounters &counters() const { return _counters; }
    std::size_t size() const { return _entries.size(); }

    /** Drop every entry (counters are preserved). */
    void clear();

    /** Dump this cache's stats. */
    stats::StatGroup &statGroup() { return _stats; }

    /**
     * The calling thread's default cache. Thread-local so parallel
     * scenario workers (src/exec/) stay independent and deterministic;
     * configured from defaultCacheConfig() on first use per thread.
     */
    static ProgramCache &process();

    /**
     * Process-wide counter totals aggregated across every ProgramCache
     * instance on every thread. Atomic sums: their final values do not
     * depend on worker interleaving.
     */
    static CacheCounters globalCounters();

    /** Reset the process-wide totals (tests and bench arms). */
    static void resetGlobalCounters();

  private:
    struct Entry
    {
        restructure::Kernel kernel; ///< for collision verification
        DrxConfig cfg;
        std::shared_ptr<const CompiledKernel> compiled;
        std::shared_ptr<const std::vector<RunResult>> timing;
        std::uint64_t last_used = 0; ///< LRU clock value
        /// Fused-chain entries store every part kernel for collision
        /// verification instead of `kernel`; empty marks a plain entry.
        std::vector<restructure::Kernel> parts;
    };

    void evictIfNeeded(Tick tick);
    void traceEvent(const char *what, Tick tick) const;

    DrxCacheConfig _cfg;
    std::unordered_map<std::uint64_t, Entry> _entries;
    std::uint64_t _clock = 0;
    CacheCounters _counters;

    stats::StatGroup _stats;
    stats::Scalar _stat_hits;
    stats::Scalar _stat_misses;
    stats::Scalar _stat_timing_hits;
    stats::Scalar _stat_timing_misses;
    stats::Scalar _stat_evictions;
};

/**
 * Drop-in cached replacement for runKernelOnDrx(): identical outputs,
 * identical RunResult and identical trace records, computed through
 * @p cache (default: the calling thread's ProgramCache::process()).
 *
 * Tier-2 timing replay only engages when @p out is null -- callers that
 * want bytes always run the machine for real, so cached outputs are
 * the machine's own outputs.
 */
RunResult runKernelOnDrxCached(const restructure::Kernel &kernel,
                               const restructure::Bytes &input,
                               DrxMachine &machine,
                               restructure::Bytes *out = nullptr,
                               Tick trace_base = 0,
                               ProgramCache *cache = nullptr);

} // namespace dmx::drx

#endif // DMX_DRX_CACHE_HH
