#include "drx/compiler.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace dmx::drx
{

using restructure::BufferDesc;
using restructure::Kernel;
using restructure::MapFn;
using restructure::MapStep;
using restructure::Stage;
using restructure::StageOp;

namespace
{

/** Largest divisor of @p n that is <= @p cap (tiling helper). */
std::uint32_t
pickTile(std::size_t n, std::size_t cap)
{
    if (n == 0)
        dmx_fatal("drx compiler: cannot tile an empty buffer");
    const std::size_t limit = std::min(n, cap);
    for (std::size_t t = limit; t >= 1; --t) {
        if (n % t == 0)
            return static_cast<std::uint32_t>(t);
    }
    return 1;
}

/**
 * The plan-phase allocation sink: mirrors DrxMachine's 64-byte-aligned
 * bump allocator exactly (so a plan installed at allocator position 0
 * lands on the same addresses compileKernel used to produce), but
 * records constants as serialized segments instead of writing device
 * DRAM. Keeping the lowering functions on this sink is what makes
 * planKernel a pure function of (kernel, config).
 */
struct PlanSink
{
    const DrxConfig &cfg;
    CompiledKernel &out;
    std::uint64_t brk = 0;

    std::uint64_t
    alloc(std::uint64_t bytes)
    {
        const std::uint64_t base = (brk + 63) & ~63ull;
        if (base + bytes > cfg.dram_bytes)
            dmx_fatal("DrxMachine::alloc: out of device DRAM "
                      "(%llu requested at %llu of %zu)",
                      static_cast<unsigned long long>(bytes),
                      static_cast<unsigned long long>(base),
                      static_cast<std::size_t>(cfg.dram_bytes));
        brk = base + bytes;
        return base;
    }

    void
    place(std::uint64_t addr, std::vector<std::uint8_t> raw)
    {
        out.consts.push_back(ConstSegment{addr, std::move(raw)});
    }
};

/** Plan a vector of u32 as an I32 constant buffer. */
std::uint64_t
placeIndices(PlanSink &m, const std::vector<std::uint32_t> &idx)
{
    const std::uint64_t addr = m.alloc(idx.size() * 4);
    std::vector<std::uint8_t> raw(idx.size() * 4);
    for (std::size_t i = 0; i < idx.size(); ++i) {
        std::int32_t v = static_cast<std::int32_t>(idx[i]);
        std::memcpy(&raw[i * 4], &v, 4);
    }
    m.place(addr, std::move(raw));
    return addr;
}

/** Plan floats as an F32 constant buffer. */
std::uint64_t
placeFloats(PlanSink &m, const std::vector<float> &w)
{
    const std::uint64_t addr = m.alloc(w.size() * 4);
    std::vector<std::uint8_t> raw(w.size() * 4);
    std::memcpy(raw.data(), w.data(), raw.size());
    m.place(addr, std::move(raw));
    return addr;
}

VFunc
mapFnToVFunc(MapFn fn)
{
    switch (fn) {
      case MapFn::Scale:    return VFunc::MulS;
      case MapFn::Offset:   return VFunc::AddS;
      case MapFn::Abs:      return VFunc::Abs;
      case MapFn::Sqrt:     return VFunc::Sqrt;
      case MapFn::Log1p:    return VFunc::Log1p;
      case MapFn::Exp:      return VFunc::Exp;
      case MapFn::ClampMin: return VFunc::MaxS;
      case MapFn::ClampMax: return VFunc::MinS;
    }
    dmx_panic("drx compiler: bad MapFn");
}

/** Append a Map chain to a builder, reg 'cur' -> returned reg. */
unsigned
emitSteps(ProgramBuilder &b, const std::vector<MapStep> &steps,
          unsigned cur, unsigned scratch_a, unsigned scratch_b)
{
    for (const MapStep &step : steps) {
        const unsigned nxt = cur == scratch_a ? scratch_b : scratch_a;
        b.compute1(mapFnToVFunc(step.fn), nxt, cur, step.arg);
        cur = nxt;
    }
    return cur;
}

/** Elementwise pass over equal-sized in/out buffers (Map / Cast). */
Program
lowerElementwise(const std::string &name, DType in_t, std::size_t elems,
                 DType out_t, const std::vector<MapStep> &steps,
                 std::uint64_t in_addr, std::uint64_t out_addr)
{
    const std::uint32_t tile = pickTile(elems, max_tile_elems / 2);
    ProgramBuilder b(name);
    b.loop(0, static_cast<std::uint32_t>(elems / tile));
    b.streamCfg(0, in_addr, in_t, tile, 0, 0, tile);
    b.streamCfg(1, out_addr, out_t, tile, 0, 0, tile);
    b.sync();
    b.load(0, 0);
    const unsigned out_reg = emitSteps(b, steps, 0, 1, 0);
    b.store(1, out_reg);
    return b.build();
}

/** Magnitude: interleaved complex -> |z|, with optional fused steps. */
Program
lowerMagnitude(const BufferDesc &in, const std::vector<MapStep> &steps,
               DType out_t, std::uint64_t in_addr, std::uint64_t out_addr)
{
    const std::size_t out_n = in.elems() / 2;
    const std::uint32_t tile = pickTile(out_n, max_tile_elems / 4);
    ProgramBuilder b("magnitude");
    b.loop(0, static_cast<std::uint32_t>(out_n / tile));
    b.streamCfg(0, in_addr, in.dtype, 2 * tile, 0, 0, 2 * tile);
    b.streamCfg(1, out_addr, out_t, tile, 0, 0, tile);
    b.sync();
    b.load(0, 0);
    b.compute1(VFunc::DeintEven, 1, 0);
    b.compute1(VFunc::DeintOdd, 2, 0);
    b.compute(VFunc::Mul, 3, 1, 1);
    b.compute(VFunc::Mac, 3, 2, 2);
    b.compute1(VFunc::Sqrt, 4, 3);
    const unsigned out_reg = emitSteps(b, steps, 4, 5, 4);
    b.store(1, out_reg);
    return b.build();
}

/** Affine structure detected in a gather index table. */
struct AffinePattern
{
    bool ok = false;
    std::size_t run = 0;    ///< consecutive elements per run (L)
    std::size_t inner = 0;  ///< runs per outer block (m)
    std::int64_t inner_stride = 0; ///< A
    std::size_t outer = 0;  ///< outer blocks (o)
    std::int64_t outer_stride = 0; ///< B
    std::uint32_t start = 0;
};

/**
 * Detect whether @p idx is an affine 2-level run pattern:
 *   idx[(oi*m + mi)*L + e] == start + oi*B + mi*A + e.
 * Such gathers lower to pure strided streams with no index table -
 * the compiler optimization that makes layout transforms (columnar
 * conversion, integer-ratio resizes, reshapes) cheap on the DRX.
 */
AffinePattern
detectAffine(const std::vector<std::uint32_t> &idx)
{
    AffinePattern p;
    if (idx.empty())
        return p;
    // Run length of the first run.
    std::size_t L = 1;
    while (L < idx.size() && idx[L] == idx[L - 1] + 1)
        ++L;
    if (idx.size() % L != 0)
        return p;
    const std::size_t runs = idx.size() / L;
    // Validate every run and collect starts.
    std::vector<std::uint32_t> starts(runs);
    for (std::size_t r = 0; r < runs; ++r) {
        starts[r] = idx[r * L];
        for (std::size_t e = 1; e < L; ++e) {
            if (idx[r * L + e] != starts[r] + e)
                return p;
        }
    }
    p.run = L;
    p.start = starts[0];
    if (runs == 1) {
        p.ok = true;
        p.inner = 1;
        p.outer = 1;
        return p;
    }
    const std::int64_t A = static_cast<std::int64_t>(starts[1]) -
                           static_cast<std::int64_t>(starts[0]);
    std::size_t m = 1;
    while (m < runs &&
           static_cast<std::int64_t>(starts[m]) -
                   static_cast<std::int64_t>(starts[m - 1]) ==
               A) {
        ++m;
    }
    if (runs % m != 0)
        return p;
    const std::size_t o = runs / m;
    const std::int64_t B =
        o > 1 ? static_cast<std::int64_t>(starts[m]) -
                    static_cast<std::int64_t>(starts[0])
              : 0;
    for (std::size_t oi = 0; oi < o; ++oi) {
        for (std::size_t mi = 0; mi < m; ++mi) {
            const std::int64_t expect =
                static_cast<std::int64_t>(p.start) +
                static_cast<std::int64_t>(oi) * B +
                static_cast<std::int64_t>(mi) * A;
            if (static_cast<std::int64_t>(starts[oi * m + mi]) != expect)
                return p;
        }
    }
    // Descending patterns (e.g. a reversing permutation) would need
    // negative stream offsets, which the machine's address generator
    // does not produce; such gathers take the index-table path.
    if (A < 0 || B < 0)
        return p;
    p.ok = true;
    p.inner = m;
    p.inner_stride = A;
    p.outer = o;
    p.outer_stride = B;
    return p;
}

/** Strided-stream lowering of an affine gather (no index table). */
Program
lowerAffineGather(const std::string &name, const BufferDesc &in,
                  const AffinePattern &p, const std::vector<MapStep> &steps,
                  DType out_t, std::uint64_t in_addr,
                  std::uint64_t out_addr)
{
    const std::size_t esz_in = dtypeSize(in.dtype);
    // Group G runs per instruction to amortize issue cost.
    std::size_t G = 1;
    for (std::size_t g = p.inner; g >= 1; --g) {
        if (p.inner % g == 0 && g * p.run <= max_tile_elems / 2) {
            G = g;
            break;
        }
    }
    const auto tile = static_cast<std::uint32_t>(G * p.run);
    ProgramBuilder b(name);
    b.loop(0, static_cast<std::uint32_t>(p.outer));
    b.loop(1, static_cast<std::uint32_t>(p.inner / G));
    b.streamCfg(0, in_addr + p.start * esz_in, in.dtype, p.outer_stride,
                p.inner_stride * static_cast<std::int64_t>(G), 0, tile);
    if (G > 1 || p.run < tile)
        b.runs(static_cast<std::uint32_t>(p.run), p.inner_stride);
    b.streamCfg(1, out_addr, out_t,
                static_cast<std::int64_t>(p.inner * p.run),
                static_cast<std::int64_t>(G * p.run), 0, tile);
    b.sync();
    b.load(0, 0);
    const unsigned out_reg = emitSteps(b, steps, 0, 1, 0);
    b.store(1, out_reg);
    return b.build();
}

/**
 * Gather through a DRAM index table, with optional fused steps.
 * When the table consists of fixed-length consecutive runs (@p run_len
 * from the caller's analysis), the table is compressed to one
 * descriptor per run, cutting index traffic by that factor.
 */
Program
lowerGather(const std::string &name, const BufferDesc &in,
            std::size_t out_elems, std::size_t run_len,
            const std::vector<MapStep> &steps, DType out_t,
            std::uint64_t idx_addr, std::uint64_t in_addr,
            std::uint64_t out_addr)
{
    if (in.elems() >= (1ull << 24))
        dmx_fatal("drx compiler: gather source too large for exact "
                  "float indices (%zu elems)", in.elems());
    const std::size_t runs = out_elems / run_len;
    const std::uint32_t idx_tile = pickTile(
        runs, std::max<std::size_t>(1, (max_tile_elems / 2) / run_len));
    const auto data_tile =
        static_cast<std::uint32_t>(idx_tile * run_len);
    ProgramBuilder b(name);
    b.loop(0, static_cast<std::uint32_t>(runs / idx_tile));
    b.streamCfg(0, idx_addr, DType::I32, idx_tile, 0, 0, idx_tile);
    b.streamCfg(1, in_addr, in.dtype, 0, 0, 0, data_tile);
    b.streamCfg(2, out_addr, out_t, data_tile, 0, 0, data_tile);
    b.sync();
    b.load(0, 0); // run descriptors
    b.gather(1, 1, 0, static_cast<std::uint32_t>(run_len));
    const unsigned out_reg = emitSteps(b, steps, 1, 2, 1);
    b.store(2, out_reg);
    return b.build();
}

/** MatVec: banded when the weight rows are narrow, dense otherwise. */
Program
lowerMatVec(const Stage &st, const BufferDesc &in, PlanSink &m,
            std::uint64_t in_addr, std::uint64_t out_addr)
{
    const std::size_t rows = in.rows();
    const std::size_t cols = st.mat_cols;
    const std::size_t mat_rows = st.mat_rows;
    const std::vector<float> &w = *st.weights;
    if (mat_rows > max_tile_elems)
        dmx_fatal("drx compiler: matvec with %zu output rows exceeds the "
                  "tile limit", mat_rows);

    // Band analysis: find the nonzero span of each weight row.
    std::size_t max_width = 0;
    std::vector<std::size_t> lo(mat_rows, 0);
    for (std::size_t r = 0; r < mat_rows; ++r) {
        std::size_t first = cols, last = 0;
        for (std::size_t c = 0; c < cols; ++c) {
            if (w[r * cols + c] != 0.0f) {
                first = std::min(first, c);
                last = c;
            }
        }
        if (first == cols) {
            lo[r] = 0; // all-zero row
        } else {
            lo[r] = first;
            max_width = std::max(max_width, last - first + 1);
        }
    }
    if (max_width == 0)
        max_width = 1;

    const bool banded = max_width <= 512 && max_width * 3 <= cols;
    if (banded) {
        // Pack per-row bands (weights + in-row index taps), padded to a
        // common width W with zero weights.
        const std::size_t width = max_width;
        std::vector<float> packed(mat_rows * width, 0.0f);
        std::vector<std::uint32_t> taps(mat_rows * width, 0);
        for (std::size_t r = 0; r < mat_rows; ++r) {
            const std::size_t base = std::min(lo[r], cols - width);
            for (std::size_t k = 0; k < width; ++k) {
                packed[r * width + k] = w[r * cols + base + k];
                taps[r * width + k] =
                    static_cast<std::uint32_t>(base + k);
            }
        }
        const std::uint64_t wts = placeFloats(m, packed);
        const std::uint64_t idx = placeIndices(m, taps);

        const std::size_t bank_floats = mat_rows * width;
        // Live scratch: taps + weights + gathered band (reused for the
        // product) + the output row.
        const bool bank_fits =
            bank_floats <= max_tile_elems &&
            (3 * bank_floats + mat_rows) * sizeof(float) <=
                m.cfg.scratch_bytes;
        if (bank_fits) {
            // Row-batched lowering: the whole packed filter bank fits a
            // tile, so one iteration per input row computes every
            // output with a single gather + multiply + segmented sum,
            // and the taps/weights are hoisted out of the loop.
            const auto bank =
                static_cast<std::uint32_t>(mat_rows * width);
            ProgramBuilder b("matvec.banded.rowbatch");
            b.loop(0, 1);
            b.loop(1, static_cast<std::uint32_t>(rows));
            b.streamCfg(0, idx, DType::I32, 0, 0, 0, bank);
            b.streamCfg(1, wts, DType::F32, 0, 0, 0, bank);
            b.streamCfg(2, in_addr, in.dtype, 0,
                        static_cast<std::int64_t>(cols), 0, bank);
            b.streamCfg(3, out_addr, DType::F32, 0,
                        static_cast<std::int64_t>(mat_rows), 0,
                        static_cast<std::uint32_t>(mat_rows));
            b.sync();
            b.load(0, 0).at(0);      // taps: loop-invariant
            b.load(1, 1).at(0);      // packed weights: loop-invariant
            b.gather(2, 2, 0);       // all bands of this row at once
            b.compute(VFunc::Mul, 2, 1, 2); // product in place
            b.segsum(4, 2, static_cast<std::uint32_t>(width));
            b.store(3, 4);
            return b.build();
        }

        ProgramBuilder b("matvec.banded");
        b.loop(0, static_cast<std::uint32_t>(rows));
        b.loop(1, static_cast<std::uint32_t>(mat_rows));
        const auto wu = static_cast<std::int64_t>(width);
        b.streamCfg(0, idx, DType::I32, 0, wu, 0,
                    static_cast<std::uint32_t>(width));
        b.streamCfg(1, wts, DType::F32, 0, wu, 0,
                    static_cast<std::uint32_t>(width));
        b.streamCfg(2, in_addr, in.dtype,
                    static_cast<std::int64_t>(cols), 0, 0,
                    static_cast<std::uint32_t>(width));
        b.streamCfg(3, out_addr, DType::F32,
                    static_cast<std::int64_t>(mat_rows), 0, 0,
                    static_cast<std::uint32_t>(mat_rows));
        b.sync();
        b.reset(5).at(0, false);
        b.load(0, 0);       // taps
        b.load(1, 1);       // packed weights
        b.gather(2, 2, 0);  // input band (row offset via stream stride)
        b.compute(VFunc::Mul, 3, 1, 2);
        b.compute(VFunc::RedSum, 4, 3, 3);
        b.append(5, 4);
        b.store(3, 5).at(0, true);
        return b.build();
    }

    // Dense fallback: hoist the input row, stream weight rows.
    if (cols > max_tile_elems)
        dmx_fatal("drx compiler: dense matvec with %zu cols exceeds the "
                  "tile limit", cols);
    ProgramBuilder b("matvec.dense");
    b.loop(0, static_cast<std::uint32_t>(rows));
    b.loop(1, static_cast<std::uint32_t>(mat_rows));
    const std::uint64_t wts = placeFloats(m, w);
    b.streamCfg(0, in_addr, in.dtype, static_cast<std::int64_t>(cols), 0,
                0, static_cast<std::uint32_t>(cols));
    b.streamCfg(1, wts, DType::F32, 0, static_cast<std::int64_t>(cols), 0,
                static_cast<std::uint32_t>(cols));
    b.streamCfg(3, out_addr, DType::F32,
                static_cast<std::int64_t>(mat_rows), 0, 0,
                static_cast<std::uint32_t>(mat_rows));
    b.sync();
    b.reset(5).at(0, false);
    b.load(0, 0).at(0, false); // input row: loop-invariant across dim 1
    b.load(1, 1);              // weight row
    b.compute(VFunc::Mul, 3, 1, 0);
    b.compute(VFunc::RedSum, 4, 3, 3);
    b.append(5, 4);
    b.store(3, 5).at(0, true);
    return b.build();
}

/** Row-wise sum over the innermost dimension. */
Program
lowerReduce(const BufferDesc &in, std::uint64_t in_addr,
            std::uint64_t out_addr)
{
    const std::size_t rows = in.rows();
    const std::size_t cols = in.inner();
    if (cols > max_tile_elems)
        dmx_fatal("drx compiler: reduce with %zu cols exceeds the tile "
                  "limit", cols);
    ProgramBuilder b("reduce");
    b.loop(0, static_cast<std::uint32_t>(rows));
    b.streamCfg(0, in_addr, in.dtype, static_cast<std::int64_t>(cols), 0,
                0, static_cast<std::uint32_t>(cols));
    b.streamCfg(1, out_addr, DType::F32, 1, 0, 0, 1);
    b.sync();
    b.load(0, 0);
    b.compute(VFunc::RedSum, 1, 0, 0);
    b.store(1, 1);
    return b.build();
}

/** Pad the innermost dimension with a constant. */
Program
lowerPad(const Stage &st, const BufferDesc &in, std::uint64_t in_addr,
         std::uint64_t out_addr)
{
    const std::size_t rows = in.rows();
    const std::size_t cols = in.inner();
    const std::size_t padded = st.pad_to;
    if (padded > max_tile_elems)
        dmx_fatal("drx compiler: pad width %zu exceeds the tile limit",
                  padded);
    ProgramBuilder b("pad");
    b.loop(0, static_cast<std::uint32_t>(rows));
    b.streamCfg(0, in_addr, in.dtype, static_cast<std::int64_t>(cols), 0,
                0, static_cast<std::uint32_t>(cols));
    b.streamCfg(1, out_addr, in.dtype, static_cast<std::int64_t>(padded),
                0, 0, static_cast<std::uint32_t>(padded));
    b.sync();
    b.load(0, 0);
    b.fill(1, st.pad_value, static_cast<std::uint32_t>(padded - cols));
    b.reset(2);
    b.append(2, 0);
    b.append(2, 1);
    b.store(1, 2);
    return b.build();
}

/** Fused Transpose2D+Reduce: elementwise sum across the outer dim. */
Program
lowerFusedSum(const BufferDesc &in, std::uint64_t in_addr,
              std::uint64_t out_addr)
{
    const std::size_t n = in.shape[0];
    const std::size_t elems = in.inner();
    const std::uint32_t tile = pickTile(elems, max_tile_elems / 2);
    ProgramBuilder b("fused_transpose_reduce");
    b.loop(0, static_cast<std::uint32_t>(elems / tile));
    b.loop(1, static_cast<std::uint32_t>(n));
    b.streamCfg(0, in_addr, in.dtype, tile,
                static_cast<std::int64_t>(elems), 0, tile);
    b.streamCfg(1, out_addr, DType::F32, tile, 0, 0, tile);
    b.sync();
    b.fill(2, 0.0f, tile).at(0, false);
    b.load(0, 0);
    b.compute(VFunc::Add, 2, 2, 0);
    b.store(1, 2).at(0, true);
    return b.build();
}

/** Build a flat transpose index table for the last two dims. */
std::vector<std::uint32_t>
transposeIndices(const BufferDesc &in)
{
    const std::size_t rank = in.shape.size();
    const std::size_t r = in.shape[rank - 2];
    const std::size_t c = in.shape[rank - 1];
    const std::size_t outer = in.elems() / (r * c);
    std::vector<std::uint32_t> idx(in.elems());
    std::size_t o = 0;
    for (std::size_t b = 0; b < outer; ++b)
        for (std::size_t x = 0; x < c; ++x)
            for (std::size_t y = 0; y < r; ++y)
                idx[o++] = static_cast<std::uint32_t>(b * r * c + y * c +
                                                      x);
    return idx;
}

/**
 * @return the fixed run length of @p idx (every chunk of L entries is
 * consecutive), or 1 when no such L > 1 exists.
 */
std::size_t
fixedRunLength(const std::vector<std::uint32_t> &idx)
{
    std::size_t L = 1;
    while (L < idx.size() && idx[L] == idx[L - 1] + 1)
        ++L;
    if (L <= 1 || idx.size() % L != 0)
        return 1;
    for (std::size_t r = 1; r < idx.size() / L; ++r) {
        for (std::size_t e = 1; e < L; ++e) {
            if (idx[r * L + e] != idx[r * L] + e)
                return 1;
        }
    }
    return L;
}

bool
isElementwise(const Stage &st)
{
    return st.op == StageOp::Map || st.op == StageOp::Cast;
}

} // namespace

CompiledKernel
planKernel(const Kernel &kernel, const DrxConfig &cfg)
{
    CompiledKernel out;
    PlanSink machine{cfg, out};
    out.in_desc = kernel.input;
    out.out_desc = kernel.output();
    out.input_addr = machine.alloc(kernel.input.bytes());

    const auto finalize = [&]() -> CompiledKernel & {
        out.dram_bytes = machine.brk;
        out.shape_deterministic = true;
        for (const Program &p : out.programs)
            out.shape_deterministic &= shapeDeterministic(p);
        return out;
    };

    // Fusion: the Transpose+Reduce collective idiom.
    if (kernel.stages.size() == 2 &&
        kernel.stages[0].op == StageOp::Transpose2D &&
        kernel.stages[1].op == StageOp::Reduce &&
        kernel.input.shape.size() == 2) {
        out.output_addr = machine.alloc(out.out_desc.bytes());
        out.programs.push_back(
            lowerFusedSum(kernel.input, out.input_addr, out.output_addr));
        return finalize();
    }

    std::uint64_t cur_addr = out.input_addr;
    BufferDesc cur = kernel.input;
    std::size_t si = 0;
    while (si < kernel.stages.size()) {
        const Stage &st = kernel.stages[si];

        // Greedily fuse the trailing Map/Cast chain of this group.
        std::size_t sj = si + 1;
        std::vector<MapStep> fused_steps;
        const bool fusable_head =
            isElementwise(st) || st.op == StageOp::Gather ||
            st.op == StageOp::Transpose2D || st.op == StageOp::Magnitude;
        if (st.op == StageOp::Map)
            fused_steps = st.steps;
        if (fusable_head) {
            while (sj < kernel.stages.size() &&
                   isElementwise(kernel.stages[sj])) {
                if (kernel.stages[sj].op == StageOp::Map) {
                    const auto &steps = kernel.stages[sj].steps;
                    fused_steps.insert(fused_steps.end(), steps.begin(),
                                       steps.end());
                }
                ++sj;
            }
        }
        const BufferDesc next = kernel.descAfter(sj);
        const std::uint64_t next_addr = machine.alloc(next.bytes());

        switch (st.op) {
          case StageOp::Map:
          case StageOp::Cast:
            out.programs.push_back(lowerElementwise(
                "elementwise", cur.dtype, cur.elems(), next.dtype,
                fused_steps, cur_addr, next_addr));
            break;
          case StageOp::Transpose2D:
          case StageOp::Gather: {
            std::vector<std::uint32_t> local;
            const std::vector<std::uint32_t> *idx = nullptr;
            if (st.op == StageOp::Transpose2D) {
                local = transposeIndices(cur);
                idx = &local;
            } else {
                idx = st.indices.get();
            }
            const AffinePattern pattern = detectAffine(*idx);
            if (pattern.ok && pattern.inner == 1 && pattern.outer == 1) {
                // Degenerate affine gather: a contiguous copy (e.g. a
                // pure reshape); lower as a tiled elementwise pass.
                out.programs.push_back(lowerElementwise(
                    "gather.copy", cur.dtype, idx->size(), next.dtype,
                    fused_steps,
                    cur_addr + pattern.start * dtypeSize(cur.dtype),
                    next_addr));
            } else if (pattern.ok &&
                       pattern.run <= max_tile_elems / 2) {
                out.programs.push_back(lowerAffineGather(
                    "gather.affine", cur, pattern, fused_steps,
                    next.dtype, cur_addr, next_addr));
            } else {
                // Compress fixed-length runs into per-run descriptors.
                const std::size_t run_len = fixedRunLength(*idx);
                std::uint64_t idx_addr;
                if (run_len > 1) {
                    std::vector<std::uint32_t> starts(idx->size() /
                                                      run_len);
                    for (std::size_t r = 0; r < starts.size(); ++r)
                        starts[r] = (*idx)[r * run_len];
                    idx_addr = placeIndices(machine, starts);
                } else {
                    idx_addr = placeIndices(machine, *idx);
                }
                out.programs.push_back(lowerGather(
                    "gather", cur, idx->size(), run_len, fused_steps,
                    next.dtype, idx_addr, cur_addr, next_addr));
            }
            break;
          }
          case StageOp::MatVec:
            out.programs.push_back(
                lowerMatVec(st, cur, machine, cur_addr, next_addr));
            break;
          case StageOp::Magnitude:
            out.programs.push_back(lowerMagnitude(
                cur, fused_steps, next.dtype, cur_addr, next_addr));
            break;
          case StageOp::Reduce:
            out.programs.push_back(
                lowerReduce(cur, cur_addr, next_addr));
            break;
          case StageOp::Pad:
            if (st.pad_to == cur.inner()) {
                out.programs.push_back(lowerElementwise(
                    "pad.copy", cur.dtype, cur.elems(), cur.dtype, {},
                    cur_addr, next_addr));
            } else {
                out.programs.push_back(
                    lowerPad(st, cur, cur_addr, next_addr));
            }
            break;
        }
        cur = next;
        cur_addr = next_addr;
        si = sj;
    }
    out.output_addr = cur_addr;
    return finalize();
}

bool
shapeDeterministic(const Program &program)
{
    for (const Instruction &ins : program.code) {
        switch (ins.op) {
          case Opcode::CfgLoop:
          case Opcode::CfgStream:
          case Opcode::Sync:
          case Opcode::Halt:
          // Load/Store addresses come from stream strides and loop
          // indices; Compute lengths come from tile sizes. All shape.
          case Opcode::Load:
          case Opcode::Store:
          case Opcode::Compute:
            break;
          // Gather reads index *values* out of DRAM: its addresses,
          // run coalescing and therefore mem cycles depend on data
          // bytes. Conservatively non-memoizable (as is anything the
          // classifier does not recognize).
          case Opcode::Gather:
          default:
            return false;
        }
    }
    return true;
}

std::shared_ptr<const CompiledKernel>
installPlan(std::shared_ptr<const CompiledKernel> plan, DrxMachine &machine)
{
    // One reservation covers the whole plan: the plan's internal
    // allocations replay the same 64-byte-aligned bump arithmetic, so
    // reserving the footprint in one step leaves the machine allocator
    // exactly where the legacy interleaved compile left it.
    const std::uint64_t base = machine.alloc(plan->dram_bytes);
    if (base == 0) {
        for (const ConstSegment &seg : plan->consts)
            machine.write(seg.addr, seg.bytes.data(), seg.bytes.size());
        return plan;
    }
    // Rebase: alignment is additive for 64-byte-aligned bases, so
    // shifting every address by the reservation base reproduces what
    // an interleaved compile at this allocator position would emit.
    auto rb = std::make_shared<CompiledKernel>(*plan);
    rb->input_addr += base;
    rb->output_addr += base;
    for (ConstSegment &seg : rb->consts)
        seg.addr += base;
    for (Program &prog : rb->programs) {
        for (Instruction &ins : prog.code) {
            if (ins.op == Opcode::CfgStream)
                ins.base += base;
        }
    }
    for (const ConstSegment &seg : rb->consts)
        machine.write(seg.addr, seg.bytes.data(), seg.bytes.size());
    return rb;
}

CompiledKernel
compileKernel(const Kernel &kernel, DrxMachine &machine)
{
    auto plan = std::make_shared<const CompiledKernel>(
        planKernel(kernel, machine.config()));
    return *installPlan(std::move(plan), machine);
}

RunResult
runPlanOnDrx(const std::string &name, const CompiledKernel &plan,
             const restructure::Bytes &input, DrxMachine &machine,
             restructure::Bytes *out, Tick trace_base)
{
    if (input.size() != plan.in_desc.bytes())
        dmx_fatal("runKernelOnDrx('%s'): input is %zu bytes, expected %zu",
                  name.c_str(), input.size(), plan.in_desc.bytes());
    machine.write(plan.input_addr, input.data(), input.size());
    RunResult res;
    Tick stage_base = trace_base;
    for (const Program &p : plan.programs) {
        const RunResult stage = machine.run(p, stage_base);
        stage_base += stage.time(machine.config().freq_hz);
        res += stage;
        if (res.faulted)
            break; // the machine trapped; later stages never start
    }
    if (out && !res.faulted) {
        *out = machine.read(plan.output_addr, plan.out_desc.bytes());
    }
    return res;
}

RunResult
runKernelOnDrx(const Kernel &kernel, const restructure::Bytes &input,
               DrxMachine &machine, restructure::Bytes *out,
               Tick trace_base)
{
    if (input.size() != kernel.input.bytes())
        dmx_fatal("runKernelOnDrx('%s'): input is %zu bytes, expected %zu",
                  kernel.name.c_str(), input.size(), kernel.input.bytes());
    const CompiledKernel compiled = compileKernel(kernel, machine);
    return runPlanOnDrx(kernel.name, compiled, input, machine, out,
                        trace_base);
}

} // namespace dmx::drx
