/**
 * @file
 * The DRX instruction set (paper Sec. IV-B, Figure 7).
 *
 * The ISA has four instruction classes:
 *  - loop configuration (CfgLoop): programs the Instruction Repeater
 *    with <iterations> per loop dimension (up to 3 nested dims);
 *  - off-chip memory access (CfgStream / Load / Store / Gather):
 *    programs the Off-chip Data Access Engine with <base, stride,
 *    iteration> descriptors and moves tiles between DRAM and the
 *    software-managed scratchpad;
 *  - compute (Compute with a VFunc): vector operations executed across
 *    the Restructuring Engine lanes, plus the Transposition Engine's
 *    block transpose;
 *  - synchronization (Sync / Halt): program-order fences.
 *
 * There are no pack/unpack or vector-register-file semantics: tiles
 * live in named scratchpad registers whose addresses are produced by
 * the Strided Scratchpad Address Calculator, exactly as described in
 * the paper.
 */

#ifndef DMX_DRX_ISA_HH
#define DMX_DRX_ISA_HH

#include <cstdint>
#include <string>

#include "common/dtype.hh"

namespace dmx::drx
{

/** Maximum loop-nest depth supported by the Instruction Repeater. */
inline constexpr unsigned max_loop_dims = 3;

/** Number of stream descriptors in the Off-chip Data Access Engine. */
inline constexpr unsigned max_streams = 8;

/** Number of scratchpad tile registers. */
inline constexpr unsigned max_regs = 12;

/** Maximum elements in one scratchpad tile register. */
inline constexpr unsigned max_tile_elems = 4096;

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    CfgLoop,   ///< configure loop dimension: dim, iters
    CfgStream, ///< configure stream: stream, base, dtype, strides, tile
    Load,      ///< scratch[reg] <- stream tile at current indices
    Store,     ///< stream tile at current indices <- scratch[reg]
    Gather,    ///< scratch[dst] <- dram[stream.base + idx[i]] (indexed)
    Compute,   ///< vector op across RE lanes
    Sync,      ///< fence: begin/end of the repeated body
    Halt,      ///< end of program
};

/** Vector functions executed by the Restructuring Engines. */
enum class VFunc : std::uint8_t
{
    Add,    ///< dst = a + b
    Sub,    ///< dst = a - b
    Mul,    ///< dst = a * b
    Max,    ///< dst = max(a, b)
    Min,    ///< dst = min(a, b)
    Mac,    ///< dst += a * b
    AddS,   ///< dst = a + imm
    MulS,   ///< dst = a * imm
    MaxS,   ///< dst = max(a, imm)
    MinS,   ///< dst = min(a, imm)
    Abs,    ///< dst = |a|
    Sqrt,   ///< dst = sqrt(max(a,0))     (4-cycle unit)
    Log1p,  ///< dst = log(1+max(a,0))    (4-cycle unit)
    Exp,    ///< dst = exp(a)             (4-cycle unit)
    RedSum, ///< dst[0] = sum(a)          (lane tree reduction)
    Fill,   ///< dst[i] = imm, length = count
    Copy,   ///< dst = a
    TransB, ///< Transposition Engine: dst = transpose of a as rows x cols
    DeintEven, ///< Transposition Engine: dst[i] = a[2i]
    DeintOdd,  ///< Transposition Engine: dst[i] = a[2i+1]
    Reset,  ///< dst length = 0 (scratchpad tile reuse)
    Append, ///< dst.append(a) (grow the tile; used to build store tiles)
    SegSum, ///< dst[i] = sum(a[i*count .. (i+1)*count)): banded matvec
};

/** @return mnemonic for an opcode. */
std::string toString(Opcode op);

/** @return mnemonic for a vector function. */
std::string toString(VFunc fn);

/** One DRX instruction (a union-of-fields encoding). */
struct Instruction
{
    Opcode op = Opcode::Halt;

    // CfgLoop
    std::uint8_t dim = 0;       ///< loop dimension (0 = outermost)
    std::uint32_t iters = 1;    ///< iteration count

    // CfgStream / Load / Store / Gather
    std::uint8_t stream = 0;    ///< stream descriptor index
    std::uint64_t base = 0;     ///< DRAM byte address
    DType dtype = DType::F32;   ///< element type in DRAM
    std::int64_t stride[3] = {0, 0, 0}; ///< per-dim stride, in elements
    std::uint32_t tile = 0;     ///< elements per tile

    /**
     * Optional run pattern within a tile: the tile's elements are
     * tile/run_len groups of run_len consecutive elements, with group
     * starts run_stride elements apart. run_len == 0 means the tile is
     * fully contiguous. This is how the compiler expresses strided
     * layout transforms (e.g. row->column field gathers) without index
     * tables.
     */
    std::uint32_t run_len = 0;
    std::int64_t run_stride = 0;

    // Load/Store/Gather/Compute registers
    std::uint8_t reg = 0;       ///< Load/Store target register
    std::uint8_t dst = 0;       ///< Compute destination
    std::uint8_t src_a = 0;     ///< Compute operand A
    std::uint8_t src_b = 0;     ///< Compute operand B (or Gather index reg)

    /**
     * Execution depth: the instruction runs only when every loop index
     * deeper than @p depth is zero (or, with @p post set, at its final
     * value). This is how the compiler hoists loop-invariant tile loads
     * out of inner loops (pre) and places store epilogues (post).
     * Depth 2 (default) means "every iteration".
     */
    std::uint8_t depth = 2;

    /** Epilogue placement: run at the last deeper-index iteration. */
    bool post = false;

    // Compute extras
    VFunc fn = VFunc::Copy;
    float imm = 0.0f;
    std::uint32_t count = 0;    ///< Fill length / TransB rows
    std::uint32_t count2 = 0;   ///< TransB cols

    /** @return one-line disassembly. */
    std::string disassemble() const;
};

} // namespace dmx::drx

#endif // DMX_DRX_ISA_HH
