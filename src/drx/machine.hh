/**
 * @file
 * Functional and cycle-level simulator of the DRX microarchitecture
 * (paper Sec. IV-B, Figure 6).
 *
 * The machine models:
 *  - the Instruction Repeater: a configured loop nest replays the body
 *    with per-instruction pre/post placement (hardware loops, no branch
 *    overhead when cfg.hardware_loops is on);
 *  - the Strided Scratchpad Address Calculator + scratchpad registers:
 *    named tiles of floats, with live-capacity checking against the
 *    64 KB scratchpad;
 *  - the Restructuring Engine lanes: vector ops cost
 *    ceil(len/lanes) * unit_latency cycles;
 *  - the Transposition Engine (TransB / Deint*);
 *  - the Off-chip Data Access Engine: tile loads/stores charged against
 *    DRAM bandwidth, with burst-granularity penalties for short or
 *    non-sequential accesses, and index-coalescing gathers.
 *
 * Timing is decoupled access/execute: with double buffering the total
 * cycle count is max(compute, memory) + pipeline fill, modelling the
 * paper's overlapping of the Off-chip engine with the REs.
 */

#ifndef DMX_DRX_MACHINE_HH
#define DMX_DRX_MACHINE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "drx/program.hh"
#include "fault/hooks.hh"

namespace dmx::drx
{

/** Hardware configuration of one DRX instance. */
struct DrxConfig
{
    unsigned lanes = 128;              ///< Restructuring Engine lanes
    std::uint64_t scratch_bytes = 64 * kib;
    std::uint64_t icache_bytes = 64 * kib;
    double freq_hz = 1e9;              ///< 1 GHz ASIC (250 MHz on FPGA)
    double dram_bytes_per_sec = 25e9;  ///< one DDR4-3200 channel
    std::uint64_t dram_bytes = 256 * mib; ///< modelled DRAM capacity
    bool hardware_loops = true;        ///< Instruction Repeater (ablation)
    bool double_buffer = true;         ///< access/execute overlap (ablation)
    unsigned min_burst_bytes = 64;     ///< DRAM burst granularity

    /** @return DRAM bytes transferred per DRX cycle at full rate. */
    double
    dramBytesPerCycle() const
    {
        return dram_bytes_per_sec / freq_hz;
    }
};

/** Result of executing one program. */
struct RunResult
{
    Cycles total_cycles = 0;
    Cycles compute_cycles = 0;
    Cycles mem_cycles = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t dyn_instructions = 0;
    /// An injected machine fault interrupted execution: cycle counts
    /// cover only the work done before the fault and no output was
    /// produced.
    bool faulted = false;
    /// Single-bit scratchpad ECC events corrected in place during the
    /// run; each charged the scrub-cycle penalty on top of the base
    /// timing (so timing memos stay ECC-free and replays add the
    /// penalty dynamically).
    std::uint32_t ecc_corrected = 0;
    /// A double-bit scratchpad upset was detected but not correctable:
    /// the run aborted like a machine fault (faulted is set too) so
    /// poisoned data is never committed.
    bool ecc_uncorrectable = false;

    RunResult &
    operator+=(const RunResult &o)
    {
        total_cycles += o.total_cycles;
        compute_cycles += o.compute_cycles;
        mem_cycles += o.mem_cycles;
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        dyn_instructions += o.dyn_instructions;
        faulted = faulted || o.faulted;
        ecc_corrected += o.ecc_corrected;
        ecc_uncorrectable = ecc_uncorrectable || o.ecc_uncorrectable;
        return *this;
    }

    /** @return wall-clock duration at @p freq_hz, in ticks. */
    Tick
    time(double freq_hz) const
    {
        return ClockDomain{freq_hz}.cyclesToTicks(total_cycles);
    }
};

/**
 * @return whether the vectorized interpreter inner loops are active.
 *
 * The vectorized loops hoist the VFunc/dtype dispatch out of the
 * element loop so each case is a dense, branch-free loop the compiler
 * autovectorizes across the 128 RE lanes. No expression is
 * reassociated (reductions stay sequential), so outputs are
 * byte-identical and cycle counts tick-identical to the scalar
 * reference - the differential sweep in tests/test_core_equiv.cc
 * asserts exactly that. First call consults the DMX_NO_SIMD_DRX
 * environment variable (set and non-empty disables SIMD).
 */
bool simdEnabled();

/** Override the SIMD flag (differential tests). */
void setSimdEnabled(bool on);

/**
 * One DRX device: private DRAM plus the execution pipeline.
 *
 * Typical use: alloc() buffers, write() inputs and constants, run()
 * one or more programs, read() outputs.
 */
class DrxMachine
{
  public:
    explicit DrxMachine(DrxConfig cfg = {});

    const DrxConfig &config() const { return _cfg; }

    /**
     * Allocate @p bytes of device DRAM (64-byte aligned bump allocator).
     * @return base address of the allocation
     */
    std::uint64_t alloc(std::uint64_t bytes);

    /** Release every allocation (addresses become invalid). */
    void resetAlloc();

    /** Copy bytes into device DRAM. */
    void write(std::uint64_t addr, const std::uint8_t *src,
               std::size_t len);

    /** Copy bytes out of device DRAM. */
    std::vector<std::uint8_t> read(std::uint64_t addr,
                                   std::size_t len) const;

    /**
     * Execute @p program functionally and return its timing.
     *
     * The machine is clockless (callers place its runs in simulated
     * time); @p trace_base anchors the run's trace spans at the caller's
     * submission tick. It does not affect timing or results.
     *
     * @throws via fatal on invalid programs or out-of-range accesses
     */
    RunResult run(const Program &program, Tick trace_base = 0);

    /**
     * Timing-memoization fast path: charge a previously measured
     * @p memo for @p program without re-interpreting it.
     *
     * Behaves exactly like run() for everything observable outside the
     * machine's DRAM: the fault hook is consulted (and a Fault traps
     * with the same cost and trace records), and on the happy path the
     * same trace spans and counters are emitted before @p memo is
     * returned. Only valid when @p memo was recorded by run() of the
     * same program on a machine of the same configuration and the
     * program is shape-deterministic (see drx::shapeDeterministic);
     * drx::ProgramCache enforces both. Device DRAM is not touched.
     */
    RunResult replayRun(const Program &program, const RunResult &memo,
                        Tick trace_base = 0);

    /**
     * Install (or clear, with nullptr) the fault-injection hook
     * consulted at the start of every program run. A Fault decision
     * aborts the run after the trap cost, with result.faulted set.
     */
    void setFaultHook(fault::MachineHook hook) { _fault_hook = std::move(hook); }

    /** @return program runs aborted by an injected machine fault. */
    std::uint64_t faultCount() const { return _faults; }

    /**
     * Install (or clear, with nullptr) the scratchpad SEC-DED ECC hook
     * consulted once per program run, in both run() and replayRun()
     * and at the same decision point, so hook-consumption order - and
     * with it the whole simulation - is identical between interpreted
     * and timing-replayed execution. A CorrectSingle decision adds the
     * scrub penalty to the run's cycle count; a DetectDouble decision
     * aborts the run with ecc_uncorrectable (and faulted) set.
     */
    void setEccHook(fault::EccHook hook) { _ecc_hook = std::move(hook); }

    /** @return single-bit ECC events corrected across all runs. */
    std::uint64_t eccCorrected() const { return _ecc_corrected; }

    /** @return double-bit (uncorrectable) ECC events across all runs. */
    std::uint64_t eccUncorrectable() const { return _ecc_uncorrectable; }

  private:
    struct StreamState
    {
        Instruction cfg;       ///< the CfgStream instruction
        bool configured = false;
        std::uint64_t next_seq_addr = ~0ull; ///< sequential detector
    };

    /**
     * One decoded body instruction: the pre/post placement gate and
     * the stream operand are resolved once per run instead of on every
     * iteration of the Instruction Repeater nest.
     */
    struct MicroOp
    {
        const Instruction *ins = nullptr;
        /// Placement gates for loop dims 1/2: the op runs only when
        /// idx[d] matches (any_index disables the gate for that dim).
        std::uint32_t want1 = ~0u;
        std::uint32_t want2 = ~0u;
        StreamState *stream = nullptr; ///< Load/Store/Gather operand
        std::uint32_t esz = 0;         ///< stream element size (bytes)
        std::uint32_t run_len = 0;     ///< Load/Store run length
        std::uint32_t groups = 0;      ///< Load/Store runs per tile
    };

    /** Charge a DRAM access of @p bytes starting at @p addr. */
    Cycles memCost(StreamState &s, std::uint64_t addr,
                   std::uint64_t bytes) const;

    /** @return cycles for a vector op over @p len elements. */
    Cycles vopCost(VFunc fn, std::size_t len) const;

    /** Check live scratchpad usage after a register grows. */
    void checkScratch(const std::vector<std::vector<float>> &regs) const;

    /**
     * Consult the fault hook; on a Fault decision fill @p res with the
     * trap result (cost charged, trace recorded) and return true.
     */
    bool faultTrap(Tick trace_base, RunResult &res);

    /**
     * Consult the ECC hook once for this run. On DetectDouble fill
     * @p res with the abort trap (cost charged, trace recorded) and
     * return true; on CorrectSingle add the scrub penalty to
     * @p penalty and bump @p res.ecc_corrected.
     */
    bool eccConsult(Tick trace_base, RunResult &res, Cycles &penalty);

    /** Emit the per-run trace spans and counters for @p res. */
    void emitRunTrace(const Program &program, const RunResult &res,
                      Tick trace_base) const;

    DrxConfig _cfg;
    fault::MachineHook _fault_hook;
    fault::EccHook _ecc_hook;
    std::uint64_t _faults = 0;
    std::uint64_t _ecc_corrected = 0;
    std::uint64_t _ecc_uncorrectable = 0;
    std::vector<std::uint8_t> _dram;
    std::uint64_t _brk = 0;

    // Interpreter scratch arena: the register file, the vector-op
    // temporary and the decoded micro-op buffer are reused across
    // run() calls so steady-state interpretation never allocates.
    std::vector<std::vector<float>> _regs;
    std::vector<float> _tmp;
    std::vector<MicroOp> _uops;
};

} // namespace dmx::drx

#endif // DMX_DRX_MACHINE_HH
