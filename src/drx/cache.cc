#include "drx/cache.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::drx
{

namespace
{

// Process-wide counter totals: plain relaxed atomics summed across
// every ProgramCache on every thread. The final values are sums of
// per-thread contributions, so they are independent of scheduling.
std::atomic<std::uint64_t> g_compile_hits{0};
std::atomic<std::uint64_t> g_compile_misses{0};
std::atomic<std::uint64_t> g_timing_hits{0};
std::atomic<std::uint64_t> g_timing_misses{0};
std::atomic<std::uint64_t> g_evictions{0};

inline void
bump(std::atomic<std::uint64_t> &c)
{
    c.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Incremental FNV-1a over heterogeneous fields. Bulk payloads (weight
 * and index tables reach hundreds of KB) are folded a word at a time:
 * lookup() hashes them on every call, so the hash throughput is on the
 * cache's hot path.
 */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        while (n >= 8) {
            std::uint64_t w;
            std::memcpy(&w, b, 8);
            h ^= w;
            h *= 1099511628211ull;
            b += 8;
            n -= 8;
        }
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void u8(std::uint8_t v) { bytes(&v, sizeof(v)); }

    void
    f32(float v)
    {
        std::uint32_t b32;
        std::memcpy(&b32, &v, sizeof(b32));
        u64(b32);
    }

    void
    f64(double v)
    {
        std::uint64_t b64;
        std::memcpy(&b64, &v, sizeof(b64));
        u64(b64);
    }
};

void
hashDesc(Fnv &f, const restructure::BufferDesc &d)
{
    f.u8(static_cast<std::uint8_t>(d.dtype));
    f.u64(d.shape.size());
    for (std::size_t s : d.shape)
        f.u64(s);
}

} // namespace

std::uint64_t
kernelStructuralHash(const restructure::Kernel &kernel,
                     const DrxConfig &cfg)
{
    Fnv f;
    hashDesc(f, kernel.input);
    f.u64(kernel.stages.size());
    for (const restructure::Stage &st : kernel.stages) {
        f.u8(static_cast<std::uint8_t>(st.op));
        f.u64(st.steps.size());
        for (const restructure::MapStep &step : st.steps) {
            f.u8(static_cast<std::uint8_t>(step.fn));
            f.f32(step.arg);
        }
        f.u8(static_cast<std::uint8_t>(st.to));
        f.u64(st.mat_rows);
        f.u64(st.mat_cols);
        f.u8(st.weights ? 1 : 0);
        if (st.weights) {
            f.u64(st.weights->size());
            f.bytes(st.weights->data(),
                    st.weights->size() * sizeof(float));
        }
        f.u8(st.indices ? 1 : 0);
        if (st.indices) {
            f.u64(st.indices->size());
            f.bytes(st.indices->data(),
                    st.indices->size() * sizeof(std::uint32_t));
        }
        f.u64(st.out_shape.size());
        for (std::size_t s : st.out_shape)
            f.u64(s);
        f.u64(st.pad_to);
        f.f32(st.pad_value);
    }
    f.u64(cfg.lanes);
    f.u64(cfg.scratch_bytes);
    f.u64(cfg.icache_bytes);
    f.f64(cfg.freq_hz);
    f.f64(cfg.dram_bytes_per_sec);
    f.u64(cfg.dram_bytes);
    f.u8(cfg.hardware_loops ? 1 : 0);
    f.u8(cfg.double_buffer ? 1 : 0);
    f.u64(cfg.min_burst_bytes);
    return f.h;
}

std::uint64_t
fusedChainHash(const std::vector<restructure::Kernel> &parts,
               const DrxConfig &cfg)
{
    // Tagged fold of the per-part structural hashes: the leading tag
    // plus the length keep fused entries in a hash family disjoint
    // from plain kernelStructuralHash values of the same content.
    Fnv f;
    f.u64(0xFC5EDC4A11ull); // "fused chain" domain tag
    f.u64(parts.size());
    for (const restructure::Kernel &k : parts)
        f.u64(kernelStructuralHash(k, cfg));
    return f.h;
}

namespace
{

template <typename T>
bool
sharedVecEqual(const std::shared_ptr<const std::vector<T>> &a,
               const std::shared_ptr<const std::vector<T>> &b)
{
    if (a == b)
        return true; // same table (or both null)
    if (!a || !b)
        return false;
    return *a == *b;
}

bool
stageEqual(const restructure::Stage &a, const restructure::Stage &b)
{
    auto stepEq = [](const restructure::MapStep &x,
                     const restructure::MapStep &y) {
        return x.fn == y.fn && x.arg == y.arg;
    };
    if (a.op != b.op || a.steps.size() != b.steps.size())
        return false;
    for (std::size_t i = 0; i < a.steps.size(); ++i)
        if (!stepEq(a.steps[i], b.steps[i]))
            return false;
    return a.to == b.to && a.mat_rows == b.mat_rows &&
           a.mat_cols == b.mat_cols &&
           sharedVecEqual(a.weights, b.weights) &&
           sharedVecEqual(a.indices, b.indices) &&
           a.out_shape == b.out_shape && a.pad_to == b.pad_to &&
           a.pad_value == b.pad_value;
}

} // namespace

bool
kernelStructurallyEqual(const restructure::Kernel &a,
                        const restructure::Kernel &b)
{
    if (a.input.dtype != b.input.dtype || a.input.shape != b.input.shape)
        return false;
    if (a.stages.size() != b.stages.size())
        return false;
    for (std::size_t i = 0; i < a.stages.size(); ++i)
        if (!stageEqual(a.stages[i], b.stages[i]))
            return false;
    return true;
}

bool
drxConfigEqual(const DrxConfig &a, const DrxConfig &b)
{
    return a.lanes == b.lanes && a.scratch_bytes == b.scratch_bytes &&
           a.icache_bytes == b.icache_bytes && a.freq_hz == b.freq_hz &&
           a.dram_bytes_per_sec == b.dram_bytes_per_sec &&
           a.dram_bytes == b.dram_bytes &&
           a.hardware_loops == b.hardware_loops &&
           a.double_buffer == b.double_buffer &&
           a.min_burst_bytes == b.min_burst_bytes;
}

DrxCacheConfig
defaultCacheConfig()
{
    // The environment is read once per process: flipping the variable
    // mid-run cannot produce a half-cached execution.
    static const bool disabled = [] {
        const char *env = std::getenv("DMX_NO_DRX_CACHE");
        return env != nullptr && env[0] != '\0';
    }();
    DrxCacheConfig cfg;
    cfg.enabled = !disabled;
    return cfg;
}

// ---------------------------------------------------------- ProgramCache

ProgramCache::ProgramCache(DrxCacheConfig cfg)
    : _cfg(cfg),
      _stats("drx.cache"),
      _stat_hits(&_stats, "hits", "compiled-kernel cache hits"),
      _stat_misses(&_stats, "misses", "compiled-kernel cache misses"),
      _stat_timing_hits(&_stats, "timing_hits",
                        "lookups that found a timing memo"),
      _stat_timing_misses(&_stats, "timing_misses",
                          "cached lookups without a timing memo"),
      _stat_evictions(&_stats, "evictions", "LRU evictions")
{
}

void
ProgramCache::setConfig(const DrxCacheConfig &cfg)
{
    _cfg = cfg;
    evictIfNeeded(0);
}

void
ProgramCache::traceEvent(const char *what, Tick tick) const
{
    if (!_cfg.trace_events)
        return;
    if (auto *tb = trace::active())
        tb->instant(trace::Category::DrxCache, what, "drxcache", tick);
}

void
ProgramCache::evictIfNeeded(Tick tick)
{
    while (_entries.size() > _cfg.capacity) {
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->second.last_used < victim->second.last_used)
                victim = it;
        }
        _entries.erase(victim);
        ++_counters.evictions;
        ++_stat_evictions;
        bump(g_evictions);
        traceEvent("evict", tick);
    }
}

ProgramCache::LookupResult
ProgramCache::lookup(const restructure::Kernel &kernel,
                     const DrxConfig &cfg, Tick tick)
{
    LookupResult out;
    out.key = kernelStructuralHash(kernel, cfg);
    ++_clock;

    auto it = _entries.find(out.key);
    if (it != _entries.end() && it->second.parts.empty() &&
        drxConfigEqual(it->second.cfg, cfg) &&
        kernelStructurallyEqual(it->second.kernel, kernel)) {
        it->second.last_used = _clock;
        out.compiled = it->second.compiled;
        out.timing = _cfg.timing_memo ? it->second.timing : nullptr;
        out.hit = true;
        ++_counters.compile_hits;
        ++_stat_hits;
        bump(g_compile_hits);
        if (out.timing) {
            ++_counters.timing_hits;
            ++_stat_timing_hits;
            bump(g_timing_hits);
        } else {
            ++_counters.timing_misses;
            ++_stat_timing_misses;
            bump(g_timing_misses);
        }
        traceEvent("hit", tick);
        return out;
    }

    // Miss (or a 64-bit hash collision, which the structural equality
    // check above downgrades to a miss: the colliding entry is simply
    // replaced, trading its cached plan for correctness).
    Entry e;
    e.kernel = kernel;
    e.cfg = cfg;
    e.compiled =
        std::make_shared<const CompiledKernel>(planKernel(kernel, cfg));
    e.last_used = _clock;
    out.compiled = e.compiled;
    _entries[out.key] = std::move(e);
    ++_counters.compile_misses;
    ++_stat_misses;
    bump(g_compile_misses);
    traceEvent("miss", tick);
    evictIfNeeded(tick);
    return out;
}

ProgramCache::LookupResult
ProgramCache::lookupFused(const std::vector<restructure::Kernel> &parts,
                          const DrxConfig &cfg, Tick tick,
                          const std::function<CompiledKernel()> &plan)
{
    LookupResult out;
    out.key = fusedChainHash(parts, cfg);
    ++_clock;

    auto partsEqual = [&parts](const Entry &e) {
        if (e.parts.size() != parts.size())
            return false;
        for (std::size_t i = 0; i < parts.size(); ++i)
            if (!kernelStructurallyEqual(e.parts[i], parts[i]))
                return false;
        return true;
    };

    auto it = _entries.find(out.key);
    if (it != _entries.end() && !it->second.parts.empty() &&
        drxConfigEqual(it->second.cfg, cfg) && partsEqual(it->second)) {
        it->second.last_used = _clock;
        out.compiled = it->second.compiled;
        out.timing = _cfg.timing_memo ? it->second.timing : nullptr;
        out.hit = true;
        ++_counters.compile_hits;
        ++_stat_hits;
        bump(g_compile_hits);
        if (out.timing) {
            ++_counters.timing_hits;
            ++_stat_timing_hits;
            bump(g_timing_hits);
        } else {
            ++_counters.timing_misses;
            ++_stat_timing_misses;
            bump(g_timing_misses);
        }
        traceEvent("hit", tick);
        return out;
    }

    // Miss (or a collision with a plain or mismatched entry, which the
    // partwise verification downgrades to a replacement miss).
    Entry e;
    e.parts = parts;
    e.cfg = cfg;
    e.compiled = std::make_shared<const CompiledKernel>(plan());
    e.last_used = _clock;
    out.compiled = e.compiled;
    _entries[out.key] = std::move(e);
    ++_counters.compile_misses;
    ++_stat_misses;
    bump(g_compile_misses);
    traceEvent("miss", tick);
    evictIfNeeded(tick);
    return out;
}

void
ProgramCache::storeTiming(
    std::uint64_t key,
    std::shared_ptr<const std::vector<RunResult>> memo)
{
    auto it = _entries.find(key);
    if (it == _entries.end() || it->second.timing)
        return; // evicted meanwhile, or already recorded (same plan)
    it->second.timing = std::move(memo);
}

void
ProgramCache::clear()
{
    _entries.clear();
}

ProgramCache &
ProgramCache::process()
{
    thread_local ProgramCache cache;
    return cache;
}

CacheCounters
ProgramCache::globalCounters()
{
    CacheCounters c;
    c.compile_hits = g_compile_hits.load(std::memory_order_relaxed);
    c.compile_misses = g_compile_misses.load(std::memory_order_relaxed);
    c.timing_hits = g_timing_hits.load(std::memory_order_relaxed);
    c.timing_misses = g_timing_misses.load(std::memory_order_relaxed);
    c.evictions = g_evictions.load(std::memory_order_relaxed);
    return c;
}

void
ProgramCache::resetGlobalCounters()
{
    g_compile_hits = 0;
    g_compile_misses = 0;
    g_timing_hits = 0;
    g_timing_misses = 0;
    g_evictions = 0;
}

// --------------------------------------------------- cached entry point

RunResult
runKernelOnDrxCached(const restructure::Kernel &kernel,
                     const restructure::Bytes &input, DrxMachine &machine,
                     restructure::Bytes *out, Tick trace_base,
                     ProgramCache *cache)
{
    if (cache == nullptr)
        cache = &ProgramCache::process();
    if (!cache->config().enabled)
        return runKernelOnDrx(kernel, input, machine, out, trace_base);

    if (input.size() != kernel.input.bytes())
        dmx_fatal("runKernelOnDrx('%s'): input is %zu bytes, expected %zu",
                  kernel.name.c_str(), input.size(),
                  kernel.input.bytes());

    ProgramCache::LookupResult ref =
        cache->lookup(kernel, machine.config(), trace_base);

    // Tier 2: timing-only replay. Only when no output is requested --
    // callers that want bytes always execute for real, so cached
    // results are by construction the machine's own results.
    if (out == nullptr && ref.timing &&
        ref.timing->size() == ref.compiled->programs.size()) {
        RunResult res;
        Tick stage_base = trace_base;
        for (std::size_t i = 0; i < ref.compiled->programs.size(); ++i) {
            const RunResult stage = machine.replayRun(
                ref.compiled->programs[i], (*ref.timing)[i], stage_base);
            stage_base += stage.time(machine.config().freq_hz);
            res += stage;
            if (res.faulted)
                break; // the machine trapped; later stages never start
        }
        return res;
    }

    // Tier 1: reuse the cached plan; interpret for real.
    std::shared_ptr<const CompiledKernel> installed =
        installPlan(ref.compiled, machine);
    machine.write(installed->input_addr, input.data(), input.size());
    RunResult res;
    Tick stage_base = trace_base;
    std::vector<RunResult> stages;
    stages.reserve(installed->programs.size());
    for (const Program &p : installed->programs) {
        const RunResult stage = machine.run(p, stage_base);
        stage_base += stage.time(machine.config().freq_hz);
        stages.push_back(stage);
        res += stage;
        if (res.faulted)
            break;
    }
    if (out != nullptr && !res.faulted)
        *out = machine.read(installed->output_addr,
                            installed->out_desc.bytes());

    // Record the timing memo from a fault-free run of the shared plan
    // itself (base-0 install). Rebasing preserves timing too, but
    // restricting recording to the canonical install keeps the
    // argument that replay charges exactly what run() would trivial.
    // ECC-scrubbed runs are excluded for the same reason: a memo must
    // hold the base timing only, so replayRun can add each replay's
    // own scrub penalty without double-charging the recorded one.
    if (cache->config().timing_memo && !res.faulted &&
        res.ecc_corrected == 0 &&
        installed->shape_deterministic && !ref.timing &&
        installed.get() == ref.compiled.get()) {
        cache->storeTiming(
            ref.key, std::make_shared<const std::vector<RunResult>>(
                         std::move(stages)));
    }
    return res;
}

} // namespace dmx::drx
