#include "drx/program.hh"

#include "common/logging.hh"

namespace dmx::drx
{

std::size_t
Program::bodySize() const
{
    std::size_t n = 0;
    bool in_body = false;
    for (const Instruction &ins : code) {
        if (ins.op == Opcode::Sync) {
            in_body = true;
        } else if (ins.op == Opcode::Halt) {
            in_body = false;
        } else if (in_body) {
            ++n;
        }
    }
    return n;
}

std::string
Program::disassemble() const
{
    std::string out = "; drx program: " + name + "\n";
    for (const Instruction &ins : code) {
        const bool body = ins.op != Opcode::CfgLoop &&
                          ins.op != Opcode::CfgStream &&
                          ins.op != Opcode::Sync && ins.op != Opcode::Halt;
        out += (body ? "    " : "") + ins.disassemble() + "\n";
    }
    return out;
}

void
Program::validate() const
{
    bool seen_sync = false;
    bool seen_halt = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &ins = code[i];
        if (seen_halt)
            dmx_fatal("program '%s': instruction after halt", name.c_str());
        switch (ins.op) {
          case Opcode::CfgLoop:
            if (seen_sync)
                dmx_fatal("program '%s': cfg.loop after sync",
                          name.c_str());
            if (ins.dim >= max_loop_dims)
                dmx_fatal("program '%s': loop dim %u out of range",
                          name.c_str(), ins.dim);
            if (ins.iters == 0)
                dmx_fatal("program '%s': zero-iteration loop",
                          name.c_str());
            break;
          case Opcode::CfgStream:
            if (seen_sync)
                dmx_fatal("program '%s': cfg.stream after sync",
                          name.c_str());
            if (ins.stream >= max_streams)
                dmx_fatal("program '%s': stream %u out of range",
                          name.c_str(), ins.stream);
            if (ins.tile == 0 || ins.tile > max_tile_elems)
                dmx_fatal("program '%s': tile %u out of range (max %u)",
                          name.c_str(), ins.tile, max_tile_elems);
            break;
          case Opcode::Load:
          case Opcode::Store:
            if (!seen_sync)
                dmx_fatal("program '%s': tile access before sync",
                          name.c_str());
            if (ins.reg >= max_regs || ins.stream >= max_streams)
                dmx_fatal("program '%s': bad reg/stream index",
                          name.c_str());
            break;
          case Opcode::Gather:
            if (!seen_sync)
                dmx_fatal("program '%s': gather before sync",
                          name.c_str());
            if (ins.dst >= max_regs || ins.src_b >= max_regs ||
                ins.stream >= max_streams)
                dmx_fatal("program '%s': bad gather operands",
                          name.c_str());
            break;
          case Opcode::Compute:
            if (!seen_sync)
                dmx_fatal("program '%s': compute before sync",
                          name.c_str());
            if (ins.dst >= max_regs || ins.src_a >= max_regs ||
                ins.src_b >= max_regs)
                dmx_fatal("program '%s': bad compute register",
                          name.c_str());
            if (ins.fn == VFunc::Fill &&
                (ins.count == 0 || ins.count > max_tile_elems))
                dmx_fatal("program '%s': bad fill count %u", name.c_str(),
                          ins.count);
            break;
          case Opcode::Sync:
            if (seen_sync)
                dmx_fatal("program '%s': multiple sync", name.c_str());
            seen_sync = true;
            break;
          case Opcode::Halt:
            seen_halt = true;
            break;
        }
    }
    if (!seen_sync)
        dmx_fatal("program '%s': missing sync", name.c_str());
    if (!seen_halt)
        dmx_fatal("program '%s': missing halt", name.c_str());
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    _prog.name = std::move(name);
}

ProgramBuilder &
ProgramBuilder::loop(unsigned dim, std::uint32_t iters)
{
    Instruction ins;
    ins.op = Opcode::CfgLoop;
    ins.dim = static_cast<std::uint8_t>(dim);
    ins.iters = iters;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::streamCfg(unsigned stream, std::uint64_t base, DType dtype,
                          std::int64_t s0, std::int64_t s1, std::int64_t s2,
                          std::uint32_t tile)
{
    Instruction ins;
    ins.op = Opcode::CfgStream;
    ins.stream = static_cast<std::uint8_t>(stream);
    ins.base = base;
    ins.dtype = dtype;
    ins.stride[0] = s0;
    ins.stride[1] = s1;
    ins.stride[2] = s2;
    ins.tile = tile;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::runs(std::uint32_t run_len, std::int64_t run_stride)
{
    if (_prog.code.empty() ||
        _prog.code.back().op != Opcode::CfgStream)
        dmx_fatal("ProgramBuilder::runs: no cfg.stream to modify");
    Instruction &ins = _prog.code.back();
    if (run_len == 0 || ins.tile % run_len != 0)
        dmx_fatal("ProgramBuilder::runs: run_len %u must divide tile %u",
                  run_len, ins.tile);
    ins.run_len = run_len;
    ins.run_stride = run_stride;
    return *this;
}

ProgramBuilder &
ProgramBuilder::sync()
{
    Instruction ins;
    ins.op = Opcode::Sync;
    _prog.code.push_back(ins);
    _synced = true;
    return *this;
}

ProgramBuilder &
ProgramBuilder::load(unsigned reg, unsigned stream, unsigned depth)
{
    Instruction ins;
    ins.op = Opcode::Load;
    ins.reg = static_cast<std::uint8_t>(reg);
    ins.stream = static_cast<std::uint8_t>(stream);
    ins.depth = static_cast<std::uint8_t>(depth);
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::store(unsigned stream, unsigned reg, unsigned depth)
{
    Instruction ins;
    ins.op = Opcode::Store;
    ins.stream = static_cast<std::uint8_t>(stream);
    ins.reg = static_cast<std::uint8_t>(reg);
    ins.depth = static_cast<std::uint8_t>(depth);
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::gather(unsigned dst, unsigned stream, unsigned idx_reg,
                       std::uint32_t run_len)
{
    Instruction ins;
    ins.op = Opcode::Gather;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.stream = static_cast<std::uint8_t>(stream);
    ins.src_b = static_cast<std::uint8_t>(idx_reg);
    ins.count = run_len;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::compute(VFunc fn, unsigned dst, unsigned src_a,
                        unsigned src_b)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = fn;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.src_a = static_cast<std::uint8_t>(src_a);
    ins.src_b = static_cast<std::uint8_t>(src_b);
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::compute1(VFunc fn, unsigned dst, unsigned src_a, float imm)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = fn;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.src_a = static_cast<std::uint8_t>(src_a);
    ins.imm = imm;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::fill(unsigned dst, float imm, std::uint32_t count)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = VFunc::Fill;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.imm = imm;
    ins.count = count;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::transpose(unsigned dst, unsigned src, std::uint32_t rows,
                          std::uint32_t cols)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = VFunc::TransB;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.src_a = static_cast<std::uint8_t>(src);
    ins.count = rows;
    ins.count2 = cols;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::segsum(unsigned dst, unsigned src, std::uint32_t width)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = VFunc::SegSum;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.src_a = static_cast<std::uint8_t>(src);
    ins.count = width;
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::reset(unsigned dst)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = VFunc::Reset;
    ins.dst = static_cast<std::uint8_t>(dst);
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::append(unsigned dst, unsigned src)
{
    Instruction ins;
    ins.op = Opcode::Compute;
    ins.fn = VFunc::Append;
    ins.dst = static_cast<std::uint8_t>(dst);
    ins.src_a = static_cast<std::uint8_t>(src);
    _prog.code.push_back(ins);
    return *this;
}

ProgramBuilder &
ProgramBuilder::at(unsigned depth, bool post)
{
    if (_prog.code.empty())
        dmx_fatal("ProgramBuilder::at: no instruction to modify");
    _prog.code.back().depth = static_cast<std::uint8_t>(depth);
    _prog.code.back().post = post;
    return *this;
}

Program
ProgramBuilder::build()
{
    Instruction halt;
    halt.op = Opcode::Halt;
    _prog.code.push_back(halt);
    _prog.validate();
    return std::move(_prog);
}

} // namespace dmx::drx
