/**
 * @file
 * DRX programs and a validating builder.
 *
 * Program structure (enforced by validate()):
 *   [CfgStream | CfgLoop]*  Sync  [Load | Store | Gather | Compute]*  Halt
 *
 * The section before Sync programs the Instruction Repeater and the
 * Off-chip Data Access Engine; the body between Sync and Halt is what
 * the Repeater executes once per iteration of the configured loop nest.
 */

#ifndef DMX_DRX_PROGRAM_HH
#define DMX_DRX_PROGRAM_HH

#include <string>
#include <vector>

#include "drx/isa.hh"

namespace dmx::drx
{

/** A complete DRX program. */
struct Program
{
    std::string name;
    std::vector<Instruction> code;

    /** @return total body instructions (between Sync and Halt). */
    std::size_t bodySize() const;

    /** @return multi-line disassembly. */
    std::string disassemble() const;

    /**
     * Check structural invariants (section ordering, register/stream
     * indices in range, tile sizes within scratchpad capacity).
     * @throws via fatal on violations
     */
    void validate() const;
};

/** Fluent builder for DRX programs. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Configure loop dimension @p dim to run @p iters iterations. */
    ProgramBuilder &loop(unsigned dim, std::uint32_t iters);

    /**
     * Configure stream descriptor @p stream.
     *
     * @param stream descriptor index
     * @param base   DRAM byte address of element 0
     * @param dtype  element type in DRAM
     * @param s0,s1,s2 per-loop-dim strides in elements
     * @param tile   elements moved per access
     */
    ProgramBuilder &streamCfg(unsigned stream, std::uint64_t base,
                              DType dtype, std::int64_t s0, std::int64_t s1,
                              std::int64_t s2, std::uint32_t tile);

    /**
     * Attach a run pattern to the most recent cfg.stream (see
     * Instruction::run_len).
     */
    ProgramBuilder &runs(std::uint32_t run_len, std::int64_t run_stride);

    /** Begin the repeated body. */
    ProgramBuilder &sync();

    /** Load a tile from @p stream into @p reg (at @p depth). */
    ProgramBuilder &load(unsigned reg, unsigned stream, unsigned depth = 2);

    /** Store @p reg to @p stream (at @p depth). */
    ProgramBuilder &store(unsigned stream, unsigned reg,
                          unsigned depth = 2);

    /**
     * Indexed DRAM gather: dst[i] = stream[idx_reg[i]]. With
     * @p run_len > 1, each index addresses run_len consecutive
     * elements (descriptor-style DMA).
     */
    ProgramBuilder &gather(unsigned dst, unsigned stream,
                           unsigned idx_reg, std::uint32_t run_len = 1);

    /** Two-operand vector op. */
    ProgramBuilder &compute(VFunc fn, unsigned dst, unsigned src_a,
                            unsigned src_b);

    /** One-operand vector op (optionally with an immediate). */
    ProgramBuilder &compute1(VFunc fn, unsigned dst, unsigned src_a,
                             float imm = 0.0f);

    /** Fill @p dst with @p count copies of @p imm. */
    ProgramBuilder &fill(unsigned dst, float imm, std::uint32_t count);

    /** Block transpose: dst = transpose(src) viewed as rows x cols. */
    ProgramBuilder &transpose(unsigned dst, unsigned src,
                              std::uint32_t rows, std::uint32_t cols);

    /** Segmented sum: dst[i] = sum of src's i-th width-sized chunk. */
    ProgramBuilder &segsum(unsigned dst, unsigned src,
                           std::uint32_t width);

    /** Reset a scratch register's length to zero. */
    ProgramBuilder &reset(unsigned dst);

    /** Append the contents of @p src to @p dst. */
    ProgramBuilder &append(unsigned dst, unsigned src);

    /**
     * Adjust the depth/post placement of the most recently added body
     * instruction (see Instruction::depth).
     */
    ProgramBuilder &at(unsigned depth, bool post = false);

    /** Finish with Halt, validate, and return the program. */
    Program build();

  private:
    Program _prog;
    bool _synced = false;
};

} // namespace dmx::drx

#endif // DMX_DRX_PROGRAM_HH
