/**
 * @file
 * Plan-to-plan fusion of adjacent restructure kernels (DESIGN.md 7g).
 *
 * When stage i's output stream feeds stage i+1's input stream on the
 * same DRX, the two compiled plans can be merged into one: the
 * consumer plan is shifted so its input buffer *aliases* the producer
 * plan's output buffer, and the program lists are concatenated. The
 * fused chain then runs as a single device command - one install, one
 * submission, one completion - eliminating the per-stage host round
 * trip in the spirit of DataMaestro's decoupled stream-to-stream
 * chaining.
 *
 * Fusion is a pure transform over planKernel() output: it never
 * re-lowers a kernel, so the fused plan's programs are byte-identical
 * to the unfused plans' programs (only the consumer's DRAM addresses
 * shift, exactly as installPlan() would shift them). That is what
 * makes the differential guarantee trivial: fused and unfused
 * execution stream the same bytes through the same instructions.
 *
 * Legality (canFusePlans) is deliberately conservative; every
 * rejection carries a pinned reason string so tests can assert the
 * classifier never silently over-fuses:
 *  - the producer's output descriptor must match the consumer's input
 *    descriptor (dtype and byte count);
 *  - no Gather opcode on either side (data-dependent addressing);
 *  - the producer must not place constants above its output buffer
 *    (the consumer's shifted footprint would overwrite them at
 *    install time - MatVec filter banks do this);
 *  - the fused footprint must fit the device DRAM.
 */

#ifndef DMX_DRX_FUSION_HH
#define DMX_DRX_FUSION_HH

#include <memory>
#include <string>
#include <vector>

#include "drx/cache.hh"
#include "drx/compiler.hh"

namespace dmx::drx
{

/** Outcome of a fusion-legality query. */
struct FusionVerdict
{
    bool ok = false;
    std::string reason; ///< pinned rejection cause; empty when ok
};

/**
 * May @p b be fused onto @p a (a's output feeding b's input) on a DRX
 * configured as @p cfg? Pure; consult before every fusePlans call.
 */
FusionVerdict canFusePlans(const CompiledKernel &a,
                           const CompiledKernel &b, const DrxConfig &cfg);

/**
 * Fuse @p b onto @p a. Preconditions checked by canFusePlans. The
 * result is a base-0 plan like any planKernel() output: installPlan()
 * rebases it wholesale, so the ProgramCache can memoize it and
 * retries reinstall instead of recompiling.
 */
CompiledKernel fusePlans(const CompiledKernel &a, const CompiledKernel &b);

/** Result of planning a multi-kernel chain as one fused plan. */
struct FusedChainPlan
{
    /// The fused base-0 plan; null when any adjacent pair is illegal.
    std::shared_ptr<const CompiledKernel> compiled;
    /// Verdict of the first rejected pair (ok == true when compiled).
    FusionVerdict verdict;
    std::uint64_t key = 0;  ///< fused-chain cache key (0 uncached)
    bool cache_hit = false; ///< the fused plan came out of the cache
};

/**
 * Plan every kernel of @p kernels and fuse them left to right. With a
 * @p cache, both the per-part plans and the fused plan are memoized
 * (the fused entry is keyed by the part structure, so the same chain
 * fuses exactly once per cache). Legality is re-checked on every call:
 * the pairwise verdict is cheap next to planning, and the cached fused
 * plan is only returned for a chain that proved legal.
 */
FusedChainPlan planFusedChain(const std::vector<restructure::Kernel> &kernels,
                              const DrxConfig &cfg,
                              ProgramCache *cache = nullptr, Tick tick = 0);

} // namespace dmx::drx

#endif // DMX_DRX_FUSION_HH
