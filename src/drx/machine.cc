#include "drx/machine.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/dtype.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

namespace dmx::drx
{

namespace
{

// -1 = not yet resolved against the environment.
std::atomic<int> g_simd{-1};

/// Cycles charged when an injected machine fault traps a program run
/// (fault detection, pipeline drain and status report to the driver).
constexpr Cycles machine_fault_trap_cycles = 512;

/// Cycles to scrub-correct a single-bit scratchpad ECC upset: the
/// corrected word is re-written and the pipeline restarts the affected
/// access. Charged on top of the run's base timing.
constexpr Cycles machine_ecc_scrub_cycles = 32;

} // namespace

bool
simdEnabled()
{
    int on = g_simd.load(std::memory_order_relaxed);
    if (on < 0) {
        const char *env = std::getenv("DMX_NO_SIMD_DRX");
        on = (env && env[0] != '\0' && env[0] != '0') ? 0 : 1;
        int expected = -1;
        if (!g_simd.compare_exchange_strong(expected, on,
                                            std::memory_order_relaxed)) {
            on = expected;
        }
    }
    return on != 0;
}

void
setSimdEnabled(bool on)
{
    g_simd.store(on ? 1 : 0, std::memory_order_relaxed);
}

DrxMachine::DrxMachine(DrxConfig cfg) : _cfg(cfg)
{
    if (_cfg.lanes == 0)
        dmx_fatal("DrxMachine: need at least one RE lane");
    _dram.resize(_cfg.dram_bytes, 0);
}

std::uint64_t
DrxMachine::alloc(std::uint64_t bytes)
{
    const std::uint64_t base = (_brk + 63) & ~63ull;
    if (base + bytes > _dram.size())
        dmx_fatal("DrxMachine::alloc: out of device DRAM "
                  "(%llu requested at %llu of %zu)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(base), _dram.size());
    _brk = base + bytes;
    return base;
}

void
DrxMachine::resetAlloc()
{
    _brk = 0;
}

void
DrxMachine::write(std::uint64_t addr, const std::uint8_t *src,
                  std::size_t len)
{
    if (addr + len > _dram.size())
        dmx_fatal("DrxMachine::write: out of range");
    std::memcpy(_dram.data() + addr, src, len);
}

std::vector<std::uint8_t>
DrxMachine::read(std::uint64_t addr, std::size_t len) const
{
    if (addr + len > _dram.size())
        dmx_fatal("DrxMachine::read: out of range");
    return std::vector<std::uint8_t>(_dram.begin() + static_cast<long>(addr),
                                     _dram.begin() +
                                         static_cast<long>(addr + len));
}

Cycles
DrxMachine::memCost(StreamState &s, std::uint64_t addr,
                    std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    // Back-to-back sequential accesses on a stream run at the full
    // DRAM rate; a small forward skip still burns the skipped bytes
    // (the open row / prefetched burst covers them); a real
    // discontinuity pays burst granularity.
    std::uint64_t charged;
    if (addr == s.next_seq_addr) {
        charged = bytes;
    } else if (s.next_seq_addr != ~0ull && addr > s.next_seq_addr &&
               addr - s.next_seq_addr <= _cfg.min_burst_bytes) {
        charged = (addr - s.next_seq_addr) + bytes;
    } else {
        charged = std::max<std::uint64_t>(bytes, _cfg.min_burst_bytes);
    }
    s.next_seq_addr = addr + bytes;
    const double cycles = static_cast<double>(charged) /
                          _cfg.dramBytesPerCycle();
    return static_cast<Cycles>(std::ceil(cycles));
}

Cycles
DrxMachine::vopCost(VFunc fn, std::size_t len) const
{
    const auto issues = static_cast<Cycles>(
        (len + _cfg.lanes - 1) / _cfg.lanes);
    switch (fn) {
      case VFunc::Sqrt:
      case VFunc::Log1p:
      case VFunc::Exp:
        return issues * 4; // multi-cycle functional unit
      case VFunc::RedSum:
      case VFunc::SegSum: {
        // Lane tree reduction after the per-lane partial sums; short
        // vectors only need a tree as deep as their live lanes.
        Cycles tree = 0;
        for (std::size_t l = std::min<std::size_t>(_cfg.lanes, len);
             l > 1; l = (l + 1) >> 1)
            ++tree;
        return issues + tree;
      }
      case VFunc::Reset:
        return 1;
      default:
        return std::max<Cycles>(issues, 1);
    }
}

void
DrxMachine::checkScratch(const std::vector<std::vector<float>> &regs) const
{
    std::uint64_t live = 0;
    for (const auto &r : regs)
        live += r.size() * sizeof(float);
    // The access/execute overlap double-buffers the in-flight stream
    // tiles; persistent (hoisted) tiles are resident once. The model
    // checks total live bytes against the full scratchpad and relies
    // on the compiler keeping stream tiles at <= half of it.
    const std::uint64_t budget = _cfg.scratch_bytes;
    if (live > budget)
        dmx_fatal("DrxMachine: scratchpad overflow (%llu live > %llu)",
                  static_cast<unsigned long long>(live),
                  static_cast<unsigned long long>(budget));
}

bool
DrxMachine::faultTrap(Tick trace_base, RunResult &res)
{
    if (!_fault_hook || _fault_hook() != fault::MachineAction::Fault)
        return false;
    // The machine trapped before committing any output. Charge a
    // small fixed trap-and-report cost; recovery (retry, or CPU
    // fallback once the device is marked unhealthy) is the
    // runtime's responsibility.
    ++_faults;
    res = RunResult{};
    res.faulted = true;
    res.total_cycles = machine_fault_trap_cycles;
    if (auto *tb = trace::active()) {
        const ClockDomain clk{_cfg.freq_hz};
        tb->span(trace::Category::Drx, "trap", "drx", trace_base,
                 trace_base + clk.cyclesToTicks(res.total_cycles),
                 res.total_cycles);
        tb->count("drx.faults", trace_base);
    }
    return true;
}

bool
DrxMachine::eccConsult(Tick trace_base, RunResult &res, Cycles &penalty)
{
    if (!_ecc_hook)
        return false;
    const fault::EccAction action = _ecc_hook();
    if (action == fault::EccAction::None)
        return false;
    const ClockDomain clk{_cfg.freq_hz};
    if (action == fault::EccAction::CorrectSingle) {
        // SEC: the flipped bit is corrected in place; only the scrub
        // penalty is observable outside the scratchpad.
        ++_ecc_corrected;
        ++res.ecc_corrected;
        penalty += machine_ecc_scrub_cycles;
        if (auto *tb = trace::active()) {
            tb->span(trace::Category::Integrity, "ecc_scrub", "drx",
                     trace_base,
                     trace_base +
                         clk.cyclesToTicks(machine_ecc_scrub_cycles),
                     machine_ecc_scrub_cycles);
            tb->count("integrity.ecc_corrected", trace_base);
        }
        return false;
    }
    // DED: detected but uncorrectable. The machine must not commit
    // poisoned data, so the run aborts exactly like a machine fault;
    // recovery (retry, failover) is the caller's responsibility.
    ++_ecc_uncorrectable;
    res = RunResult{};
    res.faulted = true;
    res.ecc_uncorrectable = true;
    res.total_cycles = machine_fault_trap_cycles;
    if (auto *tb = trace::active()) {
        tb->span(trace::Category::Integrity, "ecc_ded_trap", "drx",
                 trace_base,
                 trace_base + clk.cyclesToTicks(res.total_cycles),
                 res.total_cycles);
        tb->count("integrity.ecc_uncorrectable", trace_base);
    }
    return true;
}

void
DrxMachine::emitRunTrace(const Program &program, const RunResult &res,
                         Tick trace_base) const
{
    auto *tb = trace::active();
    if (!tb)
        return;
    const ClockDomain clk{_cfg.freq_hz};
    // Decoupled access/execute: fill, then the Restructuring Engines
    // and the Off-chip engine run (overlapped when double-buffered,
    // back to back otherwise).
    constexpr Cycles startup = 64;
    const Tick fill_end = trace_base + clk.cyclesToTicks(startup);
    const Tick exec_end =
        fill_end + clk.cyclesToTicks(res.compute_cycles);
    const Tick mem_begin = _cfg.double_buffer ? fill_end : exec_end;
    tb->span(trace::Category::Drx, program.name, "drx", trace_base,
             trace_base + clk.cyclesToTicks(res.total_cycles),
             res.dyn_instructions);
    tb->span(trace::Category::Drx, "fill", "drx.pipe", trace_base,
             fill_end, startup);
    tb->span(trace::Category::Drx, "execute", "drx.pipe", fill_end,
             exec_end, res.compute_cycles);
    tb->span(trace::Category::Drx, "dma", "drx.mem", mem_begin,
             mem_begin + clk.cyclesToTicks(res.mem_cycles),
             res.mem_cycles);
    tb->count("drx.instructions", trace_base,
              static_cast<double>(res.dyn_instructions));
    tb->count("drx.bytes_read", trace_base,
              static_cast<double>(res.bytes_read));
    tb->count("drx.bytes_written", trace_base,
              static_cast<double>(res.bytes_written));
}

RunResult
DrxMachine::replayRun(const Program &program, const RunResult &memo,
                      Tick trace_base)
{
    RunResult res;
    if (faultTrap(trace_base, res))
        return res;
    // Consult the ECC hook at the same point as run() so both paths
    // consume hook decisions in identical order. The memo itself stays
    // ECC-free (the cache only records scrub-free runs); a SEC event
    // here adds its penalty on top, exactly as run() would.
    Cycles ecc_penalty = 0;
    if (eccConsult(trace_base, res, ecc_penalty))
        return res;
    RunResult out = memo;
    out.ecc_corrected += res.ecc_corrected;
    out.total_cycles += ecc_penalty;
    emitRunTrace(program, out, trace_base);
    return out;
}

RunResult
DrxMachine::run(const Program &program, Tick trace_base)
{
    program.validate();

    {
        RunResult trap;
        if (faultTrap(trace_base, trap))
            return trap;
    }
    Cycles ecc_penalty = 0;
    std::uint32_t ecc_corrected = 0;
    {
        RunResult ecc;
        if (eccConsult(trace_base, ecc, ecc_penalty))
            return ecc;
        ecc_corrected = ecc.ecc_corrected;
    }

    // Decode configuration section.
    std::uint32_t iters[max_loop_dims] = {1, 1, 1};
    StreamState streams[max_streams];
    std::size_t body_begin = 0;
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const Instruction &ins = program.code[i];
        if (ins.op == Opcode::CfgLoop) {
            iters[ins.dim] = ins.iters;
        } else if (ins.op == Opcode::CfgStream) {
            streams[ins.stream].cfg = ins;
            streams[ins.stream].configured = true;
        } else if (ins.op == Opcode::Sync) {
            body_begin = i + 1;
            break;
        }
    }
    std::size_t body_end = body_begin;
    while (program.code[body_end].op != Opcode::Halt)
        ++body_end;

    if (program.bodySize() * 4 > _cfg.icache_bytes)
        dmx_fatal("DrxMachine: program body exceeds the instruction cache");

    // Interpreter arena: reuse the register file across runs (registers
    // start empty, matching a freshly constructed file).
    if (_regs.size() != max_regs)
        _regs.resize(max_regs);
    for (auto &r : _regs)
        r.clear();
    auto &regs = _regs;

    RunResult res;
    // Configuration instructions issue once each.
    res.compute_cycles += body_begin + 1;
    res.dyn_instructions += body_begin + 1;

    auto stream_ref = [&](std::uint8_t id) -> StreamState & {
        StreamState &s = streams[id];
        if (!s.configured)
            dmx_fatal("DrxMachine: stream %u used but not configured", id);
        return s;
    };

    // Decode the body once: resolve each instruction's placement gate
    // and stream operand instead of re-deriving them on every iteration
    // of the Instruction Repeater nest.
    _uops.clear();
    _uops.reserve(body_end - body_begin);
    const bool body_runs = iters[0] && iters[1] && iters[2];
    for (std::size_t pc = body_runs ? body_begin : body_end;
         pc < body_end; ++pc) {
        const Instruction &ins = program.code[pc];
        MicroOp u;
        u.ins = &ins;
        for (unsigned d = ins.depth + 1; d < max_loop_dims; ++d) {
            // A gate of iters[d]-1 (post) or 0 (pre); iters >= 1, so
            // the gate value is always reachable and ~0u stays free as
            // the "no gate" sentinel.
            const std::uint32_t want = ins.post ? iters[d] - 1 : 0;
            (d == 1 ? u.want1 : u.want2) = want;
        }
        switch (ins.op) {
          case Opcode::Load:
          case Opcode::Store:
          case Opcode::Gather: {
            StreamState &s = stream_ref(ins.stream);
            u.stream = &s;
            u.esz = static_cast<std::uint32_t>(dtypeSize(s.cfg.dtype));
            if (ins.op != Opcode::Gather) {
                u.run_len = s.cfg.run_len ? s.cfg.run_len : s.cfg.tile;
                u.groups = s.cfg.tile / u.run_len;
            }
            break;
          }
          case Opcode::Compute:
            break;
          default:
            dmx_panic("DrxMachine: unexpected opcode in body");
        }
        _uops.push_back(u);
    }

    auto elem_offset = [&](const StreamState &s, const std::uint32_t idx[3])
        -> std::int64_t {
        std::int64_t off = 0;
        for (unsigned d = 0; d < max_loop_dims; ++d)
            off += s.cfg.stride[d] * static_cast<std::int64_t>(idx[d]);
        return off;
    };

    // Sampled once per run: the vectorized loops below are exact
    // per-element rewrites (dispatch hoisted, no reassociation), so the
    // flag only selects code shape, never results.
    const bool simd = simdEnabled();

    std::uint32_t idx[max_loop_dims] = {0, 0, 0};
    for (idx[0] = 0; idx[0] < iters[0]; ++idx[0]) {
        for (idx[1] = 0; idx[1] < iters[1]; ++idx[1]) {
            for (idx[2] = 0; idx[2] < iters[2]; ++idx[2]) {
                if (!_cfg.hardware_loops) {
                    // Software loops: compare/branch/address updates.
                    res.compute_cycles += 8;
                }
                for (const MicroOp &u : _uops) {
                    // Pre/post placement gate (decoded).
                    if ((u.want1 != ~0u && idx[1] != u.want1) ||
                        (u.want2 != ~0u && idx[2] != u.want2))
                        continue;
                    const Instruction &ins = *u.ins;
                    ++res.dyn_instructions;

                    switch (ins.op) {
                      case Opcode::Load: {
                        StreamState &s = *u.stream;
                        const std::size_t esz = u.esz;
                        const std::int64_t off = elem_offset(s, idx);
                        const std::uint32_t run_len = u.run_len;
                        const std::uint32_t groups = u.groups;
                        auto &reg = regs[ins.reg];
                        reg.resize(s.cfg.tile);
                        for (std::uint32_t g = 0; g < groups; ++g) {
                            const std::int64_t goff =
                                off + (s.cfg.run_len
                                           ? s.cfg.run_stride *
                                                 static_cast<std::int64_t>(
                                                     g)
                                           : 0);
                            const std::uint64_t addr =
                                s.cfg.base +
                                static_cast<std::uint64_t>(goff) * esz;
                            const std::uint64_t bytes = run_len * esz;
                            if (goff < 0 || addr + bytes > _dram.size())
                                dmx_fatal("DrxMachine: load out of range "
                                          "(program '%s')",
                                          program.name.c_str());
                            if (s.cfg.dtype == DType::F32) {
                                // loadAsFloat(F32) is a 4-byte memcpy;
                                // the run is contiguous, so one bulk
                                // copy is bit-identical.
                                std::memcpy(reg.data() + g * run_len,
                                            _dram.data() + addr, bytes);
                            } else if (simd) {
                                // Dtype dispatch hoisted: each case is
                                // the same conversion loadAsFloat
                                // applies per element, as a dense loop.
                                const std::uint8_t *src =
                                    _dram.data() + addr;
                                float *out = reg.data() + g * run_len;
                                switch (s.cfg.dtype) {
                                  case DType::F16:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        std::uint16_t h;
                                        std::memcpy(&h, src + e * 2, 2);
                                        out[e] = halfToFloat(h);
                                    }
                                    break;
                                  case DType::I32:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        std::int32_t v;
                                        std::memcpy(&v, src + e * 4, 4);
                                        out[e] =
                                            static_cast<float>(v);
                                    }
                                    break;
                                  case DType::I16:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        std::int16_t v;
                                        std::memcpy(&v, src + e * 2, 2);
                                        out[e] =
                                            static_cast<float>(v);
                                    }
                                    break;
                                  case DType::I8:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e)
                                        out[e] = static_cast<float>(
                                            static_cast<std::int8_t>(
                                                src[e]));
                                    break;
                                  default: // U8
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e)
                                        out[e] = static_cast<float>(
                                            src[e]);
                                    break;
                                }
                            } else {
                                for (std::uint32_t e = 0; e < run_len;
                                     ++e)
                                    reg[g * run_len + e] = loadAsFloat(
                                        _dram.data() + addr + e * esz,
                                        s.cfg.dtype);
                            }
                            res.mem_cycles += memCost(s, addr, bytes);
                            res.bytes_read += bytes;
                        }
                        checkScratch(regs);
                        res.compute_cycles += 1; // issue
                        break;
                      }
                      case Opcode::Store: {
                        StreamState &s = *u.stream;
                        const std::size_t esz = u.esz;
                        const std::int64_t off = elem_offset(s, idx);
                        const auto &reg = regs[ins.reg];
                        if (reg.size() != s.cfg.tile)
                            dmx_fatal("DrxMachine: store size mismatch "
                                      "(reg %zu vs tile %u, program '%s')",
                                      reg.size(), s.cfg.tile,
                                      program.name.c_str());
                        const std::uint32_t run_len = u.run_len;
                        const std::uint32_t groups = u.groups;
                        for (std::uint32_t g = 0; g < groups; ++g) {
                            const std::int64_t goff =
                                off + (s.cfg.run_len
                                           ? s.cfg.run_stride *
                                                 static_cast<std::int64_t>(
                                                     g)
                                           : 0);
                            const std::uint64_t addr =
                                s.cfg.base +
                                static_cast<std::uint64_t>(goff) * esz;
                            const std::uint64_t bytes = run_len * esz;
                            if (goff < 0 || addr + bytes > _dram.size())
                                dmx_fatal("DrxMachine: store out of "
                                          "range (program '%s')",
                                          program.name.c_str());
                            if (s.cfg.dtype == DType::F32) {
                                // storeFromFloat(F32) is a 4-byte
                                // memcpy; bulk-copy the whole run.
                                std::memcpy(_dram.data() + addr,
                                            reg.data() + g * run_len,
                                            bytes);
                            } else if (simd) {
                                // Dtype dispatch hoisted; identical
                                // rounding and saturation per element
                                // as storeFromFloat.
                                std::uint8_t *out = _dram.data() + addr;
                                const float *in =
                                    reg.data() + g * run_len;
                                switch (s.cfg.dtype) {
                                  case DType::F16:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        const std::uint16_t h =
                                            floatToHalf(in[e]);
                                        std::memcpy(out + e * 2, &h, 2);
                                    }
                                    break;
                                  case DType::I32:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        const double r = std::nearbyint(
                                            static_cast<double>(in[e]));
                                        const auto clamped =
                                            static_cast<std::int32_t>(
                                                std::clamp(
                                                    r, -2147483648.0,
                                                    2147483647.0));
                                        std::memcpy(out + e * 4,
                                                    &clamped, 4);
                                    }
                                    break;
                                  case DType::I16:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        const float r =
                                            std::nearbyintf(in[e]);
                                        const auto clamped =
                                            static_cast<std::int16_t>(
                                                std::clamp(r, -32768.0f,
                                                           32767.0f));
                                        std::memcpy(out + e * 2,
                                                    &clamped, 2);
                                    }
                                    break;
                                  case DType::I8:
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        const float r =
                                            std::nearbyintf(in[e]);
                                        out[e] = static_cast<
                                            std::uint8_t>(
                                            static_cast<std::int8_t>(
                                                std::clamp(r, -128.0f,
                                                           127.0f)));
                                    }
                                    break;
                                  default: // U8
                                    for (std::uint32_t e = 0;
                                         e < run_len; ++e) {
                                        const float r =
                                            std::nearbyintf(in[e]);
                                        out[e] = static_cast<
                                            std::uint8_t>(
                                            std::clamp(r, 0.0f,
                                                       255.0f));
                                    }
                                    break;
                                }
                            } else {
                                for (std::uint32_t e = 0; e < run_len;
                                     ++e)
                                    storeFromFloat(
                                        _dram.data() + addr + e * esz,
                                        s.cfg.dtype,
                                        reg[g * run_len + e]);
                            }
                            res.mem_cycles += memCost(s, addr, bytes);
                            res.bytes_written += bytes;
                        }
                        res.compute_cycles += 1;
                        break;
                      }
                      case Opcode::Gather: {
                        StreamState &s = *u.stream;
                        const std::size_t esz = u.esz;
                        const std::int64_t off = elem_offset(s, idx);
                        const auto &idx_reg = regs[ins.src_b];
                        auto &dst = regs[ins.dst];
                        // Run-compressed mode: each index addresses a
                        // run of `count` consecutive elements.
                        const std::size_t expand =
                            ins.count > 1 ? ins.count : 1;
                        dst.resize(idx_reg.size() * expand);
                        // Coalesce runs of consecutive indices: the
                        // Off-chip engine merges them into bursts.
                        std::uint64_t bytes = 0;
                        Cycles mem = 0;
                        std::size_t run_start = 0;
                        std::uint64_t last_end = ~0ull;
                        auto flush_run = [&](std::size_t upto) {
                            if (upto == run_start)
                                return;
                            const std::uint64_t run_bytes =
                                (upto - run_start) * esz;
                            const std::uint64_t start_addr =
                                s.cfg.base +
                                (static_cast<std::uint64_t>(off) +
                                 static_cast<std::uint64_t>(
                                     idx_reg[run_start])) *
                                    esz;
                            std::uint64_t charged;
                            if (start_addr == last_end) {
                                charged = run_bytes;
                            } else if (last_end != ~0ull &&
                                       start_addr > last_end &&
                                       start_addr - last_end <=
                                           _cfg.min_burst_bytes) {
                                charged = (start_addr - last_end) +
                                          run_bytes;
                            } else {
                                charged = std::max<std::uint64_t>(
                                    run_bytes, _cfg.min_burst_bytes);
                            }
                            last_end = start_addr + run_bytes;
                            mem += static_cast<Cycles>(std::ceil(
                                static_cast<double>(charged) /
                                _cfg.dramBytesPerCycle()));
                            bytes += run_bytes;
                        };
                        if (expand > 1) {
                            // One DMA descriptor per index.
                            for (std::size_t e = 0; e < idx_reg.size();
                                 ++e) {
                                const auto index =
                                    static_cast<std::uint64_t>(
                                        idx_reg[e]);
                                const std::uint64_t addr =
                                    s.cfg.base +
                                    (static_cast<std::uint64_t>(off) +
                                     index) *
                                        esz;
                                const std::uint64_t run_bytes =
                                    expand * esz;
                                if (addr + run_bytes > _dram.size())
                                    dmx_fatal("DrxMachine: gather out "
                                              "of range (program '%s')",
                                              program.name.c_str());
                                for (std::size_t k = 0; k < expand; ++k)
                                    dst[e * expand + k] = loadAsFloat(
                                        _dram.data() + addr + k * esz,
                                        s.cfg.dtype);
                                std::uint64_t charged;
                                if (addr == last_end) {
                                    charged = run_bytes;
                                } else if (last_end != ~0ull &&
                                           addr > last_end &&
                                           addr - last_end <=
                                               _cfg.min_burst_bytes) {
                                    charged =
                                        (addr - last_end) + run_bytes;
                                } else {
                                    charged = std::max<std::uint64_t>(
                                        run_bytes,
                                        _cfg.min_burst_bytes);
                                }
                                last_end = addr + run_bytes;
                                mem += static_cast<Cycles>(std::ceil(
                                    static_cast<double>(charged) /
                                    _cfg.dramBytesPerCycle()));
                                bytes += run_bytes;
                            }
                        } else {
                            for (std::size_t e = 0; e < idx_reg.size();
                                 ++e) {
                                const auto index =
                                    static_cast<std::uint64_t>(
                                        idx_reg[e]);
                                const std::uint64_t addr =
                                    s.cfg.base +
                                    (static_cast<std::uint64_t>(off) +
                                     index) *
                                        esz;
                                if (addr + esz > _dram.size())
                                    dmx_fatal("DrxMachine: gather out "
                                              "of range (program '%s')",
                                              program.name.c_str());
                                dst[e] = loadAsFloat(_dram.data() + addr,
                                                     s.cfg.dtype);
                                if (e > run_start &&
                                    static_cast<std::uint64_t>(
                                        idx_reg[e - 1]) + 1 != index) {
                                    flush_run(e);
                                    run_start = e;
                                }
                            }
                            flush_run(idx_reg.size());
                        }
                        checkScratch(regs);
                        res.mem_cycles += mem;
                        res.bytes_read += bytes;
                        res.compute_cycles +=
                            vopCost(VFunc::Copy, dst.size());
                        break;
                      }
                      case Opcode::Compute: {
                        auto &dst = regs[ins.dst];
                        const auto &a = regs[ins.src_a];
                        const auto &b = regs[ins.src_b];
                        const VFunc fn = ins.fn;
                        auto need_ab = [&](bool two) {
                            if (two && a.size() != b.size())
                                dmx_fatal("DrxMachine: operand length "
                                          "mismatch (%zu vs %zu) in '%s'",
                                          a.size(), b.size(),
                                          program.name.c_str());
                        };
                        std::size_t cost_len = a.size();
                        switch (fn) {
                          case VFunc::Add: case VFunc::Sub:
                          case VFunc::Mul: case VFunc::Max:
                          case VFunc::Min: {
                            need_ab(true);
                            _tmp.resize(a.size());
                            const std::size_t n = a.size();
                            if (simd && n) {
                                // VFunc hoisted out of the element
                                // loop: each case is a dense loop over
                                // the lanes with the identical
                                // per-element expression.
                                const float *pa = a.data();
                                const float *pb = b.data();
                                float *pt = _tmp.data();
                                switch (fn) {
                                  case VFunc::Add:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e] + pb[e];
                                    break;
                                  case VFunc::Sub:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e] - pb[e];
                                    break;
                                  case VFunc::Mul:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e] * pb[e];
                                    break;
                                  case VFunc::Max:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::max(pa[e], pb[e]);
                                    break;
                                  default: // Min
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::min(pa[e], pb[e]);
                                    break;
                                }
                            } else {
                                for (std::size_t e = 0; e < n; ++e) {
                                    const float x = a[e], y = b[e];
                                    _tmp[e] = fn == VFunc::Add ? x + y
                                            : fn == VFunc::Sub ? x - y
                                            : fn == VFunc::Mul ? x * y
                                            : fn == VFunc::Max
                                                  ? std::max(x, y)
                                                  : std::min(x, y);
                                }
                            }
                            std::swap(dst, _tmp);
                            break;
                          }
                          case VFunc::Mac: {
                            need_ab(true);
                            if (dst.size() != a.size())
                                dmx_fatal("DrxMachine: mac accumulator "
                                          "length mismatch in '%s'",
                                          program.name.c_str());
                            for (std::size_t e = 0; e < a.size(); ++e)
                                dst[e] += a[e] * b[e];
                            break;
                          }
                          case VFunc::AddS: case VFunc::MulS:
                          case VFunc::MaxS: case VFunc::MinS:
                          case VFunc::Abs: case VFunc::Sqrt:
                          case VFunc::Log1p: case VFunc::Exp:
                          case VFunc::Copy: {
                            _tmp.resize(a.size());
                            const std::size_t n = a.size();
                            if (simd && n) {
                                // Same hoisting as the binary ops; the
                                // libm cases stay scalar calls (the
                                // compiler will not vectorize them
                                // without fast-math) but still shed
                                // the per-element dispatch.
                                const float *pa = a.data();
                                float *pt = _tmp.data();
                                const float imm = ins.imm;
                                switch (fn) {
                                  case VFunc::AddS:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e] + imm;
                                    break;
                                  case VFunc::MulS:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e] * imm;
                                    break;
                                  case VFunc::MaxS:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::max(pa[e], imm);
                                    break;
                                  case VFunc::MinS:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::min(pa[e], imm);
                                    break;
                                  case VFunc::Abs:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::fabs(pa[e]);
                                    break;
                                  case VFunc::Sqrt:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::sqrt(
                                            std::max(pa[e], 0.0f));
                                    break;
                                  case VFunc::Log1p:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::log1p(
                                            std::max(pa[e], 0.0f));
                                    break;
                                  case VFunc::Exp:
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = std::exp(pa[e]);
                                    break;
                                  default: // Copy
                                    for (std::size_t e = 0; e < n; ++e)
                                        pt[e] = pa[e];
                                    break;
                                }
                            } else {
                                for (std::size_t e = 0; e < n; ++e) {
                                    const float x = a[e];
                                    switch (fn) {
                                      case VFunc::AddS:
                                        _tmp[e] = x + ins.imm; break;
                                      case VFunc::MulS:
                                        _tmp[e] = x * ins.imm; break;
                                      case VFunc::MaxS:
                                        _tmp[e] = std::max(x, ins.imm);
                                        break;
                                      case VFunc::MinS:
                                        _tmp[e] = std::min(x, ins.imm);
                                        break;
                                      case VFunc::Abs:
                                        _tmp[e] = std::fabs(x); break;
                                      case VFunc::Sqrt:
                                        _tmp[e] = std::sqrt(
                                            std::max(x, 0.0f));
                                        break;
                                      case VFunc::Log1p:
                                        _tmp[e] = std::log1p(
                                            std::max(x, 0.0f));
                                        break;
                                      case VFunc::Exp:
                                        _tmp[e] = std::exp(x); break;
                                      default:
                                        _tmp[e] = x; break;
                                    }
                                }
                            }
                            std::swap(dst, _tmp);
                            break;
                          }
                          case VFunc::RedSum: {
                            float acc = 0.0f;
                            for (float v : a)
                                acc += v;
                            dst.assign(1, acc);
                            break;
                          }
                          case VFunc::Fill:
                            dst.assign(ins.count, ins.imm);
                            cost_len = ins.count;
                            break;
                          case VFunc::TransB: {
                            const std::size_t r = ins.count,
                                              c = ins.count2;
                            if (a.size() != r * c)
                                dmx_fatal("DrxMachine: transb shape "
                                          "mismatch in '%s'",
                                          program.name.c_str());
                            _tmp.resize(a.size());
                            for (std::size_t y = 0; y < r; ++y)
                                for (std::size_t x = 0; x < c; ++x)
                                    _tmp[x * r + y] = a[y * c + x];
                            std::swap(dst, _tmp);
                            break;
                          }
                          case VFunc::DeintEven:
                          case VFunc::DeintOdd: {
                            if (a.size() % 2 != 0)
                                dmx_fatal("DrxMachine: deint needs even "
                                          "length in '%s'",
                                          program.name.c_str());
                            const std::size_t half = a.size() / 2;
                            const std::size_t base =
                                fn == VFunc::DeintOdd ? 1 : 0;
                            _tmp.resize(half);
                            for (std::size_t e = 0; e < half; ++e)
                                _tmp[e] = a[2 * e + base];
                            std::swap(dst, _tmp);
                            cost_len = half;
                            break;
                          }
                          case VFunc::SegSum: {
                            const std::size_t seg = ins.count;
                            if (seg == 0 || a.size() % seg != 0)
                                dmx_fatal("DrxMachine: segsum width %u "
                                          "does not divide %zu in '%s'",
                                          ins.count, a.size(),
                                          program.name.c_str());
                            _tmp.resize(a.size() / seg);
                            for (std::size_t s2 = 0; s2 < _tmp.size();
                                 ++s2) {
                                float acc = 0.0f;
                                for (std::size_t e = 0; e < seg; ++e)
                                    acc += a[s2 * seg + e];
                                _tmp[s2] = acc;
                            }
                            std::swap(dst, _tmp);
                            break;
                          }
                          case VFunc::Reset:
                            dst.clear();
                            break;
                          case VFunc::Append:
                            dst.insert(dst.end(), a.begin(), a.end());
                            break;
                        }
                        checkScratch(regs);
                        res.compute_cycles += vopCost(fn, cost_len);
                        break;
                      }
                      default:
                        dmx_panic("DrxMachine: unexpected opcode in body");
                    }
                }
            }
        }
    }

    // Pipeline fill/drain.
    constexpr Cycles startup = 64;
    res.total_cycles =
        (_cfg.double_buffer
             ? std::max(res.compute_cycles, res.mem_cycles)
             : res.compute_cycles + res.mem_cycles) +
        startup;
    res.ecc_corrected = ecc_corrected;
    res.total_cycles += ecc_penalty;

    emitRunTrace(program, res, trace_base);
    return res;
}

} // namespace dmx::drx
