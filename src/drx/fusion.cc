#include "drx/fusion.hh"

#include <algorithm>
#include <utility>

namespace dmx::drx
{

namespace
{

/** Does any program of @p plan contain a Gather? */
bool
hasGather(const CompiledKernel &plan)
{
    for (const auto &prog : plan.programs)
        for (const auto &ins : prog.code)
            if (ins.op == Opcode::Gather)
                return true;
    return false;
}

} // namespace

FusionVerdict
canFusePlans(const CompiledKernel &a, const CompiledKernel &b,
             const DrxConfig &cfg)
{
    FusionVerdict v;
    if (b.input_addr != 0) {
        v.reason = "consumer input is not the plan's first allocation";
        return v;
    }
    if (a.out_desc.dtype != b.in_desc.dtype ||
        a.out_desc.bytes() != b.in_desc.bytes()) {
        v.reason = "stream shape/dtype mismatch between producer output "
                   "and consumer input";
        return v;
    }
    if (hasGather(a) || hasGather(b)) {
        v.reason = "gather stage: data-dependent addressing cannot be "
                   "proven stream-compatible";
        return v;
    }
    // The consumer's whole footprint lands at [a.output_addr,
    // a.output_addr + b.dram_bytes). installPlan writes every constant
    // segment before any program runs, so a producer constant above its
    // output region would be clobbered by the consumer's install.
    for (const auto &seg : a.consts) {
        if (seg.addr + seg.bytes.size() > a.output_addr) {
            v.reason = "producer constants above its output region";
            return v;
        }
    }
    const std::uint64_t fused_bytes =
        std::max(a.dram_bytes, a.output_addr + b.dram_bytes);
    if (fused_bytes > cfg.dram_bytes) {
        v.reason = "fused DRAM footprint exceeds device capacity";
        return v;
    }
    v.ok = true;
    return v;
}

CompiledKernel
fusePlans(const CompiledKernel &a, const CompiledKernel &b)
{
    // The consumer's input (address 0, its first allocation) aliases
    // the producer's output, so every consumer address shifts by the
    // producer's output address -- the same wholesale rebase
    // installPlan applies, which is why the fused plan stays a valid
    // base-0 plan.
    const std::uint64_t shift = a.output_addr;

    CompiledKernel fused;
    fused.programs = a.programs;
    for (Program prog : b.programs) {
        for (auto &ins : prog.code)
            if (ins.op == Opcode::CfgStream)
                ins.base += shift;
        fused.programs.push_back(std::move(prog));
    }
    fused.input_addr = a.input_addr;
    fused.output_addr = b.output_addr + shift;
    fused.in_desc = a.in_desc;
    fused.out_desc = b.out_desc;
    fused.consts = a.consts;
    for (ConstSegment seg : b.consts) {
        seg.addr += shift;
        fused.consts.push_back(std::move(seg));
    }
    fused.dram_bytes = std::max(a.dram_bytes, shift + b.dram_bytes);
    fused.shape_deterministic =
        a.shape_deterministic && b.shape_deterministic;
    return fused;
}

FusedChainPlan
planFusedChain(const std::vector<restructure::Kernel> &kernels,
               const DrxConfig &cfg, ProgramCache *cache, Tick tick)
{
    FusedChainPlan result;
    if (kernels.empty()) {
        result.verdict.reason = "empty kernel chain";
        return result;
    }

    // Plan every part (memoized individually when a cache is given).
    std::vector<std::shared_ptr<const CompiledKernel>> parts;
    parts.reserve(kernels.size());
    for (const auto &k : kernels) {
        if (cache && cache->config().enabled) {
            parts.push_back(cache->lookup(k, cfg, tick).compiled);
        } else {
            parts.push_back(
                std::make_shared<CompiledKernel>(planKernel(k, cfg)));
        }
    }

    // Legality is pairwise over the part plans; the first illegal pair
    // decides the verdict.
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const auto v = canFusePlans(*parts[i], *parts[i + 1], cfg);
        if (!v.ok) {
            result.verdict = v;
            return result;
        }
    }
    result.verdict.ok = true;

    const auto fuseAll = [&parts]() {
        CompiledKernel acc = *parts.front();
        for (std::size_t i = 1; i < parts.size(); ++i)
            acc = fusePlans(acc, *parts[i]);
        return acc;
    };

    if (cache && cache->config().enabled && kernels.size() > 1) {
        const auto looked =
            cache->lookupFused(kernels, cfg, tick, fuseAll);
        result.compiled = looked.compiled;
        result.key = looked.key;
        result.cache_hit = looked.hit;
    } else {
        result.compiled = std::make_shared<CompiledKernel>(fuseAll());
    }
    return result;
}

} // namespace dmx::drx
