#include "integrity/chain.hh"

#include <algorithm>
#include <cstddef>
#include <string>

#include "common/logging.hh"
#include "integrity/checksum.hh"
#include "robust/breaker.hh"
#include "runtime/chain.hh"
#include "trace/trace.hh"

namespace dmx::integrity
{

namespace
{

constexpr runtime::DeviceId no_device =
    static_cast<runtime::DeviceId>(-1);

/**
 * Advance simulated time by the modeled checksum cost and trace it.
 * The caller drains the platform before every charge, so the no-op
 * event lands on an empty queue and now() moves by exactly the cost.
 */
void
chargeChecksum(runtime::Platform &plat, std::size_t bytes,
               const char *what, double rate)
{
    if (bytes == 0 || rate <= 0)
        return;
    const Tick begin = plat.now();
    const Tick cost = secondsToTicks(static_cast<double>(bytes) / rate);
    plat.eventQueue().scheduleIn(cost, [] {});
    plat.drain();
    if (auto *tb = trace::active())
        tb->span(trace::Category::Integrity, what, "chain", begin,
                 plat.now(), bytes);
}

/** @return true when @p dev can accept fresh chain work right now. */
bool
usable(const runtime::Platform &plat, runtime::DeviceId dev)
{
    if (!plat.deviceHealthy(dev))
        return false;
    const robust::CircuitBreaker *b = plat.deviceBreaker(dev);
    return !b || b->state() != robust::BreakerState::Open;
}

/** @return the first usable alternate of @p st, or no_device. */
runtime::DeviceId
pickAlternate(const runtime::Platform &plat, const ChainStage &st,
              runtime::DeviceId failed)
{
    for (runtime::DeviceId alt : st.alternates)
        if (alt != failed && usable(plat, alt))
            return alt;
    return no_device;
}

void
markEvent(const char *name, Tick at, std::uint64_t arg = 0)
{
    if (auto *tb = trace::active()) {
        tb->instant(trace::Category::Integrity, name, "chain", at, arg);
        tb->count(std::string("integrity.") + name, at);
    }
}

} // namespace

const char *
toString(ProtectionMode m)
{
    switch (m) {
      case ProtectionMode::Off:         return "off";
      case ProtectionMode::E2eChecksum: return "e2e-checksum";
    }
    return "?";
}

const char *
toString(MismatchPolicy p)
{
    switch (p) {
      case MismatchPolicy::HopRetransmit:  return "hop-retransmit";
      case MismatchPolicy::RollbackReplay: return "rollback-replay";
    }
    return "?";
}

const char *
toString(ChainMode m)
{
    switch (m) {
      case ChainMode::PerHop:     return "per-hop";
      case ChainMode::Descriptor: return "descriptor";
    }
    return "?";
}

namespace
{

/**
 * Descriptor-mode chain execution: the chain is cut into segments
 * (cfg.segment_stages stages each; 0 = one segment), and every segment
 * is submitted as one runtime::enqueueChain descriptor list - hops
 * verify in-engine under protection, the host pays one round trip per
 * segment, and checkpoints fall on segment (descriptor-chain)
 * boundaries. Recovery reuses the PerHop vocabulary: a failed stage
 * descriptor triggers failover to an alternate placement, a failed hop
 * descriptor (in-engine retransmits exhausted) triggers a rollback,
 * and both replay the segment from the last checkpoint.
 */
ChainReport
runChainDescriptor(runtime::Platform &plat,
                   const std::vector<ChainStage> &stages,
                   const runtime::Bytes &input, const ChainConfig &cfg)
{
    ChainReport report;
    const Tick t0 = plat.now();
    const bool protect = cfg.protection == ProtectionMode::E2eChecksum;

    std::vector<runtime::DeviceId> devmap(stages.size());
    for (std::size_t i = 0; i < stages.size(); ++i)
        devmap[i] = stages[i].device;

    runtime::Bytes cur = input;
    if (protect) {
        chargeChecksum(plat, cur.size(), "checksum",
                       cfg.checksum_bytes_per_sec);
    }
    std::size_t ckpt_stage = 0;
    runtime::Bytes ckpt_data = cur;

    const auto budgetLeft = [&] {
        return report.recoveries() < cfg.max_recoveries;
    };
    const auto finalize = [&](bool ok, runtime::Status status) {
        report.ok = ok;
        report.status = status;
        if (!ok)
            report.output.clear();
        report.makespan = plat.now() - t0;
    };

    std::size_t i = 0;
    while (i < stages.size()) {
        // Proactive failover, exactly as in PerHop mode.
        if (!usable(plat, devmap[i])) {
            const runtime::DeviceId alt =
                pickAlternate(plat, stages[i], devmap[i]);
            if (alt == no_device || !budgetLeft()) {
                finalize(false, runtime::Status::Failed);
                return report;
            }
            const runtime::DeviceId failed = devmap[i];
            for (std::size_t j = 0; j < devmap.size(); ++j)
                if (devmap[j] == failed)
                    devmap[j] = alt;
            ++report.failovers;
            markEvent("failover", plat.now(), alt);
        }

        const std::size_t seg_end =
            cfg.segment_stages
                ? std::min(stages.size(),
                           i + static_cast<std::size_t>(
                                   cfg.segment_stages))
                : stages.size();

        // Lower [i, seg_end) to a descriptor list: a Copy descriptor
        // per device change, a stage descriptor per stage - with
        // adjacent stages on the same DRX grouped into one Restructure
        // descriptor when fusion is requested.
        auto ctx = plat.createContextPtr();
        std::vector<runtime::ChainOp> ops;
        struct OpSpan
        {
            std::size_t first_stage;
            unsigned span; ///< stages covered; 0 marks a hop
        };
        std::vector<OpSpan> spans;
        runtime::BufferId b_cur = ctx->createBuffer(cur);

        std::size_t j = i;
        while (j < seg_end) {
            const runtime::DeviceId dev = devmap[j];
            if (j > 0 && devmap[j - 1] != dev) {
                runtime::ChainOp hop;
                hop.kind = runtime::ChainOp::Kind::Copy;
                hop.device = devmap[j - 1];
                hop.dst_device = dev;
                hop.in = b_cur;
                hop.out = ctx->createBuffer();
                b_cur = hop.out;
                ops.push_back(std::move(hop));
                spans.push_back({j, 0});
            }
            runtime::ChainOp st;
            st.device = dev;
            st.in = b_cur;
            st.out = ctx->createBuffer();
            b_cur = st.out;
            std::size_t next = j + 1;
            if (plat.deviceIsDrx(dev)) {
                st.kind = runtime::ChainOp::Kind::Restructure;
                st.kernels.push_back(stages[j].kernel);
                while (cfg.fuse && next < seg_end &&
                       devmap[next] == dev) {
                    st.kernels.push_back(stages[next].kernel);
                    ++next;
                }
            } else {
                st.kind = runtime::ChainOp::Kind::Kernel;
            }
            spans.push_back({j, static_cast<unsigned>(next - j)});
            ops.push_back(std::move(st));
            j = next;
        }

        runtime::ChainOptions copts;
        copts.fuse = cfg.fuse;
        copts.hop_crc = protect;
        copts.crc_bytes_per_sec = cfg.checksum_bytes_per_sec;
        runtime::ChainEvent ev =
            runtime::enqueueChain(*ctx, ops, copts);
        ctx->finish();
        ++report.descriptor_chains;
        ++report.round_trips;

        // Fold the per-descriptor completion records into the report's
        // PerHop vocabulary.
        const auto &recs = ev.records();
        for (std::size_t k = 0; k < recs.size(); ++k) {
            const runtime::DescriptorRecord &r = recs[k];
            if (spans[k].span == 0) {
                report.hops_run += r.attempts;
                report.mismatches_detected += r.crc_mismatches;
                if (r.attempts > 1)
                    report.hop_retransmits += r.attempts - 1;
            } else {
                report.stages_run += r.attempts * spans[k].span;
                if (r.fused && r.attempts > 0)
                    report.fused_stages += spans[k].span - 1;
            }
        }

        if (ev.ok()) {
            cur = ctx->read(b_cur);
            if (protect) {
                chargeChecksum(plat, cur.size(), "checksum",
                               cfg.checksum_bytes_per_sec);
            }
            if (cfg.checkpoints) {
                ckpt_stage = seg_end;
                ckpt_data = cur;
                ++report.checkpoints_taken;
                markEvent("checkpoint", plat.now(), seg_end - 1);
            }
            i = seg_end;
            continue;
        }

        // The segment failed at descriptor ev.failedIndex().
        if (!budgetLeft()) {
            finalize(false, ev.status());
            return report;
        }
        const int fi = ev.failedIndex();
        const std::size_t failed_stage =
            fi >= 0 ? spans[static_cast<std::size_t>(fi)].first_stage
                    : i;
        const bool stage_failed =
            fi >= 0 && spans[static_cast<std::size_t>(fi)].span > 0;
        if (stage_failed) {
            const runtime::DeviceId dev = devmap[failed_stage];
            const runtime::DeviceId alt =
                pickAlternate(plat, stages[failed_stage], dev);
            if (alt == no_device) {
                finalize(false, ev.status());
                return report;
            }
            for (std::size_t j2 = 0; j2 < devmap.size(); ++j2)
                if (devmap[j2] == dev)
                    devmap[j2] = alt;
            ++report.failovers;
            markEvent("failover", plat.now(), alt);
        } else {
            // A hop descriptor exhausted its in-engine retransmits
            // (fail-stop transport loss or persistent corruption):
            // replay the segment from the last checkpoint.
            ++report.rollbacks;
            markEvent("rollback", plat.now(), ckpt_stage);
        }
        cur = ckpt_data;
        i = ckpt_stage;
    }

    report.output = cur;
    finalize(true, runtime::Status::Ok);
    return report;
}

} // namespace

ChainReport
runChain(runtime::Platform &plat, const std::vector<ChainStage> &stages,
         const runtime::Bytes &input, const ChainConfig &cfg)
{
    ChainReport report;
    if (stages.empty()) {
        report.output = input;
        report.ok = true;
        report.status = runtime::Status::Ok;
        return report;
    }
    for (const ChainStage &st : stages)
        if (st.device >= plat.deviceCount())
            dmx_fatal("runChain: bad stage device %zu", st.device);

    if (cfg.mode == ChainMode::Descriptor)
        return runChainDescriptor(plat, stages, input, cfg);

    const Tick t0 = plat.now();
    const bool protect = cfg.protection == ProtectionMode::E2eChecksum;
    auto ctx = plat.createContextPtr();

    // The live placement: failover rewrites entries as devices die.
    std::vector<runtime::DeviceId> devmap(stages.size());
    for (std::size_t i = 0; i < stages.size(); ++i)
        devmap[i] = stages[i].device;

    // The chain input is always a valid recovery point; verified stage
    // outputs supersede it while checkpointing is on. A checkpoint is
    // trusted because (a) fail-stop losses never corrupt committed
    // bytes and (b) under e2e protection its payload passed the
    // checksum that was generated before any hop could touch it.
    runtime::Bytes cur = input;
    std::uint32_t cur_crc = 0;
    if (protect) {
        chargeChecksum(plat, cur.size(), "checksum",
                       cfg.checksum_bytes_per_sec);
        cur_crc = crc32(cur);
    }
    std::size_t ckpt_stage = 0;
    runtime::Bytes ckpt_data = cur;
    std::uint32_t ckpt_crc = cur_crc;

    const auto budgetLeft = [&] {
        return report.recoveries() < cfg.max_recoveries;
    };
    const auto finalize = [&](bool ok, runtime::Status status) {
        report.ok = ok;
        report.status = status;
        if (!ok)
            report.output.clear();
        report.makespan = plat.now() - t0;
    };
    const auto rollback = [&](std::size_t &i) {
        cur = ckpt_data;
        cur_crc = ckpt_crc;
        i = ckpt_stage;
    };

    std::size_t i = 0;
    while (i < stages.size()) {
        // Proactive failover: do not hop data onto a device the health
        // tracker or its breaker already condemned - re-route first.
        if (!usable(plat, devmap[i])) {
            const runtime::DeviceId alt =
                pickAlternate(plat, stages[i], devmap[i]);
            if (alt == no_device || !budgetLeft()) {
                finalize(false, runtime::Status::Failed);
                return report;
            }
            const runtime::DeviceId failed = devmap[i];
            for (std::size_t j = 0; j < devmap.size(); ++j)
                if (devmap[j] == failed)
                    devmap[j] = alt;
            ++report.failovers;
            markEvent("failover", plat.now(), alt);
        }
        const runtime::DeviceId dev = devmap[i];

        // Hop: DMA the current payload from the producer device. The
        // producer-side buffer stays intact, so a detected corruption
        // can always be cured by retransmitting this hop.
        runtime::Bytes stage_in;
        if (i > 0 && devmap[i - 1] != dev) {
            bool delivered = false;
            bool restart = false;
            while (!delivered) {
                const runtime::BufferId srcb = ctx->createBuffer(cur);
                const runtime::BufferId dstb = ctx->createBuffer();
                runtime::Event e = ctx->queue(devmap[i - 1])
                                       .enqueueCopy(srcb, dstb, dev);
                ctx->finish();
                ++report.hops_run;
                ++report.round_trips;
                bool good = e.ok();
                if (good && protect) {
                    chargeChecksum(plat, cur.size(), "verify",
                                   cfg.checksum_bytes_per_sec);
                    if (crc32(ctx->read(dstb)) != cur_crc) {
                        ++report.mismatches_detected;
                        markEvent("checksum_mismatch", plat.now());
                        good = false;
                    }
                }
                if (good) {
                    stage_in = ctx->read(dstb);
                    delivered = true;
                    break;
                }
                if (!budgetLeft()) {
                    finalize(false, e.ok() ? runtime::Status::Failed
                                           : e.status());
                    return report;
                }
                if (!e.ok()) {
                    // A settled error poisons its in-order queue (every
                    // later command cascades), so recovery starts from
                    // a fresh context. Payloads live host-side in cur /
                    // the checkpoint; no buffer state is lost.
                    ctx = plat.createContextPtr();
                }
                if (!e.ok() ||
                    cfg.policy == MismatchPolicy::HopRetransmit) {
                    // Transport failures (fail-stop) and, under the
                    // hop-retransmit policy, checksum mismatches both
                    // re-DMA from the intact producer buffer.
                    ++report.hop_retransmits;
                    markEvent("hop_retransmit", plat.now());
                    continue;
                }
                ++report.rollbacks;
                markEvent("rollback", plat.now(), ckpt_stage);
                rollback(i);
                restart = true;
                break;
            }
            if (restart)
                continue;
        } else {
            stage_in = cur;
        }

        // Execute the stage on its (possibly re-routed) device.
        const ChainStage &st = stages[i];
        const runtime::BufferId inb = ctx->createBuffer(stage_in);
        const runtime::BufferId outb = ctx->createBuffer();
        runtime::Event e =
            plat.deviceIsDrx(dev)
                ? ctx->queue(dev).enqueueRestructure(st.kernel, inb, outb)
                : ctx->queue(dev).enqueueKernel(inb, outb);
        ctx->finish();
        ++report.stages_run;
        ++report.round_trips;
        if (!e.ok()) {
            // Mid-chain device failure (or an uncorrectable ECC error
            // that exhausted the retry budget): re-route the remaining
            // stages and resume from the checkpoint instead of
            // replaying the whole chain.
            if (!budgetLeft()) {
                finalize(false, e.status());
                return report;
            }
            const runtime::DeviceId alt = pickAlternate(plat, st, dev);
            if (alt == no_device) {
                finalize(false, e.status());
                return report;
            }
            for (std::size_t j = 0; j < devmap.size(); ++j)
                if (devmap[j] == dev)
                    devmap[j] = alt;
            ++report.failovers;
            markEvent("failover", plat.now(), alt);
            // The failed command poisoned its queue (error cascade);
            // resume the replay from a fresh context.
            ctx = plat.createContextPtr();
            rollback(i);
            continue;
        }

        cur = ctx->read(outb);
        if (protect) {
            chargeChecksum(plat, cur.size(), "checksum",
                           cfg.checksum_bytes_per_sec);
            cur_crc = crc32(cur);
        }
        if (cfg.checkpoints) {
            ckpt_stage = i + 1;
            ckpt_data = cur;
            ckpt_crc = cur_crc;
            ++report.checkpoints_taken;
            markEvent("checkpoint", plat.now(), i);
        }
        ++i;
    }

    report.output = cur;
    finalize(true, runtime::Status::Ok);
    return report;
}

} // namespace dmx::integrity
