#include "integrity/integrity.hh"

#include "common/logging.hh"

namespace dmx::integrity
{

namespace
{

/// Site-stream derivation constants: arbitrary odd words xored into the
/// master seed so the three streams are decorrelated (and decorrelated
/// from the FaultPlan streams under an equal seed).
constexpr std::uint64_t payload_stream = 0x3d61a9f7e5b0c2d3ull;
constexpr std::uint64_t scratch_stream = 0xa1f4278bd6e9035bull;
constexpr std::uint64_t link_stream = 0xc98e5b13f2a6d741ull;

void
checkProb(const char *what, double p)
{
    if (p < 0.0 || p > 1.0)
        dmx_fatal("IntegrityPlan: %s probability %g outside [0, 1]",
                  what, p);
}

} // namespace

IntegrityPlan::IntegrityPlan(IntegritySpec spec)
    : _spec(spec),
      _payload_rng(spec.seed ^ payload_stream),
      _scratch_rng(spec.seed ^ scratch_stream),
      _link_rng(spec.seed ^ link_stream)
{
    checkProb("payload_flip", spec.payload_flip_prob);
    checkProb("scratch_sec", spec.scratch_sec_prob);
    checkProb("scratch_ded", spec.scratch_ded_prob);
    checkProb("link_crc", spec.link_crc_prob);
    if (spec.scratch_sec_prob + spec.scratch_ded_prob > 1.0)
        dmx_fatal("IntegrityPlan: scratch SEC+DED probabilities "
                  "exceed 1");
}

IntegrityPlan::PayloadAction
IntegrityPlan::onPayload(std::uint64_t bytes)
{
    const std::uint64_t n = _payload_n++;
    ++_stats.payloads_seen;
    // Always draw the decision - and, on a hit, the bit position - in a
    // fixed pattern so scripted entries do not shift later decisions:
    // a script replaces the outcome without consuming extra draws.
    const double u = _payload_rng.uniform();
    PayloadAction action;
    if (bytes > 0 && u < _spec.payload_flip_prob) {
        action.flip = true;
        action.bit = _payload_rng.below(bytes * 8);
    }
    if (const auto it = _payload_script.find(n);
        it != _payload_script.end()) {
        action.flip = bytes > 0;
        action.bit = bytes > 0 ? it->second % (bytes * 8) : 0;
    }
    if (action.flip)
        ++_stats.payload_flips;
    return action;
}

fault::EccAction
IntegrityPlan::onScratch()
{
    const std::uint64_t n = _scratch_n++;
    ++_stats.scratch_seen;
    const double u = _scratch_rng.uniform();
    fault::EccAction action = fault::EccAction::None;
    if (u < _spec.scratch_ded_prob)
        action = fault::EccAction::DetectDouble;
    else if (u < _spec.scratch_ded_prob + _spec.scratch_sec_prob)
        action = fault::EccAction::CorrectSingle;
    if (const auto it = _scratch_script.find(n);
        it != _scratch_script.end())
        action = it->second;
    if (action == fault::EccAction::CorrectSingle)
        ++_stats.scratch_corrected;
    else if (action == fault::EccAction::DetectDouble)
        ++_stats.scratch_uncorrectable;
    return action;
}

unsigned
IntegrityPlan::onLink(std::uint32_t src, std::uint32_t dst,
                      std::uint64_t bytes)
{
    (void)src;
    (void)dst;
    (void)bytes;
    const std::uint64_t n = _link_n++;
    ++_stats.links_seen;
    const double u = _link_rng.uniform();
    unsigned replays = u < _spec.link_crc_prob ? 1 : 0;
    if (const auto it = _link_script.find(n); it != _link_script.end())
        replays = it->second;
    _stats.link_crc_replays += replays;
    return replays;
}

void
IntegrityPlan::scriptPayload(std::uint64_t nth, std::uint64_t bit)
{
    _payload_script[nth] = bit;
}

void
IntegrityPlan::scriptScratch(std::uint64_t nth, fault::EccAction action)
{
    _scratch_script[nth] = action;
}

void
IntegrityPlan::scriptLink(std::uint64_t nth, unsigned replays)
{
    _link_script[nth] = replays;
}

std::string
toString(fault::EccAction a)
{
    switch (a) {
      case fault::EccAction::None:          return "none";
      case fault::EccAction::CorrectSingle: return "correct-single";
      case fault::EccAction::DetectDouble:  return "detect-double";
    }
    return "?";
}

} // namespace dmx::integrity
