/**
 * @file
 * Deterministic, seeded data-corruption plans.
 *
 * An IntegrityPlan is the FaultPlan's sibling for *data* errors rather
 * than fail-stop events. Where a FaultPlan decides whether an
 * operation completes, an IntegrityPlan decides whether the *bytes*
 * survive it:
 *
 *  - *payload* bit flips: a delivered DMA copy silently flips one bit
 *    of the destination buffer - the silent-data-corruption vector the
 *    end-to-end chain checksums exist to catch;
 *  - *scratchpad* ECC events: a DRX program run suffers a SEC-DED
 *    upset - single-bit corrected in place at a scrub-cycle penalty,
 *    double-bit detected-uncorrectable (the run aborts);
 *  - *link* CRC errors: a PCIe flow is hit by wire errors that the
 *    link CRC detects; each costs a deterministic link-level replay
 *    delay but never corrupts the payload.
 *
 * The decision machinery mirrors fault::FaultPlan exactly: each site
 * draws from its own seeded Rng stream (so decision sequences are
 * reproducible and independent across sites), and scripted "the nth
 * query at this site" overrides build exact scenarios without
 * perturbing later probabilistic draws.
 *
 * Determinism contract: with equal seeds and equal (deterministic)
 * simulations, two runs see identical corruption decisions, identical
 * recovery actions and identical final simulated times - at any
 * exec::ScenarioRunner --jobs level.
 */

#ifndef DMX_INTEGRITY_INTEGRITY_HH
#define DMX_INTEGRITY_INTEGRITY_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/random.hh"
#include "fault/hooks.hh"

namespace dmx::integrity
{

/** Probabilities and knobs of one corruption plan. */
struct IntegritySpec
{
    std::uint64_t seed = 1;       ///< master seed for all streams

    /// P[a delivered DMA copy flips one uniformly chosen payload bit].
    double payload_flip_prob = 0;
    /// P[a DRX program run takes a single-bit (corrected) ECC event].
    double scratch_sec_prob = 0;
    /// P[a DRX program run takes a double-bit (uncorrectable) event].
    double scratch_ded_prob = 0;
    /// P[a fabric flow suffers one link-CRC replay].
    double link_crc_prob = 0;
};

/** Cumulative counts of queries and injected events per site. */
struct IntegrityStats
{
    std::uint64_t payloads_seen = 0;
    std::uint64_t payload_flips = 0;         ///< silent until e2e-checked
    std::uint64_t scratch_seen = 0;
    std::uint64_t scratch_corrected = 0;     ///< SEC: detected + corrected
    std::uint64_t scratch_uncorrectable = 0; ///< DED: detected, aborted
    std::uint64_t links_seen = 0;
    std::uint64_t link_crc_replays = 0;      ///< detected + replayed

    /** @return events injected across every site. */
    std::uint64_t
    injected() const
    {
        return payload_flips + scratch_corrected +
               scratch_uncorrectable + link_crc_replays;
    }

    /** @return events detected by a hardware checker (all but payload
     *  flips, which only an end-to-end checksum can see). */
    std::uint64_t
    detected() const
    {
        return scratch_corrected + scratch_uncorrectable +
               link_crc_replays;
    }

    /** @return detected events transparently corrected in place. */
    std::uint64_t
    corrected() const
    {
        return scratch_corrected + link_crc_replays;
    }

    /** @return detected events that could not be corrected. */
    std::uint64_t
    uncorrected() const
    {
        return scratch_uncorrectable;
    }
};

/**
 * The corruption decision engine. Install with
 * runtime::Platform::setIntegrityPlan (or wire the on*() members into
 * layer hooks directly). The plan is stateful: site counters advance
 * on every query.
 */
class IntegrityPlan
{
  public:
    explicit IntegrityPlan(IntegritySpec spec = {});

    const IntegritySpec &spec() const { return _spec; }
    const IntegrityStats &stats() const { return _stats; }

    /** Decision for one delivered DMA payload. */
    struct PayloadAction
    {
        bool flip = false;     ///< flip one bit of the delivered copy
        std::uint64_t bit = 0; ///< bit index in [0, bytes * 8)
    };

    // ------------------------------------------------ hook entry points

    /**
     * Decide the fate of a delivered DMA payload of @p bytes bytes.
     * A zero-length payload is counted but never flipped.
     */
    PayloadAction onPayload(std::uint64_t bytes);

    /** Decide the SEC-DED outcome of one DRX program run. */
    fault::EccAction onScratch();

    /** @return link-CRC replay events for a starting fabric flow. */
    unsigned onLink(std::uint32_t src, std::uint32_t dst,
                    std::uint64_t bytes);

    // -------------------------------------------------- scripted events
    // The nth (0-based) query at a site takes the scripted action
    // instead of a probabilistic draw. The Rng stream still advances on
    // scripted queries so that adding a script does not perturb the
    // probabilistic decisions of later queries.

    /** Flip exactly bit @p bit of the nth delivered payload. */
    void scriptPayload(std::uint64_t nth, std::uint64_t bit);

    void scriptScratch(std::uint64_t nth, fault::EccAction action);

    /** Charge @p replays link replays to the nth flow. */
    void scriptLink(std::uint64_t nth, unsigned replays);

  private:
    IntegritySpec _spec;
    IntegrityStats _stats;

    // Independent streams per site: the decision sequence at one site
    // does not depend on how queries interleave with other sites.
    Rng _payload_rng;
    Rng _scratch_rng;
    Rng _link_rng;

    std::uint64_t _payload_n = 0;
    std::uint64_t _scratch_n = 0;
    std::uint64_t _link_n = 0;

    std::map<std::uint64_t, std::uint64_t> _payload_script;
    std::map<std::uint64_t, fault::EccAction> _scratch_script;
    std::map<std::uint64_t, unsigned> _link_script;
};

/** @return human name of an ECC action, e.g. "correct-single". */
std::string toString(fault::EccAction a);

} // namespace dmx::integrity

#endif // DMX_INTEGRITY_INTEGRITY_HH
