/**
 * @file
 * End-to-end payload checksums.
 *
 * The chain protection layer (integrity::runChain) generates a CRC32
 * over every verified stage boundary and re-verifies it after each
 * hop, mirroring how real cross-domain pipelines layer an end-to-end
 * check on top of per-link CRC: the link CRC catches wire errors, the
 * end-to-end checksum catches everything the links cannot see (DMA
 * engine bit flips, buffer corruption between hops).
 *
 * The implementation is the reflected CRC-32/ISO-HDLC (polynomial
 * 0xEDB88320), table-driven; it is plain host-side code and consumes
 * no simulated time by itself - callers charge the modeled cost
 * explicitly (ChainConfig::checksum_bytes_per_sec).
 */

#ifndef DMX_INTEGRITY_CHECKSUM_HH
#define DMX_INTEGRITY_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmx::integrity
{

/** @return CRC32 (reflected, poly 0xEDB88320) of @p len bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/** Convenience overload over a byte vector. */
inline std::uint32_t
crc32(const std::vector<std::uint8_t> &data)
{
    return crc32(data.data(), data.size());
}

} // namespace dmx::integrity

#endif // DMX_INTEGRITY_CHECKSUM_HH
