/**
 * @file
 * End-to-end protected restructure chains with checkpointed recovery.
 *
 * The paper's central artifact is the multi-hop chain: stage outputs
 * DMA from one accelerator to the next, restructured by DRXs along the
 * way. Every extra hop multiplies the silent-data-corruption exposure,
 * so this runner layers a configurable protection contract on top of
 * the runtime's fail-stop recovery:
 *
 *  - *per-hop checksums* (ProtectionMode::E2eChecksum): a CRC32 is
 *    generated over every stage output and re-verified after each hop,
 *    mirroring the pure-plan split of the DRX compiler - the chain is
 *    pure data (ChainStage vector), and protection slots in as a
 *    transform over stage boundaries rather than a rewrite of stages;
 *  - *mismatch policies*: a failed verification either retransmits the
 *    hop (the producer-side buffer is still intact) or rolls back to
 *    the last verified checkpoint and replays from there;
 *  - *checkpointing + failover*: verified intermediate outputs become
 *    recovery points; a mid-chain device failure or uncorrectable ECC
 *    error re-routes the remaining stages onto alternate placements
 *    (consulting the device health trackers and circuit breakers) and
 *    resumes from the checkpoint instead of replaying the whole chain.
 *
 * Everything is default-off: ProtectionMode::Off with checkpoints
 * disabled is exactly a sequence of enqueueCopy/enqueue{Kernel,
 * Restructure} calls. All decisions are driven by simulated time and
 * the installed (seeded) plans, so runs are deterministic and
 * jobs-invariant under exec::ScenarioRunner.
 */

#ifndef DMX_INTEGRITY_CHAIN_HH
#define DMX_INTEGRITY_CHAIN_HH

#include <cstdint>
#include <vector>

#include "restructure/ir.hh"
#include "runtime/runtime.hh"

namespace dmx::integrity
{

/** End-to-end payload protection applied at stage boundaries. */
enum class ProtectionMode : std::uint8_t
{
    Off,         ///< legacy: no checksums; corruption flows through
    E2eChecksum, ///< CRC32 generated per stage output, verified per hop
};

/** What to do when a hop's checksum verification fails. */
enum class MismatchPolicy : std::uint8_t
{
    HopRetransmit, ///< re-DMA the hop from the intact producer buffer
    RollbackReplay, ///< restore the last verified checkpoint and replay
};

/** How the chain's commands reach the devices. */
enum class ChainMode : std::uint8_t
{
    /// Legacy: one enqueue + finish per hop and per stage; every
    /// command pays its own DMA setup and driver round trip.
    PerHop,
    /// Linked-descriptor submission (runtime::enqueueChain): one
    /// submission drives a whole segment autonomously; hop CRC
    /// verification moves into the engine, checkpoints fall on
    /// descriptor-chain (segment) boundaries, and the host pays one
    /// round trip per segment.
    Descriptor,
};

/** @return human name, e.g. "e2e-checksum". */
const char *toString(ProtectionMode m);
const char *toString(MismatchPolicy p);
const char *toString(ChainMode m);

/**
 * One chain stage: a device plus (for DRX devices) the restructuring
 * kernel it runs. Accelerator devices run their platform-registered
 * kernel function and ignore the kernel field.
 */
struct ChainStage
{
    runtime::DeviceId device = 0;
    restructure::Kernel kernel;
    /// Failover placements tried in order when the mapped device is
    /// unhealthy / quarantined or a stage command settles non-Ok.
    std::vector<runtime::DeviceId> alternates;
};

/** Protection and recovery knobs of one chain execution. */
struct ChainConfig
{
    ProtectionMode protection = ProtectionMode::Off;
    MismatchPolicy policy = MismatchPolicy::HopRetransmit;

    /// Record verified stage outputs as recovery points. When off,
    /// every rollback and failover replays the chain from its input.
    bool checkpoints = false;

    /// Total recovery-action budget (hop retransmits + rollbacks +
    /// failovers) before the chain gives up; bounds termination under
    /// pathological corruption rates.
    unsigned max_recoveries = 32;

    /// Modeled host-side checksum throughput: generation and
    /// verification each charge bytes / rate of simulated time.
    double checksum_bytes_per_sec = 20e9;

    /// Submission mode. Default PerHop is the legacy path, byte- and
    /// tick-identical to before ChainMode existed.
    ChainMode mode = ChainMode::PerHop;

    /// Descriptor mode only: fuse adjacent same-device DRX stages into
    /// one compiled plan (drx::planFusedChain; stages whose plans are
    /// not legally fusable silently run back-to-back instead).
    bool fuse = false;

    /// Descriptor mode only: stages per descriptor-chain segment
    /// (checkpoint/recovery boundary). 0 = the whole chain is one
    /// segment.
    unsigned segment_stages = 0;
};

/** Outcome and recovery accounting of one chain execution. */
struct ChainReport
{
    runtime::Bytes output;    ///< final bytes (empty when !ok)
    bool ok = false;
    runtime::Status status = runtime::Status::Pending;
    Tick makespan = 0;        ///< simulated ticks start to settle

    unsigned stages_run = 0;          ///< stage executions incl. replays
    unsigned hops_run = 0;            ///< DMA hops incl. retransmits
    unsigned mismatches_detected = 0; ///< e2e checksum failures caught
    unsigned hop_retransmits = 0;
    unsigned rollbacks = 0;
    unsigned failovers = 0;
    unsigned checkpoints_taken = 0;
    /// Host/driver round trips paid: one per command in PerHop mode,
    /// one per descriptor-chain segment in Descriptor mode.
    unsigned round_trips = 0;
    unsigned descriptor_chains = 0; ///< enqueueChain submissions made
    /// Stage executions saved by fusion: each fused group of k stages
    /// contributes k-1 (0 in PerHop mode or with fusion off).
    unsigned fused_stages = 0;

    /** @return recovery actions consumed (vs max_recoveries). */
    unsigned
    recoveries() const
    {
        return hop_retransmits + rollbacks + failovers;
    }
};

/**
 * Execute @p stages over @p input on @p plat.
 *
 * Synchronous: drives the platform's event queue to completion after
 * every hop and stage, so verification and recovery decisions happen
 * at well-defined simulated times. Stage i's input reaches its device
 * via an enqueueCopy hop from stage i-1's device (skipped when both
 * stages map to the same device); stage 0 consumes the input where it
 * already resides.
 */
ChainReport runChain(runtime::Platform &plat,
                     const std::vector<ChainStage> &stages,
                     const runtime::Bytes &input,
                     const ChainConfig &cfg = {});

} // namespace dmx::integrity

#endif // DMX_INTEGRITY_CHAIN_HH
