#include "integrity/checksum.hh"

#include <array>

namespace dmx::integrity
{

namespace
{

/** The 256-entry CRC-32/ISO-HDLC table, built once at startup. */
std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = buildTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace dmx::integrity
