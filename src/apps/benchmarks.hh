/**
 * @file
 * The five end-to-end cross-domain benchmarks of Table I, plus the
 * three-kernel Personal Info Redaction extension of Sec. VII-C.
 *
 * Each builder:
 *  1. fixes paper-scale workload sizes (restructured batches of
 *     6-16 MB, Sec. IV-A),
 *  2. measures kernel operation counts by *running the functional
 *     kernels* (at a reduced batch where the naive host implementation
 *     would be slow, scaling counts linearly),
 *  3. derives host times via cpu::*, accelerator cycles via accel::*,
 *     and DRX cycles by compiling and executing the restructuring
 *     kernel on the DRX cycle simulator,
 * and returns a sys::AppModel the system simulator composes.
 */

#ifndef DMX_APPS_BENCHMARKS_HH
#define DMX_APPS_BENCHMARKS_HH

#include <string>
#include <vector>

#include "cpu/host_model.hh"
#include "drx/machine.hh"
#include "restructure/ir.hh"
#include "sys/app_model.hh"

namespace dmx::apps
{

/** Parameters shared by the benchmark builders. */
struct SuiteParams
{
    drx::DrxConfig drx;        ///< DRX hardware to measure against
    cpu::HostParams host;
    /// Run the DRX cycle simulation at 1/divisor of the batch and scale
    /// the (linear) cycle count back up; keeps harness runtime low.
    unsigned drx_measure_divisor = 8;
};

/** Video decode -> object detection (surveillance cameras). */
sys::AppModel buildVideoSurveillance(const SuiteParams &p);

/** FFT -> SVM (audio genre detection). */
sys::AppModel buildSoundDetection(const SuiteParams &p);

/** FFT -> reinforcement learning (closed-loop brain stimulation). */
sys::AppModel buildBrainStimulation(const SuiteParams &p);

/** AES-GCM decrypt -> regex PII redaction. */
sys::AppModel buildPersonalInfoRedaction(const SuiteParams &p);

/** LZ decompress -> hash join (database analytics). */
sys::AppModel buildDatabaseHashJoin(const SuiteParams &p);

/** Three-kernel extension: decrypt -> regex -> transformer NER. */
sys::AppModel buildPersonalInfoRedactionNer(const SuiteParams &p);

/** The five Table I applications, in table order. */
std::vector<sys::AppModel> standardSuite(const SuiteParams &p);

/** A named restructuring kernel + representative input (for Fig. 5). */
struct NamedRestructure
{
    std::string app;                ///< owning benchmark
    restructure::Kernel kernel;
    restructure::Bytes input;
    double branch_rate = 0.08;      ///< for the top-down model
};

/**
 * The five benchmark restructuring operations with inputs, sized down
 * by @p divisor from the paper-scale batches (Fig. 5 characterization).
 */
std::vector<NamedRestructure> restructureSuite(unsigned divisor = 8);

} // namespace dmx::apps

#endif // DMX_APPS_BENCHMARKS_HH
