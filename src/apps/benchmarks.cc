#include "apps/benchmarks.hh"

#include <cmath>
#include <cstring>

#include "accel/accelerator.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "kernels/aes.hh"
#include "kernels/fft.hh"
#include "kernels/hashjoin.hh"
#include "kernels/lz.hh"
#include "kernels/nn.hh"
#include "kernels/regex.hh"
#include "kernels/svm.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"

namespace dmx::apps
{

using kernels::OpCount;
using restructure::Bytes;
using restructure::Kernel;
using sys::AppModel;
using sys::KernelTiming;
using sys::MotionTiming;

namespace
{

/** Multiply every count by @p factor (linear workload scaling). */
OpCount
scaleOps(OpCount ops, double factor)
{
    ops.flops = static_cast<std::uint64_t>(
        static_cast<double>(ops.flops) * factor);
    ops.int_ops = static_cast<std::uint64_t>(
        static_cast<double>(ops.int_ops) * factor);
    ops.bytes_read = static_cast<std::uint64_t>(
        static_cast<double>(ops.bytes_read) * factor);
    ops.bytes_written = static_cast<std::uint64_t>(
        static_cast<double>(ops.bytes_written) * factor);
    return ops;
}

/** Deterministic random input bytes for a buffer descriptor. */
Bytes
randomInput(const restructure::BufferDesc &desc, std::uint64_t seed)
{
    Rng rng(seed);
    Bytes out(desc.bytes());
    if (desc.dtype == DType::F32) {
        for (std::size_t i = 0; i < desc.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

/** Kernel timing from measured op counts. */
KernelTiming
makeKernel(const std::string &name, accel::Domain domain,
           const OpCount &ops, std::uint64_t out_bytes,
           const SuiteParams &p, double max_host_cores = 0)
{
    const accel::AcceleratorSpec spec = accel::specFor(domain);
    KernelTiming kt;
    kt.name = name;
    kt.max_host_cores = max_host_cores;
    kt.cpu_core_seconds = cpu::kernelCoreSeconds(ops, p.host);
    kt.accel_cycles = accel::kernelCycles(spec, ops);
    kt.accel_freq_hz = spec.freq_hz;
    kt.out_bytes = out_bytes;
    kt.accel_active_watts = spec.active_watts;
    kt.accel_idle_watts = spec.idle_watts;
    return kt;
}

/**
 * Motion timing: run the reduced-size restructuring kernel on the CPU
 * executor (op counts) and the DRX cycle simulator, then scale both by
 * @p factor. The full kernel only provides the transfer sizes.
 */
MotionTiming
makeMotion(const std::string &name, const Kernel &reduced, double factor,
           std::uint64_t in_bytes, std::uint64_t out_bytes,
           const SuiteParams &p, std::uint64_t seed)
{
    const Bytes input = randomInput(reduced.input, seed);
    OpCount ops;
    restructure::executeOnCpu(reduced, input, &ops);
    ops = scaleOps(ops, factor);

    // Cached: suite construction re-times the same reduced kernels on
    // every call (closed-loop sims, bench repeats), and the timing-only
    // run here is exactly what the tier-2 memo replays.
    drx::DrxMachine machine(p.drx);
    const drx::RunResult drx_res =
        drx::runKernelOnDrxCached(reduced, input, machine);

    MotionTiming mt;
    mt.name = name;
    mt.cpu_core_seconds = cpu::restructureCoreSeconds(ops, p.host);
    mt.drx_cycles = static_cast<Cycles>(
        static_cast<double>(drx_res.total_cycles) * factor);
    mt.in_bytes = in_bytes;
    mt.out_bytes = out_bytes;
    return mt;
}

} // namespace

AppModel
buildVideoSurveillance(const SuiteParams &p)
{
    // 8 camera frames of 1024x768 8-bit luma per request (~6.3 MB).
    constexpr std::size_t frames = 8;
    constexpr std::size_t h = 768, w = 1024, dst = 256;
    constexpr std::uint64_t pixels = frames * h * w;

    AppModel app;
    app.name = "video_surveillance";
    app.input_bytes = pixels / 3; // compressed stream

    // Kernel 1: hardware video decoder. A production decoder runs a
    // fast separable IDCT (not the naive O(64^2) reference in
    // kernels/video.cc), so its op count is derived analytically:
    // ~30 integer ops and 8 flops per decoded pixel.
    OpCount decode;
    decode.int_ops = pixels * 30;
    decode.flops = pixels * 8;
    decode.bytes_read = app.input_bytes;
    decode.bytes_written = pixels;
    // Frame decode parallelizes across at most a couple of slices.
    app.kernels.push_back(makeKernel("video_decode",
                                     accel::Domain::VideoCodec, decode,
                                     pixels, p, 2));

    // Motion: per-frame normalize + resize + f16 (measured on 1 frame,
    // scaled by the batch).
    const Kernel one_frame = restructure::videoFrameRestructure(h, w, dst);
    const std::uint64_t out_bytes = frames * dst * dst * 2;
    app.motions.push_back(makeMotion("video_frame_restructure", one_frame,
                                     static_cast<double>(frames), pixels,
                                     out_bytes, p, 101));

    // Kernel 2: CNN detector, measured functionally at 128x128 and
    // scaled by area x batch.
    kernels::TinyCnn cnn(1, 16, 42);
    kernels::Tensor img({1, 1, 128, 128});
    img.randomize(7);
    OpCount detect;
    cnn.detect(img, &detect);
    const double scale =
        static_cast<double>(dst * dst) / (128.0 * 128.0) *
        static_cast<double>(frames);
    app.kernels.push_back(makeKernel("object_detection",
                                     accel::Domain::ObjectDetection,
                                     scaleOps(detect, scale),
                                     frames * 64 * 64 * 16 * 4, p));
    return app;
}

AppModel
buildSoundDetection(const SuiteParams &p)
{
    // 2^21 audio samples; 1024-point STFT, hop 512 -> ~4096 frames of
    // 513 complex bins (~16.8 MB intermediate).
    constexpr std::size_t samples = 1u << 21;
    constexpr std::size_t fft_size = 1024, hop = 512;
    constexpr std::size_t frames = 4096, bins = 513, mels = 128;
    constexpr std::size_t classes = 10;

    AppModel app;
    app.name = "sound_detection";
    app.input_bytes = samples * 4;

    // Kernel 1: STFT, measured at 1/16 of the samples.
    {
        constexpr std::size_t meas = samples / 16;
        std::vector<float> audio(meas);
        Rng rng(55);
        for (auto &v : audio)
            v = static_cast<float>(rng.uniform(-1, 1));
        OpCount ops;
        kernels::stft(audio, fft_size, hop, &ops);
        const std::uint64_t inter = frames * 2 * bins * 4;
        app.kernels.push_back(makeKernel(
            "fft", accel::Domain::FFT, scaleOps(ops, 16.0), inter, p));
    }

    // Motion: mel-scale spectrogram.
    const unsigned div = p.drx_measure_divisor;
    const Kernel reduced =
        restructure::melSpectrogram(frames / div, bins, mels);
    app.motions.push_back(makeMotion(
        "mel_spectrogram", reduced, static_cast<double>(div),
        frames * 2 * bins * 4, frames * mels * 4, p, 102));

    // Kernel 2: SVM over mel features, measured at 1/8 of the rows.
    {
        kernels::LinearSvm svm(mels, classes);
        Rng rng(66);
        for (auto &wv : svm.weights())
            wv = static_cast<float>(rng.uniform(-1, 1));
        constexpr std::size_t rows = frames / 8;
        std::vector<float> batch(rows * mels);
        for (auto &v : batch)
            v = static_cast<float>(rng.uniform(0, 4));
        OpCount ops;
        svm.predictBatch(batch, rows, &ops);
        app.kernels.push_back(makeKernel("svm", accel::Domain::SVM,
                                         scaleOps(ops, 8.0), frames * 8,
                                         p));
    }
    return app;
}

AppModel
buildBrainStimulation(const SuiteParams &p)
{
    // 2^20 electrode samples -> 2048 frames x 513 bins (~8.4 MB).
    constexpr std::size_t samples = 1u << 20;
    constexpr std::size_t fft_size = 1024, hop = 512;
    constexpr std::size_t frames = 2048, bins = 513, bands = 64;

    AppModel app;
    app.name = "brain_stimulation";
    app.input_bytes = samples * 4;

    {
        constexpr std::size_t meas = samples / 8;
        std::vector<float> signal(meas);
        Rng rng(77);
        for (auto &v : signal)
            v = static_cast<float>(rng.uniform(-1, 1));
        OpCount ops;
        kernels::stft(signal, fft_size, hop, &ops);
        app.kernels.push_back(makeKernel("fft", accel::Domain::FFT,
                                         scaleOps(ops, 8.0),
                                         frames * 2 * bins * 4, p));
    }

    const unsigned div = p.drx_measure_divisor;
    const Kernel reduced =
        restructure::brainSignalRestructure(frames / div, bins, bands);
    app.motions.push_back(makeMotion(
        "brain_signal_restructure", reduced, static_cast<double>(div),
        frames * 2 * bins * 4, frames * bands * 2, p, 103));

    // Kernel 2: PPO policy over band observations (1/32 measured).
    {
        kernels::MlpPolicy policy(bands, 8, 256, 3);
        kernels::Tensor obs({1, bands});
        obs.randomize(4);
        OpCount ops;
        for (int i = 0; i < 64; ++i)
            policy.act(obs, &ops);
        const double scale = static_cast<double>(frames) / 64.0;
        app.kernels.push_back(makeKernel("ppo", accel::Domain::RL,
                                         scaleOps(ops, scale),
                                         frames * 8 * 4, p));
    }
    return app;
}

AppModel
buildPersonalInfoRedaction(const SuiteParams &p)
{
    // 8 MB of encrypted text per request.
    constexpr std::size_t text_bytes = 8u << 20;
    constexpr std::size_t record = 256, padded = 320;

    AppModel app;
    app.name = "personal_info_redaction";
    app.input_bytes = text_bytes;

    // Kernel 1: AES-GCM decrypt, measured on 512 KB.
    {
        constexpr std::size_t meas = 512u << 10;
        kernels::AesKey key{1, 2, 3, 4};
        kernels::AesBlock iv{9, 8, 7};
        std::vector<std::uint8_t> data(meas, 0x5a);
        const kernels::Aes128 aes(key);
        OpCount ops;
        aes.ctrTransform(data, iv, &ops);
        ops.int_ops += meas * 8; // GHASH
        app.kernels.push_back(makeKernel(
            "aes_gcm_decrypt", accel::Domain::Crypto,
            scaleOps(ops, static_cast<double>(text_bytes) / meas),
            text_bytes, p));
    }

    // Motion: record reblock + pad.
    const unsigned div = p.drx_measure_divisor;
    const Kernel reduced = restructure::textRecordRestructure(
        text_bytes / div, record, padded);
    const std::uint64_t padded_bytes = text_bytes / record * padded;
    app.motions.push_back(makeMotion(
        "text_record_restructure", reduced, static_cast<double>(div),
        text_bytes, padded_bytes, p, 104));

    // Kernel 2: regex PII scan, measured on 64 KB of synthetic text.
    {
        const kernels::Regex ssn("\\d\\d\\d-\\d\\d-\\d\\d\\d\\d");
        std::string text;
        Rng rng(88);
        while (text.size() < (64u << 10)) {
            if (rng.below(20) == 0)
                text += "123-45-6789";
            else
                text += static_cast<char>('a' + rng.below(26));
        }
        OpCount ops;
        kernels::redact(ssn, text, '#', &ops);
        const double scale =
            static_cast<double>(padded_bytes) /
            static_cast<double>(text.size());
        app.kernels.push_back(makeKernel("regex_redact",
                                         accel::Domain::Regex,
                                         scaleOps(ops, scale),
                                         padded_bytes, p));
    }
    return app;
}

AppModel
buildDatabaseHashJoin(const SuiteParams &p)
{
    // Two 2^20-row tables (16 B rows): ~16 MB decompressed each.
    constexpr std::size_t rows = 1u << 20;

    AppModel app;
    app.name = "database_hash_join";
    app.input_bytes = rows * 16 / 3; // compressed

    // Kernel 1: decompression, measured on 2^16 rows.
    {
        constexpr std::size_t meas_rows = 1u << 16;
        kernels::Table t;
        Rng rng(99);
        for (std::size_t r = 0; r < meas_rows; ++r)
            t.add(static_cast<std::int64_t>(rng.below(1000)),
                  static_cast<std::int64_t>(r));
        const auto serialized = t.serialize();
        const auto compressed = kernels::lzCompress(serialized);
        OpCount ops;
        kernels::lzDecompress(compressed, &ops);
        // LZ decompression is inherently serial on a CPU.
        app.kernels.push_back(makeKernel(
            "decompress", accel::Domain::Decompression,
            scaleOps(ops, static_cast<double>(rows) / meas_rows),
            rows * 16, p, 1));
    }

    // Motion: row-major -> columnar.
    const unsigned div = p.drx_measure_divisor;
    const Kernel reduced =
        restructure::dbColumnarize(rows / div, true);
    app.motions.push_back(makeMotion(
        "db_columnarize", reduced, static_cast<double>(div), rows * 16,
        rows * 16, p, 105));

    // Kernel 2: hash join, measured at 2^16 x 2^16.
    {
        constexpr std::size_t meas_rows = 1u << 16;
        kernels::Table build, probe;
        Rng rng(111);
        for (std::size_t r = 0; r < meas_rows; ++r) {
            build.add(static_cast<std::int64_t>(rng.below(meas_rows)),
                      static_cast<std::int64_t>(r));
            probe.add(static_cast<std::int64_t>(rng.below(meas_rows)),
                      static_cast<std::int64_t>(r));
        }
        OpCount ops;
        const auto joined = kernels::hashJoin(build, probe, &ops);
        const double scale = static_cast<double>(rows) / meas_rows;
        app.kernels.push_back(makeKernel(
            "hash_join", accel::Domain::HashJoin, scaleOps(ops, scale),
            static_cast<std::uint64_t>(
                static_cast<double>(joined.size()) * scale * 24.0),
            p));
    }
    return app;
}

AppModel
buildPersonalInfoRedactionNer(const SuiteParams &p)
{
    AppModel app = buildPersonalInfoRedaction(p);
    app.name = "personal_info_redaction_ner";

    constexpr std::size_t seq = 2048, dim = 512, labels = 4;
    const std::uint64_t redacted_bytes = app.kernels.back().out_bytes;

    // Motion 2: reshape + typecast of redacted text into embeddings.
    const unsigned div = p.drx_measure_divisor;
    const Kernel reduced = restructure::nerTokenRestructure(
        static_cast<std::size_t>(redacted_bytes / div), seq / div, dim);
    app.motions.push_back(makeMotion(
        "ner_token_restructure", reduced, static_cast<double>(div),
        redacted_bytes, seq * dim * 4, p, 106));

    // Kernel 3: transformer NER. The attention term is quadratic in the
    // sequence length, so the full-scale op count is computed from the
    // same closed forms the functional layers charge (kernels/nn.cc).
    OpCount ner;
    ner.flops = 2ull * seq * dim * dim * 3      // q/k/v projections
                + 2ull * seq * seq * dim * 2    // scores + weighted sum
                + 6ull * seq * seq              // softmax
                + seq * (2ull * dim * 4 * dim * 2) // feed-forward
                + 2ull * seq * labels * dim;    // head
    ner.bytes_read = seq * dim * 4 * 4;
    ner.bytes_written = seq * labels * 4;
    app.kernels.push_back(makeKernel("ner", accel::Domain::NER, ner,
                                     seq * labels * 4, p));
    return app;
}

std::vector<AppModel>
standardSuite(const SuiteParams &p)
{
    return {
        buildVideoSurveillance(p),  buildSoundDetection(p),
        buildBrainStimulation(p),   buildPersonalInfoRedaction(p),
        buildDatabaseHashJoin(p),
    };
}

std::vector<NamedRestructure>
restructureSuite(unsigned divisor)
{
    if (divisor == 0)
        dmx_fatal("restructureSuite: divisor must be nonzero");
    std::vector<NamedRestructure> out;

    NamedRestructure video;
    video.app = "video_surveillance";
    video.kernel = restructure::videoFrameRestructure(768, 1024, 256);
    // Conditional resize/clip paths make this the branchy outlier the
    // paper calls out for Figure 5.
    video.branch_rate = 0.20;
    out.push_back(std::move(video));

    NamedRestructure sound;
    sound.app = "sound_detection";
    sound.kernel = restructure::melSpectrogram(4096 / divisor, 513, 128);
    out.push_back(std::move(sound));

    NamedRestructure brain;
    brain.app = "brain_stimulation";
    brain.kernel =
        restructure::brainSignalRestructure(2048 / divisor, 513, 64);
    out.push_back(std::move(brain));

    NamedRestructure pii;
    pii.app = "personal_info_redaction";
    pii.kernel = restructure::textRecordRestructure((8u << 20) / divisor,
                                                    256, 320);
    out.push_back(std::move(pii));

    NamedRestructure db;
    db.app = "database_hash_join";
    db.kernel = restructure::dbColumnarize((1u << 20) / divisor, true);
    out.push_back(std::move(db));

    for (NamedRestructure &nr : out)
        nr.input = randomInput(nr.kernel.input, 7777);
    return out;
}

} // namespace dmx::apps
