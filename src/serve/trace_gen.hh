/**
 * @file
 * Seeded arrival-trace generation for the serving layer.
 *
 * The overload engine offers requests on a single uniform clock; real
 * serving load is bursty. This generator replays one of four canonical
 * shapes through per-tenant streams with SLO classes:
 *
 *  - Steady:     arrival i at exactly i * interval — bit-identical to
 *                the overload engine's uniform clock, so the serving
 *                engine with everything off reproduces it exactly.
 *  - Diurnal:    the arrival rate follows a cosine day/night swing of
 *                configurable depth and cycle count across the trace.
 *  - FlashCrowd: a steady baseline with a window where the rate jumps
 *                by a configurable multiplier (the "crowd").
 *  - HeavyTail:  steady arrivals, but request *sizes* drawn from a
 *                bounded Pareto, so a few elephants queue behind mice.
 *
 * Everything is derived from an explicit seed; equal (config, seed)
 * pairs give byte-equal traces on every platform.
 */

#ifndef DMX_SERVE_TRACE_GEN_HH
#define DMX_SERVE_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace dmx::serve
{

/** Canonical arrival-trace shapes. */
enum class TraceShape : std::uint8_t
{
    Steady,     ///< uniform clock (the overload engine's arrivals)
    Diurnal,    ///< cosine day/night rate swing
    FlashCrowd, ///< rate spike over a window of the trace
    HeavyTail,  ///< steady clock, bounded-Pareto request sizes
};

/** @return human name, e.g. "flash-crowd". */
std::string toString(TraceShape s);

/** SLO class of a request stream. */
enum class SloClass : std::uint8_t
{
    LatencySensitive, ///< user-facing: tight SLO, hedged first
    Batch,            ///< throughput-oriented: loose SLO, shed first
};

/** @return human name, e.g. "batch". */
std::string toString(SloClass c);

/** Shape of the offered trace. */
struct TraceConfig
{
    TraceShape shape = TraceShape::Steady;
    /// Request i belongs to tenant i % tenants. The floor(batch_fraction
    /// * tenants) highest-numbered tenants are Batch class, the rest
    /// LatencySensitive.
    unsigned tenants = 4;
    double batch_fraction = 0.5;

    /// Diurnal: rate multiplier swings between 1 (peak, at the trace
    /// start) and 1 - depth (trough) over `cycles` full cosine periods.
    double diurnal_depth = 0.6;
    unsigned diurnal_cycles = 2;

    /// FlashCrowd: requests in [start, start + length) (fractions of
    /// the trace) arrive `multiplier` times faster than the baseline.
    double flash_start = 0.5;
    double flash_length = 0.2;
    double flash_multiplier = 4.0;

    /// HeavyTail: request size multiplier drawn from a Pareto with this
    /// alpha, clamped to [1, max_multiplier] (and to the ring size).
    double tail_alpha = 1.5;
    double tail_max_multiplier = 16.0;
};

/** One offered request. */
struct Arrival
{
    Tick at = 0;              ///< absolute arrival tick
    unsigned tenant = 0;      ///< owning tenant stream
    SloClass cls = SloClass::LatencySensitive;
    std::uint64_t bytes = 0;  ///< payload size
};

/** @return the SLO class of @p tenant under @p cfg. */
SloClass classOf(const TraceConfig &cfg, unsigned tenant);

/**
 * Generate @p requests arrivals.
 *
 * @param cfg           trace shape and tenant mix
 * @param requests      number of arrivals
 * @param interval      baseline inter-arrival gap (the overload
 *                      engine's self-calibrated spacing); Steady
 *                      reproduces `i * interval` exactly
 * @param request_bytes baseline payload size
 * @param ring_bytes    hard upper bound on any generated payload
 * @param seed          trace stream seed
 */
std::vector<Arrival> generateArrivals(const TraceConfig &cfg,
                                      unsigned requests, Tick interval,
                                      std::uint64_t request_bytes,
                                      std::uint64_t ring_bytes,
                                      std::uint64_t seed);

} // namespace dmx::serve

#endif // DMX_SERVE_TRACE_GEN_HH
