/**
 * @file
 * Deterministic open-loop serving layer over the overload stack.
 *
 * sys::simulateOverload answers "what does the protection stack buy
 * under uniform overload?". This layer answers the production question
 * on top of it: can the fabric *hold its SLOs* under bursty,
 * partially-faulted, multi-tenant load? It drives the same
 * self-calibrated device bank through:
 *
 *  - arrival traces (serve/trace_gen.hh): seeded steady / diurnal /
 *    flash-crowd / heavy-tailed shapes over per-tenant streams with
 *    latency-sensitive vs. batch SLO classes;
 *  - hedged requests: after a class-configurable percentile of the
 *    observed class latency, a straggler is re-issued on the
 *    healthiest alternate device and the loser is cancelled on first
 *    successful settle (cancellation ignores the loser's outcome; it
 *    never double-counts the request);
 *  - retry budgets (serve/budget.hh): per-tenant token buckets gating
 *    every hedge *and* every runtime retry (via
 *    runtime::Platform::setRetryPolicy), bounding attempt
 *    amplification exactly;
 *  - brownout control (serve/brownout.hh): a sojourn-tracking ladder
 *    shedding batch first, then degrading latency-sensitive work,
 *    then failing fast, recovering in reverse.
 *
 * Everything is default-off and seeded. With `enabled == false` the
 * engine replays sys::simulateOverload's exact operation sequence and
 * its results are byte-identical to that engine's — pinned by the
 * differential tests in tests/test_serve.cc. Equal configs are
 * byte-identical at any exec::ScenarioRunner --jobs level.
 */

#ifndef DMX_SERVE_SERVE_HH
#define DMX_SERVE_SERVE_HH

#include <cstdint>
#include <vector>

#include "common/percentile.hh"
#include "common/units.hh"
#include "serve/brownout.hh"
#include "serve/budget.hh"
#include "serve/trace_gen.hh"
#include "sys/overload.hh"

namespace dmx::serve
{

/** Hedged-request policy. */
struct HedgeConfig
{
    bool enabled = false;
    /// Hedge a latency-sensitive request once it has been in flight
    /// longer than this percentile of its class's observed latency.
    double ls_percentile = 0.95;
    /// Same for batch requests (hedged later: they can afford to wait).
    double batch_percentile = 0.99;
    /// Observed-latency samples required before the percentile is
    /// trusted; until then the hedge delay is initial_factor * the
    /// solo service time. The same value floors the adaptive delay
    /// afterwards (a request is never hedged before the work could
    /// plausibly have completed once).
    unsigned min_samples = 8;
    double initial_factor = 4.0;
};

/** One serving stress point. */
struct ServeConfig
{
    /// The underlying overload point: devices, request count, load,
    /// fault rate, seed, payload/ring bytes, protection stack.
    sys::OverloadConfig overload;

    /// Master switch. False = byte-identical replay of
    /// sys::simulateOverload (every serving feature unreachable).
    bool enabled = false;

    TraceConfig trace;
    HedgeConfig hedge;
    RetryBudgetConfig budget;
    BrownoutConfig brownout;

    /// Per-class SLO targets as multiples of the solo service time.
    double slo_ls_factor = 8.0;
    double slo_batch_factor = 64.0;

    /// Fraction of faulted kernels that hang (the rest fail fast).
    /// The default 0.2 reproduces the overload engine's 80/20 split
    /// bit-exactly.
    double fault_hang_fraction = 0.2;
    /// Override for the fault plan's consecutive-failure threshold;
    /// 0 keeps the plan default. The amplification regression raises
    /// it so health-based fast-fail cannot hide attempts.
    unsigned unhealthy_threshold = 0;
};

/** Per-SLO-class results. */
struct ClassStats
{
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t degraded = 0; ///< served with brownout-reduced payload

    common::LatencySummary latency; ///< completed requests only
    double slo_target_ms = 0;
    /// Completed within the SLO target, over *offered* (a shed request
    /// is an SLO miss, not a statistical no-show).
    double slo_attainment = 0;
};

/** Results of one serving stress point. */
struct ServeStats
{
    /// The overload engine's full result block (byte-identical to
    /// sys::simulateOverload when serving is disabled).
    sys::OverloadStats base;

    ClassStats latency_sensitive;
    ClassStats batch;

    std::uint64_t hedges_issued = 0;    ///< hedge attempts launched
    std::uint64_t hedges_won = 0;       ///< hedge settled Ok first
    std::uint64_t hedges_cancelled = 0; ///< losers outstanding at the
                                        ///< winning settle
    std::uint64_t hedges_denied = 0;    ///< vetoed by the retry budget

    std::uint64_t budget_granted = 0;   ///< tokens consumed
    std::uint64_t budget_denied = 0;    ///< consumptions refused
    std::uint64_t retries_denied = 0;   ///< runtime retries vetoed

    std::uint64_t brownout_escalations = 0;
    std::uint64_t brownout_deescalations = 0;
    std::uint64_t brownout_shed_batch = 0; ///< arrivals shed at >= ShedBatch
    std::uint64_t brownout_shed_all = 0;   ///< arrivals shed at FailFast
    std::uint64_t brownout_degraded = 0;   ///< arrivals degraded
    BrownoutLevel brownout_final = BrownoutLevel::Normal;

    /// Total command attempts across the bank (first tries + retries +
    /// hedges): the amplification the retry budget bounds.
    std::uint64_t total_attempts = 0;
};

/** Run one serving stress point. */
ServeStats simulateServing(const ServeConfig &cfg);

/**
 * Every numeric field of @p st in a fixed order: the byte-identity
 * probe used by the determinism tests (compare with ==, not an
 * epsilon).
 */
std::vector<double> flatten(const ServeStats &st);

} // namespace dmx::serve

#endif // DMX_SERVE_SERVE_HH
