#include "serve/trace_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace dmx::serve
{

namespace
{

/// Dedicated Rng stream id for trace generation, so trace draws can
/// never entangle with the fault plan's per-site streams.
constexpr std::uint64_t trace_stream = 0x73657276; // "serv"

constexpr double pi = 3.14159265358979323846;

} // namespace

std::string
toString(TraceShape s)
{
    switch (s) {
      case TraceShape::Steady:     return "steady";
      case TraceShape::Diurnal:    return "diurnal";
      case TraceShape::FlashCrowd: return "flash-crowd";
      case TraceShape::HeavyTail:  return "heavy-tail";
    }
    return "?";
}

std::string
toString(SloClass c)
{
    switch (c) {
      case SloClass::LatencySensitive: return "latency-sensitive";
      case SloClass::Batch:            return "batch";
    }
    return "?";
}

SloClass
classOf(const TraceConfig &cfg, unsigned tenant)
{
    const auto batch = static_cast<unsigned>(
        cfg.batch_fraction * static_cast<double>(cfg.tenants));
    // The `batch` highest-numbered tenants are batch class.
    return tenant + batch >= cfg.tenants ? SloClass::Batch
                                         : SloClass::LatencySensitive;
}

std::vector<Arrival>
generateArrivals(const TraceConfig &cfg, unsigned requests,
                 Tick interval, std::uint64_t request_bytes,
                 std::uint64_t ring_bytes, std::uint64_t seed)
{
    if (cfg.tenants == 0)
        dmx_fatal("serve: need at least one tenant");
    if (cfg.batch_fraction < 0 || cfg.batch_fraction > 1)
        dmx_fatal("serve: batch_fraction must be in [0, 1]");

    Rng rng(seed, trace_stream);
    std::vector<Arrival> out;
    out.reserve(requests);
    Tick at = 0;
    for (unsigned i = 0; i < requests; ++i) {
        Arrival a;
        a.tenant = i % cfg.tenants;
        a.cls = classOf(cfg, a.tenant);
        a.bytes = request_bytes;
        const double frac =
            static_cast<double>(i) / static_cast<double>(requests);
        switch (cfg.shape) {
          case TraceShape::Steady:
            // Exactly the overload engine's clock: integer multiples,
            // no accumulated rounding.
            a.at = static_cast<Tick>(i) * interval;
            break;
          case TraceShape::Diurnal: {
            // Rate multiplier 1 (peak) .. 1 - depth (trough); the gap
            // is the baseline divided by the current rate.
            const double rate =
                1.0 - cfg.diurnal_depth * 0.5 *
                          (1.0 - std::cos(2.0 * pi *
                                          cfg.diurnal_cycles * frac));
            a.at = at;
            at += std::max<Tick>(
                1, static_cast<Tick>(static_cast<double>(interval) /
                                     rate));
            break;
          }
          case TraceShape::FlashCrowd: {
            const bool crowd = frac >= cfg.flash_start &&
                               frac < cfg.flash_start + cfg.flash_length;
            a.at = at;
            at += crowd ? std::max<Tick>(
                              1, static_cast<Tick>(
                                     static_cast<double>(interval) /
                                     cfg.flash_multiplier))
                        : interval;
            break;
          }
          case TraceShape::HeavyTail: {
            a.at = static_cast<Tick>(i) * interval;
            // Bounded Pareto size multiplier via inverse CDF.
            double u;
            do {
                u = rng.uniform();
            } while (u >= 1.0);
            double mult = std::pow(1.0 - u, -1.0 / cfg.tail_alpha);
            mult = std::min(mult, cfg.tail_max_multiplier);
            const auto bytes = static_cast<std::uint64_t>(
                mult * static_cast<double>(request_bytes));
            a.bytes = std::clamp<std::uint64_t>(bytes, 1, ring_bytes);
            break;
          }
        }
        out.push_back(a);
    }
    return out;
}

} // namespace dmx::serve
