#include "serve/brownout.hh"

#include "common/logging.hh"

namespace dmx::serve
{

std::string
toString(BrownoutLevel l)
{
    switch (l) {
      case BrownoutLevel::Normal:    return "normal";
      case BrownoutLevel::ShedBatch: return "shed-batch";
      case BrownoutLevel::Degraded:  return "degraded";
      case BrownoutLevel::FailFast:  return "fail-fast";
    }
    return "?";
}

BrownoutController::BrownoutController(Tick enter_threshold,
                                       Tick exit_threshold,
                                       unsigned enter_consecutive,
                                       unsigned exit_consecutive)
    : _enter(enter_threshold), _exit(exit_threshold),
      _enter_consecutive(enter_consecutive == 0 ? 1 : enter_consecutive),
      _exit_consecutive(exit_consecutive == 0 ? 1 : exit_consecutive)
{
    if (_exit >= _enter)
        dmx_fatal("brownout: exit threshold must be below enter "
                  "threshold (hysteresis band)");
}

BrownoutLevel
BrownoutController::evaluate(Tick signal)
{
    if (signal > _enter) {
        _under = 0;
        if (++_over >= _enter_consecutive) {
            _over = 0;
            if (_level != BrownoutLevel::FailFast) {
                _level = static_cast<BrownoutLevel>(
                    static_cast<std::uint8_t>(_level) + 1);
                ++_escalations;
            }
        }
    } else if (signal <= _exit) {
        _over = 0;
        if (++_under >= _exit_consecutive) {
            _under = 0;
            if (_level != BrownoutLevel::Normal) {
                _level = static_cast<BrownoutLevel>(
                    static_cast<std::uint8_t>(_level) - 1);
                ++_deescalations;
            }
        }
    } else {
        // Dead band: hold the level, restart both streaks.
        _over = 0;
        _under = 0;
    }
    return _level;
}

} // namespace dmx::serve
