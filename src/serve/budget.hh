/**
 * @file
 * Per-tenant retry budgets: a token bucket gating every retry and
 * hedge attempt a tenant may add on top of its offered load.
 *
 * The retry-storm failure mode: under overload, each failure triggers
 * a retry, the retry adds load, more requests fail, and offered work
 * amplifies superlinearly until the system collapses. The budget makes
 * amplification a configured invariant instead of an emergent one:
 * each offered request accrues `per_request` tokens to its tenant's
 * bucket, each extra attempt (runtime retry or serving-layer hedge)
 * consumes exactly one token, and a bucket below one token denies the
 * attempt — the request degrades to fail-fast. Total attempts are
 * therefore bounded by offered * (1 + per_request), exactly, at any
 * load and any fault rate.
 *
 * Accrual values with exact binary representations (0.5, 1.0, ...)
 * keep the accounting bit-exact, which the amplification regression
 * test pins.
 */

#ifndef DMX_SERVE_BUDGET_HH
#define DMX_SERVE_BUDGET_HH

#include <cstdint>
#include <vector>

namespace dmx::serve
{

/** Retry/hedge budget policy. */
struct RetryBudgetConfig
{
    bool enabled = false;
    /// Tokens accrued per offered request: the amplification bound.
    /// 0.5 means at most one extra attempt per two offered requests.
    double per_request = 0.5;
    /// Bucket capacity in tokens; accrual beyond it is discarded.
    double burst = 32.0;
};

/** Per-tenant token buckets. Buckets start empty. */
class RetryBudget
{
  public:
    RetryBudget(const RetryBudgetConfig &cfg, unsigned tenants);

    /** Accrue @p cfg.per_request tokens to @p tenant (clamped to burst). */
    void onOffered(unsigned tenant);

    /**
     * Try to consume one token from @p tenant's bucket.
     * @return true (attempt allowed) when a full token was available.
     */
    bool tryConsume(unsigned tenant);

    /** @return tokens currently in @p tenant's bucket. */
    double tokens(unsigned tenant) const { return _tokens[tenant]; }

    std::uint64_t granted() const { return _granted; }
    std::uint64_t denied() const { return _denied; }

  private:
    RetryBudgetConfig _cfg;
    std::vector<double> _tokens;
    std::uint64_t _granted = 0;
    std::uint64_t _denied = 0;
};

} // namespace dmx::serve

#endif // DMX_SERVE_BUDGET_HH
