/**
 * @file
 * Brownout control: graceful, staged degradation under sustained
 * overload, recovering in reverse order when pressure lifts.
 *
 * The controller is a pure, deterministic state machine over a ladder
 * of levels:
 *
 *   Normal -> ShedBatch -> Degraded -> FailFast
 *
 * It is fed a congestion signal (the serving engine uses the worse of
 * the recent-sojourn p99 and the oldest in-flight request's age) at a
 * fixed evaluation cadence. Hysteresis is two-dimensional:
 *
 *  - thresholds: the signal must exceed `enter_threshold` to count
 *    toward escalation and drop to or below `exit_threshold` to count
 *    toward recovery (enter > exit, so the band between them is dead:
 *    it resets both streaks and holds the level);
 *  - streaks: escalation needs `enter_consecutive` consecutive
 *    over-threshold evaluations, recovery `exit_consecutive` under;
 *    each transition moves exactly one level and restarts the streak.
 *
 * One evaluation can therefore never jump levels, and a flapping
 * signal parks the controller rather than oscillating it.
 */

#ifndef DMX_SERVE_BROWNOUT_HH
#define DMX_SERVE_BROWNOUT_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace dmx::serve
{

/** The brownout ladder, mildest to harshest. */
enum class BrownoutLevel : std::uint8_t
{
    Normal,    ///< full service
    ShedBatch, ///< batch-class arrivals shed at the door
    Degraded,  ///< plus latency-sensitive work degraded (smaller
               ///< payloads: the serving analogue of DRX->CPU quality
               ///< degradation)
    FailFast,  ///< every arrival shed; protect the survivors
};

/** @return human name, e.g. "shed-batch". */
std::string toString(BrownoutLevel l);

/** Brownout policy knobs. */
struct BrownoutConfig
{
    bool enabled = false;
    /// Escalation threshold as a multiple of the solo service time.
    double enter_factor = 8.0;
    /// Recovery threshold, same unit; must be below enter_factor.
    double exit_factor = 2.0;
    /// Consecutive evaluations beyond the threshold per transition.
    unsigned enter_consecutive = 3;
    unsigned exit_consecutive = 3;
    /// Payload scale applied to latency-sensitive requests while
    /// Degraded (batch is already shed by then).
    double degrade_bytes_factor = 0.5;
};

/** The deterministic brownout state machine (thresholds in ticks). */
class BrownoutController
{
  public:
    BrownoutController(Tick enter_threshold, Tick exit_threshold,
                       unsigned enter_consecutive,
                       unsigned exit_consecutive);

    /**
     * Feed one congestion sample.
     * @return the level after this evaluation.
     */
    BrownoutLevel evaluate(Tick signal);

    BrownoutLevel level() const { return _level; }
    std::uint64_t escalations() const { return _escalations; }
    std::uint64_t deescalations() const { return _deescalations; }

  private:
    Tick _enter;
    Tick _exit;
    unsigned _enter_consecutive;
    unsigned _exit_consecutive;
    BrownoutLevel _level = BrownoutLevel::Normal;
    unsigned _over = 0;  ///< consecutive evaluations above enter
    unsigned _under = 0; ///< consecutive evaluations at/below exit
    std::uint64_t _escalations = 0;
    std::uint64_t _deescalations = 0;
};

} // namespace dmx::serve

#endif // DMX_SERVE_BROWNOUT_HH
