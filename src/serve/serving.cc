#include "serve/serve.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "driver/queues.hh"
#include "robust/credit.hh"
#include "runtime/batch.hh"
#include "runtime/runtime.hh"
#include "trace/trace.hh"

namespace dmx::serve
{

namespace
{

/**
 * The live serving run. The structure deliberately mirrors
 * sys::simulateOverload's OverloadSim operation-for-operation: with
 * `cfg.enabled == false` every serving feature is unreachable and the
 * engine performs the exact same sequence of platform operations, so
 * its results are byte-identical to the overload engine's (pinned by
 * the differential tests).
 */
class ServeSim
{
  public:
    explicit ServeSim(const ServeConfig &cfg) : _cfg(cfg)
    {
        const sys::OverloadConfig &oc = cfg.overload;
        if (oc.devices == 0)
            dmx_fatal("serve: need at least one device");
        if (oc.requests == 0)
            dmx_fatal("serve: need at least one request");
        if (oc.load <= 0)
            dmx_fatal("serve: load must be positive");
        if (oc.request_bytes == 0)
            dmx_fatal("serve: request_bytes must be nonzero");
        if (oc.ring_bytes < oc.request_bytes)
            dmx_fatal("serve: ring_bytes smaller than one request");
        if (oc.batch == 0)
            dmx_fatal("serve: batch must be at least 1");
        if (cfg.fault_hang_fraction < 0 || cfg.fault_hang_fraction > 1)
            dmx_fatal("serve: fault_hang_fraction must be in [0, 1]");
        if (cfg.slo_ls_factor <= 0 || cfg.slo_batch_factor <= 0)
            dmx_fatal("serve: SLO factors must be positive");
    }

    ServeStats
    run()
    {
        const sys::OverloadConfig &oc = _cfg.overload;
        _service = sys::overloadSoloServiceTicks(oc);

        _ids = sys::overloadAddBank(_plat, oc.devices);
        if (oc.fault_rate > 0) {
            fault::FaultSpec spec;
            spec.seed = oc.seed;
            const double hf =
                _cfg.enabled ? _cfg.fault_hang_fraction : 0.2;
            if (hf == 0.2) {
                // The overload engine's exact expressions: computing
                // the split through (1 - hf) would not be bit-equal.
                spec.kernel_fail_prob = 0.8 * oc.fault_rate;
                spec.kernel_hang_prob = 0.2 * oc.fault_rate;
            } else {
                spec.kernel_fail_prob = (1.0 - hf) * oc.fault_rate;
                spec.kernel_hang_prob = hf * oc.fault_rate;
            }
            if (_cfg.enabled && _cfg.unhealthy_threshold)
                spec.unhealthy_threshold = _cfg.unhealthy_threshold;
            _plan = std::make_unique<fault::FaultPlan>(spec);
            _plat.setFaultPlan(_plan.get());
        }
        robust::RobustConfig rc = oc.robust;
        if (oc.deadline_factor > 0)
            rc.deadline = static_cast<Tick>(
                oc.deadline_factor * static_cast<double>(_service));
        _plat.setRobustConfig(rc);

        for (unsigned d = 0; d < oc.devices; ++d) {
            _rings.emplace_back(
                std::make_unique<driver::DataQueue>(oc.ring_bytes));
            _rings.back()->setLabel("axl" + std::to_string(d) +
                                    ".submit");
            if (oc.robust.backpressure.enabled) {
                driver::DataQueue &ring = *_rings.back();
                if (oc.robust.backpressure.credit_window)
                    ring.setCreditWindow(
                        oc.robust.backpressure.credit_window);
                _gates.push_back(std::make_unique<robust::CreditGate>(
                    ring.label(), ring.creditWindow()));
            }
        }

        const Tick interval = std::max<Tick>(
            1, static_cast<Tick>(
                   static_cast<double>(_service) /
                   (oc.load * static_cast<double>(oc.devices))));
        TraceConfig tc = _cfg.trace;
        if (!_cfg.enabled)
            tc.shape = TraceShape::Steady; // the legacy clock, exactly
        _arrivals = generateArrivals(tc, oc.requests, interval,
                                     oc.request_bytes, oc.ring_bytes,
                                     oc.seed);

        if (_cfg.enabled && _cfg.budget.enabled) {
            _budget =
                std::make_unique<RetryBudget>(_cfg.budget, tc.tenants);
            _plat.setRetryPolicy(
                [this](runtime::Context &ctx, runtime::DeviceId,
                       unsigned) {
                    return _budget->tryConsume(
                        static_cast<unsigned>(ctx.tag()));
                });
        }
        if (_cfg.enabled && _cfg.brownout.enabled) {
            if (_cfg.brownout.exit_factor >= _cfg.brownout.enter_factor)
                dmx_fatal("serve: brownout exit_factor must be below "
                          "enter_factor");
            _brownout = std::make_unique<BrownoutController>(
                static_cast<Tick>(_cfg.brownout.enter_factor *
                                  static_cast<double>(_service)),
                static_cast<Tick>(_cfg.brownout.exit_factor *
                                  static_cast<double>(_service)),
                _cfg.brownout.enter_consecutive,
                _cfg.brownout.exit_consecutive);
            // Evaluate once per solo service time: the natural unit
            // the thresholds are expressed in.
            _plat.eventQueue().schedule(_service,
                                        [this] { brownoutTick(); });
        }

        // Same accumulator flush bound as the overload engine: a
        // partial batch waits at most a full batch's worth of steady
        // arrival intervals before submitting.
        _pending.resize(oc.devices);
        _pending_gen.assign(oc.devices, 0);
        _flush_ticks = std::max<Tick>(
            1, interval * static_cast<Tick>(oc.batch));

        _reqs.resize(oc.requests);
        for (unsigned i = 0; i < oc.requests; ++i) {
            _plat.eventQueue().schedule(_arrivals[i].at,
                                        [this, i] { arrive(i); });
        }
        _plat.drain();
        return collect();
    }

  private:
    struct Request
    {
        std::unique_ptr<runtime::Context> ctx;
        std::unique_ptr<runtime::Context> hedge_ctx;
        Tick start = 0;
        std::size_t dev = 0;
        std::size_t hedge_dev = 0;
        unsigned tenant = 0;
        SloClass cls = SloClass::LatencySensitive;
        std::uint64_t bytes = 0;
        bool arrived = false;
        bool push_ok = false;
        bool hedge_push_ok = false;
        bool hedge_issued = false;
        bool primary_done = false;
        bool hedge_done = false;
        bool degraded = false;
        bool finalized = false;
        runtime::Status primary_status = runtime::Status::Pending;
        sim::EventHandle hedge_timer;
    };

    /** One accumulated (not yet submitted) batch member. */
    struct PendingMember
    {
        unsigned i = 0;
        runtime::BufferId in = 0;
        runtime::BufferId out = 0;
    };

    /** Per-SLO-class accumulation. */
    struct ClassAccum
    {
        std::uint64_t offered = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t failed = 0;
        std::uint64_t timed_out = 0;
        std::uint64_t degraded = 0;
        std::uint64_t slo_ok = 0;
        std::vector<double> lat_ms;
        std::vector<Tick> lat_ticks; ///< hedge-delay percentile input
    };

    ClassAccum &
    accum(SloClass cls)
    {
        return cls == SloClass::Batch ? _batch : _ls;
    }

    Tick
    sloTicks(SloClass cls) const
    {
        const double f = cls == SloClass::Batch ? _cfg.slo_batch_factor
                                                : _cfg.slo_ls_factor;
        return static_cast<Tick>(f * static_cast<double>(_service));
    }

    void
    arrive(unsigned i)
    {
        Request &r = _reqs[i];
        const Arrival &a = _arrivals[i];
        r.dev = i % _cfg.overload.devices;
        r.start = _plat.now();
        r.tenant = a.tenant;
        r.cls = a.cls;
        r.bytes = a.bytes;
        r.arrived = true;
        ++_offered;
        ++accum(r.cls).offered;
        if (_budget)
            _budget->onOffered(r.tenant);
        if (_brownout) {
            const BrownoutLevel lv = _brownout->level();
            if (lv == BrownoutLevel::FailFast) {
                ++_brownout_shed_all;
                finalize(i, runtime::Status::Shed, false);
                return;
            }
            if (lv >= BrownoutLevel::ShedBatch &&
                r.cls == SloClass::Batch) {
                ++_brownout_shed_batch;
                finalize(i, runtime::Status::Shed, false);
                return;
            }
            if (lv == BrownoutLevel::Degraded &&
                r.cls == SloClass::LatencySensitive) {
                r.bytes = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           _cfg.brownout.degrade_bytes_factor *
                           static_cast<double>(r.bytes)));
                r.degraded = true;
                ++_brownout_degraded;
            }
        }
        if (!_gates.empty()) {
            _gates[r.dev]->acquire(r.bytes, _plat.now(),
                                   [this, i](Tick) { submit(i); });
            return;
        }
        submit(i);
    }

    void
    submit(unsigned i)
    {
        Request &r = _reqs[i];
        driver::DataQueue &ring = *_rings[r.dev];
        r.push_ok = ring.push(r.bytes);
        if (!r.push_ok && _plan)
            _plan->onQueueOverflow(ring.label());
        r.ctx = _plat.createContextPtr();
        if (_cfg.enabled) {
            r.ctx->setTag(r.tenant);
            r.ctx->setPriority(r.cls == SloClass::Batch ? 1 : 0);
        }
        const auto in = r.ctx->createBuffer(runtime::Bytes(
            r.bytes, static_cast<std::uint8_t>(i)));
        const auto out = r.ctx->createBuffer();
        if (_cfg.overload.batch > 1) {
            // Primary submissions batch; hedges never do (a hedge
            // exists to dodge latency, parking it in an accumulator
            // would defeat it). The hedge timer arms at join time, so
            // accumulator wait counts against the straggler exactly
            // like queue wait does.
            joinBatch(i, in, out);
        } else {
            const runtime::Event ev =
                r.ctx->queue(_ids[r.dev]).enqueueKernel(in, out);
            runtime::onSettled(
                ev, [this, i, ev] { armSettled(i, false, ev.status()); });
        }
        if (_cfg.enabled && _cfg.hedge.enabled &&
            _cfg.overload.devices > 1) {
            r.hedge_timer = _plat.eventQueue().scheduleIn(
                hedgeDelay(r.cls), [this, i] { maybeHedge(i); });
        }
    }

    /** Batched-path accumulator join; see OverloadSim::joinBatch. */
    void
    joinBatch(unsigned i, runtime::BufferId in, runtime::BufferId out)
    {
        const std::size_t dev = _reqs[i].dev;
        auto &pend = _pending[dev];
        pend.push_back({i, in, out});
        if (pend.size() >= _cfg.overload.batch) {
            flushBatch(dev);
            return;
        }
        if (pend.size() == 1) {
            const std::uint64_t gen = _pending_gen[dev];
            _plat.eventQueue().scheduleIn(
                _flush_ticks, [this, dev, gen] {
                    if (_pending_gen[dev] == gen &&
                        !_pending[dev].empty())
                        flushBatch(dev);
                });
        }
    }

    void
    flushBatch(std::size_t dev)
    {
        auto pend = std::move(_pending[dev]);
        _pending[dev].clear();
        ++_pending_gen[dev];
        std::vector<runtime::BatchOp> ops;
        ops.reserve(pend.size());
        for (const PendingMember &m : pend) {
            runtime::BatchOp op;
            op.kind = runtime::BatchOp::Kind::Kernel;
            op.device = _ids[dev];
            op.in = m.in;
            op.out = m.out;
            // Tenancy stays per member: each context carries its own
            // admission priority and retry-budget tag into the batch.
            op.ctx = _reqs[m.i].ctx.get();
            ops.push_back(op);
        }
        const runtime::BatchEvent bev =
            runtime::submitBatch(*_reqs[pend.front().i].ctx, ops);
        for (std::size_t j = 0; j < pend.size(); ++j) {
            const unsigned i = pend[j].i;
            const runtime::Event ev = bev.member(j);
            runtime::onSettled(ev, [this, i, ev] {
                armSettled(i, false, ev.status());
            });
        }
    }

    /**
     * Hedge trigger delay for @p cls at this point of the run: the
     * observed class-latency percentile once enough samples exist,
     * floored at initial_factor * the solo service time. The floor is
     * load-bearing: hedge-rescued completions are fast, so an
     * unfloored percentile feeds back on its own successes and decays
     * until every request hedges (and doubles the offered load).
     */
    Tick
    hedgeDelay(SloClass cls)
    {
        const Tick floor = std::max<Tick>(
            1, static_cast<Tick>(_cfg.hedge.initial_factor *
                                 static_cast<double>(_service)));
        const ClassAccum &c = accum(cls);
        const double pct = cls == SloClass::Batch
                               ? _cfg.hedge.batch_percentile
                               : _cfg.hedge.ls_percentile;
        if (c.lat_ticks.size() < _cfg.hedge.min_samples)
            return floor;
        return std::max(
            floor, common::percentileNearestRank(c.lat_ticks, pct));
    }

    /**
     * Healthiest alternate for a hedge: fewest consecutive failures,
     * then fewest outstanding commands, then lowest id — never the
     * primary.
     */
    std::size_t
    healthiestAlternate(std::size_t primary) const
    {
        std::size_t best = primary;
        for (std::size_t d = 0; d < _ids.size(); ++d) {
            if (d == primary)
                continue;
            if (best == primary) {
                best = d;
                continue;
            }
            const auto rank = [this](std::size_t x) {
                return std::make_pair(
                    _plat.deviceHealth(_ids[x]).consecutiveFailures(),
                    _plat.outstandingCommands(_ids[x]));
            };
            if (rank(d) < rank(best))
                best = d;
        }
        return best;
    }

    void
    maybeHedge(unsigned i)
    {
        Request &r = _reqs[i];
        if (r.finalized || r.hedge_issued)
            return;
        if (_budget && !_budget->tryConsume(r.tenant)) {
            ++_hedges_denied;
            if (auto *tb = trace::active())
                tb->count("serve.hedge.denied", _plat.now());
            return;
        }
        r.hedge_issued = true;
        r.hedge_dev = healthiestAlternate(r.dev);
        ++_hedges_issued;
        if (auto *tb = trace::active()) {
            tb->count("serve.hedge.issued", _plat.now());
            tb->span(trace::Category::Serve, "hedge",
                     "axl" + std::to_string(r.hedge_dev), r.start,
                     _plat.now(), i);
        }
        driver::DataQueue &ring = *_rings[r.hedge_dev];
        r.hedge_push_ok = ring.push(r.bytes);
        if (!r.hedge_push_ok && _plan)
            _plan->onQueueOverflow(ring.label());
        r.hedge_ctx = _plat.createContextPtr();
        r.hedge_ctx->setTag(r.tenant);
        r.hedge_ctx->setPriority(r.cls == SloClass::Batch ? 1 : 0);
        const auto in = r.hedge_ctx->createBuffer(runtime::Bytes(
            r.bytes, static_cast<std::uint8_t>(i)));
        const auto out = r.hedge_ctx->createBuffer();
        const runtime::Event ev =
            r.hedge_ctx->queue(_ids[r.hedge_dev]).enqueueKernel(in, out);
        runtime::onSettled(
            ev, [this, i, ev] { armSettled(i, true, ev.status()); });
    }

    /**
     * One arm (primary or hedge) of request @p i settled. Per-arm
     * plumbing (ring credit, gate release) always runs; the *request*
     * finalizes exactly once:
     *
     *  - first Ok settle wins: the request completes, the other arm —
     *    if still in flight — is cancelled (its later outcome is
     *    ignored, so a request can never double-count);
     *  - an error settle with the sibling still active defers to it;
     *  - when both arms fail, the primary's status classifies the
     *    request.
     */
    void
    armSettled(unsigned i, bool is_hedge, runtime::Status status)
    {
        Request &r = _reqs[i];
        if (is_hedge) {
            r.hedge_done = true;
            if (r.hedge_push_ok)
                _rings[r.hedge_dev]->pop(r.bytes);
        } else {
            r.primary_done = true;
            r.primary_status = status;
            if (r.push_ok)
                _rings[r.dev]->pop(r.bytes);
            if (!_gates.empty())
                _gates[r.dev]->release(r.bytes, _plat.now());
        }
        _last_settle = std::max(_last_settle, _plat.now());
        if (r.finalized)
            return; // the cancelled loser reporting in: ignored
        const bool sibling_active =
            is_hedge ? !r.primary_done
                     : (r.hedge_issued && !r.hedge_done);
        if (status == runtime::Status::Ok) {
            if (sibling_active)
                ++_hedges_cancelled;
            if (is_hedge) {
                ++_hedges_won;
                if (auto *tb = trace::active())
                    tb->count("serve.hedge.won", _plat.now());
            }
            finalize(i, runtime::Status::Ok, is_hedge);
            return;
        }
        if (sibling_active)
            return; // the other arm may still rescue the request
        finalize(i, r.primary_done ? r.primary_status : status,
                 false);
    }

    void
    finalize(unsigned i, runtime::Status status, bool won_by_hedge)
    {
        (void)won_by_hedge;
        Request &r = _reqs[i];
        r.finalized = true;
        r.hedge_timer.cancel();
        const Tick sojourn = _plat.now() - r.start;
        const double ms = ticksToMs(sojourn);
        ClassAccum &c = accum(r.cls);
        switch (status) {
          case runtime::Status::Ok:
            ++_completed;
            ++c.completed;
            _latencies_ms.push_back(ms);
            c.lat_ms.push_back(ms);
            c.lat_ticks.push_back(sojourn);
            if (sojourn <= sloTicks(r.cls))
                ++c.slo_ok;
            break;
          case runtime::Status::Shed:
            ++_shed;
            ++c.shed;
            _shed_ms.push_back(ms);
            break;
          case runtime::Status::TimedOut:
            ++_timed_out;
            ++c.timed_out;
            _timeout_ms.push_back(ms);
            break;
          default:
            ++_failed;
            ++c.failed;
            break;
        }
        if (r.degraded)
            ++c.degraded;
        _last_settle = std::max(_last_settle, _plat.now());
        _window.push_back(sojourn);
        ++_finalized;
        // Contexts (buffers, queues) stay alive until collect(): the
        // engine owns them, nothing else references them afterwards.
    }

    void
    brownoutTick()
    {
        // Congestion signal: the worse of the p99 sojourn since the
        // last evaluation and the oldest in-flight request's age —
        // queue growth shows up in the latter before anything settles.
        Tick signal = 0;
        if (!_window.empty()) {
            signal = common::percentileNearestRank(_window, 0.99);
            _window.clear();
        }
        for (const Request &r : _reqs) {
            if (r.arrived && !r.finalized)
                signal = std::max(signal, _plat.now() - r.start);
        }
        const BrownoutLevel before = _brownout->level();
        const BrownoutLevel after = _brownout->evaluate(signal);
        if (after != before) {
            if (static_cast<std::uint8_t>(after) >
                static_cast<std::uint8_t>(before))
                ++_brownout_escalations;
            else
                ++_brownout_deescalations;
            if (auto *tb = trace::active())
                tb->span(trace::Category::Serve,
                         "brownout:" + toString(after), "serve",
                         _plat.now(), _plat.now(), 0);
        }
        if (_finalized < _cfg.overload.requests)
            _plat.eventQueue().scheduleIn(_service,
                                          [this] { brownoutTick(); });
    }

    ServeStats
    collect()
    {
        ServeStats st;
        sys::OverloadStats &b = st.base;
        b.offered = _offered;
        b.completed = _completed;
        b.shed = _shed;
        b.failed = _failed;
        b.timed_out = _timed_out;
        b.makespan_ms = ticksToMs(_last_settle);
        const double makespan_s = ticksToSeconds(_last_settle);
        b.goodput_rps =
            makespan_s > 0 ? static_cast<double>(_completed) / makespan_s
                           : 0;
        b.completed_latency = common::summarizeLatencies(_latencies_ms);
        b.shed_latency = common::summarizeLatencies(_shed_ms);
        b.timeout_latency = common::summarizeLatencies(_timeout_ms);
        b.mean_latency_ms = b.completed_latency.mean_ms;
        b.p99_latency_ms = b.completed_latency.p99_ms;

        for (const auto &ring : _rings) {
            b.queue_overflows += ring->overflows();
            b.max_ring_high_water =
                std::max(b.max_ring_high_water, ring->highWater());
        }
        b.ring_credit_window =
            _rings.empty() ? 0 : _rings.front()->creditWindow();
        for (const auto &gate : _gates) {
            b.backpressure_stalls += gate->stalls();
            b.backpressure_stall_ms += ticksToMs(gate->stallTicks());
        }
        for (const runtime::DeviceId id : _ids) {
            const runtime::DeviceFaultStats &fs = _plat.faultStats(id);
            b.retries += fs.retries;
            b.watchdog_timeouts += fs.timeouts;
            b.breaker_fast_fails += fs.breaker_fast_fails;
            st.total_attempts += fs.attempts;
            st.retries_denied += fs.retries_denied;
            if (const robust::CircuitBreaker *brk =
                    _plat.deviceBreaker(id)) {
                b.breaker_opens += brk->opens();
                b.breaker_open_ms +=
                    ticksToMs(brk->quarantineTicks(_plat.now()));
            }
        }
        // Interrupts plus polls: NAPI may deliver any notification in
        // polled mode, so interrupts alone undercounts the legacy arm.
        b.irq_notifications = _plat.irq().interruptsDelivered() +
                              _plat.irq().pollsDelivered();
        b.irq_suppressed = _plat.irq().suppressedNotifications();

        st.latency_sensitive = classStats(_ls, SloClass::LatencySensitive);
        st.batch = classStats(_batch, SloClass::Batch);

        st.hedges_issued = _hedges_issued;
        st.hedges_won = _hedges_won;
        st.hedges_cancelled = _hedges_cancelled;
        st.hedges_denied = _hedges_denied;
        if (_budget) {
            st.budget_granted = _budget->granted();
            st.budget_denied = _budget->denied();
        }
        st.brownout_escalations = _brownout_escalations;
        st.brownout_deescalations = _brownout_deescalations;
        st.brownout_shed_batch = _brownout_shed_batch;
        st.brownout_shed_all = _brownout_shed_all;
        st.brownout_degraded = _brownout_degraded;
        st.brownout_final =
            _brownout ? _brownout->level() : BrownoutLevel::Normal;
        return st;
    }

    ClassStats
    classStats(const ClassAccum &c, SloClass cls) const
    {
        ClassStats s;
        s.offered = c.offered;
        s.completed = c.completed;
        s.shed = c.shed;
        s.failed = c.failed;
        s.timed_out = c.timed_out;
        s.degraded = c.degraded;
        s.latency = common::summarizeLatencies(c.lat_ms);
        s.slo_target_ms = ticksToMs(sloTicks(cls));
        s.slo_attainment =
            c.offered ? static_cast<double>(c.slo_ok) /
                            static_cast<double>(c.offered)
                      : 0;
        return s;
    }

    ServeConfig _cfg;
    runtime::Platform _plat;
    std::unique_ptr<fault::FaultPlan> _plan;
    std::vector<runtime::DeviceId> _ids;
    std::vector<std::unique_ptr<driver::DataQueue>> _rings;
    std::vector<std::unique_ptr<robust::CreditGate>> _gates;
    std::vector<Arrival> _arrivals;
    std::vector<Request> _reqs;
    std::vector<std::vector<PendingMember>> _pending; ///< per device
    std::vector<std::uint64_t> _pending_gen;
    Tick _flush_ticks = 1;
    std::unique_ptr<RetryBudget> _budget;
    std::unique_ptr<BrownoutController> _brownout;
    Tick _service = 0;

    std::vector<double> _latencies_ms;
    std::vector<double> _shed_ms;
    std::vector<double> _timeout_ms;
    std::vector<Tick> _window; ///< sojourns since the last brownout eval
    ClassAccum _ls;
    ClassAccum _batch;
    std::uint64_t _offered = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _shed = 0;
    std::uint64_t _failed = 0;
    std::uint64_t _timed_out = 0;
    std::uint64_t _finalized = 0;
    std::uint64_t _hedges_issued = 0;
    std::uint64_t _hedges_won = 0;
    std::uint64_t _hedges_cancelled = 0;
    std::uint64_t _hedges_denied = 0;
    std::uint64_t _brownout_escalations = 0;
    std::uint64_t _brownout_deescalations = 0;
    std::uint64_t _brownout_shed_batch = 0;
    std::uint64_t _brownout_shed_all = 0;
    std::uint64_t _brownout_degraded = 0;
    Tick _last_settle = 0;
};

} // namespace

ServeStats
simulateServing(const ServeConfig &cfg)
{
    ServeSim sim(cfg);
    return sim.run();
}

std::vector<double>
flatten(const ServeStats &st)
{
    std::vector<double> v;
    const auto push = [&v](double x) { v.push_back(x); };
    const auto pushSummary = [&push](const common::LatencySummary &s) {
        push(static_cast<double>(s.count));
        push(s.mean_ms);
        push(s.p50_ms);
        push(s.p99_ms);
        push(s.p999_ms);
    };
    const auto pushClass = [&push, &pushSummary](const ClassStats &c) {
        push(static_cast<double>(c.offered));
        push(static_cast<double>(c.completed));
        push(static_cast<double>(c.shed));
        push(static_cast<double>(c.failed));
        push(static_cast<double>(c.timed_out));
        push(static_cast<double>(c.degraded));
        pushSummary(c.latency);
        push(c.slo_target_ms);
        push(c.slo_attainment);
    };

    const sys::OverloadStats &b = st.base;
    push(static_cast<double>(b.offered));
    push(static_cast<double>(b.completed));
    push(static_cast<double>(b.shed));
    push(static_cast<double>(b.failed));
    push(static_cast<double>(b.timed_out));
    push(b.goodput_rps);
    push(b.mean_latency_ms);
    push(b.p99_latency_ms);
    push(b.makespan_ms);
    push(static_cast<double>(b.queue_overflows));
    push(static_cast<double>(b.ring_credit_window));
    push(static_cast<double>(b.max_ring_high_water));
    push(static_cast<double>(b.backpressure_stalls));
    push(b.backpressure_stall_ms);
    push(static_cast<double>(b.breaker_opens));
    push(static_cast<double>(b.breaker_fast_fails));
    push(b.breaker_open_ms);
    push(static_cast<double>(b.retries));
    push(static_cast<double>(b.watchdog_timeouts));
    push(static_cast<double>(b.irq_notifications));
    push(static_cast<double>(b.irq_suppressed));
    pushSummary(b.completed_latency);
    pushSummary(b.shed_latency);
    pushSummary(b.timeout_latency);

    pushClass(st.latency_sensitive);
    pushClass(st.batch);

    push(static_cast<double>(st.hedges_issued));
    push(static_cast<double>(st.hedges_won));
    push(static_cast<double>(st.hedges_cancelled));
    push(static_cast<double>(st.hedges_denied));
    push(static_cast<double>(st.budget_granted));
    push(static_cast<double>(st.budget_denied));
    push(static_cast<double>(st.retries_denied));
    push(static_cast<double>(st.brownout_escalations));
    push(static_cast<double>(st.brownout_deescalations));
    push(static_cast<double>(st.brownout_shed_batch));
    push(static_cast<double>(st.brownout_shed_all));
    push(static_cast<double>(st.brownout_degraded));
    push(static_cast<double>(st.brownout_final));
    push(static_cast<double>(st.total_attempts));
    return v;
}

} // namespace dmx::serve
