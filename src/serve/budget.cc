#include "serve/budget.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmx::serve
{

RetryBudget::RetryBudget(const RetryBudgetConfig &cfg, unsigned tenants)
    : _cfg(cfg), _tokens(tenants, 0.0)
{
    if (tenants == 0)
        dmx_fatal("serve: retry budget needs at least one tenant");
    if (cfg.per_request < 0)
        dmx_fatal("serve: retry budget per_request must be >= 0");
}

void
RetryBudget::onOffered(unsigned tenant)
{
    double &t = _tokens.at(tenant);
    t = std::min(_cfg.burst, t + _cfg.per_request);
}

bool
RetryBudget::tryConsume(unsigned tenant)
{
    double &t = _tokens.at(tenant);
    if (t >= 1.0) {
        t -= 1.0;
        ++_granted;
        return true;
    }
    ++_denied;
    return false;
}

} // namespace dmx::serve
