/**
 * @file
 * Descriptor-chained command submission (DESIGN.md 7g).
 *
 * The legacy way to run a multi-hop pipeline is one enqueue per hop
 * with a finish() in between: every command pays a full DMA-engine
 * setup, its own watchdog, and a driver notify/settle round trip back
 * to the host. enqueueChain() instead submits the whole pipeline as
 * one linked-list of descriptors, the way STM32 MDMA / XDMA engines
 * chain transfers: the host rings one doorbell, the engine walks the
 * chain autonomously (each follow-on descriptor costs a descriptor
 * fetch, not a doorbell), and the host hears back once, when the last
 * descriptor settles.
 *
 * Reliability contract (deliberately identical to the per-command
 * engine, observed at chain granularity):
 *  - fault and integrity hooks are consulted per hop, exactly as for
 *    individually enqueued commands;
 *  - ONE watchdog covers the whole chain (ops x per-command timeout),
 *    and CommandPolicy::deadline clips that budget once for the whole
 *    chain - never per hop;
 *  - each descriptor retries under the platform's backoff policy and
 *    leaves a per-descriptor completion record (status, settle tick,
 *    attempts) so callers can resume from the failed hop;
 *  - with a fault plan installed, a successful chain costs a single
 *    driver notification instead of one per hop.
 *
 * Default-off: nothing in the legacy enqueue path changes; a platform
 * that never calls enqueueChain behaves byte-identically to before.
 */

#ifndef DMX_RUNTIME_CHAIN_HH
#define DMX_RUNTIME_CHAIN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "restructure/ir.hh"
#include "runtime/runtime.hh"

namespace dmx::runtime
{

/** One descriptor of a chain: a copy, a kernel, or a DRX pipeline. */
struct ChainOp
{
    enum class Kind : std::uint8_t
    {
        Copy,        ///< DMA in -> out, device -> dst_device
        Kernel,      ///< accelerator kernel on `device`: out = fn(in)
        Restructure, ///< DRX pipeline on `device`: kernels applied
                     ///< in order (fusable, see ChainOptions::fuse)
    };

    Kind kind = Kind::Copy;
    DeviceId device = 0;     ///< executing device (Copy: the source)
    DeviceId dst_device = 0; ///< Copy only: destination device
    BufferId in = 0;
    BufferId out = 0;
    /// Restructure only: the restructuring pipeline. Adjacent kernels
    /// whose streams line up are fused into one compiled plan when
    /// ChainOptions::fuse is set (illegal fusions fall back to
    /// running the parts back-to-back; see drx::canFusePlans).
    std::vector<restructure::Kernel> kernels;
};

/** Per-chain execution knobs. */
struct ChainOptions
{
    /// Fuse each Restructure op's kernels into one plan when legal.
    bool fuse = false;
    /// Engine-level hop CRC: generate at the producer and verify at
    /// the consumer of every Copy descriptor (charged in simulated
    /// time at crc_bytes_per_sec); a mismatch fails the attempt and
    /// retries the hop from the intact source buffer.
    bool hop_crc = false;
    double crc_bytes_per_sec = 20e9;
};

/** Per-descriptor completion record. */
struct DescriptorRecord
{
    Status status = Status::Pending; ///< Pending = never attempted
    Tick at = 0;                     ///< settle tick (when settled)
    unsigned attempts = 0;           ///< attempts launched
    unsigned crc_mismatches = 0;     ///< hop-CRC failures detected
    bool fused = false;              ///< ran as one fused DRX plan
};

namespace detail
{

struct ChainEngine;

/** Shared completion state of one chain submission. */
struct ChainState
{
    Status status = Status::Pending;
    Tick at = 0;
    int failed_index = -1; ///< descriptor that settled the chain non-Ok
    unsigned retries = 0;  ///< retry attempts across all descriptors
    bool deadline_clipped = false; ///< deadline < chain watchdog budget
    std::vector<DescriptorRecord> records;
};

} // namespace detail

/** Completion handle of a chain submission (cheap to copy). */
class ChainEvent
{
  public:
    ChainEvent() = default;

    bool valid() const { return _state != nullptr; }

    bool complete() const
    {
        return _state && _state->status != Status::Pending;
    }

    Status status() const
    {
        return _state ? _state->status : Status::Pending;
    }

    bool ok() const { return status() == Status::Ok; }

    /**
     * @return simulated settle time. Fatal when invalid or pending,
     * matching Event::completeTime.
     */
    Tick completeTime() const;

    /** @return retry attempts consumed across all descriptors. */
    unsigned retries() const { return _state ? _state->retries : 0; }

    /** @return index of the descriptor that failed the chain, or -1. */
    int failedIndex() const
    {
        return _state ? _state->failed_index : -1;
    }

    /** @return true when the deadline clipped the chain watchdog. */
    bool deadlineClipped() const
    {
        return _state && _state->deadline_clipped;
    }

    /** @return per-descriptor completion records. Fatal when invalid. */
    const std::vector<DescriptorRecord> &records() const;

  private:
    friend struct detail::ChainEngine;
    std::shared_ptr<detail::ChainState> _state;
};

/**
 * Submit @p ops as one descriptor chain on @p ctx. Non-blocking:
 * drive the platform (ctx.finish()) and inspect the returned event.
 * Descriptors execute strictly in order; descriptor i+1 starts when i
 * settles Ok, the first non-Ok descriptor settles the whole chain
 * with its status. The first Copy descriptor pays the full DMA setup;
 * every later Copy only a descriptor fetch (pcie::FabricParams::
 * desc_fetch_latency).
 *
 * The chain is admitted as one unit: it bypasses per-command
 * admission control and the in-order queue tails (it owns its own
 * ordering), so it composes with - but does not consume slots from -
 * individually enqueued commands.
 */
ChainEvent enqueueChain(Context &ctx, const std::vector<ChainOp> &ops,
                        const ChainOptions &opts = {});

namespace detail
{

/**
 * Batch-member variant of enqueueChain: identical execution and
 * reliability semantics (own chain watchdog, per-descriptor retries,
 * admission bypass), except that (a) the first-Copy full-DMA-setup
 * decision reads and writes @p ext_programmed, so a chain inside a
 * batch shares the batch's single doorbell instead of ringing its
 * own, and (b) the chain never pays its own driver notification -
 * @p on_settled fires at device-settle time and the enclosing batch
 * coalesces completion delivery across members.
 */
ChainEvent enqueueChainHooked(Context &ctx,
                              const std::vector<ChainOp> &ops,
                              const ChainOptions &opts,
                              std::shared_ptr<bool> ext_programmed,
                              std::function<void(Status)> on_settled);

} // namespace detail

} // namespace dmx::runtime

#endif // DMX_RUNTIME_CHAIN_HH
