#include "runtime/chain.hh"

#include <utility>

#include "common/logging.hh"
#include "drx/fusion.hh"
#include "integrity/checksum.hh"
#include "integrity/integrity.hh"
#include "trace/trace.hh"

namespace dmx::runtime
{

Tick
ChainEvent::completeTime() const
{
    if (!_state)
        dmx_fatal("ChainEvent::completeTime on an invalid "
                  "(default-constructed) event");
    if (_state->status == Status::Pending)
        dmx_fatal("ChainEvent::completeTime on a pending chain; "
                  "finish() first");
    return _state->at;
}

const std::vector<DescriptorRecord> &
ChainEvent::records() const
{
    if (!_state)
        dmx_fatal("ChainEvent::records on an invalid "
                  "(default-constructed) event");
    return _state->records;
}

namespace detail
{

/**
 * The chain execution engine: one Run per enqueueChain call, kept
 * alive by the callbacks scheduled against it. Mirrors the per-command
 * CommandEngine's recovery semantics (health/breaker feedback, retry
 * backoff with the platform's jitter stream, deadline budget) at chain
 * granularity: a single watchdog and a single driver notification
 * cover all descriptors.
 */
struct ChainEngine
{
    struct Run : std::enable_shared_from_this<Run>
    {
        Context *ctx = nullptr;
        std::vector<ChainOp> ops;
        ChainOptions opts;
        std::shared_ptr<ChainState> state;
        /// Per-op compiled plans (Restructure ops only): one fused
        /// plan, or one plan per kernel part when fusion is off or
        /// rejected.
        std::vector<std::vector<std::shared_ptr<const drx::CompiledKernel>>>
            plans;
        sim::EventHandle watchdog;
        Tick deadline_at = 0;    ///< absolute settle-by tick (0 = none)
        std::size_t cursor = 0;  ///< descriptor currently in flight
        /// A descriptor flow has delivered: the engine is programmed,
        /// so later Copy descriptors pay only the descriptor fetch.
        bool programmed = false;
        /// Batch-shared programming flag: when set (the chain runs as
        /// a batch member), the first-Copy doorbell decision is shared
        /// with the enclosing batch's other members.
        std::shared_ptr<bool> ext_programmed;
        /// Batch hook: when set, the chain reports its terminal status
        /// here at device-settle time instead of paying its own driver
        /// notification - the batch coalesces completion delivery.
        std::function<void(Status)> on_settled;

        Platform &plat() { return ctx->platform(); }

        bool
        isProgrammed() const
        {
            return ext_programmed ? *ext_programmed : programmed;
        }

        void
        markProgrammed()
        {
            programmed = true;
            if (ext_programmed)
                *ext_programmed = true;
        }

        /** @return backoff before the retry of failed attempt @p n
         *  (same math and jitter stream as the per-command engine). */
        Tick
        backoff(unsigned n)
        {
            Platform &p = plat();
            const CommandPolicy &pol = p._policy;
            double delay = static_cast<double>(pol.backoff_base);
            for (unsigned k = 0; k < n; ++k)
                delay *= pol.backoff_mult;
            delay *= 1.0 + pol.jitter_frac * p._jitter.uniform();
            return static_cast<Tick>(delay);
        }

        void
        settle(Status st, int failed_i)
        {
            if (state->status != Status::Pending)
                return;
            watchdog.cancel();
            state->failed_index = failed_i;
            Platform &p = plat();
            if (on_settled) {
                // Batch member: settle at device time; the enclosing
                // batch owns (and coalesces) the driver notification.
                state->status = st;
                state->at = p.now();
                on_settled(st);
                return;
            }
            if (st == Status::Ok && p._plan) {
                // The single driver notification of the whole chain:
                // the host learns of completion through the irq path
                // once, not once per descriptor.
                const auto notif = p._irq->notifyChecked();
                const Tick at = p.now() + notif.latency;
                auto sp = state;
                p._eq.schedule(at, [sp, at] {
                    sp->status = Status::Ok;
                    sp->at = at;
                });
                return;
            }
            state->status = st;
            state->at = p.now();
        }

        void
        opDone(std::size_t i, unsigned n, bool ok)
        {
            if (state->status != Status::Pending)
                return;
            Platform &p = plat();
            Platform::Device &d = p._devices[ops[i].device];
            DescriptorRecord &rec = state->records[i];
            if (ok) {
                d.health.recordSuccess();
                if (d.breaker)
                    d.breaker->recordSuccess(p.now());
                rec.status = Status::Ok;
                rec.at = p.now();
                if (i + 1 < ops.size()) {
                    auto self = shared_from_this();
                    p._eq.scheduleIn(
                        0, [self, i] { self->runOp(i + 1, 0); });
                } else {
                    settle(Status::Ok, -1);
                }
                return;
            }
            d.health.recordFailure();
            if (d.breaker)
                d.breaker->recordFailure(p.now());
            ++d.fstats.failures;
            if (n >= p._policy.max_retries) {
                rec.status = Status::Failed;
                rec.at = p.now();
                ++d.fstats.commands_failed;
                settle(Status::Failed, static_cast<int>(i));
                return;
            }
            const Tick delay = backoff(n);
            // Deadline-budgeted retries clip against the chain-wide
            // deadline, not a per-descriptor one.
            if (deadline_at && p.now() + delay >= deadline_at) {
                ++d.fstats.deadline_exhausted;
                if (auto *tb = trace::active())
                    tb->count("runtime.deadline_exhausted", p.now());
                rec.status = Status::TimedOut;
                rec.at = p.now();
                ++d.fstats.commands_failed;
                settle(Status::TimedOut, static_cast<int>(i));
                return;
            }
            ++state->retries;
            ++d.fstats.retries;
            if (auto *tb = trace::active()) {
                tb->count("runtime.retries", p.now());
                tb->span(trace::Category::Retry, "backoff", d.name,
                         p.now(), p.now() + delay, n);
            }
            auto self = shared_from_this();
            p._eq.scheduleIn(delay,
                             [self, i, n] { self->runOp(i, n + 1); });
        }

        void
        runCopy(std::size_t i, unsigned n)
        {
            Platform &p = plat();
            const ChainOp &op = ops[i];
            Platform::Device &d = p._devices[op.device];
            const auto bytes =
                static_cast<std::uint64_t>(ctx->read(op.in).size());
            const pcie::NodeId sn = d.node;
            const pcie::NodeId dn = p._devices[op.dst_device].node;
            const bool first = !isProgrammed();
            // Batch members claim the shared doorbell at submission
            // (not delivery) so concurrent siblings never double-ring
            // it; a standalone chain keeps the delivery-time marking.
            if (ext_programmed)
                *ext_programmed = true;

            auto self = shared_from_this();
            auto deliver = [self, i, n](bool ok) {
                if (self->state->status != Status::Pending)
                    return;
                Platform &plat = self->plat();
                const ChainOp &cop = self->ops[i];
                if (!ok) {
                    self->opDone(i, n, false);
                    return;
                }
                self->markProgrammed();
                self->ctx->write(cop.out, self->ctx->read(cop.in));
                if (plat._integrity) {
                    // Silent payload corruption, exactly as in
                    // enqueueCopy: the descriptor reports success but
                    // the delivered copy differs by one flipped bit.
                    const Bytes &got = self->ctx->read(cop.out);
                    const auto act = plat._integrity->onPayload(
                        static_cast<std::uint64_t>(got.size()));
                    if (act.flip) {
                        Bytes data = got;
                        data[act.bit / 8] ^= static_cast<std::uint8_t>(
                            1u << (act.bit % 8));
                        self->ctx->write(cop.out, std::move(data));
                        if (auto *tb = trace::active()) {
                            tb->instant(trace::Category::Integrity,
                                        "payload_flip", "dma",
                                        plat.now(), act.bit);
                            tb->count("integrity.payload_flips",
                                      plat.now());
                        }
                    }
                }
                if (self->opts.hop_crc) {
                    // Engine-level hop CRC: generate over the intact
                    // producer buffer plus verify over the delivered
                    // copy, charged back-to-back before the outcome
                    // lands. A mismatch fails this attempt; the retry
                    // re-DMAs from the intact source.
                    const auto sz = static_cast<double>(
                        self->ctx->read(cop.out).size());
                    const Tick cost = secondsToTicks(
                        2.0 * sz / self->opts.crc_bytes_per_sec);
                    plat._eq.scheduleIn(cost, [self, i, n] {
                        if (self->state->status != Status::Pending)
                            return;
                        const ChainOp &o = self->ops[i];
                        const bool match =
                            integrity::crc32(self->ctx->read(o.in)) ==
                            integrity::crc32(self->ctx->read(o.out));
                        if (!match) {
                            ++self->state->records[i].crc_mismatches;
                            if (auto *tb = trace::active())
                                tb->count("integrity.chain_crc_mismatches",
                                          self->plat().now());
                        }
                        self->opDone(i, n, match);
                    });
                    return;
                }
                self->opDone(i, n, true);
            };

            if (p._plan && p._plan->p2pFaulted()) {
                // Switch p2p path down: stage through the root complex
                // as two descriptor legs (parity with enqueueCopy's
                // reroute; only the first leg of the chain's first
                // descriptor pays the full setup).
                ++d.fstats.rerouted_copies;
                if (auto *tb = trace::active())
                    tb->count("runtime.rerouted_copies", p.now());
                const pcie::NodeId rc = p._rc;
                p._fabric->startDescriptorFlow(
                    {sn, rc, bytes}, first,
                    [self, rc, dn, bytes, deliver](bool ok) {
                        if (!ok) {
                            deliver(false);
                            return;
                        }
                        self->plat()._fabric->startDescriptorFlow(
                            {rc, dn, bytes}, false, deliver);
                    });
                return;
            }
            p._fabric->startDescriptorFlow({sn, dn, bytes}, first,
                                           deliver);
        }

        void
        runKernel(std::size_t i, unsigned n)
        {
            Platform &p = plat();
            const ChainOp &op = ops[i];
            Platform::Device &d = p._devices[op.device];
            kernels::OpCount opsc;
            Bytes result = d.fn(ctx->read(op.in), opsc);
            const Cycles cycles = accel::kernelCycles(d.spec, opsc);
            auto self = shared_from_this();
            d.unit->submitChecked(
                cycles,
                [self, i, n, result = std::move(result)](bool ok) mutable {
                    if (self->state->status != Status::Pending)
                        return;
                    if (ok)
                        self->ctx->write(self->ops[i].out,
                                         std::move(result));
                    self->opDone(i, n, ok);
                });
        }

        void
        runRestructure(std::size_t i, unsigned n)
        {
            Platform &p = plat();
            const ChainOp &op = ops[i];
            Platform::Device &d = p._devices[op.device];
            d.machine->resetAlloc();
            drx::RunResult total;
            restructure::Bytes cur = ctx->read(op.in);
            bool faulted = false;
            const bool fused = plans[i].size() == 1 &&
                               op.kernels.size() > 1;
            for (std::size_t j = 0; j < plans[i].size(); ++j) {
                const auto installed =
                    drx::installPlan(plans[i][j], *d.machine);
                const std::string &name =
                    fused ? op.kernels.front().name : op.kernels[j].name;
                restructure::Bytes out_bytes;
                const drx::RunResult res =
                    drx::runPlanOnDrx(name, *installed, cur, *d.machine,
                                      &out_bytes, p.now());
                total += res;
                if (res.faulted) {
                    faulted = true;
                    break;
                }
                cur = std::move(out_bytes);
            }
            auto self = shared_from_this();
            if (faulted) {
                // The machine trapped: charge the trap handling on the
                // unit, then report the device error at that time.
                d.unit->submitChecked(total.total_cycles,
                                      [self, i, n](bool) {
                                          if (self->state->status !=
                                              Status::Pending)
                                              return;
                                          self->opDone(i, n, false);
                                      });
                return;
            }
            auto result =
                std::make_shared<restructure::Bytes>(std::move(cur));
            d.unit->submitChecked(
                total.total_cycles, [self, i, n, result](bool ok) {
                    if (self->state->status != Status::Pending)
                        return;
                    if (ok)
                        self->ctx->write(self->ops[i].out,
                                         std::move(*result));
                    self->opDone(i, n, ok);
                });
        }

        void
        runOp(std::size_t i, unsigned n)
        {
            if (state->status != Status::Pending)
                return; // the chain watchdog already fired
            Platform &p = plat();
            cursor = i;
            ++state->records[i].attempts;
            ++p._devices[ops[i].device].fstats.attempts;
            switch (ops[i].kind) {
              case ChainOp::Kind::Copy:
                runCopy(i, n);
                return;
              case ChainOp::Kind::Kernel:
                runKernel(i, n);
                return;
              case ChainOp::Kind::Restructure:
                runRestructure(i, n);
                return;
            }
        }
    };

    static ChainEvent
    submit(Context &ctx, const std::vector<ChainOp> &ops,
           const ChainOptions &opts,
           std::shared_ptr<bool> ext_programmed = nullptr,
           std::function<void(Status)> on_settled = nullptr)
    {
        Platform &p = ctx.platform();
        ChainEvent ev;
        ev._state = std::make_shared<ChainState>();
        ev._state->records.resize(ops.size());
        if (ops.empty()) {
            ev._state->status = Status::Ok;
            ev._state->at = p.now();
            if (on_settled)
                on_settled(Status::Ok);
            return ev;
        }

        for (std::size_t i = 0; i < ops.size(); ++i) {
            const ChainOp &op = ops[i];
            if (op.device >= p._devices.size())
                dmx_fatal("enqueueChain: bad device %zu in op %zu",
                          op.device, i);
            switch (op.kind) {
              case ChainOp::Kind::Copy:
                if (op.dst_device >= p._devices.size())
                    dmx_fatal("enqueueChain: bad copy destination %zu "
                              "in op %zu", op.dst_device, i);
                break;
              case ChainOp::Kind::Kernel:
                if (p._devices[op.device].is_drx)
                    dmx_fatal("enqueueChain: Kernel op %zu on DRX "
                              "device '%s'; use Restructure", i,
                              p._devices[op.device].name.c_str());
                break;
              case ChainOp::Kind::Restructure:
                if (!p._devices[op.device].is_drx)
                    dmx_fatal("enqueueChain: Restructure op %zu on "
                              "accelerator '%s'", i,
                              p._devices[op.device].name.c_str());
                if (op.kernels.empty())
                    dmx_fatal("enqueueChain: Restructure op %zu has no "
                              "kernels", i);
                break;
            }
        }

        auto run = std::make_shared<Run>();
        run->ctx = &ctx;
        run->ops = ops;
        run->opts = opts;
        run->state = ev._state;
        run->ext_programmed = std::move(ext_programmed);
        run->on_settled = std::move(on_settled);
        run->plans.resize(ops.size());

        // Plan every Restructure descriptor up front (through the
        // platform's compiled-kernel cache when enabled): retries
        // reinstall instead of recompiling, and the fused plan is
        // memoized alongside the per-kernel plans.
        const bool cached = p.platformConfig().drx_cache.enabled;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const ChainOp &op = ops[i];
            if (op.kind != ChainOp::Kind::Restructure)
                continue;
            const drx::DrxConfig &cfg =
                p._devices[op.device].machine->config();
            const auto planOne = [&](const restructure::Kernel &k) {
                if (cached)
                    return p.drxCache().lookup(k, cfg, p.now()).compiled;
                return std::shared_ptr<const drx::CompiledKernel>(
                    std::make_shared<const drx::CompiledKernel>(
                        drx::planKernel(k, cfg)));
            };
            if (opts.fuse && op.kernels.size() > 1) {
                const drx::FusedChainPlan fp = drx::planFusedChain(
                    op.kernels, cfg, cached ? &p.drxCache() : nullptr,
                    p.now());
                if (fp.verdict.ok && fp.compiled) {
                    run->plans[i] = {fp.compiled};
                    ev._state->records[i].fused = true;
                    continue;
                }
            }
            for (const restructure::Kernel &k : op.kernels)
                run->plans[i].push_back(planOne(k));
        }

        // ONE watchdog armed over the whole chain: the per-command
        // timeout scaled by the descriptor count, clipped ONCE by the
        // remaining deadline budget - a chained submission must not
        // re-clip per hop (that would multiply the deadline by the
        // chain length).
        const CommandPolicy &pol = p._policy;
        Tick budget =
            pol.timeout ? pol.timeout * static_cast<Tick>(ops.size())
                        : 0;
        if (pol.deadline) {
            run->deadline_at = p.now() + pol.deadline;
            if (budget == 0 || pol.deadline < budget) {
                budget = pol.deadline;
                ev._state->deadline_clipped = true;
            }
        }
        if (budget > 0) {
            run->watchdog = p._eq.scheduleIn(budget, [run] {
                if (run->state->status != Status::Pending)
                    return;
                Platform &plat = run->plat();
                Platform::Device &d =
                    plat._devices[run->ops[run->cursor].device];
                ++d.fstats.timeouts;
                ++d.fstats.commands_failed;
                if (auto *tb = trace::active())
                    tb->count("runtime.timeouts", plat.now());
                DescriptorRecord &rec =
                    run->state->records[run->cursor];
                if (rec.status == Status::Pending) {
                    rec.status = Status::TimedOut;
                    rec.at = plat.now();
                }
                run->settle(Status::TimedOut,
                            static_cast<int>(run->cursor));
            });
        }

        p._eq.scheduleIn(0, [run] { run->runOp(0, 0); });
        return ev;
    }
};

ChainEvent
enqueueChainHooked(Context &ctx, const std::vector<ChainOp> &ops,
                   const ChainOptions &opts,
                   std::shared_ptr<bool> ext_programmed,
                   std::function<void(Status)> on_settled)
{
    return ChainEngine::submit(ctx, ops, opts, std::move(ext_programmed),
                               std::move(on_settled));
}

} // namespace detail

ChainEvent
enqueueChain(Context &ctx, const std::vector<ChainOp> &ops,
             const ChainOptions &opts)
{
    return detail::ChainEngine::submit(ctx, ops, opts);
}

} // namespace dmx::runtime
