#include "runtime/runtime.hh"

#include <map>
#include <utility>

#include "common/logging.hh"
#include "integrity/integrity.hh"
#include "restructure/cpu_exec.hh"
#include "trace/trace.hh"

namespace dmx::runtime
{

namespace
{

/** Default link for runtime devices: Gen3 x16 under one switch. */
constexpr pcie::Generation runtime_gen = pcie::Generation::Gen3;

/**
 * Watchdog installed when a fault plan raises a zero policy timeout:
 * generously above any healthy command in the runtime's operating
 * range (multi-MB flows at Gen3 take ~1 ms; kernels a few ms), so it
 * only ever fires for injected stalls and hangs.
 */
constexpr Tick default_fault_timeout = 50 * tick_per_ms;

} // namespace

std::string
toString(Status s)
{
    switch (s) {
      case Status::Pending: return "pending";
      case Status::Ok: return "ok";
      case Status::Failed: return "failed";
      case Status::TimedOut: return "timed-out";
      case Status::Shed: return "shed";
    }
    return "?";
}

// --------------------------------------------------------------- Event

// Completion chaining lives in a side table keyed by the shared state.
// To keep Event copyable and cheap, the waiter list is attached to the
// state object itself.
struct EventWaiters
{
    std::vector<std::function<void()>> fns;
};

namespace
{

// One waiter registry per simulation thread: entries are erased when
// fired, and the keys are unique shared states. Thread-local (not
// process-global) so exec::ScenarioRunner can run whole platforms in
// parallel worker threads without sharing waiter state - a simulation
// registers and fires its waiters on one thread.
std::map<void *, EventWaiters> &
waiterMap()
{
    thread_local std::map<void *, EventWaiters> m;
    return m;
}

void
fireEvent(const std::shared_ptr<Event::State> &state, Status status,
          Tick at)
{
    state->status = status;
    state->at = at;
    auto &m = waiterMap();
    const auto it = m.find(state.get());
    if (it == m.end())
        return;
    auto fns = std::move(it->second.fns);
    m.erase(it);
    for (auto &fn : fns)
        fn();
}

void
whenDone(const std::shared_ptr<Event::State> &state,
         std::function<void()> fn)
{
    if (!state || state->status != Status::Pending) {
        fn();
        return;
    }
    waiterMap()[state.get()].fns.push_back(std::move(fn));
}

} // namespace

void
onSettled(const Event &ev, std::function<void()> fn)
{
    whenDone(ev._state, std::move(fn));
}

Tick
Event::completeTime() const
{
    if (!_state)
        dmx_fatal("Event::completeTime on an invalid "
                  "(default-constructed) event");
    if (_state->status == Status::Pending)
        dmx_fatal("Event::completeTime on a pending command; "
                  "finish() the queue first");
    return _state->at;
}

// ------------------------------------------------------ CommandEngine

namespace detail
{

/**
 * The per-command reliability engine.
 *
 * Every enqueued command is wrapped in a Command record whose attempts
 * run under an optional watchdog and the platform's retry policy. The
 * device-specific part is the `work` closure: it launches one attempt
 * and reports success/failure through its callback - or never reports,
 * for injected stalls and hangs, which the watchdog converts into a
 * timed-out attempt. Commands on an unhealthy device with a `fallback`
 * closure (DRX restructuring) degrade to the host CPU instead of
 * touching the device again.
 *
 * Lifetime: scheduled events hold shared_ptrs to the Command; once the
 * command settles no further events reference it and it frees itself.
 */
struct CommandEngine
{
    /** Reports one attempt's outcome (exactly once, or never). */
    using AttemptResult = std::function<void(bool ok)>;
    /** Launches one attempt of the command's device work. */
    using AttemptFn = std::function<void(AttemptResult)>;

    struct Command : std::enable_shared_from_this<Command>
    {
        Context *ctx = nullptr;
        DeviceId device = 0;
        std::shared_ptr<Event::State> state;
        AttemptFn work;
        AttemptFn fallback; ///< CPU degradation path (may be empty)
        bool fast_failable = false; ///< may settle Failed up front on an
                                    ///< unhealthy device (kernels)
        bool counted = false;       ///< holds a slot in Device::outstanding
        Tick submitted = 0;         ///< launch tick (sojourn feedback)
        Tick deadline_at = 0;       ///< absolute settle-by tick (0 = none)
        /// Batch hook: when set, terminal settles report here instead
        /// of paying a per-command notification and firing the event -
        /// the batch engine coalesces delivery across members.
        std::function<void(Status)> on_device_settled;

        /**
         * Drop the command's outstanding-depth slot and feed the
         * admission controller its sojourn sample. Runs exactly once,
         * from whichever terminal settle path fires first.
         */
        void
        release()
        {
            if (!counted)
                return;
            counted = false;
            Platform &p = ctx->platform();
            Platform::Device &d = p._devices[device];
            if (d.outstanding > 0)
                --d.outstanding;
            if (d.admission)
                d.admission->recordSojourn(p.now() - submitted, p.now());
        }

        /** Terminal non-Ok settle shared by every containment path. */
        void
        settleErr(Status reason)
        {
            Platform &p = ctx->platform();
            ++p._devices[device].fstats.commands_failed;
            release();
            if (on_device_settled) {
                on_device_settled(reason);
                return;
            }
            fireEvent(state, reason, p.now());
        }

        /** Run the CPU degradation path instead of the device. */
        void
        degradeToCpu()
        {
            Platform &p = ctx->platform();
            Platform::Device &d = p._devices[device];
            ++d.fstats.fallbacks;
            state->degraded = true;
            const Tick begin = p.now();
            if (auto *tb = trace::active())
                tb->count("runtime.degraded", begin);
            auto self = shared_from_this();
            fallback([self, begin](bool) {
                if (auto *tb = trace::active()) {
                    Platform &plat = self->ctx->platform();
                    tb->span(trace::Category::Degrade, "cpu_fallback",
                             plat._devices[self->device].name, begin,
                             plat.now());
                }
                self->settleOk();
            });
        }

        void
        beginAttempt(unsigned n)
        {
            Platform &p = ctx->platform();
            Platform::Device &d = p._devices[device];

            // Deadline budget spent before this attempt even starts.
            if (deadline_at && p.now() >= deadline_at) {
                ++d.fstats.deadline_exhausted;
                if (auto *tb = trace::active())
                    tb->count("runtime.deadline_exhausted", p.now());
                settleErr(Status::TimedOut);
                return;
            }

            // Circuit breaker: a quarantined device fast-fails fresh
            // work up front - to CPU degradation when a fallback
            // exists, to Shed otherwise - instead of burning the full
            // watchdog + retry/backoff budget per command.
            if (d.breaker && !d.breaker->allow(p.now())) {
                ++d.fstats.breaker_fast_fails;
                if (auto *tb = trace::active())
                    tb->count("runtime.breaker_fast_fails", p.now());
                if (fallback) {
                    degradeToCpu();
                    return;
                }
                ++d.fstats.shed;
                if (auto *tb = trace::active())
                    tb->count("runtime.shed", p.now());
                settleErr(Status::Shed);
                return;
            }

            if (fallback && !d.breaker && !d.health.healthy()) {
                // Graceful degradation: the device tripped its
                // unhealthy threshold, so run the work on the host
                // CPU at its honestly worse cost. (With a breaker
                // installed the breaker governs quarantine instead,
                // so HalfOpen probes can reach the device again.)
                degradeToCpu();
                return;
            }

            // Fast-fail: a *fresh* no-fallback command against a device
            // already marked unhealthy settles Failed immediately
            // rather than waiting out a full watchdog timeout against
            // hardware known to be down. Retries of a command already
            // in flight (n > 0) still dispatch, preserving the full
            // attempt accounting of the legacy recovery path.
            if (n == 0 && fast_failable && !fallback && !d.breaker &&
                !d.health.healthy()) {
                ++d.fstats.fast_fails;
                if (auto *tb = trace::active()) {
                    tb->instant(trace::Category::Robust, "fast_fail",
                                d.name, p.now());
                    tb->count("runtime.fast_fails", p.now());
                }
                settleErr(Status::Failed);
                return;
            }

            ++d.fstats.attempts;
            const Tick attempt_begin = p.now();
            auto self = shared_from_this();
            auto settled = std::make_shared<bool>(false);
            sim::EventHandle watchdog;
            // The watchdog never outlives the deadline budget: clip it
            // to the remaining budget so the final TimedOut settles at
            // the deadline, not a full timeout later. The subtraction
            // saturates: a zero-remaining budget was already settled
            // TimedOut by the guard above, but a saturating clip keeps
            // Tick (unsigned) arithmetic underflow-proof even if the
            // two sites ever disagree about "spent".
            Tick timeout = p._policy.timeout;
            if (deadline_at) {
                const Tick remaining =
                    deadline_at > p.now() ? deadline_at - p.now() : 0;
                if (timeout == 0 || remaining < timeout)
                    timeout = remaining;
            }
            if (timeout > 0) {
                watchdog = p._eq.scheduleIn(
                    timeout, [self, settled, n, attempt_begin] {
                        if (*settled)
                            return;
                        *settled = true;
                        Platform &plat = self->ctx->platform();
                        ++plat._devices[self->device].fstats.timeouts;
                        if (auto *tb = trace::active()) {
                            tb->span(n == 0 ? trace::Category::Command
                                            : trace::Category::Retry,
                                     "attempt_timeout",
                                     plat._devices[self->device].name,
                                     attempt_begin, plat.now(), n);
                            tb->count("runtime.timeouts", plat.now());
                        }
                        self->fail(n, Status::TimedOut);
                    });
            }
            work([self, settled, watchdog, n,
                  attempt_begin](bool ok) mutable {
                // A late device completion after the watchdog already
                // failed the attempt is dropped here.
                if (*settled)
                    return;
                *settled = true;
                watchdog.cancel();
                if (auto *tb = trace::active()) {
                    Platform &plat = self->ctx->platform();
                    tb->span(n == 0 ? trace::Category::Command
                                    : trace::Category::Retry,
                             "attempt",
                             plat._devices[self->device].name,
                             attempt_begin, plat.now(), n);
                }
                if (ok)
                    self->succeed();
                else
                    self->fail(n, Status::Failed);
            });
        }

        void
        succeed()
        {
            Platform &p = ctx->platform();
            Platform::Device &d = p._devices[device];
            d.health.recordSuccess();
            if (d.breaker)
                d.breaker->recordSuccess(p.now());
            settleOk();
        }

        void
        settleOk()
        {
            Platform &p = ctx->platform();
            release();
            if (on_device_settled) {
                on_device_settled(Status::Ok);
                return;
            }
            if (p._plan) {
                // Completion reaches the host through the driver
                // notification path (possibly a recovery poll when the
                // irq was dropped). Fault-free runs keep the seed's
                // immediate host visibility.
                const auto notif = p._irq->notifyChecked();
                const Tick at = p.now() + notif.latency;
                auto st = state;
                p._eq.schedule(
                    at, [st, at] { fireEvent(st, Status::Ok, at); });
                return;
            }
            fireEvent(state, Status::Ok, p.now());
        }

        void
        fail(unsigned n, Status reason)
        {
            Platform &p = ctx->platform();
            Platform::Device &d = p._devices[device];
            d.health.recordFailure();
            if (d.breaker)
                d.breaker->recordFailure(p.now());
            ++d.fstats.failures;
            if (n >= p._policy.max_retries) {
                settleErr(reason);
                return;
            }
            const Tick delay = backoffDelay(p, n);
            // Deadline-budgeted retries: when the backoff wait would
            // land at or past the deadline, stop retrying and settle
            // TimedOut now - the budget cannot buy another attempt.
            if (deadline_at && p.now() + delay >= deadline_at) {
                ++d.fstats.deadline_exhausted;
                if (auto *tb = trace::active())
                    tb->count("runtime.deadline_exhausted", p.now());
                settleErr(Status::TimedOut);
                return;
            }
            // External retry veto (serving-layer retry budgets): the
            // policy can only remove attempts, never add them, so the
            // legacy path with no policy installed is byte-identical.
            if (p._retry_policy &&
                !p._retry_policy(*ctx, device, n + 1)) {
                ++d.fstats.retries_denied;
                if (auto *tb = trace::active())
                    tb->count("runtime.retries_denied", p.now());
                settleErr(reason);
                return;
            }
            state->retries = n + 1;
            ++d.fstats.retries;
            if (auto *tb = trace::active()) {
                tb->count("runtime.retries", p.now());
                tb->span(trace::Category::Retry, "backoff", d.name,
                         p.now(), p.now() + delay, n);
            }
            auto self = shared_from_this();
            p._eq.scheduleIn(delay, [self, n] {
                self->beginAttempt(n + 1);
            });
        }
    };

    /** @return backoff before the retry of failed attempt @p n. */
    static Tick
    backoffDelay(Platform &p, unsigned n)
    {
        const CommandPolicy &pol = p._policy;
        double delay = static_cast<double>(pol.backoff_base);
        for (unsigned i = 0; i < n; ++i)
            delay *= pol.backoff_mult;
        delay *= 1.0 + pol.jitter_frac * p._jitter.uniform();
        return static_cast<Tick>(delay);
    }

    /**
     * Chain a command onto @p q: it starts when the queue's previous
     * command settles Ok, and settles Failed without touching the
     * device when the predecessor did not (error cascade - the
     * in-order contract means its input was never produced).
     */
    static Event
    launch(CommandQueue &q, AttemptFn work, AttemptFn fallback,
           bool fast_failable)
    {
        Event ev;
        ev._state = std::make_shared<Event::State>();
        Platform &plat = q._ctx->platform();
        Platform::Device &dev = plat._devices[q._device];

        // Admission control: shed up front, before the command joins
        // the in-order chain, so a shed neither occupies the device
        // nor cascades an error into its successors.
        if (dev.admission &&
            !dev.admission->admit(plat.now(), dev.outstanding,
                                  q._ctx->priority())) {
            ++dev.fstats.shed;
            ++dev.fstats.commands_failed;
            if (auto *tb = trace::active())
                tb->count("runtime.shed", plat.now());
            fireEvent(ev._state, Status::Shed, plat.now());
            return ev;
        }

        auto cmd = std::make_shared<Command>();
        cmd->ctx = q._ctx;
        cmd->device = q._device;
        cmd->state = ev._state;
        cmd->work = std::move(work);
        cmd->fallback = std::move(fallback);
        cmd->fast_failable = fast_failable;
        cmd->submitted = plat.now();
        cmd->counted = true;
        ++dev.outstanding;
        if (plat._policy.deadline)
            cmd->deadline_at = plat.now() + plat._policy.deadline;

        if (auto *tb = trace::active()) {
            tb->instant(trace::Category::Command, "submit", dev.name,
                        plat.now());
        }
        auto prev = q._last._state;
        whenDone(prev, [cmd, prev] {
            Platform &p = cmd->ctx->platform();
            if (prev && prev->status != Status::Ok) {
                Platform::Device &d = p._devices[cmd->device];
                ++d.fstats.cascaded;
                if (auto *tb = trace::active())
                    tb->count("runtime.cascaded", p.now());
                cmd->settleErr(Status::Failed);
                return;
            }
            p._eq.scheduleIn(0, [cmd] { cmd->beginAttempt(0); });
        });
        q._last = ev;
        return ev;
    }
};

void
fireEventState(const std::shared_ptr<Event::State> &state, Status status,
               Tick at)
{
    fireEvent(state, status, at);
}

void
whenEventDone(const std::shared_ptr<Event::State> &state,
              std::function<void()> fn)
{
    whenDone(state, std::move(fn));
}

void
launchBatchMember(Context &ctx, DeviceId device, AttemptFn work,
                  AttemptFn fallback, bool fast_failable,
                  std::shared_ptr<Event::State> state,
                  std::function<void(Status)> on_settled)
{
    Platform &plat = ctx.platform();
    Platform::Device &dev = plat._devices[device];

    // Admission control applies per member, exactly as for an
    // individually enqueued command: a shed member terminates up
    // front and never occupies the device, and - unlike the in-order
    // queue path - cannot cascade into its batch siblings.
    if (dev.admission &&
        !dev.admission->admit(plat.now(), dev.outstanding,
                              ctx.priority())) {
        ++dev.fstats.shed;
        ++dev.fstats.commands_failed;
        if (auto *tb = trace::active())
            tb->count("runtime.shed", plat.now());
        on_settled(Status::Shed);
        return;
    }

    auto cmd = std::make_shared<CommandEngine::Command>();
    cmd->ctx = &ctx;
    cmd->device = device;
    cmd->state = std::move(state);
    cmd->work = std::move(work);
    cmd->fallback = std::move(fallback);
    cmd->fast_failable = fast_failable;
    cmd->submitted = plat.now();
    cmd->counted = true;
    cmd->on_device_settled = std::move(on_settled);
    ++dev.outstanding;
    if (plat._policy.deadline)
        cmd->deadline_at = plat.now() + plat._policy.deadline;

    if (auto *tb = trace::active()) {
        tb->instant(trace::Category::Command, "submit", dev.name,
                    plat.now());
    }
    plat._eq.scheduleIn(0, [cmd] { cmd->beginAttempt(0); });
}

} // namespace detail

using detail::CommandEngine;

// ------------------------------------------------------------ Platform

Platform::Platform()
{
    _fabric = std::make_unique<pcie::Fabric>(_eq, "runtime.pcie");
    _rc = _fabric->addNode(pcie::NodeKind::RootComplex, "rc");
    _switch = _fabric->addNode(pcie::NodeKind::Switch, "sw0");
    _fabric->connect(_rc, _switch, runtime_gen, 8);
    _host = std::make_unique<cpu::CorePool>(
        _eq, "runtime.host", _host_params.cores,
        _host_params.max_job_cores);
    _irq = std::make_unique<driver::InterruptController>(
        _eq, "runtime.irq", driver::InterruptParams{}, _host.get());
    _drx_cache =
        std::make_unique<drx::ProgramCache>(_config.drx_cache);
}

Platform::~Platform() = default;

DeviceId
Platform::addAccelerator(const std::string &name, accel::Domain domain,
                         KernelFn fn)
{
    Device dev;
    dev.name = name;
    dev.spec = accel::specFor(domain);
    dev.fn = std::move(fn);
    dev.unit =
        std::make_unique<accel::DeviceUnit>(_eq, name, dev.spec.freq_hz);
    dev.node = _fabric->addNode(pcie::NodeKind::EndPoint, name);
    _fabric->connect(_switch, dev.node, runtime_gen, 16);
    _devices.push_back(std::move(dev));
    if (_plan)
        wireDevice(_devices.back());
    if (_integrity)
        wireIntegrity(_devices.back());
    wireRobust(_devices.back());
    return _devices.size() - 1;
}

DeviceId
Platform::addDrx(const std::string &name, const drx::DrxConfig &cfg)
{
    Device dev;
    dev.name = name;
    dev.is_drx = true;
    dev.machine = std::make_unique<drx::DrxMachine>(cfg);
    dev.unit =
        std::make_unique<accel::DeviceUnit>(_eq, name, cfg.freq_hz);
    dev.node = _fabric->addNode(pcie::NodeKind::EndPoint, name);
    _fabric->connect(_switch, dev.node, runtime_gen, 16);
    _devices.push_back(std::move(dev));
    if (_plan)
        wireDevice(_devices.back());
    if (_integrity)
        wireIntegrity(_devices.back());
    wireRobust(_devices.back());
    return _devices.size() - 1;
}

Context
Platform::createContext()
{
    return Context(*this);
}

std::unique_ptr<Context>
Platform::createContextPtr()
{
    return std::unique_ptr<Context>(new Context(*this));
}

const std::string &
Platform::deviceName(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceName: bad device id %zu", id);
    return _devices[id].name;
}

bool
Platform::deviceIsDrx(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceIsDrx: bad device id %zu", id);
    return _devices[id].is_drx;
}

void
Platform::setFaultPlan(fault::FaultPlan *plan)
{
    _plan = plan;
    if (!plan) {
        _fabric->setFaultHook(nullptr);
        _irq->setFaultHook(nullptr);
        for (auto &dev : _devices) {
            if (dev.unit)
                dev.unit->setFaultHook(nullptr);
            if (dev.machine)
                dev.machine->setFaultHook(nullptr);
        }
        return;
    }
    // Jitter draws from its own plan-derived stream so retries are
    // reproducible and do not consume the plan's decision streams.
    _jitter = Rng(plan->spec().seed ^ 0x7261f3b9d4a1c8e5ull);
    if (_policy.timeout == 0)
        _policy.timeout = default_fault_timeout;
    _fabric->setFaultHook(
        [plan](std::uint32_t src, std::uint32_t dst,
               std::uint64_t bytes) {
            return plan->onFlow(src, dst, bytes);
        });
    _irq->setFaultHook([plan] { return plan->onIrq(); });
    for (auto &dev : _devices)
        wireDevice(dev);
}

void
Platform::wireDevice(Device &dev)
{
    fault::FaultPlan *plan = _plan;
    dev.health = fault::HealthTracker(plan->spec().unhealthy_threshold);
    if (dev.is_drx) {
        // DRX failures are decided at the machine (program) level; the
        // serving unit stays unhooked so the fault probability is not
        // charged twice per submission.
        dev.machine->setFaultHook([plan] { return plan->onMachine(); });
        dev.unit->setFaultHook(nullptr);
    } else {
        dev.unit->setFaultHook([plan] { return plan->onKernel(); });
    }
}

void
Platform::setIntegrityPlan(integrity::IntegrityPlan *plan)
{
    _integrity = plan;
    if (plan) {
        _fabric->setLinkCrcHook(
            [plan](std::uint32_t src, std::uint32_t dst,
                   std::uint64_t bytes) {
                return plan->onLink(src, dst, bytes);
            });
    } else {
        _fabric->setLinkCrcHook(nullptr);
    }
    for (auto &dev : _devices)
        wireIntegrity(dev);
}

void
Platform::wireIntegrity(Device &dev)
{
    if (!dev.machine)
        return;
    if (integrity::IntegrityPlan *plan = _integrity) {
        dev.machine->setEccHook([plan] { return plan->onScratch(); });
    } else {
        dev.machine->setEccHook(nullptr);
    }
}

void
Platform::setCommandPolicy(const CommandPolicy &policy)
{
    _policy = policy;
    if (_plan && _policy.timeout == 0)
        _policy.timeout = default_fault_timeout;
}

void
Platform::setPlatformConfig(const PlatformConfig &cfg)
{
    _config = cfg;
    _drx_cache->setConfig(cfg.drx_cache);
}

void
Platform::setRobustConfig(const robust::RobustConfig &cfg)
{
    _robust = cfg;
    if (cfg.deadline)
        _policy.deadline = cfg.deadline;
    for (auto &dev : _devices)
        wireRobust(dev);
}

void
Platform::wireRobust(Device &dev)
{
    if (_robust.breaker.enabled) {
        robust::BreakerConfig bc = _robust.breaker;
        if (bc.failure_threshold == 0) {
            // Default the trip threshold to the device's configured
            // unhealthy threshold so breaker and health agree on what
            // "keeps failing" means.
            bc.failure_threshold = dev.health.threshold();
        }
        dev.breaker =
            std::make_unique<robust::CircuitBreaker>(dev.name, bc);
    } else {
        dev.breaker.reset();
    }
    if (_robust.admission.policy != robust::AdmissionPolicy::Unbounded) {
        dev.admission = std::make_unique<robust::AdmissionController>(
            dev.name, _robust.admission);
    } else {
        dev.admission.reset();
    }
}

const robust::CircuitBreaker *
Platform::deviceBreaker(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceBreaker: bad device id %zu", id);
    return _devices[id].breaker.get();
}

const robust::AdmissionController *
Platform::deviceAdmission(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceAdmission: bad device id %zu", id);
    return _devices[id].admission.get();
}

std::uint64_t
Platform::outstandingCommands(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::outstandingCommands: bad device id %zu", id);
    return _devices[id].outstanding;
}

bool
Platform::deviceHealthy(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceHealthy: bad device id %zu", id);
    return _devices[id].health.healthy();
}

const fault::HealthTracker &
Platform::deviceHealth(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceHealth: bad device id %zu", id);
    return _devices[id].health;
}

const DeviceFaultStats &
Platform::faultStats(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::faultStats: bad device id %zu", id);
    return _devices[id].fstats;
}

// ------------------------------------------------------------- Context

Context::Context(Platform &p) : _platform(&p)
{
    for (std::size_t d = 0; d < p._devices.size(); ++d) {
        _queues.emplace_back(
            std::unique_ptr<CommandQueue>(new CommandQueue(*this, d)));
    }
}

BufferId
Context::createBuffer(Bytes data)
{
    _buffers.push_back(std::move(data));
    return _buffers.size() - 1;
}

const Bytes &
Context::read(BufferId id) const
{
    if (id >= _buffers.size())
        dmx_fatal("Context::read: bad buffer id %zu", id);
    return _buffers[id];
}

void
Context::write(BufferId id, Bytes data)
{
    if (id >= _buffers.size())
        dmx_fatal("Context::write: bad buffer id %zu", id);
    _buffers[id] = std::move(data);
}

CommandQueue &
Context::queue(DeviceId dev)
{
    if (dev >= _queues.size())
        dmx_fatal("Context::queue: bad device id %zu", dev);
    return *_queues[dev];
}

void
Context::finish()
{
    _platform->drain();
}

// -------------------------------------------------------- CommandQueue

Event
CommandQueue::enqueueKernel(BufferId in, BufferId out)
{
    Platform &plat = _ctx->platform();
    Platform::Device &dev = plat._devices[_device];
    if (dev.is_drx)
        dmx_fatal("enqueueKernel on DRX device '%s'; use "
                  "enqueueRestructure", dev.name.c_str());

    Context *ctx = _ctx;
    const DeviceId device = _device;
    auto work = [ctx, device, in, out](
                    CommandEngine::AttemptResult done) {
        Platform &p = ctx->platform();
        Platform::Device &d = p._devices[device];
        kernels::OpCount ops;
        Bytes result = d.fn(ctx->read(in), ops);
        const Cycles cycles = accel::kernelCycles(d.spec, ops);
        d.unit->submitChecked(
            cycles, [ctx, out, done,
                     result = std::move(result)](bool ok) mutable {
                if (ok)
                    ctx->write(out, std::move(result));
                done(ok);
            });
    };
    return CommandEngine::launch(*this, std::move(work), nullptr,
                                 /*fast_failable=*/true);
}

Event
CommandQueue::enqueueRestructure(const restructure::Kernel &kernel,
                                 BufferId in, BufferId out)
{
    Platform &plat = _ctx->platform();
    Platform::Device &dev = plat._devices[_device];
    if (!dev.is_drx)
        dmx_fatal("enqueueRestructure on accelerator '%s'",
                  dev.name.c_str());

    Context *ctx = _ctx;
    const DeviceId device = _device;
    // Copy the kernel: the caller's object may go out of scope before
    // the command reaches the head of the queue.
    auto kcopy = std::make_shared<restructure::Kernel>(kernel);

    // Plan once, at enqueue time, through the platform's compiled-
    // kernel cache. Every attempt of this command -- and every later
    // command with the same kernel structure -- reuses the plan;
    // previously each retry recompiled the kernel from scratch.
    std::shared_ptr<const drx::CompiledKernel> plan;
    if (plat.platformConfig().drx_cache.enabled) {
        plan = plat.drxCache()
                   .lookup(kernel, dev.machine->config(), plat.now())
                   .compiled;
    } else {
        plan = std::make_shared<const drx::CompiledKernel>(
            drx::planKernel(kernel, dev.machine->config()));
    }

    auto work = [ctx, device, in, out, kcopy, plan](
                    CommandEngine::AttemptResult done) {
        Platform &p = ctx->platform();
        Platform::Device &d = p._devices[device];
        d.machine->resetAlloc();
        const std::shared_ptr<const drx::CompiledKernel> installed =
            drx::installPlan(plan, *d.machine);
        auto result = std::make_shared<restructure::Bytes>();
        const drx::RunResult res = drx::runPlanOnDrx(
            kcopy->name, *installed, ctx->read(in), *d.machine,
            result.get(), p.now());
        if (res.faulted) {
            // The machine trapped: charge the trap handling on the
            // unit, then report the device error at that time.
            d.unit->submitChecked(res.total_cycles,
                                  [done](bool) { done(false); });
            return;
        }
        d.unit->submitChecked(
            res.total_cycles, [ctx, out, done, result](bool ok) {
                if (ok)
                    ctx->write(out, std::move(*result));
                done(ok);
            });
    };
    // Degradation path: byte-identical restructuring on the host core
    // pool, costed like the paper's CPU baseline (thrash factor, spawn
    // overhead, bounded job parallelism).
    auto fallback = [ctx, in, out, kcopy](
                        CommandEngine::AttemptResult done) {
        Platform &p = ctx->platform();
        kernels::OpCount ops;
        Bytes result =
            restructure::executeOnCpu(*kcopy, ctx->read(in), &ops);
        const double core_seconds =
            cpu::restructureCoreSeconds(ops, p._host_params);
        p._host->submit(
            core_seconds, p._host_params.max_job_cores,
            [ctx, out, done, result = std::move(result)]() mutable {
                ctx->write(out, std::move(result));
                done(true);
            });
    };
    return CommandEngine::launch(*this, std::move(work),
                                 std::move(fallback),
                                 /*fast_failable=*/false);
}

Event
CommandQueue::enqueueCopy(BufferId src, BufferId dst,
                          DeviceId dst_device)
{
    Platform &plat = _ctx->platform();
    if (dst_device >= plat._devices.size())
        dmx_fatal("enqueueCopy: bad destination device %zu", dst_device);

    Context *ctx = _ctx;
    const DeviceId from = _device;
    auto work = [ctx, from, src, dst, dst_device](
                    CommandEngine::AttemptResult done) {
        Platform &p = ctx->platform();
        const auto bytes =
            static_cast<std::uint64_t>(ctx->read(src).size());
        const pcie::NodeId sn = p._devices[from].node;
        const pcie::NodeId dn = p._devices[dst_device].node;
        auto deliver = [ctx, src, dst, done](bool ok) {
            if (ok) {
                ctx->write(dst, ctx->read(src));
                Platform &plat = ctx->platform();
                if (plat._integrity) {
                    // Silent payload corruption: the DMA completed and
                    // reports success, but the delivered copy differs
                    // from the source by one flipped bit. Only an
                    // end-to-end check can catch this - the flip is
                    // deliberately invisible to the command status.
                    const Bytes &got = ctx->read(dst);
                    const auto act = plat._integrity->onPayload(
                        static_cast<std::uint64_t>(got.size()));
                    if (act.flip) {
                        Bytes data = got;
                        data[act.bit / 8] ^= static_cast<std::uint8_t>(
                            1u << (act.bit % 8));
                        ctx->write(dst, std::move(data));
                        if (auto *tb = trace::active()) {
                            tb->instant(trace::Category::Integrity,
                                        "payload_flip", "dma",
                                        plat.now(), act.bit);
                            tb->count("integrity.payload_flips",
                                      plat.now());
                        }
                    }
                }
            }
            done(ok);
        };
        if (p._plan && p._plan->p2pFaulted()) {
            // The switch's p2p forwarding path is down: stage through
            // the root complex as two serial DMAs - honestly slower
            // (twice the traffic and setup, plus the constrained
            // uplink) but it keeps the pipeline flowing.
            ++p._devices[from].fstats.rerouted_copies;
            if (auto *tb = trace::active())
                tb->count("runtime.rerouted_copies", p.now());
            const pcie::NodeId rc = p._rc;
            p._fabric->startFlowChecked(
                sn, rc, bytes,
                [ctx, rc, dn, bytes, deliver](bool ok) {
                    if (!ok) {
                        deliver(false);
                        return;
                    }
                    ctx->platform()._fabric->startFlowChecked(
                        rc, dn, bytes, deliver);
                });
            return;
        }
        p._fabric->startFlowChecked(sn, dn, bytes, deliver);
    };
    // Copies are not fast-failable: device health tracks the command
    // engine, while DMA rides the fabric, which may be fine.
    return CommandEngine::launch(*this, std::move(work), nullptr,
                                 /*fast_failable=*/false);
}

void
CommandQueue::finish()
{
    _ctx->platform().drain();
}

} // namespace dmx::runtime
