#include "runtime/runtime.hh"

#include <map>

#include "common/logging.hh"

namespace dmx::runtime
{

namespace
{

/** Default link for runtime devices: Gen3 x16 under one switch. */
constexpr pcie::Generation runtime_gen = pcie::Generation::Gen3;

} // namespace

// --------------------------------------------------------------- Event

// Completion chaining lives in a side table keyed by the shared state.
// To keep Event copyable and cheap, the waiter list is attached to the
// state object itself.
struct EventWaiters
{
    std::vector<std::function<void()>> fns;
};

namespace
{

// One waiter registry per process is enough: entries are erased when
// fired, and the keys are unique shared states.
std::map<void *, EventWaiters> &
waiterMap()
{
    static std::map<void *, EventWaiters> m;
    return m;
}

void
fireEvent(const std::shared_ptr<Event::State> &state, Tick at)
{
    state->done = true;
    state->at = at;
    auto &m = waiterMap();
    const auto it = m.find(state.get());
    if (it == m.end())
        return;
    auto fns = std::move(it->second.fns);
    m.erase(it);
    for (auto &fn : fns)
        fn();
}

void
whenDone(const std::shared_ptr<Event::State> &state,
         std::function<void()> fn)
{
    if (!state || state->done) {
        fn();
        return;
    }
    waiterMap()[state.get()].fns.push_back(std::move(fn));
}

} // namespace

// ------------------------------------------------------------ Platform

Platform::Platform()
{
    _fabric = std::make_unique<pcie::Fabric>(_eq, "runtime.pcie");
    _rc = _fabric->addNode(pcie::NodeKind::RootComplex, "rc");
    _switch = _fabric->addNode(pcie::NodeKind::Switch, "sw0");
    _fabric->connect(_rc, _switch, runtime_gen, 8);
}

Platform::~Platform() = default;

DeviceId
Platform::addAccelerator(const std::string &name, accel::Domain domain,
                         KernelFn fn)
{
    Device dev;
    dev.name = name;
    dev.spec = accel::specFor(domain);
    dev.fn = std::move(fn);
    dev.unit =
        std::make_unique<accel::DeviceUnit>(_eq, name, dev.spec.freq_hz);
    dev.node = _fabric->addNode(pcie::NodeKind::EndPoint, name);
    _fabric->connect(_switch, dev.node, runtime_gen, 16);
    _devices.push_back(std::move(dev));
    return _devices.size() - 1;
}

DeviceId
Platform::addDrx(const std::string &name, const drx::DrxConfig &cfg)
{
    Device dev;
    dev.name = name;
    dev.is_drx = true;
    dev.machine = std::make_unique<drx::DrxMachine>(cfg);
    dev.unit =
        std::make_unique<accel::DeviceUnit>(_eq, name, cfg.freq_hz);
    dev.node = _fabric->addNode(pcie::NodeKind::EndPoint, name);
    _fabric->connect(_switch, dev.node, runtime_gen, 16);
    _devices.push_back(std::move(dev));
    return _devices.size() - 1;
}

Context
Platform::createContext()
{
    return Context(*this);
}

const std::string &
Platform::deviceName(DeviceId id) const
{
    if (id >= _devices.size())
        dmx_fatal("Platform::deviceName: bad device id %zu", id);
    return _devices[id].name;
}

// ------------------------------------------------------------- Context

Context::Context(Platform &p) : _platform(&p)
{
    for (std::size_t d = 0; d < p._devices.size(); ++d) {
        _queues.emplace_back(
            std::unique_ptr<CommandQueue>(new CommandQueue(*this, d)));
    }
}

BufferId
Context::createBuffer(Bytes data)
{
    _buffers.push_back(std::move(data));
    return _buffers.size() - 1;
}

const Bytes &
Context::read(BufferId id) const
{
    if (id >= _buffers.size())
        dmx_fatal("Context::read: bad buffer id %zu", id);
    return _buffers[id];
}

void
Context::write(BufferId id, Bytes data)
{
    if (id >= _buffers.size())
        dmx_fatal("Context::write: bad buffer id %zu", id);
    _buffers[id] = std::move(data);
}

CommandQueue &
Context::queue(DeviceId dev)
{
    if (dev >= _queues.size())
        dmx_fatal("Context::queue: bad device id %zu", dev);
    return *_queues[dev];
}

void
Context::finish()
{
    _platform->drain();
}

// -------------------------------------------------------- CommandQueue

Event
CommandQueue::enqueueKernel(BufferId in, BufferId out)
{
    Platform &plat = _ctx->platform();
    Platform::Device &dev = plat._devices[_device];
    if (dev.is_drx)
        dmx_fatal("enqueueKernel on DRX device '%s'; use "
                  "enqueueRestructure", dev.name.c_str());

    Event ev;
    ev._state = std::make_shared<Event::State>();
    auto state = ev._state;
    Context *ctx = _ctx;
    const DeviceId device = _device;

    whenDone(_last._state, [ctx, device, in, out, state] {
        Platform &p = ctx->platform();
        Platform::Device &d = p._devices[device];
        p._eq.scheduleIn(0, [ctx, device, in, out, state] {
            Platform &p2 = ctx->platform();
            Platform::Device &d2 = p2._devices[device];
            kernels::OpCount ops;
            Bytes result = d2.fn(ctx->read(in), ops);
            const Cycles cycles = accel::kernelCycles(d2.spec, ops);
            d2.unit->submit(cycles, [ctx, out, state,
                                     result = std::move(result)] {
                ctx->write(out, result);
                fireEvent(state, ctx->platform().now());
            });
        });
        (void)d;
    });
    _last = ev;
    return ev;
}

Event
CommandQueue::enqueueRestructure(const restructure::Kernel &kernel,
                                 BufferId in, BufferId out)
{
    Platform &plat = _ctx->platform();
    Platform::Device &dev = plat._devices[_device];
    if (!dev.is_drx)
        dmx_fatal("enqueueRestructure on accelerator '%s'",
                  dev.name.c_str());

    Event ev;
    ev._state = std::make_shared<Event::State>();
    auto state = ev._state;
    Context *ctx = _ctx;
    const DeviceId device = _device;
    // Copy the kernel: the caller's object may go out of scope before
    // the command reaches the head of the queue.
    auto kcopy = std::make_shared<restructure::Kernel>(kernel);

    whenDone(_last._state, [ctx, device, in, out, state, kcopy] {
        Platform &p = ctx->platform();
        p._eq.scheduleIn(0, [ctx, device, in, out, state, kcopy] {
            Platform &p2 = ctx->platform();
            Platform::Device &d2 = p2._devices[device];
            d2.machine->resetAlloc();
            restructure::Bytes result;
            const drx::RunResult res = drx::runKernelOnDrx(
                *kcopy, ctx->read(in), *d2.machine, &result);
            d2.unit->submit(res.total_cycles,
                            [ctx, out, state,
                             result = std::move(result)] {
                ctx->write(out, result);
                fireEvent(state, ctx->platform().now());
            });
        });
    });
    _last = ev;
    return ev;
}

Event
CommandQueue::enqueueCopy(BufferId src, BufferId dst, DeviceId dst_device)
{
    Platform &plat = _ctx->platform();
    if (dst_device >= plat._devices.size())
        dmx_fatal("enqueueCopy: bad destination device %zu", dst_device);

    Event ev;
    ev._state = std::make_shared<Event::State>();
    auto state = ev._state;
    Context *ctx = _ctx;
    const DeviceId from = _device;

    whenDone(_last._state, [ctx, from, src, dst, dst_device, state] {
        Platform &p = ctx->platform();
        p._eq.scheduleIn(0, [ctx, from, src, dst, dst_device, state] {
            Platform &p2 = ctx->platform();
            const auto bytes =
                static_cast<std::uint64_t>(ctx->read(src).size());
            p2._fabric->startFlow(
                p2._devices[from].node, p2._devices[dst_device].node,
                bytes, [ctx, src, dst, state] {
                    ctx->write(dst, ctx->read(src));
                    fireEvent(state, ctx->platform().now());
                });
        });
    });
    _last = ev;
    return ev;
}

void
CommandQueue::finish()
{
    _ctx->platform().drain();
}

} // namespace dmx::runtime
