/**
 * @file
 * Batched descriptor submission & coalesced completions (DESIGN.md 7j).
 *
 * The legacy submission path pays a full doorbell (pcie dma_setup) per
 * copy and a driver notification per settled command. submitBatch()
 * instead packs N pending commands - copies, kernels, restructures,
 * whole descriptor chains - into one submission the way Intel DSA
 * batches descriptors: the host writes every descriptor, rings ONE
 * doorbell (the batch's first fabric submission pays dma_setup, every
 * later one only a descriptor fetch), and completions are delivered
 * coalesced - one driver notification per coalescing window - or
 * discovered by host completion-record polls, never one interrupt per
 * member.
 *
 * Reliability contract (deliberately identical to the per-command
 * engine, observed per member):
 *  - admission control, the per-attempt watchdog, retry backoff, the
 *    deadline budget, breaker/health feedback and the CPU fallback all
 *    apply PER MEMBER, exactly as for an individually enqueued
 *    command; a batch never widens any budget;
 *  - one member failing never poisons its siblings: each member
 *    settles independently and leaves a per-member BatchRecord
 *    (status, settle tick, retries), mirroring the chain engine's
 *    DescriptorRecords;
 *  - failed members report at device-settle time with no notification
 *    (parity with the per-command error path); only successful
 *    completions ride the coalesced notification or the record poll.
 *
 * Default-off: nothing in the legacy enqueue path changes; a platform
 * that never calls submitBatch behaves byte-identically to before.
 */

#ifndef DMX_RUNTIME_BATCH_HH
#define DMX_RUNTIME_BATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "restructure/ir.hh"
#include "runtime/chain.hh"
#include "runtime/runtime.hh"

namespace dmx::runtime
{

/** One member of a batched submission. */
struct BatchOp
{
    enum class Kind : std::uint8_t
    {
        Copy,        ///< DMA in -> out, device -> dst_device
        Kernel,      ///< accelerator kernel on `device`: out = fn(in)
        Restructure, ///< DRX pipeline on `device`: kernels applied in
                     ///< order (use a Chain member for fusion)
        Chain,       ///< a whole descriptor chain (runtime/chain.hh),
                     ///< sharing the batch's doorbell and notification
    };

    Kind kind = Kind::Copy;
    DeviceId device = 0;     ///< executing device (Copy: the source)
    DeviceId dst_device = 0; ///< Copy only: destination device
    BufferId in = 0;
    BufferId out = 0;
    std::vector<restructure::Kernel> kernels; ///< Restructure only
    std::vector<ChainOp> chain;               ///< Chain only
    /// Per-member context override: buffers, admission priority and
    /// the retry-policy tag come from this context when set (nullptr =
    /// the submitting context), so multi-tenant members keep their own
    /// admission and retry budgets inside a shared batch.
    Context *ctx = nullptr;
};

/** Per-batch completion-delivery knobs. */
struct BatchOptions
{
    enum class CompletionMode : std::uint8_t
    {
        /// One driver notification per coalescing window of member
        /// completions (the DSA batch-interrupt model).
        Coalesced,
        /// No completion interrupts at all: each successful member is
        /// discovered by a host completion-record poll.
        Poll,
    };

    CompletionMode completion = CompletionMode::Coalesced;
    /// Coalescing window in member completions; 0 = the whole batch
    /// settles behind a single notification. A window that cannot
    /// fill (failed members settle outside it) is flushed when the
    /// last member settles.
    unsigned coalesce_threshold = 0;
    /// Options applied to Chain members.
    ChainOptions chain{};
};

/** Per-member completion record (the batch's DescriptorRecords). */
struct BatchRecord
{
    Status status = Status::Pending; ///< Pending = not yet settled
    Tick at = 0;                     ///< device-settle tick
    unsigned retries = 0;            ///< retry attempts consumed
    bool degraded = false;           ///< ran on the CPU fallback
    int chain_failed_index = -1;     ///< Chain members: failed hop
};

namespace detail
{

/** Shared completion state of one batch submission. */
struct BatchState
{
    Status status = Status::Pending; ///< terminal once every member
                                     ///< event fired; the first non-Ok
                                     ///< member's status, else Ok
    Tick at = 0;                     ///< last member-event fire tick
    std::vector<BatchRecord> records;
    /// Per-member event states; fired by the batch after the
    /// coalesced notification (Ok) or at device settle (errors).
    std::vector<std::shared_ptr<Event::State>> members;
    std::uint64_t notifications = 0; ///< coalesced notifications paid
};

} // namespace detail

/** Completion handle of a batch submission (cheap to copy). */
class BatchEvent
{
  public:
    BatchEvent() = default;

    bool valid() const { return _state != nullptr; }

    /** @return true once every member's completion event fired. */
    bool complete() const
    {
        return _state && _state->status != Status::Pending;
    }

    /** @return Ok iff every member settled Ok; else the first non-Ok
     *  member's status; Pending while any member is outstanding. */
    Status status() const
    {
        return _state ? _state->status : Status::Pending;
    }

    bool ok() const { return status() == Status::Ok; }

    /**
     * @return the tick the last member's completion reached the host.
     * Fatal when invalid or pending, matching Event::completeTime.
     */
    Tick completeTime() const;

    /** @return per-member completion records. Fatal when invalid. */
    const std::vector<BatchRecord> &records() const;

    /**
     * @return member @p i's completion event, usable with onSettled
     * like any individually enqueued command's event. Ok members fire
     * when their coalescing window's notification (or record poll)
     * reaches the host; failed members fire at device-settle time.
     */
    Event member(std::size_t i) const;

    /** @return coalesced driver notifications this batch paid. */
    std::uint64_t notifications() const
    {
        return _state ? _state->notifications : 0;
    }

  private:
    friend struct detail::BatchEngine;
    std::shared_ptr<detail::BatchState> _state;
};

/**
 * Submit @p ops as one batch on @p ctx. Non-blocking: drive the
 * platform (ctx.finish()) and inspect the returned event. Members
 * execute concurrently (a batch owns its own ordering and joins no
 * per-device in-order queue); use a Chain member for ordered stages.
 */
BatchEvent submitBatch(Context &ctx, const std::vector<BatchOp> &ops,
                       const BatchOptions &opts = {});

} // namespace dmx::runtime

#endif // DMX_RUNTIME_BATCH_HH
