/**
 * @file
 * The DMX host runtime (paper Sec. V): an OpenCL-style programming
 * model with a host program, per-device in-order command queues, and
 * kernels running on accelerators or DRXs.
 *
 * The runtime is fully functional *and* fully timed: enqueued kernels
 * execute their real C++ implementations on real bytes, while the
 * simulated clock advances according to the device latency models and
 * the PCIe fabric. Examples use this API end-to-end; the figure
 * harnesses use the lower-level sys:: simulator for statistical runs.
 *
 * Typical use:
 *   Platform plat;
 *   DeviceId fft  = plat.addAccelerator("fft0", Domain::FFT, fn);
 *   DeviceId drx  = plat.addDrx("drx0", drx_cfg);
 *   Context ctx   = plat.createContext();
 *   BufferId in   = ctx.createBuffer(bytes);
 *   CommandQueue& q = ctx.queue(fft);
 *   Event e = q.enqueueKernel(in, out);          // non-blocking
 *   ctx.finish();                                // drain all queues
 */

#ifndef DMX_RUNTIME_RUNTIME_HH
#define DMX_RUNTIME_RUNTIME_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "pcie/fabric.hh"
#include "restructure/ir.hh"
#include "sim/eventq.hh"

namespace dmx::runtime
{

using Bytes = std::vector<std::uint8_t>;

/** Functional kernel body: consumes input bytes, reports its work. */
using KernelFn =
    std::function<Bytes(const Bytes &, kernels::OpCount &)>;

/** Opaque device handle. */
using DeviceId = std::size_t;

/** Opaque buffer handle. */
using BufferId = std::size_t;

/** Completion state shared with the host program. */
class Event
{
  public:
    Event() = default;

    /** @return true once the command completed (in simulated time). */
    bool complete() const { return _state && _state->done; }

    /** @return simulated completion time (valid once complete()). */
    Tick completeTime() const { return _state ? _state->at : 0; }

    /** Shared completion record (public for the runtime internals). */
    struct State
    {
        bool done = false;
        Tick at = 0;
    };

  private:
    friend class CommandQueue;
    friend class Context;
    std::shared_ptr<State> _state;
};

class Context;
class Platform;

/** An in-order command queue bound to one device. */
class CommandQueue
{
  public:
    /**
     * Run the device's kernel on @p in, producing @p out.
     * For accelerator devices the platform-registered KernelFn runs;
     * for DRX devices @p restructure is compiled and executed.
     */
    Event enqueueKernel(BufferId in, BufferId out);

    /** DRX devices only: enqueue a restructuring kernel. */
    Event enqueueRestructure(const restructure::Kernel &kernel,
                             BufferId in, BufferId out);

    /**
     * Enqueue a DMA of @p src's contents to @p dst residing on
     * @p dst_device (p2p when both are devices; staged via host root
     * complex only if the placement demands it - the runtime always
     * uses p2p, mirroring DMX).
     */
    Event enqueueCopy(BufferId src, BufferId dst, DeviceId dst_device);

    /** Block (drive simulation) until everything enqueued completed. */
    void finish();

  private:
    friend class Context;
    CommandQueue(Context &ctx, DeviceId dev)
        : _ctx(&ctx), _device(dev)
    {
    }

    Context *_ctx;
    DeviceId _device;
    Event _last; ///< in-order chaining: tail of the queue
};

/** Execution context: buffers plus one command queue per device. */
class Context
{
  public:
    // Queues hold back-pointers to this context: initialize with
    // `Context ctx = platform.createContext();` (guaranteed elision)
    // and do not move it afterwards.
    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;
    Context(Context &&) = delete;
    Context &operator=(Context &&) = delete;

    /** Allocate a buffer and optionally initialize its contents. */
    BufferId createBuffer(Bytes data = {});

    /** @return buffer contents (host view; call finish() first). */
    const Bytes &read(BufferId id) const;

    /** Replace buffer contents from the host. */
    void write(BufferId id, Bytes data);

    /** @return the in-order queue of @p dev. */
    CommandQueue &queue(DeviceId dev);

    /** Drive the simulation until all queues drain. */
    void finish();

    Platform &platform() { return *_platform; }

  private:
    friend class Platform;
    friend class CommandQueue;
    explicit Context(Platform &p);

    Platform *_platform;
    std::vector<Bytes> _buffers;
    std::vector<std::unique_ptr<CommandQueue>> _queues;
};

/** The platform: devices, fabric and the simulated clock. */
class Platform
{
  public:
    Platform();
    ~Platform();

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /**
     * Register an accelerator device.
     *
     * @param name   instance name
     * @param domain latency-model domain (Table I)
     * @param fn     functional kernel body
     */
    DeviceId addAccelerator(const std::string &name, accel::Domain domain,
                            KernelFn fn);

    /** Register a DRX device with its hardware configuration. */
    DeviceId addDrx(const std::string &name, const drx::DrxConfig &cfg);

    /** Create an execution context spanning all devices. */
    Context createContext();

    /** @return current simulated time. */
    Tick now() const { return _eq.now(); }

    /** @return number of registered devices. */
    std::size_t deviceCount() const { return _devices.size(); }

    /** @return device name. */
    const std::string &deviceName(DeviceId id) const;

    /** Drive the simulation until the event queue drains. */
    void drain() { _eq.run(); }

  private:
    friend class Context;
    friend class CommandQueue;

    struct Device
    {
        std::string name;
        bool is_drx = false;
        accel::AcceleratorSpec spec{};
        KernelFn fn;
        std::unique_ptr<accel::DeviceUnit> unit;
        std::unique_ptr<drx::DrxMachine> machine;
        pcie::NodeId node = 0;
    };

    sim::EventQueue _eq;
    std::unique_ptr<pcie::Fabric> _fabric;
    pcie::NodeId _rc = 0;
    pcie::NodeId _switch = 0;
    std::vector<Device> _devices;
};

} // namespace dmx::runtime

#endif // DMX_RUNTIME_RUNTIME_HH
