/**
 * @file
 * The DMX host runtime (paper Sec. V): an OpenCL-style programming
 * model with a host program, per-device in-order command queues, and
 * kernels running on accelerators or DRXs.
 *
 * The runtime is fully functional *and* fully timed: enqueued kernels
 * execute their real C++ implementations on real bytes, while the
 * simulated clock advances according to the device latency models and
 * the PCIe fabric. Examples use this API end-to-end; the figure
 * harnesses use the lower-level sys:: simulator for statistical runs.
 *
 * Typical use:
 *   Platform plat;
 *   DeviceId fft  = plat.addAccelerator("fft0", Domain::FFT, fn);
 *   DeviceId drx  = plat.addDrx("drx0", drx_cfg);
 *   Context ctx   = plat.createContext();
 *   BufferId in   = ctx.createBuffer(bytes);
 *   CommandQueue& q = ctx.queue(fft);
 *   Event e = q.enqueueKernel(in, out);          // non-blocking
 *   ctx.finish();                                // drain all queues
 *
 * Reliability model: with a fault::FaultPlan installed
 * (Platform::setFaultPlan), every command runs under a simulated-time
 * watchdog and a retry policy (exponential backoff with jitter, bounded
 * retry budget). Commands that exhaust their budget settle as Failed or
 * TimedOut, and that error cascades down the in-order queue: commands
 * behind a failed one settle Failed without touching the device, so
 * finish() always terminates. A DRX that fails enough consecutive
 * commands is marked unhealthy and its restructuring work transparently
 * degrades to the host CPU (byte-identical output, honestly slower);
 * p2p copies re-route through the root complex while the switch's
 * forwarding path is faulted. With no plan installed none of this
 * machinery is reachable (hooks are null checks), and timing is
 * identical to the fault-free runtime.
 */

#ifndef DMX_RUNTIME_RUNTIME_HH
#define DMX_RUNTIME_RUNTIME_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "common/random.hh"
#include "cpu/core_pool.hh"
#include "cpu/host_model.hh"
#include "driver/interrupts.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "fault/fault.hh"
#include "fault/health.hh"
#include "pcie/fabric.hh"
#include "restructure/ir.hh"
#include "robust/admission.hh"
#include "robust/breaker.hh"
#include "robust/robust.hh"
#include "sim/eventq.hh"

namespace dmx::integrity
{
class IntegrityPlan;
}

namespace dmx::runtime
{

using Bytes = std::vector<std::uint8_t>;

/** Functional kernel body: consumes input bytes, reports its work. */
using KernelFn =
    std::function<Bytes(const Bytes &, kernels::OpCount &)>;

/** Opaque device handle. */
using DeviceId = std::size_t;

/** Opaque buffer handle. */
using BufferId = std::size_t;

/** Terminal status of a command (Pending until it settles). */
enum class Status : std::uint8_t
{
    Pending,  ///< not yet settled (still queued or executing)
    Ok,       ///< completed successfully
    Failed,   ///< device error, retry budget exhausted, or cascaded
    TimedOut, ///< final attempt's watchdog expired, or deadline budget
              ///< exhausted across retries
    Shed,     ///< rejected by admission control or an open circuit
              ///< breaker; terminal, observed exactly like TimedOut
};

/** @return human name, e.g. "timed-out". */
std::string toString(Status s);

/**
 * Per-command reliability policy (meaningful once a fault plan is
 * installed; without one commands cannot fail and never retry).
 */
struct CommandPolicy
{
    /// Watchdog per attempt, in ticks; 0 disables the watchdog.
    /// setFaultPlan() raises 0 to a default so injected stalls and
    /// hangs are always detected rather than wedging finish().
    Tick timeout = 0;
    /// Retry budget: a command makes at most 1 + max_retries attempts.
    unsigned max_retries = 3;
    /// First retry delay; doubles (backoff_mult) per further retry.
    Tick backoff_base = 200 * tick_per_us;
    double backoff_mult = 2.0;
    /// Uniform jitter fraction added on top of the backoff delay
    /// (delay *= 1 + jitter_frac * U[0,1)), decorrelating retries.
    double jitter_frac = 0.25;
    /// End-to-end deadline budget per command, in ticks; 0 disables it.
    /// Watchdogs, retries and backoff all draw down this one budget
    /// (watchdogs are clipped to the remaining budget, and a retry
    /// whose backoff would land past the deadline settles TimedOut
    /// immediately), so a command never spends longer than
    /// submit + deadline across all recovery attempts.
    Tick deadline = 0;
};

namespace detail
{
struct CommandEngine;
struct ChainEngine;
struct BatchEngine;
}

/** Completion state shared with the host program. */
class Event
{
  public:
    Event() = default;

    /** @return true for events returned by an enqueue (default-
     *  constructed events are invalid placeholders). */
    bool valid() const { return _state != nullptr; }

    /** @return true once the command settled (in simulated time). */
    bool complete() const
    {
        return _state && _state->status != Status::Pending;
    }

    /** @return terminal status; Pending while incomplete or invalid. */
    Status status() const
    {
        return _state ? _state->status : Status::Pending;
    }

    /** @return true once the command settled successfully. */
    bool ok() const { return status() == Status::Ok; }

    /**
     * @return simulated settle time.
     * Fatal when the event is invalid or still pending: a time of "0"
     * for an unfinished command is a silent lie, so the accessor
     * refuses rather than guessing (satellite: unambiguous Event API).
     */
    Tick completeTime() const;

    /** @return retry attempts consumed (0 on the first-try path). */
    unsigned retries() const { return _state ? _state->retries : 0; }

    /** @return true when the command degraded to the CPU fallback. */
    bool degraded() const { return _state && _state->degraded; }

    /** Shared completion record (public for the runtime internals). */
    struct State
    {
        Status status = Status::Pending;
        Tick at = 0;
        unsigned retries = 0;
        bool degraded = false;
    };

  private:
    friend class CommandQueue;
    friend class Context;
    friend struct detail::CommandEngine;
    friend struct detail::BatchEngine;
    friend void onSettled(const Event &, std::function<void()>);
    std::shared_ptr<State> _state;
};

/**
 * Register @p fn to run (at the settle tick, on the simulation thread)
 * when @p ev settles; runs immediately when the event already settled.
 * This is the public completion hook higher layers use to return
 * credits / collect latencies without polling.
 */
void onSettled(const Event &ev, std::function<void()> fn);

class Context;
class Platform;

namespace detail
{

/** Reports one attempt's outcome (exactly once, or never). */
using AttemptResult = std::function<void(bool ok)>;
/** Launches one attempt of a command's device work. */
using AttemptFn = std::function<void(AttemptResult)>;

/** Settle @p state (firing its onSettled waiters) - batch.cc bridge. */
void fireEventState(const std::shared_ptr<Event::State> &state,
                    Status status, Tick at);

/** Run @p fn when @p state settles (immediately if it already did). */
void whenEventDone(const std::shared_ptr<Event::State> &state,
                   std::function<void()> fn);

/**
 * Launch one batch member through the per-command reliability engine
 * (admission shed, watchdog clipped to the deadline, retry backoff,
 * breaker/health feedback, CPU fallback) with the settle outcome
 * reported to @p on_settled instead of the notify + event-fire path:
 * the batch engine owns completion delivery, so member reliability is
 * byte-identical to an individually enqueued command while the
 * notification cost is paid once per coalescing window. Members do not
 * join the per-device in-order queue; a batch owns its own ordering.
 */
void launchBatchMember(Context &ctx, DeviceId device, AttemptFn work,
                       AttemptFn fallback, bool fast_failable,
                       std::shared_ptr<Event::State> state,
                       std::function<void(Status)> on_settled);

} // namespace detail

/** An in-order command queue bound to one device. */
class CommandQueue
{
  public:
    /**
     * Run the device's kernel on @p in, producing @p out.
     * For accelerator devices the platform-registered KernelFn runs;
     * for DRX devices @p restructure is compiled and executed.
     */
    Event enqueueKernel(BufferId in, BufferId out);

    /** DRX devices only: enqueue a restructuring kernel. */
    Event enqueueRestructure(const restructure::Kernel &kernel,
                             BufferId in, BufferId out);

    /**
     * Enqueue a DMA of @p src's contents to @p dst residing on
     * @p dst_device (p2p when both are devices; staged via host root
     * complex only if the placement demands it - the runtime always
     * uses p2p, mirroring DMX, unless the plan reports the switch's
     * p2p path faulted, in which case the copy stages through the
     * root complex at its honestly worse cost).
     */
    Event enqueueCopy(BufferId src, BufferId dst, DeviceId dst_device);

    /** Block (drive simulation) until everything enqueued settled. */
    void finish();

  private:
    friend class Context;
    friend struct detail::CommandEngine;
    CommandQueue(Context &ctx, DeviceId dev)
        : _ctx(&ctx), _device(dev)
    {
    }

    Context *_ctx;
    DeviceId _device;
    Event _last; ///< in-order chaining: tail of the queue
};

/** Execution context: buffers plus one command queue per device. */
class Context
{
  public:
    // Queues hold back-pointers to this context: initialize with
    // `Context ctx = platform.createContext();` (guaranteed elision)
    // and do not move it afterwards.
    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;
    Context(Context &&) = delete;
    Context &operator=(Context &&) = delete;

    /** Allocate a buffer and optionally initialize its contents. */
    BufferId createBuffer(Bytes data = {});

    /** @return buffer contents (host view; call finish() first). */
    const Bytes &read(BufferId id) const;

    /** Replace buffer contents from the host. */
    void write(BufferId id, Bytes data);

    /** @return the in-order queue of @p dev. */
    CommandQueue &queue(DeviceId dev);

    /** Drive the simulation until all queues drain. */
    void finish();

    Platform &platform() { return *_platform; }

    /**
     * Set the tenant priority admission control uses for commands from
     * this context (0 = highest; see robust::AdmissionController).
     */
    void setPriority(unsigned p) { _priority = p; }

    unsigned priority() const { return _priority; }

    /**
     * Opaque caller tag carried by every command enqueued from this
     * context. The serving layer stores the tenant id here so its
     * retry-budget policy hook can charge runtime retries to the right
     * bucket; the runtime itself never interprets the value.
     */
    void setTag(std::uint64_t t) { _tag = t; }

    std::uint64_t tag() const { return _tag; }

  private:
    friend class Platform;
    friend class CommandQueue;
    friend struct detail::CommandEngine;
    explicit Context(Platform &p);

    Platform *_platform;
    std::vector<Bytes> _buffers;
    std::vector<std::unique_ptr<CommandQueue>> _queues;
    unsigned _priority = 0;
    std::uint64_t _tag = 0;
};

/** Per-device fault and recovery counters. */
struct DeviceFaultStats
{
    std::uint64_t attempts = 0;        ///< attempts launched
    std::uint64_t failures = 0;        ///< attempts failed (any cause)
    std::uint64_t timeouts = 0;        ///< watchdog expiries
    std::uint64_t retries = 0;         ///< retry attempts scheduled
    std::uint64_t commands_failed = 0; ///< commands settled non-Ok
    std::uint64_t cascaded = 0;        ///< commands failed by a
                                       ///< predecessor's error
    std::uint64_t fallbacks = 0;       ///< commands degraded to host CPU
    std::uint64_t rerouted_copies = 0; ///< p2p copies staged via the RC
    std::uint64_t shed = 0;            ///< commands shed (admission or
                                       ///< open breaker without fallback)
    std::uint64_t fast_fails = 0;      ///< fresh commands failed
                                       ///< immediately on an unhealthy
                                       ///< device (no watchdog burned)
    std::uint64_t breaker_fast_fails = 0; ///< commands rejected by an
                                          ///< open/probing breaker
    std::uint64_t deadline_exhausted = 0; ///< commands settled TimedOut
                                          ///< by the deadline budget
    std::uint64_t retries_denied = 0;     ///< retries vetoed by the
                                          ///< installed retry policy
                                          ///< (command settled instead)
};

/**
 * External veto over each retry the runtime is about to schedule: the
 * command at @p ctx (whose tag identifies the tenant) on device @p dev
 * wants to launch attempt number @p next_attempt (1 = first retry).
 * Return false to deny: the command settles with its current error
 * immediately (fail-fast) instead of backing off. The hook runs after
 * the max_retries and deadline checks, so it only ever *removes*
 * attempts - a policy cannot extend the runtime's own budget.
 */
using RetryPolicyFn =
    std::function<bool(Context &ctx, DeviceId dev, unsigned next_attempt)>;

/**
 * Platform-wide performance knobs (reliability policy lives in
 * CommandPolicy / robust::RobustConfig instead).
 */
struct PlatformConfig
{
    /// Compiled-kernel cache configuration for the platform's DRX
    /// queues. Defaults honour the DMX_NO_DRX_CACHE kill switch.
    drx::DrxCacheConfig drx_cache = drx::defaultCacheConfig();
};

/** The platform: devices, fabric and the simulated clock. */
class Platform
{
  public:
    Platform();
    ~Platform();

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /**
     * Register an accelerator device.
     *
     * @param name   instance name
     * @param domain latency-model domain (Table I)
     * @param fn     functional kernel body
     */
    DeviceId addAccelerator(const std::string &name, accel::Domain domain,
                            KernelFn fn);

    /** Register a DRX device with its hardware configuration. */
    DeviceId addDrx(const std::string &name, const drx::DrxConfig &cfg);

    /** Create an execution context spanning all devices. */
    Context createContext();

    /**
     * Heap-allocating variant for callers that manage many short-lived
     * contexts (one per request) whose addresses must stay stable.
     */
    std::unique_ptr<Context> createContextPtr();

    /** @return current simulated time. */
    Tick now() const { return _eq.now(); }

    /** @return number of registered devices. */
    std::size_t deviceCount() const { return _devices.size(); }

    /** @return device name. */
    const std::string &deviceName(DeviceId id) const;

    /** @return true when @p id is a DRX (restructuring) device. */
    bool deviceIsDrx(DeviceId id) const;

    /** Drive the simulation until the event queue drains. */
    void drain() { _eq.run(); }

    /**
     * @return the platform's event queue. Open-loop drivers (the
     * overload stress engine) use this to schedule request arrivals at
     * absolute simulated times between drains.
     */
    sim::EventQueue &eventQueue() { return _eq; }

    // --------------------------------------------- fault & reliability

    /**
     * Install (or clear, with nullptr) a fault plan. The plan is not
     * owned and must outlive the platform's use of it. Installing a
     * plan wires its decision hooks into the fabric, every accelerator
     * unit, every DRX machine and the completion-interrupt controller,
     * resets per-device health to the plan's unhealthy threshold, and
     * raises a zero command timeout to a default watchdog so stalls
     * and hangs are detected.
     */
    void setFaultPlan(fault::FaultPlan *plan);

    /** @return the installed plan (nullptr when fault-free). */
    fault::FaultPlan *faultPlan() const { return _plan; }

    /** Replace the command reliability policy. */
    void setCommandPolicy(const CommandPolicy &policy);

    const CommandPolicy &commandPolicy() const { return _policy; }

    /**
     * Install (or clear, with nullptr) a retry veto policy consulted
     * before every retry the runtime schedules (see RetryPolicyFn).
     * With no policy installed behaviour is byte-identical to the
     * legacy retry path.
     */
    void setRetryPolicy(RetryPolicyFn policy)
    {
        _retry_policy = std::move(policy);
    }

    const RetryPolicyFn &retryPolicy() const { return _retry_policy; }

    /**
     * Install (or clear, with nullptr) a corruption plan. The plan is
     * not owned and must outlive the platform's use of it. Installing
     * a plan wires its decision hooks into the fabric (link-CRC
     * replays), every DRX machine (scratchpad SEC-DED ECC) and the
     * copy delivery path (silent payload bit flips). With no plan
     * installed none of this machinery is reachable and behaviour is
     * byte-identical to a platform that never heard of integrity.
     */
    void setIntegrityPlan(integrity::IntegrityPlan *plan);

    /** @return the installed plan (nullptr when corruption-free). */
    integrity::IntegrityPlan *integrityPlan() const { return _integrity; }

    // ---------------------------------------- overload protection

    /**
     * Install the overload-protection feature set. Creates (or tears
     * down) per-device circuit breakers and admission controllers and
     * copies the end-to-end deadline into the command policy. The
     * default-constructed RobustConfig restores legacy behaviour.
     */
    void setRobustConfig(const robust::RobustConfig &cfg);

    const robust::RobustConfig &robustConfig() const { return _robust; }

    // ------------------------------------------------- performance

    /**
     * Replace the platform performance configuration. Reconfigures the
     * DRX compiled-kernel cache in place (cached plans stay valid: they
     * are immutable and keyed by kernel structure).
     */
    void setPlatformConfig(const PlatformConfig &cfg);

    const PlatformConfig &platformConfig() const { return _config; }

    /**
     * The platform's compiled-kernel cache. One instance is safe for
     * every queue: commands execute on the single simulated event-loop
     * thread.
     */
    drx::ProgramCache &drxCache() { return *_drx_cache; }

    /** @return the breaker of @p id (nullptr when breakers are off). */
    const robust::CircuitBreaker *deviceBreaker(DeviceId id) const;

    /** @return the admission gate of @p id (nullptr when off). */
    const robust::AdmissionController *deviceAdmission(DeviceId id) const;

    /** @return commands admitted on @p id and not yet settled. */
    std::uint64_t outstandingCommands(DeviceId id) const;

    /** @return false once a device tripped the unhealthy threshold. */
    bool deviceHealthy(DeviceId id) const;

    /** @return the health tracker of @p id (streaks, threshold). */
    const fault::HealthTracker &deviceHealth(DeviceId id) const;

    /** @return fault/recovery counters of @p id. */
    const DeviceFaultStats &faultStats(DeviceId id) const;

    /** @return completion notifications lost and recovered by poll. */
    std::uint64_t droppedInterrupts() const
    {
        return _irq->droppedInterrupts();
    }

    /** @return the host core pool running degraded restructuring. */
    const cpu::CorePool &hostPool() const { return *_host; }

    /** @return the platform's PCIe fabric (doorbell/fetch counters). */
    const pcie::Fabric &fabric() const { return *_fabric; }

    /** @return the completion-interrupt controller (notify counters). */
    const driver::InterruptController &irq() const { return *_irq; }

  private:
    friend class Context;
    friend class CommandQueue;
    friend struct detail::CommandEngine;
    friend struct detail::ChainEngine;
    friend struct detail::BatchEngine;
    friend void detail::launchBatchMember(
        Context &, DeviceId, detail::AttemptFn, detail::AttemptFn, bool,
        std::shared_ptr<Event::State>, std::function<void(Status)>);

    struct Device
    {
        std::string name;
        bool is_drx = false;
        accel::AcceleratorSpec spec{};
        KernelFn fn;
        std::unique_ptr<accel::DeviceUnit> unit;
        std::unique_ptr<drx::DrxMachine> machine;
        pcie::NodeId node = 0;
        fault::HealthTracker health;
        DeviceFaultStats fstats;
        std::uint64_t outstanding = 0; ///< admitted, not yet settled
        std::unique_ptr<robust::CircuitBreaker> breaker;
        std::unique_ptr<robust::AdmissionController> admission;
    };

    /** Wire the installed plan's hooks into one device. */
    void wireDevice(Device &dev);

    /** Wire the installed integrity plan's hooks into one device. */
    void wireIntegrity(Device &dev);

    /** (Re)build one device's breaker/admission from _robust. */
    void wireRobust(Device &dev);

    sim::EventQueue _eq;
    std::unique_ptr<pcie::Fabric> _fabric;
    pcie::NodeId _rc = 0;
    pcie::NodeId _switch = 0;
    std::vector<Device> _devices;

    fault::FaultPlan *_plan = nullptr;
    integrity::IntegrityPlan *_integrity = nullptr;
    CommandPolicy _policy;
    RetryPolicyFn _retry_policy;
    robust::RobustConfig _robust;
    PlatformConfig _config;
    std::unique_ptr<drx::ProgramCache> _drx_cache;
    Rng _jitter; ///< backoff jitter stream (reseeded per plan)
    cpu::HostParams _host_params;
    std::unique_ptr<cpu::CorePool> _host;
    std::unique_ptr<driver::InterruptController> _irq;
};

} // namespace dmx::runtime

#endif // DMX_RUNTIME_RUNTIME_HH
